#!/usr/bin/env python
"""The reconfigurable radio as a system: chained FPGAs under scrubbing.

Paper Figures 2-3: the digitised IF stream flows through a chain of
Virtex parts over FPDP channels while the radiation-hardened fault
manager watches every configuration.  This demo builds a two-stage
signal chain — a window-sum preprocessor feeding the impulsive-event
detector — upsets the front-end mid-flight, and shows the scrub loop
bringing the system back.
"""

import numpy as np

from repro.designs import filter_preprocessor, impulse_detector
from repro.fpga import get_device
from repro.place import implement
from repro.seu import CampaignConfig, run_campaign
from repro.system import FpdpPipeline


def main() -> None:
    device = get_device("S8")
    stages = [
        implement(filter_preprocessor(2, 6), device),  # background conditioning
        implement(impulse_detector(7, 4), device),  # event detection
    ]
    for hw in stages:
        print(f"stage: {hw.summary()}")

    pipeline = FpdpPipeline(stages)
    print(
        f"\nFPDP channel: {pipeline.channel.width_bits}-bit @ "
        f"{pipeline.channel.clock_hz / 1e6:.0f} MHz = "
        f"{pipeline.channel.bandwidth_bytes_per_s / 1e6:.0f} MB/s (paper: 200 MB/s)"
    )

    # A quiet background with occasional impulses.
    rng = np.random.default_rng(7)
    cycles = 300
    stim = np.zeros((cycles, pipeline.n_inputs), dtype=np.uint8)
    stim[:, 0] = rng.integers(0, 2, cycles)  # low-level noise
    for t in (80, 160, 240):
        stim[t, :] = 1  # full-scale impulses

    golden = pipeline.run(stim)
    events_clean = int(golden[-1, 1:].dot(1 << np.arange(golden.shape[1] - 1)))
    print(f"\nclean run: event counter ends at {events_clean}")

    # Find a bit that matters in the front-end and upset it mid-flight.
    res = run_campaign(
        stages[0],
        CampaignConfig(detect_cycles=48, persist_cycles=0, classify_persistence=False),
        candidate_bits=np.arange(0, device.block0_bits, 11, dtype=np.int64),
    )
    # Sensitivity is stimulus-dependent: pick a sensitive bit that this
    # particular signal actually exercises.
    manager = None
    for candidate in res.sensitive_bits[:40]:
        pipeline.reset()
        manager = pipeline.attach_fault_manager()
        for t in range(100):
            pipeline.step(stim[t])
        pipeline.upset(0, int(candidate))
        corrupted = sum(
            int(not np.array_equal(pipeline.step(stim[t]), golden[t]))
            for t in range(100, 200)
        )
        if corrupted:
            bit = int(candidate)
            break
        pipeline.upset(0, int(candidate))  # flip back before the next try
    else:
        raise SystemExit("no exercised sensitive bit found")
    print(f"\nupset injected into stage0 configuration bit {bit} at cycle 100")
    print(f"system outputs wrong on {corrupted}/100 cycles while corrupted")

    report = manager.scan_cycle()
    print(
        f"scrub scan: detected {report.detected}, repaired {report.repaired} "
        f"in {1e3 * report.duration_s:.1f} ms modeled"
    )
    pipeline.reset()
    healed = pipeline.run(stim)
    print(f"after repair + reset: outputs golden again: "
          f"{np.array_equal(healed, golden)}")


if __name__ == "__main__":
    main()

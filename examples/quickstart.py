#!/usr/bin/env python
"""Quickstart: measure a design's SEU sensitivity in five steps.

This is the paper's core loop (section III-A): implement a design on a
Virtex-class device, exhaustively flip every configuration bit of a
running copy, compare against a lock-step golden copy, and report the
sensitive cross-section with persistence classification.
"""

from repro import CampaignConfig, get_design, get_device, implement, run_campaign
from repro.seu import format_table1, table1_row


def main() -> None:
    # 1. Pick a device and a design.  S12 is a scaled Virtex (same frame
    #    organisation as the XCV1000, smaller grid) so the exhaustive
    #    sweep finishes in seconds.
    device = get_device("S12")
    spec = get_design("MULT6")
    print(f"device: {device.describe()}")

    # 2. Implement: place, route, generate the configuration bitstream,
    #    and decode it back into executable hardware.
    hw = implement(spec, device)
    print(f"implemented: {hw.summary()}")

    # 3. Run the exhaustive single-bit SEU campaign.
    config = CampaignConfig(detect_cycles=128, persist_cycles=64)
    result = run_campaign(hw, config)
    print(f"campaign: {result.summary()}")

    # 4. The Table I quantities.
    row = table1_row(hw, result)
    print()
    print(format_table1([row]))

    # 5. Where do the sensitive bits live?
    print("\nsensitive bits by resource kind:")
    for kind, count in sorted(result.by_kind.items(), key=lambda kv: -kv[1]):
        print(f"  {kind.value:<16} {count}")
    print(f"\npersistence ratio: {100 * result.persistence_ratio:.1f}% "
          f"(fraction of sensitive bits needing a reset after scrubbing)")


if __name__ == "__main__":
    main()

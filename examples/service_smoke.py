"""Three concurrent clients against one ``repro serve`` — the CI smoke.

Usage::

    python examples/service_smoke.py http://127.0.0.1:8321

Three threads play three tenants with different priorities: ``ops``
submits the golden SEU sweep at ``high``, ``research`` an MBU sweep at
``normal``, and ``batch-farm`` a duplicate of the SEU sweep at
``batch`` (which must be served from the cache once ops' run lands).
The script exits nonzero unless every job reaches ``done`` with the
expected verdict bytes and the duplicate was a cache hit — a minimal
end-to-end health check that exercises submit, scheduling, quotas,
caching, and result retrieval over real HTTP.
"""

from __future__ import annotations

import hashlib
import json
import sys
import threading
import time
import urllib.request

SEU_SPEC = {
    "kind": "campaign",
    "design": "MULT4",
    "device": "S8",
    "tenant": "ops",
    "priority": "high",
    "flags": {"detect_cycles": 48, "persist_cycles": 32, "stride": 7, "batch_size": 32},
}

MBU_SPEC = {
    "kind": "multibit",
    "design": "MULT4",
    "device": "S8",
    "tenant": "research",
    "priority": "normal",
    "flags": {
        "detect_cycles": 48,
        "batch_size": 32,
        "k": 2,
        "trials": 160,
        "seed": 0,
        "single_sensitivity": 0.25,
    },
}


def request(base: str, method: str, path: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(req, timeout=60.0) as resp:
        return resp.read()


def run_client(base: str, name: str, spec: dict, out: dict) -> None:
    try:
        body = json.loads(request(base, "POST", "/v1/jobs", spec))
        job_id = body["job"]["id"]
        deadline = time.monotonic() + 480.0
        while True:
            rec = json.loads(request(base, "GET", f"/v1/jobs/{job_id}"))
            if rec["state"] in ("done", "failed", "cancelled"):
                break
            if time.monotonic() > deadline:
                raise RuntimeError(f"job {job_id} stuck in {rec['state']}")
            time.sleep(0.3)
        if rec["state"] != "done":
            raise RuntimeError(f"job {job_id} ended {rec['state']}: {rec.get('error')}")
        verdicts = request(base, "GET", f"/v1/jobs/{job_id}/result")
        out[name] = {
            "job": job_id,
            "cached": rec["cached"],
            "sha": hashlib.sha256(verdicts).hexdigest(),
        }
        print(f"[{name}] {job_id} done, cached={rec['cached']}, sha={out[name]['sha'][:16]}…")
    except Exception as err:  # noqa: BLE001 - smoke script reports, not raises
        out[name] = {"error": str(err)}
        print(f"[{name}] FAILED: {err}", file=sys.stderr)


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    base = sys.argv[1].rstrip("/")

    # ops runs first so the batch duplicate below has a cache to hit.
    results: dict = {}
    ops = threading.Thread(target=run_client, args=(base, "ops", SEU_SPEC, results))
    ops.start()
    ops.join()

    dup_spec = dict(SEU_SPEC, tenant="batch-farm", priority="batch")
    threads = [
        threading.Thread(target=run_client, args=(base, "research", MBU_SPEC, results)),
        threading.Thread(target=run_client, args=(base, "batch-farm", dup_spec, results)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    failures = [n for n, r in results.items() if "error" in r]
    if failures:
        print(f"smoke FAILED for: {', '.join(failures)}", file=sys.stderr)
        return 1
    if results["ops"]["sha"] != results["batch-farm"]["sha"]:
        print("smoke FAILED: duplicate sweep returned different bytes", file=sys.stderr)
        return 1
    if not results["batch-farm"]["cached"]:
        print("smoke FAILED: duplicate sweep was not served from cache", file=sys.stderr)
        return 1
    stats = json.loads(request(base, "GET", "/v1/stats"))
    print(
        f"smoke OK: {stats['jobs']['completed']} jobs completed, "
        f"{stats['jobs']['cache_hits']} cache hit(s), "
        f"tenants: {', '.join(stats['queue']['by_tenant']) or 'all drained'}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

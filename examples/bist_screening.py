#!/usr/bin/env python
"""Permanent-fault screening with the on-orbit BIST suite (section II-B).

Injects a batch of hard faults (stuck-at LUT outputs, dead flip-flops,
stuck wires) into a device and runs the three diagnostic families the
paper describes: the cascaded-LFSR CLB test (two complementary
placements), the Figure 5 wire test (one partial reconfiguration + two
readbacks per wire index), and the address-in-data BRAM test.
"""

from repro.bist import (
    BistRunner,
    FaultSite,
    StuckAtFault,
)
from repro.fpga import get_device
from repro.fpga.resources import Direction


def main() -> None:
    device = get_device("S8")
    print(f"device under test: {device.describe()}\n")

    # A plausible damage scenario: two dead flip-flops inside the area
    # the CLB test exercises, one dead FF outside it (coverage is only
    # as good as the tested footprint — the paper's two complementary
    # placements exist exactly to widen it), two stuck wires, and one
    # stuck BRAM cell.
    from repro.bist import clb_test_design
    from repro.place import implement

    probe = implement(clb_test_design(4, register_bits=8, variant=0), device)
    covered_a = probe.placement.ff_site["ra1_3"]
    covered_b = probe.placement.ff_site["rb2_5"]
    logic_faults = [
        StuckAtFault(FaultSite.FF_OUTPUT, (covered_a.row, covered_a.col, covered_a.pos), 1),
        StuckAtFault(FaultSite.FF_OUTPUT, (covered_b.row, covered_b.col, covered_b.pos), 0),
        StuckAtFault(FaultSite.FF_OUTPUT, (device.rows - 1, device.cols - 1, 3), 1),
    ]
    wire_faults = [
        StuckAtFault(FaultSite.WIRE, (2, 3, int(Direction.E), 18), 1),
        StuckAtFault(FaultSite.WIRE, (4, 5, int(Direction.E), 19), 0),
    ]
    bram_faults = [(0, 1234)]

    runner = BistRunner(device, n_register_pairs=4)
    report = runner.run(
        logic_faults=logic_faults,
        wire_faults=wire_faults,
        bram_fault_bits=bram_faults,
        wire_indices=[18, 19],
    )

    print("== CLB test (cascaded LFSR registers, 2 complementary configs)")
    assert report.clb is not None
    print(f"   {report.clb.summary()}")
    for config, caught in report.clb.detected_by.items():
        for fault in caught:
            print(f"   {config} caught: {fault}")

    print("\n== wire test (Figure 5: chain of inverters, re-chained per index)")
    assert report.wire is not None
    print(
        f"   {report.wire.n_configs_run} partial reconfigurations, "
        f"{report.wire.n_readbacks_run} readbacks"
    )
    for fault, (direction, wire, step) in report.wire.isolation.items():
        print(f"   isolated {fault} on the {direction}-chain, wire {wire}, "
              f"chain position {step}")

    print("\n== BRAM test (address in both bytes)")
    assert report.bram is not None
    if report.bram.passed:
        print("   pass")
    else:
        for block, addr, value in report.bram.mismatches:
            print(f"   block {block} address {addr}: read {value:#06x}")

    print(f"\nsession summary: {report.summary()}")


if __name__ == "__main__":
    main()

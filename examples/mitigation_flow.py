#!/usr/bin/env python
"""The designer's mitigation flow (sections III-A / III-C).

1. Measure a design's sensitivity and persistence with the SEU simulator.
2. Enumerate its half-latches and find the critical ones (Figure 14).
3. Let the persistence ratio pick a mitigation strategy (Table II).
4. Apply RadDRC (half-latch removal) and TMR, and re-measure.
"""

from repro import CampaignConfig, get_device, implement, run_campaign, run_halflatch_campaign
from repro.designs import lfsr_cluster_design
from repro.mitigation import apply_tmr, recommend_strategy, remove_half_latches


def measure(hw, config):
    result = run_campaign(hw, config)
    hl = run_halflatch_campaign(hw, config)
    critical = sum(hl.values())
    return result, hl, critical


def main() -> None:
    device = get_device("S12")
    config = CampaignConfig(detect_cycles=96, persist_cycles=64)
    spec = lfsr_cluster_design(2, n_bits=8, per_cluster=2)

    # -- baseline ----------------------------------------------------------
    hw = implement(spec, device)
    result, hl, critical = measure(hw, config)
    print(f"baseline         : {result.summary()}")
    print(
        f"  half-latches: {len(hl)} sites, {critical} critical "
        f"(e.g. the always-enabled clock enables of Figure 14)"
    )

    # -- strategy ----------------------------------------------------------
    rec = recommend_strategy(
        result, critical_halflatch_fraction=critical / max(len(hl), 1)
    )
    print(f"  recommendation: {rec}")

    # -- RadDRC: remove half-latches ----------------------------------------
    rd_spec = remove_half_latches(spec)
    rd_hw = implement(rd_spec, device)
    rd_result, rd_hl, rd_critical = measure(rd_hw, config)
    print(f"\nafter RadDRC     : {rd_result.summary()}")
    print(
        f"  critical half-latches: {critical} -> {rd_critical} "
        "(the paper observed ~100x beam-failure improvement)"
    )

    # -- TMR ----------------------------------------------------------------
    tmr_spec = apply_tmr(spec)
    tmr_hw = implement(tmr_spec, device)
    tmr_result = run_campaign(tmr_hw, config)
    print(f"\nafter full TMR   : {tmr_result.summary()}")
    factor = result.sensitivity / max(tmr_result.sensitivity, 1e-9)
    print(
        f"  sensitivity reduced {factor:.1f}x "
        f"({100 * result.sensitivity:.2f}% -> {100 * tmr_result.sensitivity:.2f}%) "
        f"at {tmr_hw.used_slices / hw.used_slices:.1f}x the area"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Sensitive cross-section characterisation and selective hardening.

Paper section III-A: "High correlation between specific locations in
the bit stream and output area helps to characterize the sensitive
cross-section of the design.  Selective Triple Module Redundancy (TMR)
or other mitigation techniques can then be selectively applied to the
sensitive cross section."

This example builds that whole chain: campaign -> sensitivity map (with
an ASCII rendering of the die) -> bit/output correlation table ->
selective TMR over the cells attributed the most sensitive bits.
"""

from repro import CampaignConfig, get_device, implement, run_campaign
from repro.designs import lfsr_multiplier
from repro.mitigation import apply_selective_tmr, sensitive_cells
from repro.seu import SensitivityMap, build_correlation_table


def main() -> None:
    device = get_device("S12")
    spec = lfsr_multiplier(4, lfsr_bits=8)
    hw = implement(spec, device)
    print(f"design: {hw.summary()}\n")

    config = CampaignConfig(detect_cycles=96, persist_cycles=64)
    result = run_campaign(hw, config)
    print(result.summary())

    # -- the sensitive cross-section, drawn on the die --------------------
    smap = SensitivityMap.from_campaign(device, result)
    print("\nsensitive cross-section (one char per CLB, '.' = clean):")
    print(smap.ascii_heatmap())

    # -- bitstream-location x output correlation ----------------------------
    table = build_correlation_table(hw, result, config, max_bits=400)
    xs = table.output_cross_section()
    print("\nbits endangering each output (first 12 outputs):")
    print("  " + " ".join(f"{int(x):4d}" for x in xs[:12]))
    hist = table.fanin_histogram()
    print(
        "outputs disturbed per sensitive bit: "
        + ", ".join(f"{k} outputs x{v}" for k, v in sorted(hist.items())[:6])
    )

    # -- selective TMR over the hottest cells -------------------------------
    attribution = sensitive_cells(hw, result)
    hottest = {
        name
        for name, _ in sorted(attribution.items(), key=lambda kv: -kv[1])[:40]
    }
    hardened = apply_selective_tmr(spec, hottest)
    hhw = implement(hardened, device)
    hres = run_campaign(hhw, config)
    print(f"\nselective TMR over {len(hottest)} hottest cells:")
    print(f"  before: {100 * result.sensitivity:.2f}% sensitivity, "
          f"{100 * result.persistence_ratio:.1f}% persistence")
    print(f"  after : {100 * hres.sensitivity:.2f}% sensitivity, "
          f"{100 * hres.persistence_ratio:.1f}% persistence "
          f"({hhw.used_slices}/{hw.used_slices} slices)")


if __name__ == "__main__":
    main()

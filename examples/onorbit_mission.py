#!/usr/bin/env python
"""On-orbit mission rehearsal: scrubbing a three-FPGA board (Figure 4).

Simulates a board of the paper's reconfigurable radio flying through a
solar-flare environment: Poisson configuration upsets arrive, the
radiation-hardened fault manager scans each device's configuration over
SelectMAP, CRC-checks every frame against the codebook, and repairs
corrupted frames from ECC-protected flash.  Prints the state-of-health
telemetry a ground station would receive.
"""

import numpy as np

from repro import get_design, get_device, implement
from repro.radiation import LEO_FLARE, OrbitEnvironment
from repro.scrub import OnOrbitSystem
from repro.utils.units import format_duration


def main() -> None:
    device = get_device("S12")
    # Fly a real design's configuration, not random bits.
    hw = implement(get_design("COUNTER24"), device)
    print(f"payload configuration: {hw.summary()}")

    # The S12 has ~3000x less cross-section than an XQVR1000; scale the
    # flux up so one simulated hour shows meaningful activity.
    environment = OrbitEnvironment(
        "solar flare (area-scaled)", LEO_FLARE.effective_flux_cm2_s * 2000
    )
    system = OnOrbitSystem(
        device, hw.bitstream, n_devices=3, environment=environment, seed=2026
    )

    print("\nflying 2 simulated hours through a flare...")
    report = system.fly(2 * 3600.0)
    print(report.summary())

    print(f"\nscan period (3 devices): {format_duration(report.scan_period_s)}")
    print(
        "  [XQVR1000 equivalent: ~180 ms per 3-device scan, as the paper reports]"
    )
    if report.detection_latencies_s:
        lat = np.array(report.detection_latencies_s)
        print(
            f"detection latency: mean {format_duration(float(lat.mean()))}, "
            f"max {format_duration(float(lat.max()))}"
        )

    print("\nstate-of-health counters:")
    print(f"  {report.soh.summary()}")
    print("\nupsets per device:")
    for name, count in sorted(report.soh.by_device().items()):
        print(f"  {name}: {count}")


if __name__ == "__main__":
    main()

"""repro — dynamic reconfiguration for radiation-fault management in FPGAs.

A full-system reproduction of Gokhale, Graham, Wirthlin, Johnson &
Rollins, *Dynamic Reconfiguration for Management of Radiation-Induced
Faults in FPGAs* (2004): a Virtex-class FPGA model with frame-organised
configuration memory, an SEU fault-injection simulator with sensitivity
and persistence analysis, on-orbit configuration scrubbing, BIST for
permanent faults, half-latch modelling with the RadDRC removal tool, and
proton-beam validation — all in pure Python/numpy.

Quick start::

    from repro import get_device, get_design, implement, run_campaign

    hw = implement(get_design("MULT6"), get_device("S12"))
    result = run_campaign(hw)
    print(result.summary())
"""

from repro.designs import get_design
from repro.fpga import get_device
from repro.place import implement
from repro.seu import (
    CampaignConfig,
    SensitivityMap,
    run_campaign,
    run_halflatch_campaign,
)

__version__ = "1.0.0"

__all__ = [
    "get_device",
    "get_design",
    "implement",
    "run_campaign",
    "run_halflatch_campaign",
    "CampaignConfig",
    "SensitivityMap",
    "__version__",
]

"""Chained FPGAs over FPDP channels.

Each stage is a live :class:`~repro.testbed.configured.ConfiguredFpga`;
stage *k*'s registered outputs feed stage *k+1*'s inputs one clock later
(FPDP transfers are synchronous), so the pipeline is systolic: an upset
in stage *k* can only disturb the system output after the downstream
latency, and scrubbing any stage's configuration heals the chain from
that point on.

Widths need not match: a channel carries ``min(n_out, n_in)`` bits and
ties the remaining sink inputs low, like a parallel cable with unused
lanes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CampaignError
from repro.place.flow import HardwareDesign
from repro.scrub.flash import FlashMemory
from repro.scrub.manager import FaultManager
from repro.testbed.configured import ConfiguredFpga
from repro.utils.simtime import SimClock

__all__ = ["FpdpChannel", "FpdpPipeline"]


@dataclass(frozen=True)
class FpdpChannel:
    """One inter-FPGA channel (paper: 32-bit @ 50 MHz = 200 MB/s)."""

    width_bits: int = 32
    clock_hz: float = 50e6

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.clock_hz * self.width_bits / 8


class FpdpPipeline:
    """A chain of live FPGAs with registered inter-stage transfers."""

    def __init__(
        self,
        stages: list[HardwareDesign],
        channel: FpdpChannel | None = None,
        clock: SimClock | None = None,
    ):
        if not stages:
            raise CampaignError("pipeline needs at least one stage")
        self.clock = clock if clock is not None else SimClock()
        self.channel = channel if channel is not None else FpdpChannel()
        self.fpgas = [ConfiguredFpga(hw, self.clock) for hw in stages]
        # Registered inter-stage values (the FPDP link registers).
        self._links = [
            np.zeros(len(hw.io.input_order), dtype=np.uint8) for hw in stages
        ]
        self.cycles = 0

    @property
    def n_stages(self) -> int:
        return len(self.fpgas)

    @property
    def n_inputs(self) -> int:
        return len(self.fpgas[0].io.input_order)

    @property
    def n_outputs(self) -> int:
        return self.fpgas[-1].n_outputs

    # -- operation ---------------------------------------------------------

    def step(self, stimulus_row: np.ndarray) -> np.ndarray:
        """One system clock: every stage steps; links register outputs."""
        stimulus_row = np.asarray(stimulus_row, dtype=np.uint8)
        if stimulus_row.shape != (self.n_inputs,):
            raise CampaignError(
                f"pipeline expects {self.n_inputs} input bits, got {stimulus_row.shape}"
            )
        self._links[0] = stimulus_row
        outputs = []
        for fpga, link in zip(self.fpgas, self._links):
            outputs.append(fpga.step(link))
        # Advance the FPDP registers for the next cycle.
        for k in range(1, self.n_stages):
            sink_width = self._links[k].size
            out = outputs[k - 1]
            n = min(sink_width, out.size)
            nxt = np.zeros(sink_width, dtype=np.uint8)
            nxt[:n] = out[:n]
            self._links[k] = nxt
        self.cycles += 1
        return outputs[-1]

    def run(self, stimulus: np.ndarray) -> np.ndarray:
        stimulus = np.asarray(stimulus, dtype=np.uint8)
        out = np.empty((stimulus.shape[0], self.n_outputs), dtype=np.uint8)
        for t in range(stimulus.shape[0]):
            out[t] = self.step(stimulus[t])
        return out

    def reset(self) -> None:
        for fpga in self.fpgas:
            fpga.reset()
        for k in range(self.n_stages):
            self._links[k] = np.zeros_like(self._links[k])
        self.cycles = 0

    # -- faults and scrubbing ---------------------------------------------------

    def upset(self, stage: int, linear_bit: int) -> None:
        """SEU in stage ``stage``'s configuration memory."""
        if not 0 <= stage < self.n_stages:
            raise CampaignError(f"stage {stage} out of range")
        self.fpgas[stage].upset_config_bit(linear_bit)

    def attach_fault_manager(self) -> FaultManager:
        """Build a fault manager watching every stage (paper Figure 3).

        Golden images go into ECC-protected flash; the manager shares
        the pipeline's clock, so scrub scans advance the same modeled
        time the designs run in.
        """
        flash = FlashMemory()
        manager = FaultManager(flash, self.clock)
        for k, fpga in enumerate(self.fpgas):
            name = f"stage{k}"
            flash.store_image(name, fpga.hw.bitstream)
            manager.manage(name, fpga.port, name)
        return manager

    def stage_latency_to_output(self, stage: int) -> int:
        """FPDP register hops between a stage's output and the system's."""
        if not 0 <= stage < self.n_stages:
            raise CampaignError(f"stage {stage} out of range")
        return self.n_stages - 1 - stage

    def transfer_time_per_cycle(self) -> float:
        """Modeled FPDP transfer time for one inter-stage word."""
        return self.channel.width_bits / 8 / self.channel.bandwidth_bytes_per_s

"""System level: the multi-FPGA processing pipeline of the payload.

Paper Figures 2-3: nine Virtex parts on three boards, chained over
FPDP (50 MHz x 32 bit = 200 MB/s per channel), each board watched by
its radiation-hardened fault manager.  :class:`FpdpPipeline` chains
live configured devices and lets upsets anywhere in the chain be
observed — and scrubbed — at the system output.
"""

from repro.system.pipeline import FpdpChannel, FpdpPipeline

__all__ = ["FpdpPipeline", "FpdpChannel"]

"""RadDRC: automatic half-latch removal (paper section III-C).

The CAD flow realises constants — above all the always-asserted clock
enables of Figure 14 — with half-latches, whose hidden state a proton
can flip without any bitstream signature.  RadDRC rewrites the design so
every such constant comes from an explicit, scrubbable source:

* ``style="lutrom"`` — LUT ROM constants (a LUT whose truth table is
  all-ones), shared among groups of flip-flops;
* ``style="external"`` — a single constant driven from an external pin.

"Mitigated designs were found to be 100X [more] resistent to failure
than unmitigated designs, as observed under Crocker cyclotron testing."
"""

from __future__ import annotations

from repro.designs.spec import DesignSpec
from repro.errors import MitigationError
from repro.netlist.cells import CellKind
from repro.netlist.netlist import Netlist

__all__ = ["remove_half_latches"]


def remove_half_latches(
    spec: DesignSpec, style: str = "lutrom", group_size: int = 8
) -> DesignSpec:
    """Rewrite implicit FF clock-enables as explicit constants.

    Flip-flops declared without a CE (the half-latch consumers) get an
    explicit ``ce`` net driven by a constant generator; ``group_size``
    FFs share one generator (a real design shares ROM constants
    regionally rather than one-per-FF).
    """
    if style not in ("lutrom", "external"):
        raise MitigationError(f"unknown RadDRC style {style!r}")
    if group_size < 1:
        raise MitigationError("group_size must be >= 1")
    src = spec.netlist
    src.validate()
    nl = Netlist(f"{src.name}_raddrc")

    ext_name = None
    if style == "external":
        ext_name = nl.add_input("vcc_ext")

    n_groups = 0
    n_rewritten = 0

    def const_for(index: int) -> str:
        nonlocal n_groups
        if style == "external":
            assert ext_name is not None
            return ext_name
        group = index // group_size
        name = f"__raddrc_vcc{group}"
        if name not in nl:
            nl.add_const(name, 1)
            n_groups += 1
        return name

    for cell in src.cells():
        if cell.kind is CellKind.INPUT:
            nl.add_input(cell.name)
        elif cell.kind is CellKind.CONST:
            nl.add_const(cell.name, cell.value)
        elif cell.kind is CellKind.LUT:
            nl.add_lut(cell.name, cell.table, cell.pins)
        elif cell.kind is CellKind.FF:
            if len(cell.pins) == 1:
                nl.add_ff(
                    cell.name,
                    cell.pins[0],
                    ce=const_for(n_rewritten),
                    init=cell.init,
                )
                n_rewritten += 1
            else:
                nl.add_ff(
                    cell.name,
                    cell.pins[0],
                    ce=cell.pins[1],
                    sr=cell.pins[2] if len(cell.pins) > 2 else None,
                    init=cell.init,
                )
    nl.set_outputs(src.outputs)
    nl.validate()

    out = DesignSpec(
        name=f"{spec.name} (RadDRC)",
        netlist=nl,
        family=spec.family,
        size=spec.size,
        feedback=spec.feedback,
    )
    if style == "external":
        # External constants must be driven high by the stimulus; wrap
        # the generator so column 0 (vcc_ext, the first declared input)
        # is always 1.
        base_stimulus = out.stimulus

        def stimulus(cycles: int, seed=0):
            stim = base_stimulus(cycles, seed)
            stim[:, 0] = 1
            return stim

        out.stimulus = stimulus  # type: ignore[method-assign]
    return out

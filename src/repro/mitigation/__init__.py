"""SEU design-mitigation transforms (paper sections III-A and III-C).

* **TMR** — triple modular redundancy with per-domain majority voters;
  combined with scrubbing it masks any single configuration upset and
  self-heals state divergence.
* **Selective TMR** — the paper's use of the sensitivity map: apply
  redundancy only to the sensitive cross-section.
* **RadDRC** — the half-latch removal tool: replaces implicit keeper
  constants with explicit LUT-ROM (or externally sourced) constants;
  "mitigated designs were found to be 100X [more] resistant to failure".
* **Strategy selection** — the persistence ratio tells the designer
  whether scrubbing alone suffices or reset/TMR protocols are needed.
"""

from repro.mitigation.tmr import apply_tmr
from repro.mitigation.selective import apply_selective_tmr, sensitive_cells
from repro.mitigation.raddrc import remove_half_latches
from repro.mitigation.strategy import MitigationStrategy, recommend_strategy

__all__ = [
    "apply_tmr",
    "apply_selective_tmr",
    "sensitive_cells",
    "remove_half_latches",
    "MitigationStrategy",
    "recommend_strategy",
]

"""Persistence-driven mitigation strategy selection.

Paper Table II's closing point: "The persistent configuration bits
ratio is an important parameter that will be used to help the designer
select the appropriate SEU design mitigation strategy."  The rules here
encode the standard trade-offs:

* no persistence -> configuration scrubbing alone restores correctness
  (errors flush with the pipeline);
* modest persistence -> scrubbing plus a reset protocol after repair;
* high persistence or high sensitivity -> TMR (full or selective) so
  state divergence is outvoted instead of requiring resets;
* designs with many critical half-latches need RadDRC regardless.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.seu.campaign import CampaignResult

__all__ = ["MitigationStrategy", "Recommendation", "recommend_strategy"]


class MitigationStrategy(enum.Enum):
    SCRUB_ONLY = "scrubbing only"
    SCRUB_PLUS_RESET = "scrubbing + reset protocol"
    SELECTIVE_TMR = "selective TMR + scrubbing"
    FULL_TMR = "full TMR + scrubbing"


@dataclass(frozen=True)
class Recommendation:
    strategy: MitigationStrategy
    add_raddrc: bool
    rationale: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = " + RadDRC half-latch removal" if self.add_raddrc else ""
        return f"{self.strategy.value}{extra} ({self.rationale})"


def recommend_strategy(
    result: CampaignResult,
    critical_halflatch_fraction: float = 0.0,
    persistence_low: float = 0.02,
    persistence_high: float = 0.30,
    sensitivity_high: float = 0.10,
    halflatch_threshold: float = 0.01,
) -> Recommendation:
    """Recommend a mitigation strategy from campaign statistics."""
    p = result.persistence_ratio
    s = result.sensitivity
    raddrc = critical_halflatch_fraction > halflatch_threshold

    if p <= persistence_low and s < sensitivity_high:
        return Recommendation(
            MitigationStrategy.SCRUB_ONLY,
            raddrc,
            f"persistence {100 * p:.1f}% — errors flush after repair",
        )
    if p <= persistence_high and s < sensitivity_high:
        return Recommendation(
            MitigationStrategy.SCRUB_PLUS_RESET,
            raddrc,
            f"persistence {100 * p:.1f}% — some upsets corrupt state; "
            "reset after each repair",
        )
    if s < sensitivity_high:
        return Recommendation(
            MitigationStrategy.SELECTIVE_TMR,
            raddrc,
            f"persistence {100 * p:.1f}% — protect the feedback core "
            "so state divergence is outvoted",
        )
    return Recommendation(
        MitigationStrategy.FULL_TMR,
        raddrc,
        f"sensitivity {100 * s:.1f}% and persistence {100 * p:.1f}% — "
        "broad cross-section needs full redundancy",
    )

"""Selective TMR over the sensitive cross-section (paper section III-A).

"High correlation between specific locations in the bit stream and
output area helps to characterize the sensitive cross-section of the
design.  Selective Triple Module Redundancy (TMR) or other mitigation
techniques can then be selectively applied to the sensitive cross
section."

:func:`sensitive_cells` attributes a campaign's sensitive bits back to
netlist cells through the placement; :func:`apply_selective_tmr`
triplicates exactly those cells, voting at the boundary where protected
nets feed unprotected logic.
"""

from __future__ import annotations

from repro.designs.spec import DesignSpec
from repro.errors import MitigationError
from repro.netlist.cells import CellKind, LUT_MAJ3
from repro.netlist.netlist import Netlist
from repro.place.flow import HardwareDesign
from repro.seu.campaign import CampaignResult

__all__ = ["sensitive_cells", "apply_selective_tmr"]

_DOMAINS = ("A", "B", "C")


def sensitive_cells(hw: HardwareDesign, result: CampaignResult) -> dict[str, int]:
    """Cell name -> sensitive-bit count attributed to its CLB.

    Attribution is positional: a sensitive bit belongs to the cells
    placed in its CLB (the granularity at which selective hardening is
    applied in practice: you harden a region, not a bit).
    """
    placement = hw.placement
    by_clb: dict[tuple[int, int], int] = {}
    for bit in result.sensitive_bits:
        frame, off = hw.bitstream.locate(int(bit))
        loc = hw.device.classify_bit(frame, off)
        if loc.row >= 0:
            by_clb[(loc.row, loc.col)] = by_clb.get((loc.row, loc.col), 0) + 1
    out: dict[str, int] = {}
    for cell, site in list(placement.lut_site.items()) + list(placement.ff_site.items()):
        out[cell] = max(out.get(cell, 0), by_clb.get((site.row, site.col), 0))
    return out


def apply_selective_tmr(spec: DesignSpec, protect: set[str]) -> DesignSpec:
    """Triplicate only the cells in ``protect``.

    Boundary rules: a protected cell reading an unprotected signal reads
    it directly in all three domains; an unprotected cell reading a
    protected signal reads a majority vote of the three copies.
    Protected FFs vote per domain (as in full TMR) so their state
    self-heals.
    """
    src = spec.netlist
    src.validate()
    for name in protect:
        if name not in src:
            raise MitigationError(f"protected cell {name!r} not in netlist")
        if src.cell(name).kind is CellKind.INPUT:
            raise MitigationError("primary inputs cannot be triplicated")
    nl = Netlist(f"{src.name}_stmr")

    def dname(cell: str, d: str) -> str:
        return f"{cell}__tmr{d}"

    ff_protected = {
        c.name for c in src.cells() if c.kind is CellKind.FF and c.name in protect
    }

    def domain_ref(pin: str, d: str) -> str:
        if pin not in protect:
            return pin
        if pin in ff_protected:
            return f"{pin}__vote{d}"
        return dname(pin, d)

    def boundary_ref(pin: str) -> str:
        """What unprotected logic reads for signal ``pin``."""
        return f"{pin}__outvote" if pin in protect else pin

    for cell in src.cells():
        if cell.kind is CellKind.INPUT:
            nl.add_input(cell.name)
            continue
        if cell.name in protect:
            for d in _DOMAINS:
                if cell.kind is CellKind.CONST:
                    nl.add_const(dname(cell.name, d), cell.value)
                elif cell.kind is CellKind.LUT:
                    nl.add_lut(
                        dname(cell.name, d),
                        cell.table,
                        [domain_ref(p, d) for p in cell.pins],
                    )
                else:
                    pins = [domain_ref(p, d) for p in cell.pins]
                    nl.add_ff(
                        dname(cell.name, d),
                        pins[0],
                        ce=pins[1] if len(pins) > 1 else None,
                        sr=pins[2] if len(pins) > 2 else None,
                        init=cell.init,
                    )
            copies = [dname(cell.name, d) for d in _DOMAINS]
            if cell.name in ff_protected:
                for d in _DOMAINS:
                    nl.add_lut(f"{cell.name}__vote{d}", LUT_MAJ3, copies)
            # Boundary voter for unprotected readers (and outputs).
            nl.add_lut(f"{cell.name}__outvote", LUT_MAJ3, copies)
        else:
            if cell.kind is CellKind.CONST:
                nl.add_const(cell.name, cell.value)
            elif cell.kind is CellKind.LUT:
                nl.add_lut(cell.name, cell.table, [boundary_ref(p) for p in cell.pins])
            else:
                pins = [boundary_ref(p) for p in cell.pins]
                nl.add_ff(
                    cell.name,
                    pins[0],
                    ce=pins[1] if len(pins) > 1 else None,
                    sr=pins[2] if len(pins) > 2 else None,
                    init=cell.init,
                )

    nl.set_outputs([boundary_ref(o) for o in src.outputs])
    nl.validate()
    return DesignSpec(
        name=f"{spec.name} (selective TMR, {len(protect)} cells)",
        netlist=nl,
        family=spec.family,
        size=spec.size,
        feedback=spec.feedback,
    )

"""Triple modular redundancy with per-domain voters.

The XTMR discipline: every cell is triplicated into domains A/B/C; after
every flip-flop, three majority voters (one per domain) vote the three
domain copies, and each domain's downstream logic reads its own voter.
Feedback through voters self-heals single-domain state corruption, so a
TMR'd design under scrubbing has (ideally) zero persistent bits; primary
outputs are voted once more.
"""

from __future__ import annotations

from repro.designs.spec import DesignSpec
from repro.errors import MitigationError
from repro.netlist.cells import CellKind, LUT_MAJ3
from repro.netlist.netlist import Netlist

__all__ = ["apply_tmr"]

_DOMAINS = ("A", "B", "C")


def apply_tmr(spec: DesignSpec) -> DesignSpec:
    """Triplicate a design with per-domain voters after every FF.

    Primary inputs are shared (the SLAAC-1V feeds one stimulus), outputs
    are majority-voted.  Raises if the netlist already uses reserved
    ``__tmr`` names.
    """
    src = spec.netlist
    src.validate()
    nl = Netlist(f"{src.name}_tmr")

    def dname(cell: str, d: str) -> str:
        return f"{cell}__tmr{d}"

    def vname(cell: str, d: str) -> str:
        return f"{cell}__vote{d}"

    for cell in src.cells():
        if "__tmr" in cell.name or "__vote" in cell.name:
            raise MitigationError(f"cell {cell.name!r} collides with TMR naming")

    # Shared inputs.
    for cell in src.cells():
        if cell.kind is CellKind.INPUT:
            nl.add_input(cell.name)

    ff_names = {c.name for c in src.cells() if c.kind is CellKind.FF}

    def domain_ref(pin: str, d: str) -> str:
        """What domain ``d`` reads for source signal ``pin``."""
        src_cell = src.cell(pin)
        if src_cell.kind is CellKind.INPUT:
            return pin
        if pin in ff_names:
            return vname(pin, d)  # FFs are read through the domain voter
        return dname(pin, d)

    for cell in src.cells():
        if cell.kind is CellKind.INPUT:
            continue
        for d in _DOMAINS:
            if cell.kind is CellKind.CONST:
                nl.add_const(dname(cell.name, d), cell.value)
            elif cell.kind is CellKind.LUT:
                nl.add_lut(
                    dname(cell.name, d),
                    cell.table,
                    [domain_ref(p, d) for p in cell.pins],
                )
            elif cell.kind is CellKind.FF:
                pins = [domain_ref(p, d) for p in cell.pins]
                nl.add_ff(
                    dname(cell.name, d),
                    pins[0],
                    ce=pins[1] if len(pins) > 1 else None,
                    sr=pins[2] if len(pins) > 2 else None,
                    init=cell.init,
                )
        if cell.kind is CellKind.FF:
            copies = [dname(cell.name, d) for d in _DOMAINS]
            for d in _DOMAINS:
                nl.add_lut(vname(cell.name, d), LUT_MAJ3, copies)

    outputs = []
    for out in src.outputs:
        copies = [
            domain_ref(out, d) if out in ff_names or src.cell(out).kind is CellKind.INPUT
            else dname(out, d)
            for d in _DOMAINS
        ]
        outputs.append(nl.add_lut(f"{out}__outvote", LUT_MAJ3, copies))
    nl.set_outputs(outputs)
    nl.validate()
    return DesignSpec(
        name=f"{spec.name} (TMR)",
        netlist=nl,
        family=spec.family,
        size=spec.size,
        feedback=spec.feedback,
    )

"""Deterministic chaos injection for the sharded campaign harness.

The paper's premise is a system that keeps producing correct results
while its substrate misbehaves; :mod:`repro.engine.executor` is the
layer that gives the *harness* the same property.  This module makes
that recovery provable rather than assumed: a :class:`ChaosPolicy`
injects worker crashes (``os._exit``), hangs and delays into the worker
entry points, and because every decision is a pure hash of
``(seed, kind, task key, launch index)`` the same spec replays the same
failure schedule on every run — a chaos test is as reproducible as the
sweep it disturbs.

The hard contract (pinned by ``tests/seu/test_recovery.py`` against the
golden-SHA registry): a campaign run under any chaos spec that the
executor survives produces verdict bytes **identical** to the chaos-off
run.  Chaos only ever decides *whether a worker answers*, never *what
it answers* — workers recompute shards deterministically, so retried
and speculative launches reproduce the original bytes.

Spec syntax (the CLI ``--chaos`` test flag)::

    seed=3,crash=0.3,hang=0.2,hang-s=6,delay=0.5,delay-s=0.02,launches=1

``crash``/``hang``/``delay`` are per-launch probabilities; ``hang-s``/
``delay-s`` the injected sleep durations; ``launches`` caps injection
to the first N launches of each task (default 1: every fault is
transient, so a retry or speculative re-execution always recovers —
raise it to model poison shards that fail every attempt).

Three connection-level kinds exercise the distributed backend
(:mod:`repro.engine.distributed`): ``drop`` (the worker abruptly
closes its connection without running the task — the parent must
requeue it), ``partition``/``partition-s`` (the worker goes silent —
no heartbeats, no result — for a window, then resumes) and
``slowlink``/``slowlink-s`` (the result is delayed in transit).  On
the local backend they degrade to the nearest in-host analogue: a
dropped connection is a dead worker (``os._exit``), a partition or a
slow link is a sleep.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

from repro.errors import CampaignError

__all__ = ["ChaosPolicy", "CRASH_EXIT_CODE"]

#: exit status of a chaos-crashed worker (distinguishable from a real
#: segfault's negative signal status in post-mortems)
CRASH_EXIT_CODE = 32


def _uniform(seed: int, kind: str, key: str) -> float:
    """Deterministic uniform draw in [0, 1) for one (kind, key).

    Deliberately launch-independent: whether a task is fault-scheduled
    is a property of the *key*, and ``launches`` alone decides how many
    of its launches suffer the fault — so ``launches=1`` is a transient
    fault every retry survives, and a large ``launches`` is a poison
    shard that fails every attempt (a per-launch redraw could never
    model poison: three independent 30% crashes almost never line up).
    """
    digest = hashlib.sha256(f"{seed}:{kind}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded fault schedule for worker entry points.

    Immutable and built from primitives only, so it pickles across the
    process boundary with the task it disturbs.  ``decide`` is the pure
    schedule (unit-testable in-process); ``apply`` executes it and is
    only ever called inside a worker process — ``crash`` really does
    ``os._exit``.
    """

    seed: int = 0
    crash: float = 0.0  # P(worker dies via os._exit) per launch
    hang: float = 0.0  # P(worker sleeps hang_s before answering)
    hang_s: float = 30.0
    delay: float = 0.0  # P(worker sleeps delay_s before working)
    delay_s: float = 0.05
    drop: float = 0.0  # P(worker drops its connection without running the task)
    partition: float = 0.0  # P(worker goes silent for partition_s, then resumes)
    partition_s: float = 5.0
    slowlink: float = 0.0  # P(result delayed slowlink_s in transit)
    slowlink_s: float = 0.5
    launches: int = 1  # inject only into launch indices < launches

    _FIELDS = {
        "seed": int,
        "crash": float,
        "hang": float,
        "hang_s": float,
        "delay": float,
        "delay_s": float,
        "drop": float,
        "partition": float,
        "partition_s": float,
        "slowlink": float,
        "slowlink_s": float,
        "launches": int,
    }

    def __post_init__(self):
        for name in ("crash", "hang", "drop", "partition", "slowlink", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise CampaignError(f"chaos {name} must be a probability, got {p}")
        if min(self.hang_s, self.delay_s, self.partition_s, self.slowlink_s) < 0:
            raise CampaignError("chaos durations must be >= 0")
        if self.launches < 0:
            raise CampaignError("chaos launches must be >= 0")

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Parse a ``--chaos`` spec string (``key=value`` pairs, comma-sep)."""
        kwargs: dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise CampaignError(f"bad chaos spec item {item!r} (want key=value)")
            key, _, value = item.partition("=")
            key = key.strip().replace("-", "_")
            cast = cls._FIELDS.get(key)
            if cast is None:
                raise CampaignError(
                    f"unknown chaos knob {key!r} (known: {', '.join(sorted(cls._FIELDS))})"
                )
            try:
                kwargs[key] = cast(value.strip())
            except ValueError:
                raise CampaignError(f"bad chaos value {item!r}") from None
        return cls(**kwargs)  # type: ignore[arg-type]

    def decide(self, key: str, launch: int) -> str | None:
        """The pure schedule: ``"crash"``/``"hang"``/``"delay"``/``None``.

        Each kind gets an independent deterministic draw; the most
        destructive one that triggers wins, so raising ``delay`` never
        reshuffles which launches crash.
        """
        if launch >= self.launches:
            return None
        for kind, p in (
            ("crash", self.crash),
            ("hang", self.hang),
            ("drop", self.drop),
            ("partition", self.partition),
            ("slowlink", self.slowlink),
            ("delay", self.delay),
        ):
            if p > 0.0 and _uniform(self.seed, kind, key) < p:
                return kind
        return None

    def apply(self, key: str, launch: int) -> None:
        """Execute the schedule for one launch (worker side; may not return).

        Connection-level kinds degrade to their in-host analogue here
        (a process-pool worker has no connection to drop); the TCP
        worker loop intercepts them before calling this and acts on the
        actual socket instead.
        """
        action = self.decide(key, launch)
        if action in ("crash", "drop"):
            os._exit(CRASH_EXIT_CODE)
        elif action == "hang":
            time.sleep(self.hang_s)
        elif action == "partition":
            time.sleep(self.partition_s)
        elif action == "slowlink":
            time.sleep(self.slowlink_s)
        elif action == "delay":
            time.sleep(self.delay_s)

"""Length-prefixed pickle frame protocol for the TCP executor backend.

One frame = a 4-byte big-endian payload length followed by a pickled
``dict`` with a ``"t"`` type tag.  Both sides of the campaign wire
(:class:`~repro.engine.distributed.TcpBackend` in the parent,
:func:`~repro.engine.distributed.run_worker` in each worker process)
speak only these frames:

========== =============== ====================================================
type       direction       payload
========== =============== ====================================================
hello      worker → server ``worker`` name, ``blobs`` digests already cached
welcome    server → worker ack; campaign-level settings (heartbeat interval)
blob       server → worker one content-addressed blob (``digest``, ``data``)
need_blob  worker → server a task referenced a digest the worker lacks
task       server → worker one ``TaskSpec`` launch (key, fn, args, launch, sid)
result     worker → server ``ok`` + value, or pickled/repr'd error
hb         worker → server liveness beat (``busy``: running task key or None)
bye        server → worker campaign over; drain and disconnect
========== =============== ====================================================

Why pickle and not a schema'd codec: task payloads are arbitrary
Python (numpy shards, fault-model callables) that the local pool
already ships through pickle, and the wire is a trusted loopback/LAN
link between processes the same user started — the same trust model as
``multiprocessing``.  The length prefix caps frames at
:data:`MAX_FRAME` so a corrupt header cannot trigger a giant
allocation.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading

from repro.errors import CampaignError

__all__ = [
    "FrameConn",
    "FrameError",
    "RemoteTaskError",
    "MAX_FRAME",
    "pack_error",
    "unpack_error",
    "parse_hostport",
]

_HEADER = struct.Struct("!I")

#: upper bound on one frame's payload (1 GiB): large enough for any
#: model blob or shard, small enough to reject garbage headers.
MAX_FRAME = 1 << 30

#: how long a started frame may stall mid-read before the connection is
#: declared broken (losing header/payload sync is unrecoverable).
_MIDFRAME_TIMEOUT_S = 60.0


class FrameError(CampaignError):
    """The connection broke mid-frame or sent a malformed frame."""


class RemoteTaskError(CampaignError):
    """A worker-side task failure whose exception could not be pickled."""


def parse_hostport(spec: str, default_port: int = 0) -> tuple[str, int]:
    """Split ``"host:port"`` (port optional) into a bind/connect pair."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        return spec, default_port
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise CampaignError(f"bad address {spec!r} (want HOST:PORT)") from None


def pack_error(err: BaseException) -> dict:
    """Encode a worker-side exception for a ``result`` frame.

    Pickled when possible so the parent re-raises the genuine type
    (retry/quarantine classification keys off ``repr``); otherwise the
    ``repr`` travels and the parent wraps it in :class:`RemoteTaskError`.
    """
    try:
        blob = pickle.dumps(err)
        pickle.loads(blob)  # round-trip check: some exceptions un-pickle badly
        return {"pickled": blob}
    except Exception:  # noqa: BLE001 - any failure falls back to repr
        return {"repr": repr(err)}


def unpack_error(payload: dict) -> BaseException:
    """Decode a ``result`` frame's error back into an exception."""
    blob = payload.get("pickled")
    if blob is not None:
        try:
            err = pickle.loads(blob)
            if isinstance(err, BaseException):
                return err
        except Exception:  # noqa: BLE001 - fall through to repr
            pass
    return RemoteTaskError(payload.get("repr", "unknown remote failure"))


class FrameConn:
    """One framed, thread-safe-for-send connection over a socket.

    ``send`` may be called from several threads (the worker's heartbeat
    thread races its result sender); ``recv`` must stay single-threaded.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._send_lock = threading.Lock()
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP sockets (socketpair tests) don't have the option

    def send(self, msg: dict) -> None:
        payload = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > MAX_FRAME:
            raise FrameError(f"frame too large ({len(payload)} bytes)")
        with self._send_lock:
            self.sock.sendall(_HEADER.pack(len(payload)) + payload)

    def _recv_exact(self, n: int, *, midframe: bool) -> bytes | None:
        """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
        chunks: list[bytes] = []
        got = 0
        while got < n:
            if chunks or midframe:
                # Once a frame has started, a stall is fatal: header and
                # payload must stay in sync or the stream is garbage.
                self.sock.settimeout(_MIDFRAME_TIMEOUT_S)
            try:
                chunk = self.sock.recv(n - got)
            except TimeoutError:
                if chunks or midframe:
                    raise FrameError("connection stalled mid-frame") from None
                raise
            if not chunk:
                if chunks or midframe:
                    raise FrameError("connection closed mid-frame")
                return None
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def recv(self, timeout: float | None = None) -> dict | None:
        """One frame, or ``None`` on clean EOF.

        ``timeout`` bounds the wait for the *start* of a frame
        (``TimeoutError`` when nothing arrives); a started frame is
        always read to completion or declared broken.
        """
        self.sock.settimeout(timeout)
        header = self._recv_exact(_HEADER.size, midframe=False)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise FrameError(f"oversized frame announced ({length} bytes)")
        payload = self._recv_exact(length, midframe=True)
        msg = pickle.loads(payload)
        if not isinstance(msg, dict) or "t" not in msg:
            raise FrameError("malformed frame (expected a typed dict)")
        return msg

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

"""Per-process caches shared by every fault model and executor backend.

Two caches live here:

* The **implemented-design cache**.  Implementing a design (place +
  route + bitgen + decode) is the expensive part of a fault model's
  :meth:`~repro.engine.model.FaultModel.build_context`; several models
  over the same (design, device) — or the same model under several
  configs — must not pay for it repeatedly inside one worker process.
  Under a ``fork`` start method the parent primes the cache
  (:func:`prime_design_cache`) so children inherit the implemented
  design copy-on-write and re-derive nothing.  Keyed by the pickled
  DesignSpec (names alone do not identify scaled suite variants built
  with non-default keyword arguments).  Bounded so a long-lived pool
  sweeping many designs cannot hoard implementations.

* The **content-addressed blob store**.  Executor backends ship the
  pickled fault model to workers exactly once per worker process —
  local pools via the pool initializer (and fork copy-on-write), the
  TCP backend via a one-time upload on worker hello — and every
  :class:`~repro.engine.executor.TaskSpec` carries only the blob's
  SHA-256 digest.  :func:`resolve_blob` is the worker-side lookup; it
  also accepts raw ``bytes`` unchanged so external pools (synchronous
  test executors) that never primed a store keep their historical
  ship-the-blob semantics.
"""

from __future__ import annotations

import hashlib
import pickle

from repro.errors import CampaignError
from repro.place.flow import HardwareDesign, implement

__all__ = [
    "implemented_design",
    "prime_design_cache",
    "BlobMissing",
    "blob_digest",
    "install_blob",
    "install_blobs",
    "known_blobs",
    "resolve_blob",
]


class BlobMissing(CampaignError):
    """A task referenced a content address this process has not installed.

    Carries the digest so a transport worker can request exactly the
    missing blob and retry, instead of failing the shard.
    """

    def __init__(self, digest: str):
        super().__init__(
            f"blob {digest[:12]}… not installed in this process "
            f"(worker started without priming?)"
        )
        self.digest = digest

_MAX_CACHED = 4
_HW_CACHE: dict[tuple[bytes, str], HardwareDesign] = {}


def implemented_design(spec, device_name: str) -> HardwareDesign:
    """Implement ``spec`` on ``device_name``, memoized per process."""
    from repro.fpga import get_device

    key = (pickle.dumps(spec), device_name)
    hw = _HW_CACHE.get(key)
    if hw is None:
        if len(_HW_CACHE) >= _MAX_CACHED:
            _HW_CACHE.clear()
        hw = implement(spec, get_device(device_name))
        _HW_CACHE[key] = hw
    return hw


def prime_design_cache(hw: HardwareDesign) -> None:
    """Seed the cache with an already-implemented design.

    Adapters that hold a :class:`HardwareDesign` call this before
    handing its model to the engine, so the parent (and, under fork,
    every worker) reuses the instance instead of re-implementing.
    """
    key = (pickle.dumps(hw.spec), hw.device.name)
    if key not in _HW_CACHE:
        if len(_HW_CACHE) >= _MAX_CACHED:
            _HW_CACHE.clear()
        _HW_CACHE[key] = hw


# -- content-addressed blob store ----------------------------------------------

_MAX_BLOBS = 8
_BLOB_STORE: dict[str, bytes] = {}


def blob_digest(blob: bytes) -> str:
    """The content address of ``blob`` (hex SHA-256)."""
    return hashlib.sha256(blob).hexdigest()


def install_blob(blob: bytes) -> str:
    """Store ``blob`` under its content address; return the digest."""
    digest = blob_digest(blob)
    if digest not in _BLOB_STORE:
        if len(_BLOB_STORE) >= _MAX_BLOBS:
            _BLOB_STORE.clear()
        _BLOB_STORE[digest] = blob
    return digest


def install_blobs(blobs: dict[str, bytes]) -> None:
    """Bulk-install pre-addressed blobs (pool initializer entry point)."""
    for blob in blobs.values():
        install_blob(blob)


def known_blobs() -> tuple[str, ...]:
    """Digests already present in this process (worker hello payload)."""
    return tuple(_BLOB_STORE)


def resolve_blob(ref: str | bytes) -> bytes:
    """Dereference a blob: a digest hits the store, raw bytes pass through."""
    if isinstance(ref, bytes):
        return ref
    blob = _BLOB_STORE.get(ref)
    if blob is None:
        raise BlobMissing(ref)
    return blob

"""Per-process implemented-design cache shared by every fault model.

Implementing a design (place + route + bitgen + decode) is the
expensive part of a fault model's :meth:`~repro.engine.model.FaultModel.
build_context`; several models over the same (design, device) — or the
same model under several configs — must not pay for it repeatedly
inside one worker process.  Under a ``fork`` start method the parent
primes the cache (:func:`prime_design_cache`) so children inherit the
implemented design copy-on-write and re-derive nothing.

Keyed by the pickled DesignSpec (names alone do not identify scaled
suite variants built with non-default keyword arguments).  Bounded so a
long-lived pool sweeping many designs cannot hoard implementations.
"""

from __future__ import annotations

import pickle

from repro.place.flow import HardwareDesign, implement

__all__ = ["implemented_design", "prime_design_cache"]

_MAX_CACHED = 4
_HW_CACHE: dict[tuple[bytes, str], HardwareDesign] = {}


def implemented_design(spec, device_name: str) -> HardwareDesign:
    """Implement ``spec`` on ``device_name``, memoized per process."""
    from repro.fpga import get_device

    key = (pickle.dumps(spec), device_name)
    hw = _HW_CACHE.get(key)
    if hw is None:
        if len(_HW_CACHE) >= _MAX_CACHED:
            _HW_CACHE.clear()
        hw = implement(spec, get_device(device_name))
        _HW_CACHE[key] = hw
    return hw


def prime_design_cache(hw: HardwareDesign) -> None:
    """Seed the cache with an already-implemented design.

    Adapters that hold a :class:`HardwareDesign` call this before
    handing its model to the engine, so the parent (and, under fork,
    every worker) reuses the instance instead of re-implementing.
    """
    key = (pickle.dumps(hw.spec), hw.device.name)
    if key not in _HW_CACHE:
        if len(_HW_CACHE) >= _MAX_CACHED:
            _HW_CACHE.clear()
        _HW_CACHE[key] = hw

"""Per-process caches shared by every fault model and executor backend.

Two caches live here:

* The **implemented-design cache**.  Implementing a design (place +
  route + bitgen + decode) is the expensive part of a fault model's
  :meth:`~repro.engine.model.FaultModel.build_context`; several models
  over the same (design, device) — or the same model under several
  configs — must not pay for it repeatedly inside one worker process.
  Under a ``fork`` start method the parent primes the cache
  (:func:`prime_design_cache`) so children inherit the implemented
  design copy-on-write and re-derive nothing.  Keyed by the pickled
  DesignSpec (names alone do not identify scaled suite variants built
  with non-default keyword arguments).  Bounded so a long-lived pool
  sweeping many designs cannot hoard implementations.

* The **content-addressed blob store**.  Executor backends ship the
  pickled fault model to workers exactly once per worker process —
  local pools via the pool initializer (and fork copy-on-write), the
  TCP backend via a one-time upload on worker hello — and every
  :class:`~repro.engine.executor.TaskSpec` carries only the blob's
  SHA-256 digest.  :func:`resolve_blob` is the worker-side lookup; it
  also accepts raw ``bytes`` unchanged so external pools (synchronous
  test executors) that never primed a store keep their historical
  ship-the-blob semantics.

* The **content-addressed result cache** (:class:`ResultCache`): a
  disk-backed store of finished sweep verdicts and per-shard worker
  results, keyed by SHA-256 over everything that determines the bytes
  (model blob digest, candidate ids, batch size, engine flags, kernel
  backend — see :func:`content_key`).  A corrupted or truncated entry
  is indistinguishable from a miss — the reader unpickles inside a
  blanket except and recomputes — so the cache can accelerate but
  never change a verdict.  The ambient directory is env-scoped
  (``REPRO_RESULT_CACHE``) so forked *and* spawned workers, and
  distributed ``repro worker`` processes with their own local
  directory, all consult a store before simulating.

* The **golden-pack store**: fast-forward keeps each design's golden
  trace (outputs, address rows, and stride state snapshots) in a
  bounded in-process memo plus, when a result-cache directory is
  ambient, on disk — so every context build after the first skips the
  full-stimulus golden simulation and restores the nearest snapshot
  instead (``REPRO_FAST_FORWARD`` / ``REPRO_SNAPSHOT_STRIDE``).
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import threading
import uuid
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import CampaignError
from repro.place.flow import HardwareDesign, implement

__all__ = [
    "implemented_design",
    "prime_design_cache",
    "BlobMissing",
    "blob_digest",
    "install_blob",
    "install_blobs",
    "known_blobs",
    "resolve_blob",
    "CacheStats",
    "CACHE_STATS",
    "ResultCache",
    "content_key",
    "result_cache",
    "result_cache_scope",
    "fast_forward_enabled",
    "fast_forward_scope",
    "snapshot_stride",
    "cached_golden_pack",
    "store_golden_pack",
]


class BlobMissing(CampaignError):
    """A task referenced a content address this process has not installed.

    Carries the digest so a transport worker can request exactly the
    missing blob and retry, instead of failing the shard.
    """

    def __init__(self, digest: str):
        super().__init__(
            f"blob {digest[:12]}… not installed in this process "
            f"(worker started without priming?)"
        )
        self.digest = digest

_MAX_CACHED = 4
_HW_CACHE: dict[tuple[bytes, str], HardwareDesign] = {}


def implemented_design(spec, device_name: str) -> HardwareDesign:
    """Implement ``spec`` on ``device_name``, memoized per process."""
    from repro.fpga import get_device

    key = (pickle.dumps(spec), device_name)
    hw = _HW_CACHE.get(key)
    if hw is None:
        if len(_HW_CACHE) >= _MAX_CACHED:
            _HW_CACHE.clear()
        hw = implement(spec, get_device(device_name))
        _HW_CACHE[key] = hw
    return hw


def prime_design_cache(hw: HardwareDesign) -> None:
    """Seed the cache with an already-implemented design.

    Adapters that hold a :class:`HardwareDesign` call this before
    handing its model to the engine, so the parent (and, under fork,
    every worker) reuses the instance instead of re-implementing.
    """
    key = (pickle.dumps(hw.spec), hw.device.name)
    if key not in _HW_CACHE:
        if len(_HW_CACHE) >= _MAX_CACHED:
            _HW_CACHE.clear()
        _HW_CACHE[key] = hw


# -- content-addressed blob store ----------------------------------------------

_MAX_BLOBS = 8
_BLOB_STORE: dict[str, bytes] = {}


def blob_digest(blob: bytes) -> str:
    """The content address of ``blob`` (hex SHA-256)."""
    return hashlib.sha256(blob).hexdigest()


def install_blob(blob: bytes) -> str:
    """Store ``blob`` under its content address; return the digest."""
    digest = blob_digest(blob)
    if digest not in _BLOB_STORE:
        if len(_BLOB_STORE) >= _MAX_BLOBS:
            _BLOB_STORE.clear()
        _BLOB_STORE[digest] = blob
    return digest


def install_blobs(blobs: dict[str, bytes]) -> None:
    """Bulk-install pre-addressed blobs (pool initializer entry point)."""
    for blob in blobs.values():
        install_blob(blob)


def known_blobs() -> tuple[str, ...]:
    """Digests already present in this process (worker hello payload)."""
    return tuple(_BLOB_STORE)


def resolve_blob(ref: str | bytes) -> bytes:
    """Dereference a blob: a digest hits the store, raw bytes pass through."""
    if isinstance(ref, bytes):
        return ref
    blob = _BLOB_STORE.get(ref)
    if blob is None:
        raise BlobMissing(ref)
    return blob


# -- content-addressed result cache --------------------------------------------

_ENV_CACHE_DIR = "REPRO_RESULT_CACHE"
_ENV_FAST_FORWARD = "REPRO_FAST_FORWARD"
_ENV_SNAPSHOT_STRIDE = "REPRO_SNAPSHOT_STRIDE"

#: default golden-snapshot spacing (cycles); the expected residual
#: replay is stride/2, so this trades snapshot memory against replay
DEFAULT_SNAPSHOT_STRIDE = 64


@dataclass
class CacheStats:
    """Process-global result-cache counters, snapshot/diffed like
    :class:`~repro.netlist.simulator.KernelCounters` so sweeps fold the
    per-run delta into :class:`~repro.engine.telemetry.CampaignTelemetry`."""

    hits: int = 0
    misses: int = 0
    bytes: int = 0  # pickled bytes served from cache hits

    def snapshot(self) -> tuple[int, int, int]:
        return (self.hits, self.misses, self.bytes)

    def delta(self, since: tuple[int, int, int]) -> tuple[int, int, int]:
        now = self.snapshot()
        return (now[0] - since[0], now[1] - since[1], now[2] - since[2])


CACHE_STATS = CacheStats()


def content_key(*parts: Any) -> str:
    """SHA-256 over a canonical encoding of heterogeneous key parts.

    Accepts ``bytes``, ``str``, ``int``, ``bool``, ``None`` and objects
    with ``tobytes()`` (numpy arrays); every part is length-prefixed so
    adjacent parts cannot alias.
    """
    h = hashlib.sha256()
    for part in parts:
        if part is None:
            enc = b"\x00"
        elif isinstance(part, bytes):
            enc = part
        elif isinstance(part, (str, int, bool)):
            enc = repr(part).encode()
        elif hasattr(part, "tobytes"):
            # Raw bytes alone lose the array's geometry: a (112, 0)
            # stimulus and a (64, 0) one both serialize to b"" (any
            # zero-input design), so the shape/dtype header is part of
            # the content.
            header = repr((getattr(part, "shape", None), str(getattr(part, "dtype", "")))).encode()
            enc = header + part.tobytes()
        else:
            enc = pickle.dumps(part)
        h.update(str(len(enc)).encode())
        h.update(b":")
        h.update(enc)
    return h.hexdigest()


class ResultCache:
    """Disk-backed content-addressed store of pickled results.

    Entries live at ``root/<k[:2]>/<k>.pkl``; writes are atomic (tmp
    file + rename) so a killed run never leaves a truncated entry a
    later run could trust, and *any* read or unpickle failure is a miss
    — corruption can cost a recompute, never a wrong verdict.
    """

    def __init__(self, root: str):
        self.root = str(root)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    def get(self, key: str) -> Any | None:
        try:
            with open(self._path(key), "rb") as f:
                blob = f.read()
            value = pickle.loads(blob)
        except Exception:
            CACHE_STATS.misses += 1
            return None
        CACHE_STATS.hits += 1
        CACHE_STATS.bytes += len(blob)
        return value

    def put(self, key: str, value: Any) -> None:
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            blob = pickle.dumps(value)
            # The suffix must be unique per *writer*, not just per
            # process: two threads of one pid racing the same key would
            # otherwise interleave writes into one tmp file and rename
            # a torn blob into place.
            tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.{uuid.uuid4().hex[:8]}.tmp"
            with open(tmp, "wb") as f:
                f.write(blob)
            os.replace(tmp, path)
        except OSError:
            # A full or read-only cache disk degrades to "no cache".
            pass


def result_cache() -> ResultCache | None:
    """The ambient result cache, or None when caching is off.

    Resolved from ``REPRO_RESULT_CACHE`` at every call so forked and
    spawned workers (which inherit the environment) and scope changes
    all see the same decision.
    """
    raw = os.environ.get(_ENV_CACHE_DIR, "").strip()
    if not raw or raw.lower() == "off":
        return None
    return ResultCache(raw)


@contextlib.contextmanager
def _env_scope(var: str, value: str) -> Iterator[None]:
    # Exported via the environment (not a module global) so fork *and*
    # spawn workers — and `repro worker` children — inherit the scope.
    prev = os.environ.get(var)
    os.environ[var] = value
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = prev


@contextlib.contextmanager
def result_cache_scope(path: str | None) -> Iterator[None]:
    """Scope the ambient result-cache directory (None/'off' disables)."""
    with _env_scope(_ENV_CACHE_DIR, path if path else "off"):
        yield


def fast_forward_enabled() -> bool:
    """Ambient golden-prefix fast-forward toggle (default: on)."""
    return os.environ.get(_ENV_FAST_FORWARD, "1").strip().lower() not in (
        "0",
        "off",
        "false",
    )


def snapshot_stride() -> int:
    """Ambient golden-snapshot stride in cycles (>= 1)."""
    try:
        stride = int(os.environ.get(_ENV_SNAPSHOT_STRIDE, DEFAULT_SNAPSHOT_STRIDE))
    except ValueError:
        stride = DEFAULT_SNAPSHOT_STRIDE
    return max(1, stride)


@contextlib.contextmanager
def fast_forward_scope(enabled: bool, stride: int | None = None) -> Iterator[None]:
    """Scope the fast-forward toggle (and optionally the stride)."""
    with contextlib.ExitStack() as stack:
        stack.enter_context(_env_scope(_ENV_FAST_FORWARD, "1" if enabled else "0"))
        if stride is not None:
            stack.enter_context(_env_scope(_ENV_SNAPSHOT_STRIDE, str(stride)))
        yield


# -- golden-pack store ---------------------------------------------------------

_MAX_PACKS = 4
_PACK_MEMO: dict[str, Any] = {}


def cached_golden_pack(key: str) -> Any | None:
    """A previously stored golden pack: in-process memo, then disk."""
    pack = _PACK_MEMO.get(key)
    if pack is not None:
        return pack
    store = result_cache()
    if store is None:
        return None
    pack = store.get("golden-" + key)
    if pack is not None:
        if len(_PACK_MEMO) >= _MAX_PACKS:
            _PACK_MEMO.clear()
        _PACK_MEMO[key] = pack
    return pack


def store_golden_pack(key: str, pack: Any) -> None:
    """Memoize a golden pack (and persist it when a cache dir is ambient)."""
    if len(_PACK_MEMO) >= _MAX_PACKS:
        _PACK_MEMO.clear()
    _PACK_MEMO[key] = pack
    store = result_cache()
    if store is not None:
        store.put("golden-" + key, pack)

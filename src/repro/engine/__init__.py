"""Fault-model-agnostic campaign engine: one inject/observe/repair loop.

The paper's Figure 8 loop — enumerate fault candidates, pre-filter the
provably harmless ones, inject the survivors into a running design,
observe, classify — is the same loop whether the fault class is a
configuration SEU, a multi-bit upset, hidden half-latch state, or a
permanent defect hunted by BIST.  This package owns that loop once:

* :class:`~repro.engine.model.FaultModel` is the protocol a fault class
  implements — candidate enumeration, structural pre-filter, patch
  derivation, batch observation, verdict classification;
* :func:`~repro.engine.sweep.run_serial` and
  :func:`~repro.engine.sweep.run_sharded` are the drivers — they own
  batching, warm-state context, multi-process sharding with the
  ``jobs=N`` byte-identity contract, batch-aligned checkpoint/resume,
  partial-result merging and :class:`CampaignTelemetry`;
* :mod:`~repro.engine.detect` holds the vectorised detect-only kernel
  (bit-packed output comparison, early exit) shared by every
  detect-classify fault model;
* :class:`~repro.engine.executor.ShardExecutor` owns the failure
  surface of sharded runs — retry with backoff, pool rebuild on worker
  death, speculative re-execution of stragglers, poison-shard
  quarantine — governed by an ambient
  :class:`~repro.engine.executor.ExecutorPolicy`, with
  :class:`~repro.engine.chaos.ChaosPolicy` as the deterministic fault
  injector that proves the recovery paths;
* :mod:`~repro.engine.backends` defines the
  :class:`~repro.engine.backends.ExecutorBackend` transport protocol
  the executor drives — :class:`~repro.engine.backends.LocalPoolBackend`
  wraps the process pool, :class:`~repro.engine.distributed.TcpBackend`
  fans shards out to ``repro worker`` processes over sockets with
  work-stealing assignment and elastic membership.

Domain packages (:mod:`repro.seu`, :mod:`repro.bist`) define thin
adapters: a :class:`FaultModel` subclass plus a public function that
preserves the historical API and result types.
"""

from repro.engine.backends import (
    ExecutorBackend,
    LocalPoolBackend,
    TaskDone,
    TaskFailed,
    WorkerJoined,
    WorkerLeft,
    WorkersLost,
    make_backend,
)
from repro.engine.cache import (
    BlobMissing,
    implemented_design,
    install_blob,
    prime_design_cache,
    resolve_blob,
)
from repro.engine.chaos import ChaosPolicy
from repro.engine.detect import detect_disturbed_outputs, detect_failures
from repro.engine.executor import (
    ExecutorPolicy,
    ShardExecutor,
    TaskSpec,
    executor_policy,
    get_executor_policy,
)
from repro.engine.model import (
    CODE_FAIL,
    CODE_NO_EFFECT,
    CODE_NOT_TESTED,
    CODE_SKIP_CONE,
    CODE_SKIP_STRUCTURAL,
    CODE_SKIP_UNADDRESSED,
    FaultModel,
)
from repro.engine.sweep import (
    SweepResult,
    default_jobs,
    load_sweep,
    merge_sweeps,
    resume_sweep,
    run_serial,
    run_sharded,
    run_sweep,
    save_sweep,
    shard_survivors,
)
from repro.engine.telemetry import CampaignTelemetry

__all__ = [
    "CODE_NOT_TESTED",
    "CODE_SKIP_STRUCTURAL",
    "CODE_SKIP_CONE",
    "CODE_SKIP_UNADDRESSED",
    "CODE_NO_EFFECT",
    "CODE_FAIL",
    "FaultModel",
    "CampaignTelemetry",
    "SweepResult",
    "ChaosPolicy",
    "ExecutorPolicy",
    "ShardExecutor",
    "TaskSpec",
    "executor_policy",
    "get_executor_policy",
    "run_serial",
    "run_sharded",
    "run_sweep",
    "resume_sweep",
    "merge_sweeps",
    "save_sweep",
    "load_sweep",
    "shard_survivors",
    "default_jobs",
    "detect_failures",
    "detect_disturbed_outputs",
    "implemented_design",
    "prime_design_cache",
    "ExecutorBackend",
    "LocalPoolBackend",
    "make_backend",
    "TaskDone",
    "TaskFailed",
    "WorkersLost",
    "WorkerJoined",
    "WorkerLeft",
    "BlobMissing",
    "install_blob",
    "resolve_blob",
]

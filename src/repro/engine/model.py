"""The fault-model protocol the campaign engine drives.

A fault model answers four questions — *what* could break
(:meth:`FaultModel.enumerate_candidates`), *which* candidates provably
cannot matter (:meth:`FaultModel.prefilter`), *how* a candidate perturbs
the hardware (:meth:`FaultModel.patch_for`), and *what* an observation
means (:meth:`FaultModel.classify`).  Everything else — batching,
process sharding, checkpoint/resume, merging, telemetry — is the
engine's job and identical across fault classes.

Verdict-code convention (uint8, stored per candidate id):

========================  ====================================================
``CODE_NOT_TESTED`` (0)   outside the candidate set / pre-filter survivor
                          awaiting simulation
``CODE_SKIP_*`` (1-3)     pre-filter skip classes; the engine aggregates them
                          into the telemetry skip counters, so models should
                          reuse these three codes for their skip rules
codes >= 4                simulated outcomes, model-defined
                          (``CODE_NO_EFFECT``/``CODE_FAIL`` are the common
                          detect-only pair)
========================  ====================================================

Models must be **picklable** (they are shipped to worker processes) and
cheap to pickle: heavy per-process state — an implemented design, a
golden trace, a warm-state snapshot — is derived in
:meth:`FaultModel.build_context`, which the engine calls once per
process and caches (see :mod:`repro.engine.cache` for the shared
implemented-design cache).
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar

import numpy as np

__all__ = [
    "CODE_NOT_TESTED",
    "CODE_SKIP_STRUCTURAL",
    "CODE_SKIP_CONE",
    "CODE_SKIP_UNADDRESSED",
    "CODE_NO_EFFECT",
    "CODE_FAIL",
    "FaultModel",
    "default_patch_signature",
]

#: candidate not (yet) tested — also the pre-filter "survivor" code
CODE_NOT_TESTED = 0
#: skip: the fault does not alter the modeled hardware
CODE_SKIP_STRUCTURAL = 1
#: skip: the alteration cannot reach an observable output
CODE_SKIP_CONE = 2
#: skip: the altered entry is never exercised by the reference run
CODE_SKIP_UNADDRESSED = 3
#: simulated; no output ever deviated
CODE_NO_EFFECT = 4
#: simulated; an output error was observed
CODE_FAIL = 5


def default_patch_signature(patch: Any) -> Any:
    """Canonical hashable signature of a ``patch_for`` result, or None.

    ``None`` means "not collapsible" — the engine always simulates such
    a candidate itself.  Handles the shapes the bundled fault models
    produce: a single :class:`~repro.netlist.compiled.Patch`, a
    tuple/list of them (BIST variant pairs), and plain hashable scalars.
    A container propagates ``None`` from any element (one opaque member
    makes the whole candidate opaque).
    """
    from repro.netlist.compiled import Patch

    if patch is None:
        return None
    if isinstance(patch, Patch):
        return ("patch", patch.signature())
    if isinstance(patch, (tuple, list)):
        parts = []
        for p in patch:
            sig = default_patch_signature(p)
            if sig is None:
                return None
            parts.append(sig)
        return ("seq", tuple(parts))
    if isinstance(patch, (int, str, bytes, bool)):
        return ("raw", patch)
    return None


class FaultModel(abc.ABC):
    """One fault class, as seen by the campaign engine.

    The engine guarantees the *determinism contract* on the model's
    behalf: candidates are pre-filtered in candidate order, survivors
    are grouped into consecutive ``batch_size`` batches, and shards cut
    only at batch boundaries — so any ``jobs=N`` produces the batches
    (and therefore verdicts) of ``jobs=1``.  A model only has to keep
    its own methods deterministic per candidate.
    """

    #: short identifier recorded in checkpoints ("seu", "mbu", ...)
    name: ClassVar[str] = "fault"

    #: opt out of fault collapsing entirely (e.g. models whose payloads
    #: depend on more than the patch); the engine then simulates every
    #: survivor itself regardless of the driver's ``collapse`` flag
    collapsible: ClassVar[bool] = True

    @abc.abstractmethod
    def key(self) -> str:
        """Identity string for checkpoint validation.

        Two model instances with equal keys must produce identical
        sweeps; resume refuses a checkpoint whose key differs.
        """

    @abc.abstractmethod
    def space_size(self) -> int:
        """Length of the verdict array (> every candidate id)."""

    @abc.abstractmethod
    def enumerate_candidates(self) -> np.ndarray:
        """All candidate ids, int64, in sweep order."""

    @abc.abstractmethod
    def build_context(self) -> Any:
        """Derive the heavy per-process state (once per process).

        Must be deterministic: every process derives an equivalent
        context from the pickled model alone.
        """

    def prefilter(self, candidate: int, ctx: Any) -> tuple[int, Any | None]:
        """Structural pre-filter for one candidate.

        Returns ``(skip_code, None)`` with ``skip_code`` in
        ``CODE_SKIP_*`` when the candidate provably cannot produce an
        observable error, or ``(CODE_NOT_TESTED, payload)`` when it
        must be simulated.  A non-``None`` payload is reused as the
        candidate's patch on the serial path (sharded workers re-derive
        it with :meth:`patch_for` — payloads never cross processes).
        """
        return CODE_NOT_TESTED, None

    @abc.abstractmethod
    def patch_for(self, candidate: int, ctx: Any) -> Any:
        """The candidate's hardware perturbation (simulator patch)."""

    @abc.abstractmethod
    def observe_batch(self, ctx: Any, pending: list[tuple[int, Any]]) -> list[Any]:
        """Simulate one batch of ``(candidate, patch)`` survivors.

        Returns one observation per entry, aligned with ``pending``.
        Batch composition alone may influence marginal observations
        (settle passes, active-node closure) — the engine guarantees
        composition is identical for every worker count.
        """

    @abc.abstractmethod
    def classify(self, observation: Any) -> int:
        """Map one observation to its verdict code (>= 4)."""

    # -- fault collapsing ---------------------------------------------------
    #
    # A candidate's observation is a pure function of (its patch, the
    # batch-level simulation parameters its original batch would have
    # derived).  Collapsing exploits this: candidates with equal
    # signatures AND equal *salts* (the derived batch parameters, e.g.
    # auto-detected settle passes) form one equivalence class; the
    # engine simulates a single representative per class — grouped with
    # same-salt representatives and forced to that salt via
    # ``observe_collapsed`` — and fans the observation out.

    def collapse_signature(self, candidate: int, ctx: Any, patch: Any) -> Any:
        """Hashable equivalence-class key of this candidate's patch.

        ``None`` opts the candidate out (it is always simulated).  The
        default derives it from the patch itself; override only when
        the observation depends on more than the patch.
        """
        return default_patch_signature(patch)

    def collapse_salt_datum(self, candidate: int, ctx: Any, patch: Any) -> Any:
        """Per-candidate input to :meth:`collapse_salt` (picklable)."""
        return None

    def collapse_salt(self, ctx: Any, data: list[Any]) -> Any:
        """Batch-level simulation parameters a naive batch would derive.

        ``data`` holds the :meth:`collapse_salt_datum` of every survivor
        the naive engine would have grouped into one batch.  The return
        value must be hashable; representatives are regrouped per salt
        and simulated via :meth:`observe_collapsed` with the salt forced,
        so regrouping cannot change any observation.  ``None`` (default)
        says observations are batch-composition independent.
        """
        return None

    def observe_collapsed(self, ctx: Any, pending: list[tuple[int, Any]], salt: Any) -> list[Any]:
        """Simulate one batch of collapse-class representatives.

        ``salt`` is the :meth:`collapse_salt` every entry's original
        batch would have derived; implementations must force their
        batch-level parameters to it instead of re-deriving them from
        this (regrouped) batch.  The default ignores the salt — correct
        only for models whose :meth:`collapse_salt` is constant.
        """
        return self.observe_batch(ctx, pending)

    # -- golden-prefix fast-forward ----------------------------------------

    def fast_forward_cycle(self) -> int | None:
        """Cycle before which every candidate machine is golden.

        Models whose faults land at a known injection instant (SEU, MBU,
        half-latch: the warmup boundary) return it, and their context
        build may then start from the nearest golden state snapshot
        instead of replaying the fault-free prefix from cycle 0 — the
        restored state is byte-identical, so verdicts are too.  ``None``
        (default) opts out, like :attr:`collapsible` — models that
        observe the whole run (correlation, BIST) keep replaying.
        """
        return None

    def payload(self, observation: Any) -> np.ndarray | None:
        """Optional rich per-candidate result to retain beside the code.

        Non-``None`` values are collected into
        :attr:`~repro.engine.sweep.SweepResult.payloads`; they must be
        equal-shape numpy arrays for the sweep to be checkpointable
        (they are stacked into one block on save).  The default keeps
        nothing.
        """
        return None

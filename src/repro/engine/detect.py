"""Vectorised detect-only observation kernels.

The detect phase of every non-repairing sweep — MBU trials, half-latch
upsets, BIST configurations — is the same loop: step the batch in
lock-step with a reference output trace and remember who deviated.
These kernels share the tricks of
:meth:`~repro.netlist.simulator.BatchSimulator.run_verdicts`: outputs
are packed into uint64 words so the per-cycle health check is a handful
of word compares per machine, and the loop exits early once every
machine has failed.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.simulator import KERNEL_COUNTERS, BatchSimulator

__all__ = ["detect_failures", "detect_disturbed_outputs"]


def _packed_reference(ref_outputs: np.ndarray, cycles: int, n_out: int):
    """Pack the reference trace into (cycles, W) uint64 words."""
    n_bytes = (n_out + 7) // 8
    n_words = max(1, (n_bytes + 7) // 8)
    padded = np.zeros((cycles, n_words * 8), dtype=np.uint8)
    if n_out:
        padded[:, :n_bytes] = np.packbits(ref_outputs[:cycles], axis=1)
    return padded.view(np.uint64), n_bytes, n_words


def detect_failures(
    sim: BatchSimulator,
    stimulus: np.ndarray,
    ref_outputs: np.ndarray,
    cycles: int,
    retire: bool = False,
) -> np.ndarray:
    """Boolean per machine: did any output deviate within ``cycles``?

    ``ref_outputs`` is the golden ``(>= cycles, n_outputs)`` trace
    aligned with ``stimulus``.  The failure flag latches on the first
    mismatch; the loop exits early once every machine has failed.

    With ``retire=True``, machines whose flag has latched are compacted
    out of the batch mid-run (their remaining trajectory cannot change
    the result), so per-cycle cost tracks still-healthy machines.  The
    returned array is always indexed by *original* batch slot and is
    byte-identical to the ``retire=False`` result.
    """
    n_out = sim.design.n_outputs
    ref_words, n_bytes, n_words = _packed_reference(ref_outputs, cycles, n_out)
    out_padded = np.zeros((sim.B, n_words * 8), dtype=np.uint8)
    out_words = out_padded.view(np.uint64)
    n_total = sim.B
    failed = np.zeros(n_total, dtype=bool)
    retired_at = np.full(n_total, -1, dtype=np.int64)
    t_exit = cycles - 1
    for t in range(cycles):
        out = sim.step(stimulus[t])
        if n_out:
            out_padded[:, :n_bytes] = np.packbits(out, axis=1)
        mism = np.any(out_words != ref_words[t][None, :], axis=1)
        failed[sim.batch_slots[mism]] = True
        # All latched: nothing left to learn.  Checked before compaction
        # so a batch is never compacted down to zero machines.
        if failed.all():
            t_exit = t
            break
        if retire:
            dead = failed[sim.batch_slots]
            n_dead = int(np.count_nonzero(dead))
            # Hysteresis: rebuilding the gather caches costs a few
            # batch-cycles, so only shrink once enough machines latched.
            if n_dead >= max(8, sim.B // 4):
                retired_at[sim.batch_slots[dead]] = t
                sim.compact(np.flatnonzero(~dead))
                out_padded = np.zeros((sim.B, n_words * 8), dtype=np.uint8)
                out_words = out_padded.view(np.uint64)
    if retire:
        dropped = retired_at >= 0
        KERNEL_COUNTERS.machine_cycles_saved += int(
            np.sum(t_exit - retired_at[dropped])
        )
    return failed


def detect_disturbed_outputs(
    sim: BatchSimulator, stimulus: np.ndarray, ref_outputs: np.ndarray, cycles: int
) -> np.ndarray:
    """Per-machine boolean mask over outputs: which ever deviated.

    No early exit — the disturbed set keeps accumulating over the full
    window (the correlation-table observation of paper section III-A).
    """
    disturbed = np.zeros((sim.B, sim.design.n_outputs), dtype=bool)
    for t in range(cycles):
        out = sim.step(stimulus[t])
        disturbed |= out != ref_outputs[t][None, :]
    return disturbed

"""Vectorised detect-only observation kernels.

The detect phase of every non-repairing sweep — MBU trials, half-latch
upsets, BIST configurations — is the same loop: step the batch in
lock-step with a reference output trace and remember who deviated.
These kernels share the tricks of
:meth:`~repro.netlist.simulator.BatchSimulator.run_verdicts`: outputs
are packed into uint64 words so the per-cycle health check is a handful
of word compares per machine, and the loop exits early once every
machine has failed.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.simulator import BatchSimulator

__all__ = ["detect_failures", "detect_disturbed_outputs"]


def _packed_reference(ref_outputs: np.ndarray, cycles: int, n_out: int):
    """Pack the reference trace into (cycles, W) uint64 words."""
    n_bytes = (n_out + 7) // 8
    n_words = max(1, (n_bytes + 7) // 8)
    padded = np.zeros((cycles, n_words * 8), dtype=np.uint8)
    if n_out:
        padded[:, :n_bytes] = np.packbits(ref_outputs[:cycles], axis=1)
    return padded.view(np.uint64), n_bytes, n_words


def detect_failures(
    sim: BatchSimulator, stimulus: np.ndarray, ref_outputs: np.ndarray, cycles: int
) -> np.ndarray:
    """Boolean per machine: did any output deviate within ``cycles``?

    ``ref_outputs`` is the golden ``(>= cycles, n_outputs)`` trace
    aligned with ``stimulus``.  The failure flag latches on the first
    mismatch; the loop exits early once every machine has failed.
    """
    n_out = sim.design.n_outputs
    ref_words, n_bytes, n_words = _packed_reference(ref_outputs, cycles, n_out)
    out_padded = np.zeros((sim.B, n_words * 8), dtype=np.uint8)
    out_words = out_padded.view(np.uint64)
    failed = np.zeros(sim.B, dtype=bool)
    for t in range(cycles):
        out = sim.step(stimulus[t])
        if n_out:
            out_padded[:, :n_bytes] = np.packbits(out, axis=1)
        failed |= np.any(out_words != ref_words[t][None, :], axis=1)
        if failed.all():
            break
    return failed


def detect_disturbed_outputs(
    sim: BatchSimulator, stimulus: np.ndarray, ref_outputs: np.ndarray, cycles: int
) -> np.ndarray:
    """Per-machine boolean mask over outputs: which ever deviated.

    No early exit — the disturbed set keeps accumulating over the full
    window (the correlation-table observation of paper section III-A).
    """
    disturbed = np.zeros((sim.B, sim.design.n_outputs), dtype=bool)
    for t in range(cycles):
        out = sim.step(stimulus[t])
        disturbed |= out != ref_outputs[t][None, :]
    return disturbed

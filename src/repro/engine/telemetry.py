"""Throughput record shared by every campaign engine run.

Historically defined in :mod:`repro.seu.campaign` (and still re-exported
there); the engine owns it now so every fault model — SEU, MBU,
half-latch, BIST coverage — emits the same ``BENCH_*.json`` row schema.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_right
from dataclasses import dataclass, field

__all__ = ["CampaignTelemetry", "HIST_EDGES_SECONDS"]

#: log-spaced bucket upper edges (seconds) for the per-stage timing
#: histograms; a final open bucket catches everything slower.  Spanning
#: 1 ms to 100 s covers one simulator batch on a toy design up to one
#: whole shard of a large sweep.
HIST_EDGES_SECONDS: tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
)


@dataclass
class CampaignTelemetry:
    """Throughput record of one campaign run (the perf-tracking contract).

    Emitted by the engine drivers (:func:`repro.engine.run_serial`,
    :func:`repro.engine.run_sharded`) and therefore by every adapter
    built on them; the benchmark harness serialises it into
    ``BENCH_*.json`` so the throughput trajectory (bits/sec, µs/bit) is
    tracked across revisions.  Worker phase timings are summed CPU
    seconds; ``wall_seconds`` is the parent's wall clock.

    ``n_candidates`` counts whatever the fault model enumerates —
    configuration bits, trial sets, hidden-state nodes, hard faults —
    so ``bits_per_sec`` reads as candidates/sec for non-SEU models.

    The campaign-shrinker counters: ``n_collapsed`` is how many
    simulation survivors rode along as *followers* of a collapse-class
    representative (they count in ``n_simulated`` but cost no batch
    slot); ``machines_retired`` / ``batch_compactions`` /
    ``machine_cycles_saved`` aggregate the kernel's fault-dropping
    statistics (machines sealed mid-run, compaction events, and
    machine-cycles never simulated because of them).
    """

    n_candidates: int = 0
    n_simulated: int = 0
    n_batches: int = 0
    skip_structural: int = 0
    skip_cone: int = 0
    skip_unaddressed: int = 0
    n_collapsed: int = 0
    machines_retired: int = 0
    batch_compactions: int = 0
    machine_cycles_saved: int = 0
    # Golden-prefix fast-forward: machine-cycles never replayed because
    # a context build restored a golden snapshot (or served the whole
    # golden run from the pack store) instead of simulating from cycle 0.
    ff_cycles_skipped: int = 0
    # Content-addressed result cache (repro.engine.cache.ResultCache):
    # entries served / recomputed during this run, and the pickled bytes
    # the hits avoided recomputing.  Parent-process counters — hits
    # inside remote TCP workers accelerate the run but are counted in
    # the worker's own process.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes: int = 0
    prefilter_seconds: float = 0.0
    simulate_seconds: float = 0.0
    checkpoint_seconds: float = 0.0
    wall_seconds: float = 0.0
    jobs: int = 1
    # Kernel backend the run resolved to (reference / bitplane /
    # bitplane-jit); verdict-invariant, recorded so BENCH_*.json rows
    # and trace spans say which engine produced the throughput numbers.
    backend: str = "reference"
    # Recovery counters (sharded runs; see repro.engine.executor): how
    # often the executor retried a failed shard, launched a speculative
    # duplicate of a stalled one (and how often the duplicate won),
    # rebuilt a broken worker pool, and how many shards it quarantined.
    # ``candidates_quarantined`` counts candidates dropped from the
    # result because their shard was quarantined (under collapse this
    # includes resolved stragglers past the foldable prefix).
    shard_retries: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    pool_rebuilds: int = 0
    shards_quarantined: int = 0
    candidates_quarantined: int = 0
    # Distributed-execution counters (transport backends; see
    # repro.engine.backends): worker membership churn, shards executed
    # by a worker other than the one the round-robin plan intended
    # (work stealing), shards requeued because their worker vanished
    # mid-flight, and results that arrived after their task was already
    # resolved or quarantined (drained and logged, never silently
    # dropped).  ``worker_tasks`` maps worker name (or pid) to how many
    # task results it delivered.
    workers_joined: int = 0
    workers_left: int = 0
    dist_steals: int = 0
    dist_requeues: int = 0
    late_results: int = 0
    worker_tasks: dict[str, int] = field(default_factory=dict)
    # Per-stage timing histograms over HIST_EDGES_SECONDS (one extra
    # open bucket at the end).  Empty list = nothing recorded; kept as
    # plain lists so to_dict()/save/load round-trip them untouched.
    batch_seconds_hist: list[int] = field(default_factory=list)
    shard_seconds_hist: list[int] = field(default_factory=list)

    @staticmethod
    def _bucket(seconds: float) -> int:
        return bisect_right(HIST_EDGES_SECONDS, seconds)

    def _record(self, hist: list[int], seconds: float) -> None:
        if not hist:
            hist.extend([0] * (len(HIST_EDGES_SECONDS) + 1))
        hist[self._bucket(seconds)] += 1

    def record_batch_seconds(self, seconds: float) -> None:
        """Fold one simulator-batch duration into the batch histogram."""
        self._record(self.batch_seconds_hist, float(seconds))

    def record_shard_seconds(self, seconds: float) -> None:
        """Fold one completed-shard duration into the shard histogram."""
        self._record(self.shard_seconds_hist, float(seconds))

    @staticmethod
    def merge_hist(into: list[int], other: list[int]) -> None:
        """Accumulate ``other`` into ``into`` (sizing ``into`` lazily)."""
        if not other:
            return
        if not into:
            into.extend([0] * len(other))
        for i, n in enumerate(other):
            into[i] += int(n)

    @property
    def n_skipped(self) -> int:
        return self.skip_structural + self.skip_cone + self.skip_unaddressed

    @property
    def skip_rate(self) -> float:
        """Fraction of candidates the structural pre-filter absorbed."""
        return self.n_skipped / self.n_candidates if self.n_candidates else 0.0

    @property
    def bits_per_sec(self) -> float:
        return self.n_candidates / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def us_per_bit(self) -> float:
        return 1e6 * self.wall_seconds / self.n_candidates if self.n_candidates else 0.0

    @property
    def collapse_rate(self) -> float:
        """Fraction of simulation survivors that rode along as followers."""
        return self.n_collapsed / self.n_simulated if self.n_simulated else 0.0

    @property
    def retire_rate(self) -> float:
        """Fraction of simulation survivors sealed and dropped mid-run."""
        return self.machines_retired / self.n_simulated if self.n_simulated else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of result-cache lookups served without simulating."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-ready record (the ``BENCH_*.json`` row schema)."""
        d = dataclasses.asdict(self)
        d["bits_per_sec"] = self.bits_per_sec
        d["us_per_bit"] = self.us_per_bit
        d["skip_rate"] = self.skip_rate
        d["collapse_rate"] = self.collapse_rate
        d["retire_rate"] = self.retire_rate
        d["cache_hit_rate"] = self.cache_hit_rate
        return d

    def summary(self) -> str:
        return (
            f"{self.bits_per_sec:,.0f} bits/s ({self.us_per_bit:.1f} us/bit), "
            f"{100 * self.skip_rate:.1f}% pre-filtered, "
            f"{self.n_simulated} simulated in {self.n_batches} batches "
            f"({100 * self.collapse_rate:.1f}% collapsed, "
            f"{100 * self.retire_rate:.1f}% retired), "
            f"jobs={self.jobs}, backend={self.backend}"
        )

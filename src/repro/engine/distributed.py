"""Elastic multi-host executor backend over TCP with work stealing.

The paper's fault manager drives nine FPGAs from one controller; this
module gives the campaign engine the same shape: one parent process
(:class:`TcpBackend`) listening on a socket, any number of worker
processes (``repro worker --connect HOST:PORT``) that join, execute
shards, and leave — all behind the
:class:`~repro.engine.backends.ExecutorBackend` protocol, so every
recovery feature of :class:`~repro.engine.executor.ShardExecutor`
(retry, speculation, quarantine, suspect attribution) works unchanged.

Design points:

* **Work stealing, not static assignment.**  Submitted shards go into
  one shared deque; an idle worker pulls the next shard whenever it
  reports for work.  A round-robin *intended owner* is stamped on each
  shard at enqueue time purely for accounting: when a different worker
  ends up executing it (because the intended one was busy, slow, or
  gone), that completion counts as a *steal* — the signature of the
  pull model absorbing imbalance.  A worker that connects mid-campaign
  simply starts pulling (and therefore stealing) with no rebalancing
  step; verdict bytes cannot change because shard content never
  depends on which worker runs it.

* **Elastic join/leave.**  Workers say hello with the content
  addresses they already hold; the parent uploads only missing blobs
  (the pickled fault model crosses the wire once per worker per
  campaign, not once per shard).  A worker that disconnects — process
  death, network drop, heartbeat silence past ``worker_timeout_s`` —
  surfaces as :class:`~repro.engine.backends.WorkersLost` with its
  in-flight shard, which the executor requeues; the batch-aligned
  checkpoint contract makes the re-execution byte-identical.

* **Heartbeats are transport messages.**  Each worker sends ``hb``
  frames; the parent folds them into the same
  :class:`~repro.obs.heartbeat.ShardTracker` stream local runs use, so
  the straggler detector and speculative re-execution see no
  difference between a slow pool worker and a slow remote host.

* **Threads, not asyncio.**  The parent runs one accept thread plus
  one blocking-I/O thread per worker connection; worker counts are
  tens, not thousands, and blocking frames keep the protocol code
  synchronous and testable.  All shared state sits behind one lock;
  events cross to the executor through :meth:`TcpBackend.poll`.
"""

from __future__ import annotations

import collections
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.engine.backends import TaskDone, TaskFailed, WorkerJoined, WorkerLeft, WorkersLost
from repro.engine.cache import BlobMissing, blob_digest, install_blob, known_blobs
from repro.engine.transport import (
    FrameConn,
    FrameError,
    pack_error,
    parse_hostport,
    unpack_error,
)
from repro.errors import CampaignError

__all__ = ["TcpBackend", "run_worker"]


@dataclass
class _QueuedTask:
    """One shard waiting in the shared deque."""

    sid: int
    key: str
    frame: dict  # the ready-to-send task frame
    owner: str | None  # round-robin intended worker (steal accounting)


@dataclass
class _WorkerState:
    """Parent-side view of one connected worker."""

    name: str
    conn: FrameConn
    busy: _QueuedTask | None = None
    last_heard: float = field(default_factory=time.monotonic)
    sent_blobs: set[str] = field(default_factory=set)
    done: int = 0
    timed_out: bool = False


class TcpBackend:
    """The parent side of the TCP transport (an ``ExecutorBackend``)."""

    name = "tcp"

    def __init__(
        self,
        listen: str = "127.0.0.1:0",
        *,
        min_workers: int = 1,
        worker_timeout_s: float = 30.0,
        join_timeout_s: float = 60.0,
        announce: str | None = None,
    ):
        host, port = parse_hostport(listen)
        self.min_workers = max(1, int(min_workers))
        self.worker_timeout_s = float(worker_timeout_s)
        self.join_timeout_s = float(join_timeout_s)
        self.hb_interval_s = max(0.2, min(1.0, self.worker_timeout_s / 5.0))
        self._srv = socket.create_server((host, port))
        bound_host, bound_port = self._srv.getsockname()[:2]
        self.address = f"{bound_host}:{bound_port}"
        if announce:
            tmp = f"{announce}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(self.address + "\n")
            os.replace(tmp, announce)

        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._events: collections.deque = collections.deque()
        self._queue: collections.deque[_QueuedTask] = collections.deque()
        self._workers: dict[str, _WorkerState] = {}
        self._blobs: dict[str, bytes] = {}
        self._abandoned: set[int] = set()
        self._late: dict[int, TaskDone] = {}
        self._closing = False
        self._gated = False  # min_workers barrier passed
        self._rr = 0  # round-robin cursor for intended-owner stamping
        self._threads: list[threading.Thread] = []
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-tcp-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)

    # -- server threads -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _addr = self._srv.accept()
            except OSError:
                return  # listener closed by close()
            handler = threading.Thread(
                target=self._serve_worker, args=(FrameConn(sock),),
                name="repro-tcp-worker", daemon=True,
            )
            handler.start()
            self._threads.append(handler)

    def _emit(self, *events: Any) -> None:
        with self._lock:
            self._events.extend(events)
        self._wake.set()

    def _serve_worker(self, conn: FrameConn) -> None:
        """One connection's lifetime: hello → pull/execute loop → loss."""
        worker: _WorkerState | None = None
        try:
            hello = conn.recv(timeout=10.0)
            if hello is None or hello.get("t") != "hello":
                conn.close()
                return
            base = str(hello.get("worker", "worker"))
            with self._lock:
                name = base
                n = 1
                while name in self._workers:  # reconnect before cleanup, or a twin
                    n += 1
                    name = f"{base}#{n}"
                worker = _WorkerState(name=name, conn=conn)
                worker.sent_blobs = set(hello.get("blobs", ()))
                self._workers[name] = worker
                missing = [d for d in self._blobs if d not in worker.sent_blobs]
            conn.send({"t": "welcome", "worker": name, "hb_s": self.hb_interval_s})
            for digest in missing:
                conn.send({"t": "blob", "digest": digest, "data": self._blobs[digest]})
                worker.sent_blobs.add(digest)
            self._emit(WorkerJoined(worker=name))
            while not self._closing:
                task: _QueuedTask | None = None
                with self._lock:
                    if worker.busy is None and self._queue:
                        task = self._queue.popleft()
                        worker.busy = task
                if task is not None:
                    conn.send(task.frame)
                try:
                    msg = conn.recv(timeout=0.2)
                except TimeoutError:
                    continue
                if msg is None:
                    return  # clean disconnect; finally-block does the loss path
                worker.last_heard = time.monotonic()
                kind = msg.get("t")
                if kind == "result":
                    self._finish(worker, msg)
                elif kind == "need_blob":
                    digest = msg.get("digest", "")
                    data = self._blobs.get(digest)
                    if data is not None:
                        conn.send({"t": "blob", "digest": digest, "data": data})
                # "hb" needs nothing beyond the last_heard update above
        except (FrameError, OSError, CampaignError):
            pass  # connection-level failure: fall through to the loss path
        finally:
            conn.close()
            if worker is not None:
                self._lose_worker(worker)

    def _finish(self, worker: _WorkerState, msg: dict) -> None:
        task = worker.busy
        sid = int(msg.get("sid", -1))
        if task is None or task.sid != sid:
            return  # stale result (e.g. from before an abandon); drop
        worker.busy = None
        worker.done += 1
        stolen = task.owner is not None and task.owner != worker.name
        if msg.get("ok"):
            ev: Any = TaskDone(
                sid=sid, result=msg.get("value"), worker=worker.name, stolen=stolen
            )
        else:
            ev = TaskFailed(sid=sid, error=unpack_error(msg.get("error") or {}))
        self._emit(ev)

    def _lose_worker(self, worker: _WorkerState) -> None:
        with self._lock:
            registered = self._workers.get(worker.name) is worker
            if registered:
                del self._workers[worker.name]
            task = worker.busy
            worker.busy = None
        if not registered:
            return
        reason = "heartbeat timeout" if worker.timed_out else "disconnect"
        events: list[Any] = []
        if not self._closing:
            events.append(WorkerLeft(worker=worker.name, reason=reason))
            if task is not None and task.sid not in self._abandoned:
                events.append(
                    WorkersLost(
                        sids=(task.sid,),
                        error=f"worker {worker.name} lost mid-shard ({reason})",
                        worker=worker.name,
                    )
                )
        if events:
            self._emit(*events)

    def _check_liveness(self) -> None:
        now = time.monotonic()
        with self._lock:
            stale = [
                w for w in self._workers.values()
                if now - w.last_heard > self.worker_timeout_s
            ]
        for worker in stale:
            worker.timed_out = True
            # Closing the socket bounces the handler thread out of its
            # recv loop; the handler runs the loss path exactly once.
            worker.conn.close()

    # -- ExecutorBackend protocol ---------------------------------------------

    def blob_ref(self, blob: bytes) -> str:
        digest = install_blob(blob)  # parent store too: the collapse
        # grouping path resolves the model context in-process
        with self._lock:
            self._blobs[digest] = blob
            workers = list(self._workers.values())
        for worker in workers:
            if digest not in worker.sent_blobs:
                try:
                    worker.conn.send({"t": "blob", "digest": digest, "data": blob})
                    worker.sent_blobs.add(digest)
                except (FrameError, OSError):
                    pass  # dying connection; the loss path handles it
        return digest

    def _await_workers(self) -> None:
        deadline = time.monotonic() + self.join_timeout_s
        while True:
            with self._lock:
                joined = len(self._workers)
            if joined >= self.min_workers:
                self._gated = True
                return
            if time.monotonic() > deadline:
                raise CampaignError(
                    f"only {joined}/{self.min_workers} worker(s) joined "
                    f"{self.address} within {self.join_timeout_s:.0f}s — start "
                    f"workers with `repro worker --connect {self.address}`"
                )
            self._wake.wait(0.2)
            self._wake.clear()

    def submit(self, sid: int, spec, launch: int, chaos) -> None:
        if not self._gated:
            self._await_workers()
        frame = {
            "t": "task",
            "sid": sid,
            "key": spec.key,
            "launch": launch,
            "fn": spec.fn,
            "args": spec.args,
            "chaos": chaos,
        }
        with self._lock:
            names = sorted(self._workers)
            owner = names[self._rr % len(names)] if names else None
            self._rr += 1
            self._queue.append(_QueuedTask(sid=sid, key=spec.key, frame=frame, owner=owner))
        self._wake.set()

    def poll(self, timeout: float) -> list:
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            self._check_liveness()
            with self._lock:
                if self._events:
                    events = list(self._events)
                    self._events.clear()
                    return events
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return []
            self._wake.wait(min(remaining, 0.2))
            self._wake.clear()

    def abandon(self, sids: Iterable[int]) -> None:
        wanted = set(sids)
        if not wanted:
            return
        with self._lock:
            self._abandoned.update(wanted)
            kept = [t for t in self._queue if t.sid not in wanted]
            if len(kept) != len(self._queue):
                self._queue.clear()
                self._queue.extend(kept)

    def census(self) -> frozenset:
        with self._lock:
            return frozenset(self._workers)

    def census_detail(self) -> dict[str, dict]:
        now = time.monotonic()
        with self._lock:
            return {
                name: {
                    "busy": w.busy.key if w.busy is not None else None,
                    "done": w.done,
                    "heard_s_ago": round(now - w.last_heard, 3),
                }
                for name, w in sorted(self._workers.items())
            }

    def close(self) -> None:
        self._closing = True
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            try:
                worker.conn.send({"t": "bye"})
            except (FrameError, OSError):
                pass
        try:
            self._srv.close()
        except OSError:
            pass
        for worker in workers:
            worker.conn.close()
        for thread in self._threads:
            thread.join(timeout=2.0)


# -- the worker process --------------------------------------------------------


class _Bye(Exception):
    """Server ended the campaign."""


class _Reconnect(Exception):
    """This connection is done; reconnect (chaos drop, stale socket)."""


class _WorkerLoop:
    """One worker process's state across connections."""

    def __init__(self, name: str, hb_interval_s: float):
        self.name = name
        self.hb_interval_s = hb_interval_s
        self.busy_key: str | None = None
        self.partition_until = 0.0  # chaos partition: heartbeats withheld until then

    def _heartbeats(self, conn: FrameConn, stop: threading.Event) -> None:
        while not stop.is_set():
            if time.monotonic() >= self.partition_until:
                try:
                    conn.send({"t": "hb", "worker": self.name, "busy": self.busy_key})
                except (FrameError, OSError):
                    return  # main loop will notice the dead socket
            stop.wait(self.hb_interval_s)

    def _run_fn(self, conn: FrameConn, fn, args):
        """Run the task, fetching at most one missing blob on demand."""
        try:
            return fn(*args)
        except BlobMissing as miss:
            conn.send({"t": "need_blob", "digest": miss.digest})
            deadline = time.monotonic() + 30.0
            while True:
                if time.monotonic() > deadline:
                    raise
                try:
                    reply = conn.recv(timeout=5.0)
                except TimeoutError:
                    continue
                if reply is None:
                    raise _Reconnect from None
                kind = reply.get("t")
                if kind == "blob":
                    install_blob(reply["data"])
                    if blob_digest(reply["data"]) == miss.digest:
                        break
                elif kind == "bye":
                    raise _Bye from None
            return fn(*args)

    def _execute(self, conn: FrameConn, msg: dict) -> None:
        sid, key, launch = msg["sid"], msg["key"], msg["launch"]
        chaos = msg.get("chaos")
        send_delay = 0.0
        if chaos is not None:
            action = chaos.decide(key, launch)
            if action == "drop":
                # Abrupt connection loss without answering: the parent
                # requeues the shard on another (or the returning) worker.
                conn.close()
                raise _Reconnect
            if action == "partition":
                # Go silent — no heartbeats, result withheld — for the
                # window, then resume; the parent sees a straggler (or,
                # past worker_timeout_s, a lost worker).
                self.partition_until = time.monotonic() + chaos.partition_s
            elif action == "slowlink":
                send_delay = chaos.slowlink_s
            elif action is not None:
                chaos.apply(key, launch)  # crash / hang / delay, in-process
        self.busy_key = key
        try:
            try:
                value = self._run_fn(conn, msg["fn"], msg["args"])
            except (_Bye, _Reconnect):
                raise
            except BaseException as err:  # noqa: BLE001 - shipped to the parent
                reply = {"t": "result", "sid": sid, "ok": False, "error": pack_error(err)}
            else:
                reply = {"t": "result", "sid": sid, "ok": True, "value": value}
            wait_s = self.partition_until - time.monotonic()
            if wait_s > 0:
                time.sleep(wait_s)
            if send_delay:
                time.sleep(send_delay)
            conn.send(reply)
        finally:
            self.busy_key = None

    def serve(self, conn: FrameConn) -> bool:
        """One connection: returns True on ``bye``, False to reconnect."""
        conn.send({"t": "hello", "worker": self.name, "blobs": list(known_blobs())})
        welcome = conn.recv(timeout=10.0)
        if welcome is None or welcome.get("t") != "welcome":
            return False
        self.hb_interval_s = float(welcome.get("hb_s", self.hb_interval_s))
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeats, args=(conn, stop),
            name="repro-worker-hb", daemon=True,
        )
        beat.start()
        try:
            while True:
                try:
                    msg = conn.recv(timeout=1.0)
                except TimeoutError:
                    continue
                if msg is None:
                    return False
                kind = msg.get("t")
                if kind == "task":
                    self._execute(conn, msg)
                elif kind == "blob":
                    install_blob(msg["data"])
                elif kind == "bye":
                    return True
        except _Bye:
            return True
        except _Reconnect:
            return False
        finally:
            stop.set()
            beat.join(timeout=2.0)


def _resolve_connect(spec: str) -> tuple[str, int] | None:
    """``HOST:PORT`` or ``@FILE`` (an announce file; None until readable)."""
    if spec.startswith("@"):
        try:
            with open(spec[1:], "r", encoding="utf-8") as fh:
                content = fh.read().strip()
        except OSError:
            return None
        if not content:
            return None
        return parse_hostport(content)
    return parse_hostport(spec)


def _never_joined_message(connect: str, addr, waited: float) -> str:
    """Why a worker's first join failed — name the thing still missing."""
    if connect.startswith("@"):
        path = connect[1:]
        if addr is None:
            return (
                f"no coordinator announced in {path!r} within {waited:g}s — "
                f"check that a campaign is running with `--executor tcp "
                f"--announce {path}` (or pass --join-timeout to wait longer)"
            )
        return (
            f"coordinator {addr[0]}:{addr[1]} (announced in {path!r}) refused "
            f"connections for {waited:g}s — it may have exited; remove the "
            f"stale announce file or restart the campaign"
        )
    return (
        f"no coordinator accepted at {connect!r} within {waited:g}s — "
        f"check the address and that a campaign is running with "
        f"`--executor tcp --listen {connect}`"
    )


def run_worker(
    connect: str,
    *,
    persist: bool = False,
    hb_interval_s: float = 1.0,
    connect_timeout_s: float = 60.0,
    join_timeout_s: float | None = None,
    name: str | None = None,
) -> int:
    """A campaign worker process: join, pull shards, execute, repeat.

    ``connect`` is ``HOST:PORT`` or ``@FILE`` (poll an announce file
    written by ``--listen ... --announce FILE`` — re-read on every
    reconnect, so a persistent worker follows a parent across
    campaigns and ephemeral ports).  Returns 0 when the parent says
    ``bye`` (or, with ``persist``, keeps rejoining until no parent
    appears within ``connect_timeout_s``).

    ``join_timeout_s`` bounds the *first* join: if the worker has never
    connected within that window it raises :class:`CampaignError`
    naming the address (or the announce file still being polled) so a
    typo'd ``@PATH`` fails loudly instead of timing out in silence.
    Without it, first-join expiry returns exit code 1, also with a
    diagnostic on stderr.
    """
    loop = _WorkerLoop(
        name or f"{socket.gethostname()}-{os.getpid()}", hb_interval_s
    )
    connected_once = False
    deadline = time.monotonic() + connect_timeout_s
    join_deadline = (
        None if join_timeout_s is None else time.monotonic() + join_timeout_s
    )
    while True:
        addr = _resolve_connect(connect)
        sock = None
        if addr is not None:
            try:
                sock = socket.create_connection(addr, timeout=5.0)
            except OSError:
                sock = None
        if sock is None:
            now = time.monotonic()
            if not connected_once:
                expired = (
                    join_deadline is not None and now > join_deadline
                ) or now > deadline
                if expired:
                    waited = (
                        join_timeout_s if join_deadline is not None else connect_timeout_s
                    )
                    raise CampaignError(_never_joined_message(connect, addr, waited))
            elif now > deadline:
                return 0
            time.sleep(0.2)
            continue
        connected_once = True
        conn = FrameConn(sock)
        try:
            done = loop.serve(conn)
        except (FrameError, OSError, TimeoutError):
            done = False
        finally:
            conn.close()
        if done and not persist:
            return 0
        # Dropped mid-campaign, or persistent across campaigns: rejoin.
        deadline = time.monotonic() + connect_timeout_s
        time.sleep(0.1)

"""Pluggable executor backends behind :class:`~repro.engine.executor.ShardExecutor`.

The executor's recovery machinery (retry/backoff, speculation, poison
quarantine, launch-recency suspect attribution) is transport-agnostic:
it reasons about *submission ids* and *events*, never about futures or
sockets.  A backend owns the transport:

* :class:`LocalPoolBackend` — the historical in-host
  ``ProcessPoolExecutor`` (or a caller-supplied external pool), with
  the model blob hoisted out of per-shard args into a per-worker
  initializer cache so pool rebuilds re-prime it exactly once;
* :class:`~repro.engine.distributed.TcpBackend` — multi-host workers
  over a length-prefixed pickle frame protocol with work-stealing
  assignment and elastic join/leave.

The contract: :meth:`~ExecutorBackend.submit` enqueues one launch under
a caller-chosen submission id (sid); :meth:`~ExecutorBackend.poll`
blocks up to a timeout and returns the events that happened — task
completions and failures, worker-set changes, and worker losses that
invalidated in-flight sids.  Losing a worker is an *event*, never an
exception: the executor decides whether the casualties retry,
speculate or quarantine, identically on every backend.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Executor, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Protocol, runtime_checkable

from repro.engine.cache import install_blob, install_blobs
from repro.errors import CampaignError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.chaos import ChaosPolicy
    from repro.engine.executor import ExecutorPolicy, TaskSpec

__all__ = [
    "ExecutorBackend",
    "TaskDone",
    "TaskFailed",
    "WorkersLost",
    "WorkerJoined",
    "WorkerLeft",
    "LocalPoolBackend",
    "make_backend",
]


# -- backend events ------------------------------------------------------------


@dataclass(frozen=True)
class TaskDone:
    """One submission finished with a value."""

    sid: int
    result: Any
    worker: str | None = None  # executing worker's name (transports that know)
    stolen: bool = False  # executed by a different worker than first intended


@dataclass(frozen=True)
class TaskFailed:
    """One submission raised in the worker (the worker survived)."""

    sid: int
    error: BaseException


@dataclass(frozen=True)
class WorkersLost:
    """Worker death invalidated in-flight submissions.

    ``sids`` are the casualties (requeue/retry is the executor's call).
    ``rebuilt`` means the backend already replaced the capacity (local
    pool rebuild); ``fatal`` means it cannot (external pool) and the
    campaign must abort.
    """

    sids: tuple[int, ...]
    error: str
    worker: str | None = None
    rebuilt: bool = False
    fatal: bool = False


@dataclass(frozen=True)
class WorkerJoined:
    worker: str


@dataclass(frozen=True)
class WorkerLeft:
    worker: str
    reason: str = "disconnect"


# -- the protocol --------------------------------------------------------------


@runtime_checkable
class ExecutorBackend(Protocol):
    """What :class:`ShardExecutor` needs from a transport."""

    name: str

    def blob_ref(self, blob: bytes) -> str | bytes:
        """Register a shared blob; return the ref task args should carry."""
        ...

    def submit(self, sid: int, spec: "TaskSpec", launch: int, chaos: "ChaosPolicy | None") -> None:
        """Enqueue one launch of ``spec`` under submission id ``sid``."""
        ...

    def poll(self, timeout: float) -> list[Any]:
        """Block up to ``timeout`` seconds; return the events that occurred."""
        ...

    def abandon(self, sids: Iterable[int]) -> None:
        """Mark sids whose results no longer matter (loser duplicates,
        quarantined hangs): drop them from queues, and never report
        their loss as a worker casualty."""
        ...

    def census(self) -> frozenset:
        """The live worker set (pids locally, worker names over TCP)."""
        ...

    def census_detail(self) -> dict[str, dict]:
        """Per-worker liveness detail for heartbeat events."""
        ...

    def close(self) -> None:
        """Tear the transport down (hard if abandoned work is wedged)."""
        ...


# -- local process pool --------------------------------------------------------


def _run_task(chaos: "ChaosPolicy", key: str, launch: int, fn, args):
    """Worker entry wrapper: apply the chaos schedule, then do the work."""
    chaos.apply(key, launch)
    return fn(*args)


def _worker_pids(pool: Executor | None) -> frozenset[int]:
    procs = getattr(pool, "_processes", None)
    return frozenset(procs.keys()) if procs else frozenset()


def _hard_shutdown(pool: Executor) -> None:
    """Tear a pool down without waiting on hung or abandoned workers."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except (OSError, ValueError):
            pass
    for proc in procs:
        try:
            proc.join(5)
        except (OSError, ValueError, AssertionError):
            pass


@dataclass
class _PendingRebuild:
    events: list = field(default_factory=list)


class LocalPoolBackend:
    """The in-host backend: an owned ``ProcessPoolExecutor`` or an
    external caller-supplied pool.

    Owned pools are built lazily (first submit) with an initializer
    that installs every registered blob into the worker-side
    content-addressed store — so the model blob crosses the process
    boundary once per worker, not once per shard, and a rebuild after
    ``BrokenProcessPool`` re-primes the fresh workers exactly once.
    External pools cannot run initializers, so :meth:`blob_ref` falls
    back to handing the raw bytes to every task (the historical
    semantics synchronous test executors rely on).
    """

    name = "local"

    def __init__(self, jobs: int, pool: Executor | None = None):
        self.jobs = int(jobs)
        self._external = pool is not None
        self._pool: Executor | None = pool
        self._blobs: dict[str, bytes] = {}
        self._futures: dict[Future, int] = {}  # in-flight future -> sid
        self._abandoned: dict[Future, int] = {}  # abandoned but maybe completing
        self._pending: list = []  # events queued by submit-time breaks

    # -- pool management --

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=install_blobs,
                initargs=(dict(self._blobs),),
            )
        return self._pool

    def _break(self, err: BaseException, extra_sids: tuple[int, ...] = ()) -> None:
        """Handle ``BrokenProcessPool``: rebuild (own) or declare fatal.

        ``extra_sids`` are casualties already popped from the in-flight
        map by the caller (futures that surfaced the break themselves).
        """
        sids = extra_sids + tuple(self._futures.values())
        self._futures.clear()
        # Abandoned futures died with the pool: no late result will ever
        # arrive, and their tasks are already resolved or quarantined.
        self._abandoned.clear()
        if self._external:
            self._pending.append(WorkersLost(sids=sids, error=repr(err), fatal=True))
            return
        dead, self._pool = self._pool, None
        if dead is not None:
            dead.shutdown(wait=False, cancel_futures=True)
        self._pending.append(WorkersLost(sids=sids, error=repr(err), rebuilt=True))
        self._ensure_pool()

    # -- protocol --

    def blob_ref(self, blob: bytes) -> str | bytes:
        if self._external:
            return blob
        digest = install_blob(blob)  # parent store: fork children inherit CoW
        self._blobs[digest] = blob
        return digest

    def submit(self, sid: int, spec, launch: int, chaos) -> None:
        pool = self._ensure_pool()

        def do() -> Future:
            if chaos is not None:
                return pool.submit(_run_task, chaos, spec.key, launch, spec.fn, spec.args)
            return pool.submit(spec.fn, *spec.args)

        try:
            fut = do()
        except BrokenProcessPool as err:
            # The pool died before accepting this launch (e.g. an
            # abandoned speculative worker crashed between drain
            # rounds).  Rebuild, charge the in-flight casualties — this
            # launch was never accepted, so it is not one — and submit
            # to the fresh pool.
            self._break(err)
            if self._external:
                return  # fatal WorkersLost already queued; poll reports it
            pool = self._ensure_pool()
            fut = do()
        self._futures[fut] = sid

    def poll(self, timeout: float) -> list:
        events, self._pending = self._pending, []
        waitset = set(self._futures) | set(self._abandoned)
        if not waitset:
            if not events and timeout > 0:
                time.sleep(min(timeout, 0.1) or 0.01)
            return events
        done, _ = wait(waitset, timeout=0.0 if events else timeout, return_when=FIRST_COMPLETED)
        broken: BaseException | None = None
        broken_sids: list[int] = []
        for fut in done:
            abandoned = False
            sid = self._futures.pop(fut, None)
            if sid is None:
                sid = self._abandoned.pop(fut, None)
                abandoned = True
                if sid is None:
                    continue
            try:
                result = fut.result()
            except BrokenProcessPool as err:
                broken = err
                if not abandoned:
                    broken_sids.append(sid)
                continue
            except CampaignError:
                raise
            except BaseException as err:  # noqa: BLE001 - worker failure, event
                events.append(TaskFailed(sid, err))
                continue
            events.append(TaskDone(sid, result))
        if broken is not None:
            self._break(broken, extra_sids=tuple(broken_sids))
            events.extend(self._pending)
            self._pending = []
        return events

    def abandon(self, sids: Iterable[int]) -> None:
        wanted = set(sids)
        for fut, sid in list(self._futures.items()):
            if sid in wanted:
                del self._futures[fut]
                if not fut.cancel():
                    self._abandoned[fut] = sid

    def census(self) -> frozenset:
        return _worker_pids(self._pool)

    def census_detail(self) -> dict[str, dict]:
        return {str(pid): {} for pid in sorted(self.census())}

    def close(self) -> None:
        if self._external or self._pool is None:
            return
        if any(not fut.done() for fut in self._abandoned):
            _hard_shutdown(self._pool)
        else:
            self._pool.shutdown(wait=True, cancel_futures=True)


# -- registry ------------------------------------------------------------------


def make_backend(
    spec: "ExecutorBackend | str | None",
    policy: "ExecutorPolicy",
    jobs: int,
    pool: Executor | None = None,
) -> "ExecutorBackend":
    """Resolve a backend choice: an instance is used as-is, a name is
    constructed from ``policy``, ``None`` falls back to
    ``policy.transport`` (default ``"local"``)."""
    if spec is None:
        spec = policy.transport
    if not isinstance(spec, str):
        return spec
    if spec == "local":
        return LocalPoolBackend(jobs, pool=pool)
    if spec == "tcp":
        from repro.engine.distributed import TcpBackend

        return TcpBackend(
            policy.listen or "127.0.0.1:0",
            min_workers=policy.min_workers or 1,
            worker_timeout_s=policy.worker_timeout_s,
            join_timeout_s=policy.join_timeout_s,
            announce=policy.announce,
        )
    raise CampaignError(f"unknown executor backend {spec!r} (known: local, tcp)")

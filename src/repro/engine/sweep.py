"""The generic campaign drivers: serial and sharded, one contract.

Lifted from the single-bit SEU engine (``repro.seu.campaign`` /
``repro.seu.parallel``) and generalised over
:class:`~repro.engine.model.FaultModel`, so every fault class gets the
same machinery:

**Determinism contract.** ``jobs=N`` produces verdicts *byte-identical*
to ``jobs=1``.  Batch composition may decide marginal observations (the
active-node closure and settle-pass count are per-batch), so sharding
must not change which candidates share a batch.  The sharded driver
therefore runs in two phases:

1. **Pre-filter** — candidates are split into contiguous chunks and
   classified in parallel (:meth:`FaultModel.prefilter` is a pure
   per-candidate function, so any split is safe).  Survivors are
   collected in candidate order.
2. **Observe** — the survivor sequence is cut into contiguous shards
   whose sizes are multiples of ``batch_size`` (only the global tail
   shard may be ragged).  Grouping each shard into consecutive
   ``batch_size`` blocks then reproduces exactly the serial loop's
   batches, so every batch simulates with the same companions it would
   have had under ``jobs=1``.

**Checkpoint/resume.** Checkpoints are cut only at whole-batch
boundaries — the serial loop defers a due snapshot until its pending
batch flushes, and the sharded parent folds each completed shard (a
whole number of batches) into the checkpoint — so the un-swept
remainder always re-groups into the *same* batches on resume, and a
killed sweep resumes to the byte-identical result.  Serial and sharded
runs resume each other's checkpoints.

**Fault collapsing.** Candidates whose patches configure identical
hardware produce identical observations — *if* they simulate under the
batch-level parameters their naive batch would have derived (settle
passes auto-detect per batch, so a candidate's observation is a pure
function of ``(patch, salt)`` where the *salt* is
:meth:`FaultModel.collapse_salt` over its naive batch).  With
``collapse=True`` (the default, honoured only when the model is
:attr:`~repro.engine.model.FaultModel.collapsible`) the drivers still
walk survivors in naive ``batch_size`` groups to derive each
candidate's salt, but only simulate one *representative* per
``(salt, signature)`` class — grouped with same-salt representatives
and simulated via :meth:`FaultModel.observe_collapsed` with the salt
forced — and fan the observation out to the class.  Verdicts are
byte-identical to ``collapse=False`` for any ``jobs``; checkpoints are
still cut only at naive-batch boundaries (with every pending
representative flushed first), so resume re-derives the same salts and
a follower whose representative was checkpointed simply becomes the
representative of its class in the remainder.

Workers re-derive the model context **once per process** and cache it;
under a ``fork`` start method the parent pre-populates the cache so
children inherit it copy-on-write and re-derive nothing.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import CampaignError
from repro.engine.cache import (
    CACHE_STATS,
    blob_digest,
    content_key,
    resolve_blob,
    result_cache,
)
from repro.engine.model import (
    CODE_NOT_TESTED,
    CODE_SKIP_CONE,
    CODE_SKIP_STRUCTURAL,
    CODE_SKIP_UNADDRESSED,
    FaultModel,
)
from repro.engine.executor import (
    ExecutorPolicy,
    ShardExecutor,
    TaskSpec,
    get_executor_policy,
)
from repro.engine.telemetry import CampaignTelemetry
from repro.netlist.backends import resolve_backend
from repro.netlist.simulator import KERNEL_COUNTERS
from repro.obs import get_observer

# Emit a kernel-counter sample into the trace every this many simulator
# batches (traced runs only).
_COUNTER_SAMPLE_BATCHES = 16

__all__ = [
    "SweepResult",
    "run_serial",
    "run_sharded",
    "run_sweep",
    "resume_sweep",
    "merge_sweeps",
    "save_sweep",
    "load_sweep",
    "shard_survivors",
    "default_jobs",
]


def default_jobs() -> int:
    """CPU-count-aware default worker count.

    Respects the process's CPU affinity mask where the platform exposes
    it (``os.sched_getaffinity``), so a cgroup/container-limited run —
    CI pinned to 2 cores on a 64-core host — shards for the CPUs it may
    actually use instead of oversubscribing.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # platforms without affinity masks
        return max(1, os.cpu_count() or 1)


@dataclass
class SweepResult:
    """Aggregate of one engine sweep (fault-model-agnostic).

    ``verdicts`` is the dense per-candidate-id code array
    (:mod:`repro.engine.model` conventions); ``payloads`` holds the
    optional rich observations some models retain (e.g. the
    correlation table's per-bit output masks).
    """

    model_name: str
    model_key: str
    n_space: int
    verdicts: np.ndarray  # (n_space,) uint8 verdict codes
    candidate_ids: np.ndarray  # int64 ids swept (sorted after merge)
    n_simulated: int = 0
    host_seconds: float = 0.0
    telemetry: CampaignTelemetry | None = None
    payloads: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def n_candidates(self) -> int:
        return int(self.candidate_ids.size)

    def count(self, code: int) -> int:
        """Number of candidates that received verdict ``code``."""
        return int(np.count_nonzero(self.verdicts == code))

    def ids_with(self, code: int) -> np.ndarray:
        """Candidate ids that received verdict ``code``."""
        return np.flatnonzero(self.verdicts == code)


# -- merge / persistence -------------------------------------------------------


def merge_sweeps(parts: list[SweepResult]) -> SweepResult:
    """Combine sweeps over disjoint candidate sets into one result.

    Supports chunked or parallel execution: split the candidate space,
    run each chunk (possibly in separate processes), merge.  Model keys
    must match; candidate sets must not overlap.
    """
    if not parts:
        raise CampaignError("nothing to merge")
    first = parts[0]
    verdicts = first.verdicts.copy()
    candidates = [first.candidate_ids]
    seen = set(int(c) for c in first.candidate_ids)
    n_sim = first.n_simulated
    host = first.host_seconds
    payloads = dict(first.payloads)
    for part in parts[1:]:
        if part.model_key != first.model_key:
            raise CampaignError(
                f"cannot merge sweeps of different models "
                f"({part.model_key!r} vs {first.model_key!r})"
            )
        overlap = seen.intersection(int(c) for c in part.candidate_ids)
        if overlap:
            raise CampaignError(
                f"candidate sets overlap ({len(overlap)} ids, e.g. {min(overlap)})"
            )
        seen.update(int(c) for c in part.candidate_ids)
        mask = part.verdicts != CODE_NOT_TESTED
        verdicts[mask] = part.verdicts[mask]
        candidates.append(part.candidate_ids)
        n_sim += part.n_simulated
        host += part.host_seconds
        payloads.update(part.payloads)
    merged_ids = np.sort(np.concatenate(candidates))
    return SweepResult(
        model_name=first.model_name,
        model_key=first.model_key,
        n_space=first.n_space,
        verdicts=verdicts,
        candidate_ids=merged_ids,
        n_simulated=n_sim,
        host_seconds=host,
        payloads=payloads,
    )


def save_sweep(sweep: SweepResult, path: str) -> None:
    """Persist a (possibly partial) sweep to ``path`` (.npz), atomically.

    Payloads must be equal-shape arrays (they are stacked into one
    block).  The write is tmp-file + rename, so a sweep killed while
    checkpointing never leaves a truncated snapshot behind.
    """
    payload = dict(
        model_name=np.str_(sweep.model_name),
        model_key=np.str_(sweep.model_key),
        n_space=np.int64(sweep.n_space),
        verdicts=sweep.verdicts,
        candidate_ids=sweep.candidate_ids,
        n_simulated=np.int64(sweep.n_simulated),
        host_seconds=np.float64(sweep.host_seconds),
    )
    if sweep.telemetry is not None:
        payload["telemetry_json"] = np.str_(json.dumps(sweep.telemetry.to_dict()))
    if sweep.payloads:
        ids = np.array(sorted(sweep.payloads), dtype=np.int64)
        payload["payload_ids"] = ids
        payload["payload_values"] = np.stack([sweep.payloads[int(i)] for i in ids])
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        np.savez_compressed(f, **payload)
    os.replace(tmp, path)


def load_sweep(path: str) -> SweepResult:
    """Load a sweep / checkpoint written by :func:`save_sweep`."""
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as err:
        raise CampaignError(f"cannot load sweep checkpoint {path!r}: {err}") from None
    telemetry = None
    if "telemetry_json" in data:
        fields = {f.name for f in dataclasses.fields(CampaignTelemetry)}
        raw = json.loads(str(data["telemetry_json"]))
        telemetry = CampaignTelemetry(**{k: v for k, v in raw.items() if k in fields})
    payloads: dict[int, np.ndarray] = {}
    if "payload_ids" in data:
        values = data["payload_values"]
        payloads = {int(i): values[k] for k, i in enumerate(data["payload_ids"])}
    return SweepResult(
        model_name=str(data["model_name"]),
        model_key=str(data["model_key"]),
        n_space=int(data["n_space"]),
        verdicts=data["verdicts"],
        candidate_ids=data["candidate_ids"],
        n_simulated=int(data["n_simulated"]),
        host_seconds=float(data["host_seconds"]),
        telemetry=telemetry,
        payloads=payloads,
    )


# -- serial driver -------------------------------------------------------------


def _sweep_cache_key(
    model: FaultModel, candidates: np.ndarray, batch_size: int, collapse: bool
) -> str:
    """Content address of one whole sweep's verdicts.

    Keyed on everything that can change a byte of the result: the fault
    model's own key *and* its pickled blob (the key is human-oriented
    and may under-describe), the exact candidate range, the batch size
    (batch composition decides settle salts), the collapse toggle and
    the resolved kernel backend.  The schema tag versions the
    :class:`SweepResult` layout itself.
    """
    return content_key(
        "sweep-v1",
        model.key(),
        pickle.dumps(model),
        candidates,
        batch_size,
        bool(collapse) and model.collapsible,
        resolve_backend(),
    )


def _serve_cached_sweep(
    cached: SweepResult,
    cache0: tuple[int, int, int],
    jobs: int,
    checkpoint_save: Callable[[SweepResult], None] | None,
) -> SweepResult:
    """Stamp a cache-served sweep so telemetry reflects *this* run.

    The stored result carries the producing run's timings and kernel
    counters (verdict-invariant); only the cache counters are rewritten
    to describe the serving run, so ``cache_hits > 0`` is the observable
    signature of a warm sweep.
    """
    telem = cached.telemetry
    if telem is not None:
        hits, misses, nbytes = CACHE_STATS.delta(cache0)
        telem.cache_hits = hits
        telem.cache_misses = misses
        telem.cache_bytes = nbytes
        telem.jobs = jobs
    observer = get_observer()
    if observer.enabled:
        observer.tracer.point(
            "cache_hit",
            scope="sweep",
            model=cached.model_name,
            candidates=int(cached.candidate_ids.size),
        )
        if telem is not None:
            observer.tracer.point("telemetry", **telem.to_dict())
    if checkpoint_save is not None:
        checkpoint_save(cached)
    return cached


def _count_skip(telem: CampaignTelemetry, code: int) -> None:
    if code == CODE_SKIP_STRUCTURAL:
        telem.skip_structural += 1
    elif code == CODE_SKIP_CONE:
        telem.skip_cone += 1
    elif code == CODE_SKIP_UNADDRESSED:
        telem.skip_unaddressed += 1
    else:
        raise CampaignError(f"prefilter returned non-skip code {code}")


def run_serial(
    model: FaultModel,
    batch_size: int = 128,
    candidates: np.ndarray | None = None,
    checkpoint_save: Callable[[SweepResult], None] | None = None,
    checkpoint_every: int = 50_000,
    merge_with: SweepResult | None = None,
    context: Any | None = None,
    collapse: bool = True,
) -> SweepResult:
    """Exhaustive serial sweep of one fault model.

    With ``checkpoint_save`` the driver periodically hands a merged
    partial :class:`SweepResult` to the callback (every
    ``checkpoint_every`` candidates, at natural batch boundaries only,
    and once more at the end); ``merge_with`` folds an earlier partial
    result into every snapshot (used by resume so re-interrupted runs
    stay whole).

    ``collapse=True`` (honoured only for collapsible models) turns on
    fault collapsing: one representative per ``(salt, signature)``
    equivalence class is simulated and the observation fanned out to the
    class — verdicts, checkpoints and ``n_simulated`` are byte-identical
    to ``collapse=False`` (see the module docstring for the contract).
    """
    if candidates is None:
        candidates = model.enumerate_candidates()
    candidates = np.asarray(candidates, dtype=np.int64)
    do_collapse = bool(collapse) and model.collapsible

    # Whole-sweep result cache: consulted *before* the context build so
    # a warm repeat skips even the golden simulation.  Resume merges
    # (``merge_with``) sweep a remainder range whose key differs, so
    # only clean full runs are served or stored.
    t0 = time.perf_counter()
    kern0 = KERNEL_COUNTERS.snapshot()
    cache0 = CACHE_STATS.snapshot()
    store = result_cache()
    sweep_key: str | None = None
    if store is not None and merge_with is None:
        sweep_key = _sweep_cache_key(model, candidates, batch_size, collapse)
        cached = store.get(sweep_key)
        if cached is not None:
            return _serve_cached_sweep(cached, cache0, 1, checkpoint_save)

    ctx = model.build_context() if context is None else context

    verdicts = np.zeros(model.space_size(), dtype=np.uint8)
    payloads: dict[int, np.ndarray] = {}
    telem = CampaignTelemetry(
        n_candidates=int(candidates.size), jobs=1, backend=resolve_backend()
    )
    n_simulated = 0

    # Observability hooks.  Every emission below only *reads* campaign
    # state — the verdict-invariance contract (see repro.obs) — and the
    # untraced path pays one `observing` check per site.
    observer = get_observer()
    tracer, progress = observer.tracer, observer.progress
    observing = observer.enabled
    root_span = tracer.open_span(
        "campaign",
        model=model.name,
        key=model.key(),
        jobs=1,
        candidates=int(candidates.size),
        collapse=do_collapse,
        backend=telem.backend,
    )
    progress.start(model.name, total=int(candidates.size))
    batch_tick = 0

    def after_batch(span: int, bits: int, seconds: float) -> None:
        nonlocal batch_tick
        telem.record_batch_seconds(seconds)
        if not observing:
            return
        tracer.close_span(span, bits=bits, seconds=round(seconds, 6))
        batch_tick += 1
        if batch_tick % _COUNTER_SAMPLE_BATCHES == 0:
            tracer.counters(KERNEL_COUNTERS.to_dict())

    pending: list[tuple[int, Any]] = []

    def flush() -> None:
        nonlocal n_simulated
        if not pending:
            return
        span = tracer.open_span("batch", bits=len(pending)) if observing else -1
        t_sim = time.perf_counter()
        observations = model.observe_batch(ctx, pending)
        for (cand, _), obs in zip(pending, observations):
            verdicts[cand] = model.classify(obs)
            rich = model.payload(obs)
            if rich is not None:
                payloads[cand] = rich
        n_simulated += len(pending)
        telem.n_batches += 1
        seconds = time.perf_counter() - t_sim
        telem.simulate_seconds += seconds
        after_batch(span, len(pending), seconds)
        pending.clear()

    # Collapse-path state.  ``naive_buf`` holds survivors of the naive
    # batch currently forming; once full, its salt is derived and each
    # member becomes a class representative, a follower of a pending
    # representative, or an immediate fan-out of a resolved class.
    naive_buf: list[tuple[int, Any, Any, Any]] = []  # (cand, patch, sig, datum)
    rep_pending: dict[Any, list[tuple[int, Any, Any]]] = {}  # salt -> (cand, patch, key)
    followers: dict[Any, list[int]] = {}  # key -> cands awaiting their rep
    resolved: dict[Any, int] = {}  # key -> verdict code
    resolved_payload: dict[Any, np.ndarray | None] = {}

    def fan_out(cand: int, code: int, rich: np.ndarray | None) -> None:
        nonlocal n_simulated
        verdicts[cand] = code
        if rich is not None:
            payloads[cand] = rich.copy()
        n_simulated += 1
        telem.n_collapsed += 1

    def flush_salt(salt: Any, limit: int) -> None:
        nonlocal n_simulated
        group = rep_pending.get(salt)
        if not group:
            return
        reps = group[:limit]
        del group[:limit]
        if not group:
            del rep_pending[salt]
        span = (
            tracer.open_span("batch.collapsed", bits=len(reps), salt=salt)
            if observing
            else -1
        )
        t_sim = time.perf_counter()
        observations = model.observe_collapsed(ctx, [(c, p) for c, p, _ in reps], salt)
        telem.n_batches += 1
        for (cand, _, key), obs in zip(reps, observations):
            code = model.classify(obs)
            rich = model.payload(obs)
            verdicts[cand] = code
            if rich is not None:
                payloads[cand] = rich
            n_simulated += 1
            if key is not None:
                resolved[key] = code
                resolved_payload[key] = rich
                for f in followers.pop(key, ()):
                    fan_out(f, code, rich)
        seconds = time.perf_counter() - t_sim
        telem.simulate_seconds += seconds
        after_batch(span, len(reps), seconds)

    def process_naive_batch() -> None:
        if not naive_buf:
            return
        salt = model.collapse_salt(ctx, [d for _, _, _, d in naive_buf])
        for cand, patch, sig, _ in naive_buf:
            key = None if sig is None else (salt, sig)
            if key is not None:
                code = resolved.get(key)
                if code is not None:
                    fan_out(cand, code, resolved_payload[key])
                    continue
                flw = followers.get(key)
                if flw is not None:  # representative already queued
                    flw.append(cand)
                    continue
                followers[key] = []
            rep_pending.setdefault(salt, []).append((cand, patch, key))
        naive_buf.clear()
        while len(rep_pending.get(salt, ())) >= batch_size:
            flush_salt(salt, batch_size)

    def flush_all() -> None:
        for salt in list(rep_pending):
            while salt in rep_pending:
                flush_salt(salt, batch_size)

    def make_result(n_done: int) -> SweepResult:
        done = candidates[:n_done]
        partial = n_done < candidates.size
        return SweepResult(
            model_name=model.name,
            model_key=model.key(),
            n_space=int(verdicts.size),
            verdicts=verdicts.copy() if partial else verdicts,
            candidate_ids=done,
            n_simulated=n_simulated,
            host_seconds=time.perf_counter() - t0,
            payloads=dict(payloads) if partial else payloads,
        )

    def checkpoint(n_done: int) -> None:
        t_ck = time.perf_counter()
        part = make_result(n_done)
        if merge_with is not None:
            part = merge_sweeps([merge_with, part])
        checkpoint_save(part)
        seconds = time.perf_counter() - t_ck
        telem.checkpoint_seconds += seconds
        if observing:
            tracer.point("checkpoint", n_done=n_done, seconds=round(seconds, 6))

    since_checkpoint = 0
    for i, cand in enumerate(candidates):
        cand = int(cand)
        since_checkpoint += 1
        if observing:
            progress.update(i + 1)
        code, payload = model.prefilter(cand, ctx)
        if code != CODE_NOT_TESTED:
            verdicts[cand] = code
            _count_skip(telem, code)
        elif do_collapse:
            patch = payload if payload is not None else model.patch_for(cand, ctx)
            naive_buf.append(
                (
                    cand,
                    patch,
                    model.collapse_signature(cand, ctx, patch),
                    model.collapse_salt_datum(cand, ctx, patch),
                )
            )
            if len(naive_buf) >= batch_size:
                process_naive_batch()
        else:
            pending.append(
                (cand, payload if payload is not None else model.patch_for(cand, ctx))
            )
            if len(pending) >= batch_size:
                flush()
        # Checkpoint only at naive batch boundaries (buffer empty): a
        # forced flush would change naive batch composition, and the
        # per-batch active-node closure / settle salt can flip marginal
        # observations — resume must reproduce the uninterrupted run bit
        # for bit.  Under collapse every pending representative is
        # simulated first so the snapshot covers the whole prefix
        # (regrouping representatives is verdict-safe: their salts are
        # already fixed).
        if (
            checkpoint_save is not None
            and since_checkpoint >= checkpoint_every
            and not (naive_buf if do_collapse else pending)
        ):
            if do_collapse:
                flush_all()
            checkpoint(i + 1)
            since_checkpoint = 0
    if do_collapse:
        process_naive_batch()
        flush_all()
    else:
        flush()

    result = make_result(int(candidates.size))
    if merge_with is not None:
        result = merge_sweeps([merge_with, result])
    telem.n_simulated = n_simulated
    kd = KERNEL_COUNTERS.delta(kern0)
    telem.machines_retired += kd[0]
    telem.batch_compactions += kd[1]
    telem.machine_cycles_saved += kd[2]
    telem.ff_cycles_skipped += kd[3]
    telem.cache_hits, telem.cache_misses, telem.cache_bytes = CACHE_STATS.delta(cache0)
    telem.wall_seconds = time.perf_counter() - t0
    telem.prefilter_seconds = max(
        0.0, telem.wall_seconds - telem.simulate_seconds - telem.checkpoint_seconds
    )
    result.telemetry = telem
    if store is not None and sweep_key is not None:
        store.put(sweep_key, result)
    if observing:
        tracer.point("telemetry", **telem.to_dict())
        tracer.counters(KERNEL_COUNTERS.to_dict())
        tracer.close_span(
            root_span, n_simulated=n_simulated, n_batches=telem.n_batches
        )
        progress.finish(telem.summary())
    if checkpoint_save is not None:
        checkpoint_save(result)
    return result


# -- worker-side state ---------------------------------------------------------
#
# Keyed by the model *ref* — the content address of the pickled model
# when an executor backend primed a blob store (local pool initializer,
# TCP one-time upload), or the raw pickled bytes for external pools
# that ship the blob per task (which identifies design, device and
# every knob either way).  Bounded so a long-lived pool sweeping many
# models cannot hoard contexts.

_MAX_CACHED = 4
_MODEL_STATE: dict[bytes | str, tuple[FaultModel, Any]] = {}


def _model_state(model_ref: bytes | str) -> tuple[FaultModel, Any]:
    """The worker-side cache: unpickle once, derive the context once."""
    state = _MODEL_STATE.get(model_ref)
    if state is None:
        if len(_MODEL_STATE) >= _MAX_CACHED:
            _MODEL_STATE.clear()
        model = pickle.loads(resolve_blob(model_ref))
        state = (model, model.build_context())
        _MODEL_STATE[model_ref] = state
    return state


def _shard_cache(cache_key: str | None):
    """The worker's local result store for one task, or ``None``.

    Consulted before simulating — a TCP worker with a warm local cache
    serves even *stolen* shards without touching the simulator.  The
    cached value is the full worker return tuple; its timing and kernel
    fields describe the producing run (verdict-invariant, they only
    perturb telemetry).
    """
    return result_cache() if cache_key else None


def _worker_prefilter(
    model_ref, cands: np.ndarray, cache_key: str | None = None
) -> tuple[np.ndarray, float]:
    """Classify one contiguous candidate chunk.

    Returns per-candidate verdict codes aligned with ``cands``
    (``CODE_NOT_TESTED`` marks a pre-filter survivor that must be
    simulated) and the worker seconds spent.
    """
    store = _shard_cache(cache_key)
    if store is not None:
        hit = store.get(cache_key)
        if hit is not None:
            return hit
    t0 = time.perf_counter()
    model, ctx = _model_state(model_ref)
    codes = np.empty(cands.size, dtype=np.uint8)
    for i, cand in enumerate(cands):
        codes[i], _ = model.prefilter(int(cand), ctx)
    result = codes, time.perf_counter() - t0
    if store is not None:
        store.put(cache_key, result)
    return result


def _worker_observe(
    model_ref, batch_size: int, cands: np.ndarray, cache_key: str | None = None
) -> tuple[
    np.ndarray, dict[int, np.ndarray], list[float], float, tuple[int, int, int, int]
]:
    """Simulate one survivor shard in consecutive ``batch_size`` batches.

    ``cands`` must be pre-filter survivors in candidate order; patches
    are re-derived in process (:meth:`FaultModel.patch_for` is
    deterministic).  Returns verdict codes aligned with ``cands``, the
    retained payloads, the per-batch durations (their length is the
    batch count), the worker seconds spent, and the kernel
    fault-dropping counter delta.
    """
    store = _shard_cache(cache_key)
    if store is not None:
        hit = store.get(cache_key)
        if hit is not None:
            return hit
    t0 = time.perf_counter()
    kern0 = KERNEL_COUNTERS.snapshot()
    model, ctx = _model_state(model_ref)
    codes = np.empty(cands.size, dtype=np.uint8)
    payloads: dict[int, np.ndarray] = {}
    batch_seconds: list[float] = []
    for start in range(0, int(cands.size), batch_size):
        t_batch = time.perf_counter()
        chunk = cands[start : start + batch_size]
        pending = [(int(c), model.patch_for(int(c), ctx)) for c in chunk]
        observations = model.observe_batch(ctx, pending)
        for j, ((cand, _), obs) in enumerate(zip(pending, observations)):
            codes[start + j] = model.classify(obs)
            rich = model.payload(obs)
            if rich is not None:
                payloads[cand] = rich
        batch_seconds.append(time.perf_counter() - t_batch)
    result = (
        codes, payloads, batch_seconds, time.perf_counter() - t0,
        KERNEL_COUNTERS.delta(kern0),
    )
    if store is not None:
        store.put(cache_key, result)
    return result


def _worker_prefilter_collapse(
    model_ref, cands: np.ndarray, cache_key: str | None = None
) -> tuple[np.ndarray, list[tuple[Any, Any] | None], float]:
    """Pre-filter one chunk, also deriving collapse inputs for survivors.

    Like :func:`_worker_prefilter`, plus a per-candidate entry that is
    ``None`` for skips and ``(signature, salt_datum)`` for survivors —
    everything the parent needs to group collapse classes without ever
    shipping patches across processes.
    """
    store = _shard_cache(cache_key)
    if store is not None:
        hit = store.get(cache_key)
        if hit is not None:
            return hit
    t0 = time.perf_counter()
    model, ctx = _model_state(model_ref)
    codes = np.empty(cands.size, dtype=np.uint8)
    info: list[tuple[Any, Any] | None] = []
    for i, cand in enumerate(cands):
        cand = int(cand)
        code, payload = model.prefilter(cand, ctx)
        codes[i] = code
        if code == CODE_NOT_TESTED:
            patch = payload if payload is not None else model.patch_for(cand, ctx)
            info.append(
                (
                    model.collapse_signature(cand, ctx, patch),
                    model.collapse_salt_datum(cand, ctx, patch),
                )
            )
        else:
            info.append(None)
    result = codes, info, time.perf_counter() - t0
    if store is not None:
        store.put(cache_key, result)
    return result


def _worker_observe_collapsed(
    model_ref, batch_size: int, cands: np.ndarray, salt: Any,
    cache_key: str | None = None,
) -> tuple[
    np.ndarray, dict[int, np.ndarray], list[float], float, tuple[int, int, int, int]
]:
    """Simulate one shard of same-salt collapse-class representatives.

    Identical to :func:`_worker_observe` except every batch is simulated
    through :meth:`FaultModel.observe_collapsed` with ``salt`` forced,
    so regrouped representatives keep the observations their original
    naive batches would have produced.
    """
    store = _shard_cache(cache_key)
    if store is not None:
        hit = store.get(cache_key)
        if hit is not None:
            return hit
    t0 = time.perf_counter()
    kern0 = KERNEL_COUNTERS.snapshot()
    model, ctx = _model_state(model_ref)
    codes = np.empty(cands.size, dtype=np.uint8)
    payloads: dict[int, np.ndarray] = {}
    batch_seconds: list[float] = []
    for start in range(0, int(cands.size), batch_size):
        t_batch = time.perf_counter()
        chunk = cands[start : start + batch_size]
        pending = [(int(c), model.patch_for(int(c), ctx)) for c in chunk]
        observations = model.observe_collapsed(ctx, pending, salt)
        for j, ((cand, _), obs) in enumerate(zip(pending, observations)):
            codes[start + j] = model.classify(obs)
            rich = model.payload(obs)
            if rich is not None:
                payloads[cand] = rich
        batch_seconds.append(time.perf_counter() - t_batch)
    result = (
        codes, payloads, batch_seconds, time.perf_counter() - t0,
        KERNEL_COUNTERS.delta(kern0),
    )
    if store is not None:
        store.put(cache_key, result)
    return result


# -- sharded driver ------------------------------------------------------------


def _part_sweep(
    model: FaultModel,
    cands: np.ndarray,
    codes: np.ndarray,
    host_seconds: float,
    n_simulated: int,
    payloads: dict[int, np.ndarray] | None = None,
) -> SweepResult:
    """Wrap one shard's verdicts as a mergeable partial result."""
    verdicts = np.zeros(model.space_size(), dtype=np.uint8)
    verdicts[cands] = codes
    return SweepResult(
        model_name=model.name,
        model_key=model.key(),
        n_space=int(verdicts.size),
        verdicts=verdicts,
        candidate_ids=np.asarray(cands, dtype=np.int64),
        n_simulated=n_simulated,
        host_seconds=host_seconds,
        payloads=payloads or {},
    )


def shard_survivors(survivors: np.ndarray, batch_size: int, n_shards: int) -> list[np.ndarray]:
    """Cut the survivor sequence into contiguous shards of whole batches.

    Every shard except (possibly) the last holds a multiple of
    ``batch_size`` survivors — the invariant that makes shard-local
    batching identical to the serial loop's, both on a fresh run and
    when re-sharding the remainder after a partial (killed) sweep.
    """
    n_batches = -(-int(survivors.size) // batch_size)
    n_shards = max(1, min(n_shards, n_batches))
    bounds = [round(i * n_batches / n_shards) for i in range(n_shards + 1)]
    shards = []
    for b0, b1 in zip(bounds[:-1], bounds[1:]):
        shard = survivors[b0 * batch_size : b1 * batch_size]
        if shard.size:
            shards.append(shard)
    return shards


def run_sharded(
    model: FaultModel,
    jobs: int | None = None,
    batch_size: int = 128,
    candidates: np.ndarray | None = None,
    checkpoint_save: Callable[[SweepResult], None] | None = None,
    checkpoint_every: int = 50_000,
    merge_with: SweepResult | None = None,
    executor=None,
    shards_per_job: int = 4,
    collapse: bool = True,
    policy: ExecutorPolicy | None = None,
    backend=None,
) -> SweepResult:
    """Sharded multi-process sweep, byte-identical to ``jobs=1``.

    ``jobs=None`` uses every CPU (:func:`default_jobs`); ``jobs=1``
    (without an external executor or a non-local transport) delegates
    to :func:`run_serial`.  With ``checkpoint_save`` the parent
    snapshots after the pre-filter and after every completed shard
    (shards are the checkpoint granularity; raise ``shards_per_job``
    for finer snapshots).  An external ``executor`` (e.g. a shared
    pool) is used as-is and not shut down.  ``backend`` overrides the
    transport: an :class:`~repro.engine.backends.ExecutorBackend`
    instance is used directly, a name (``"local"``/``"tcp"``) is
    resolved against the policy's transport block (which is also the
    default, so ``--executor tcp`` reaches here ambiently).

    With ``collapse`` the parent derives each survivor's collapse class
    from worker-computed ``(signature, salt_datum)`` pairs, dispatches
    only same-salt representative shards, and fans verdicts out to
    followers.  Checkpoints then fold only the longest fully-resolved
    survivor *prefix* (cut at a naive-batch boundary) — unlike the
    naive path, out-of-order shard completions cannot be folded
    individually, because removing a scattered subset of survivors
    would regroup the remainder's naive batches on resume.

    **Fault tolerance.** Both phases drain through a
    :class:`~repro.engine.executor.ShardExecutor` governed by ``policy``
    (default: the ambient :func:`get_executor_policy`): worker
    exceptions retry with backoff, a broken pool is rebuilt and its
    in-flight shards relaunched, stalled shards are speculatively
    re-executed (first result wins; shards are deterministic so the
    bytes cannot differ), and shards that keep failing are quarantined.
    A quarantined shard's candidates stay untested and are *excluded*
    from ``candidate_ids`` — the sweep still completes and checkpoints
    everything resolved, then raises :class:`CampaignError` unless
    ``policy.allow_partial``.  Quarantine drops are resume-safe: every
    dropped piece is a whole number of ``batch_size`` batches (or a
    prefix-aligned tail under collapse), so a later resume re-groups
    the remainder into the byte-identical batches.
    """
    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs < 1:
        raise CampaignError(f"jobs must be >= 1, got {jobs}")
    if policy is None:
        policy = get_executor_policy()
    if candidates is None:
        candidates = model.enumerate_candidates()
    candidates = np.asarray(candidates, dtype=np.int64)
    if jobs == 1 and executor is None and backend is None and policy.transport == "local":
        return run_serial(
            model,
            batch_size=batch_size,
            candidates=candidates,
            checkpoint_save=checkpoint_save,
            checkpoint_every=checkpoint_every,
            merge_with=merge_with,
            collapse=collapse,
        )
    do_collapse = bool(collapse) and model.collapsible

    t0 = time.perf_counter()
    cache0 = CACHE_STATS.snapshot()
    store = result_cache()
    sweep_key: str | None = None
    if store is not None and merge_with is None:
        sweep_key = _sweep_cache_key(model, candidates, batch_size, collapse)
        cached = store.get(sweep_key)
        if cached is not None:
            return _serve_cached_sweep(cached, cache0, jobs, checkpoint_save)
    telem = CampaignTelemetry(
        n_candidates=int(candidates.size), jobs=jobs, backend=resolve_backend()
    )
    observer = get_observer()
    tracer, progress = observer.tracer, observer.progress
    observing = observer.enabled
    root_span = tracer.open_span(
        "campaign",
        model=model.name,
        key=model.key(),
        jobs=jobs,
        candidates=int(candidates.size),
        collapse=do_collapse,
        backend=telem.backend,
    )
    def add_kernel_delta(kd: tuple[int, int, int, int]) -> None:
        telem.machines_retired += kd[0]
        telem.batch_compactions += kd[1]
        telem.machine_cycles_saved += kd[2]
        telem.ff_cycles_skipped += kd[3]

    shard_exec = ShardExecutor(jobs, policy, pool=executor, backend=backend)
    # Register the pickled model with the transport once; every task
    # carries only the returned ref (a content address for backends
    # with a primed blob store, the raw bytes for external pools).
    model_blob = pickle.dumps(model)
    model_ref = shard_exec.prime_blob(model_blob)
    # Per-shard content addresses: computed unconditionally (one SHA-256
    # per shard) so remote workers with their own local cache can serve
    # shards — stolen ones included — even when the parent has no store.
    model_digest = blob_digest(model_blob)

    def shard_key(kind: str, *parts: Any) -> str:
        return content_key(
            "shard-v1", model_digest, telem.backend, batch_size, kind, *parts
        )
    # Pre-populate the worker cache under the same ref the tasks carry:
    # under fork the children inherit the model context copy-on-write;
    # under spawn the pool initializer re-installs the blob and workers
    # re-derive the context once each (and the parent still needs the
    # context for collapse grouping).
    if model_ref not in _MODEL_STATE:
        if len(_MODEL_STATE) >= _MAX_CACHED:
            _MODEL_STATE.clear()
        _MODEL_STATE[model_ref] = (model, model.build_context())
    try:
        # Phase 1: parallel pre-filter over contiguous candidate chunks.
        n_chunks = max(1, min(jobs * shards_per_job, int(candidates.size)))
        chunks = [c for c in np.array_split(candidates, n_chunks) if c.size]
        prefilter_fn = _worker_prefilter_collapse if do_collapse else _worker_prefilter
        prefilter_kind = "prefilter-collapse" if do_collapse else "prefilter"
        prefilter_span = tracer.open_span("phase.prefilter", chunks=len(chunks))
        progress.start(f"{model.name} prefilter", total=len(chunks))
        chunk_results: dict[int, tuple] = {}
        prefilter_tasks = []
        for i, c in enumerate(chunks):
            ck = shard_key(prefilter_kind, c)
            prefilter_tasks.append(
                TaskSpec(f"prefilter:{i}", prefilter_fn, (model_ref, c, ck), cache_key=ck)
            )
        for key, res in shard_exec.run(
            prefilter_tasks, phase="prefilter", telemetry=telem
        ):
            chunk_results[int(key.split(":", 1)[1])] = res
            telem.prefilter_seconds += res[-1]
            if observing:
                progress.update(len(chunk_results))
        # Reassemble in chunk order, dropping quarantined chunks — their
        # candidates stay untested, excluded from the result entirely, so
        # a later resume re-tests them (pre-filtering is per-candidate
        # pure; dropping any subset is resume-safe).
        kept_codes: list[np.ndarray] = []
        kept_chunks: list[np.ndarray] = []
        infos: list[tuple[Any, Any] | None] = []
        for i, chunk in enumerate(chunks):
            res = chunk_results.get(i)
            if res is None:  # quarantined chunk
                telem.candidates_quarantined += int(chunk.size)
                continue
            kept_codes.append(res[0])
            kept_chunks.append(chunk)
            if do_collapse:
                infos.extend(res[1])
        codes = (
            np.concatenate(kept_codes) if kept_codes else np.empty(0, dtype=np.uint8)
        )
        kept = (
            np.concatenate(kept_chunks) if kept_chunks else np.empty(0, dtype=np.int64)
        )
        survivor_mask = codes == CODE_NOT_TESTED
        survivors = kept[survivor_mask]
        skipped = kept[~survivor_mask]
        telem.skip_structural = int(np.count_nonzero(codes == CODE_SKIP_STRUCTURAL))
        telem.skip_cone = int(np.count_nonzero(codes == CODE_SKIP_CONE))
        telem.skip_unaddressed = int(np.count_nonzero(codes == CODE_SKIP_UNADDRESSED))
        telem.n_simulated = int(survivors.size)
        if observing:
            tracer.close_span(
                prefilter_span,
                survivors=int(survivors.size),
                skipped=int(skipped.size),
                worker_seconds=round(telem.prefilter_seconds, 6),
            )
            progress.finish(f"{int(survivors.size)} survivor(s)")

        parts: list[SweepResult] = []
        if merge_with is not None:
            parts.append(merge_with)
        if skipped.size:
            parts.append(
                _part_sweep(
                    model, skipped, codes[~survivor_mask], telem.prefilter_seconds, 0
                )
            )
        acc = merge_sweeps(parts) if len(parts) > 1 else (parts[0] if parts else None)

        def checkpoint(result: SweepResult) -> None:
            if checkpoint_save is not None:
                t_ck = time.perf_counter()
                checkpoint_save(result)
                seconds = time.perf_counter() - t_ck
                telem.checkpoint_seconds += seconds
                if observing:
                    tracer.point(
                        "checkpoint",
                        n_done=int(result.candidate_ids.size),
                        seconds=round(seconds, 6),
                    )

        if acc is not None:
            checkpoint(acc)

        observe_span = tracer.open_span("phase.observe", survivors=int(survivors.size))
        progress.start(f"{model.name} observe", total=int(survivors.size))
        done_bits = 0

        def shard_done(
            shard: np.ndarray, batch_seconds: list[float], seconds: float
        ) -> None:
            nonlocal done_bits
            telem.n_batches += len(batch_seconds)
            telem.simulate_seconds += seconds
            for b in batch_seconds:
                telem.record_batch_seconds(b)
            telem.record_shard_seconds(seconds)
            if observing:
                done_bits += int(shard.size)
                progress.update(done_bits)
                if telem.n_batches // _COUNTER_SAMPLE_BATCHES != (
                    telem.n_batches - len(batch_seconds)
                ) // _COUNTER_SAMPLE_BATCHES:
                    tracer.counters(KERNEL_COUNTERS.to_dict())

        if not do_collapse:
            # Phase 2: survivor shards, whole batches each, fanned out.
            shards = shard_survivors(survivors, batch_size, jobs * shards_per_job)
            observe_tasks = []
            for i, shard in enumerate(shards):
                ck = shard_key("observe", shard)
                observe_tasks.append(
                    TaskSpec(
                        f"observe:{i}",
                        _worker_observe,
                        (model_ref, batch_size, shard, ck),
                        {"index": i, "bits": int(shard.size)},
                        cache_key=ck,
                    )
                )
            for key, res in shard_exec.run(
                observe_tasks,
                phase="observe",
                telemetry=telem,
                span_name="shard",
                span_parent=observe_span,
            ):
                shard = shards[int(key.split(":", 1)[1])]
                shard_codes, shard_payloads, batch_seconds, seconds, kd = res
                shard_done(shard, batch_seconds, seconds)
                add_kernel_delta(kd)
                part = _part_sweep(
                    model, shard, shard_codes, seconds, int(shard.size), shard_payloads
                )
                acc = part if acc is None else merge_sweeps([acc, part])
                checkpoint(acc)
            # A quarantined shard's candidates are simply absent from the
            # result — each shard is a whole run of naive batches, so the
            # untested remainder re-groups identically on resume.
            for key in shard_exec.quarantined:
                if key.startswith("observe:"):
                    telem.candidates_quarantined += int(
                        shards[int(key.split(":", 1)[1])].size
                    )
        else:
            # Phase 2 (collapsed): group survivors into their naive
            # batches to derive salts, assign one representative per
            # (salt, signature) class, and fan shards of same-salt
            # representatives out to the pool.
            ctx = _MODEL_STATE[model_ref][1]
            surv_info = [infos[i] for i in np.flatnonzero(survivor_mask)]
            n_surv = int(survivors.size)
            rep_followers: dict[int, list[int]] = {}  # rep cand -> follower cands
            reps_by_salt: dict[Any, list[int]] = {}
            seen_key: dict[Any, int] = {}  # (salt, signature) -> rep cand
            for b0 in range(0, n_surv, batch_size):
                idx = range(b0, min(b0 + batch_size, n_surv))
                salt = model.collapse_salt(ctx, [surv_info[i][1] for i in idx])
                for i in idx:
                    cand = int(survivors[i])
                    sig = surv_info[i][0]
                    key = None if sig is None else (salt, sig)
                    rep = seen_key.get(key) if key is not None else None
                    if rep is not None:
                        rep_followers[rep].append(cand)
                    else:
                        if key is not None:
                            seen_key[key] = cand
                        rep_followers[cand] = []
                        reps_by_salt.setdefault(salt, []).append(cand)

            shard_specs: list[tuple[np.ndarray, Any]] = []
            for salt, reps in reps_by_salt.items():
                reps_arr = np.asarray(reps, dtype=np.int64)
                for shard in shard_survivors(reps_arr, batch_size, jobs * shards_per_job):
                    shard_specs.append((shard, salt))
            observe_tasks = []
            for i, (shard, salt) in enumerate(shard_specs):
                ck = shard_key("observe-collapsed", shard, salt)
                observe_tasks.append(
                    TaskSpec(
                        f"observe:{i}",
                        _worker_observe_collapsed,
                        (model_ref, batch_size, shard, salt, ck),
                        {"index": i, "bits": int(shard.size)},
                        cache_key=ck,
                    )
                )

            resolved_code: dict[int, int] = {}
            resolved_payloads: dict[int, np.ndarray] = {}
            ck_done = 0  # survivor-prefix length already folded into acc

            def fold_prefix(hi: int) -> None:
                nonlocal acc, ck_done
                part_cands = survivors[ck_done:hi]
                part_codes = np.array(
                    [resolved_code[int(c)] for c in part_cands], dtype=np.uint8
                )
                part_payloads = {
                    int(c): resolved_payloads[int(c)]
                    for c in part_cands
                    if int(c) in resolved_payloads
                }
                part = _part_sweep(
                    model, part_cands, part_codes, 0.0, int(part_cands.size), part_payloads
                )
                acc = part if acc is None else merge_sweeps([acc, part])
                ck_done = hi

            for key, res in shard_exec.run(
                observe_tasks,
                phase="observe",
                telemetry=telem,
                span_name="shard",
                span_parent=observe_span,
            ):
                shard, _salt = shard_specs[int(key.split(":", 1)[1])]
                shard_codes, shard_payloads, batch_seconds, seconds, kd = res
                shard_done(shard, batch_seconds, seconds)
                add_kernel_delta(kd)
                for j, rep in enumerate(shard):
                    rep = int(rep)
                    code = int(shard_codes[j])
                    rich = shard_payloads.get(rep)
                    resolved_code[rep] = code
                    if rich is not None:
                        resolved_payloads[rep] = rich
                    for flw in rep_followers[rep]:
                        resolved_code[flw] = code
                        if rich is not None:
                            resolved_payloads[flw] = rich.copy()
                        telem.n_collapsed += 1
                if checkpoint_save is not None:
                    p = ck_done
                    while p < n_surv and int(survivors[p]) in resolved_code:
                        p += 1
                    p -= p % batch_size
                    if p > ck_done:
                        fold_prefix(p)
                        checkpoint(acc)
            if any(k.startswith("observe:") for k in shard_exec.quarantined):
                # Quarantined representatives leave holes in the survivor
                # sequence: fold only the resolved prefix, cut at a naive-
                # batch boundary, and drop everything past it (resolved
                # stragglers included) — folding a scattered subset would
                # regroup the remainder's naive batches on resume.
                p = ck_done
                while p < n_surv and int(survivors[p]) in resolved_code:
                    p += 1
                p -= p % batch_size
                if p > ck_done:
                    fold_prefix(p)
                telem.candidates_quarantined += n_surv - p
            elif ck_done < n_surv:
                fold_prefix(n_surv)
        if observing:
            tracer.close_span(observe_span, batches=telem.n_batches)
            progress.finish(f"{telem.n_batches} batch(es)")
    finally:
        shard_exec.close()

    if acc is None:  # no candidates at all, or everything quarantined
        acc = _part_sweep(
            model, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8), 0.0, 0
        )
    telem.wall_seconds = time.perf_counter() - t0
    prior = merge_with.host_seconds if merge_with is not None else 0.0
    acc.host_seconds = prior + telem.wall_seconds
    telem.cache_hits, telem.cache_misses, telem.cache_bytes = CACHE_STATS.delta(cache0)
    acc.telemetry = telem
    # Store the whole sweep only when it is clean and complete — never a
    # quarantined partial (its verdicts exclude untested candidates).
    if store is not None and sweep_key is not None and not shard_exec.quarantined:
        store.put(sweep_key, acc)
    if checkpoint_save is not None:
        t_ck = time.perf_counter()
        checkpoint_save(acc)
        telem.checkpoint_seconds += time.perf_counter() - t_ck
    if observing:
        tracer.point("telemetry", **telem.to_dict())
        tracer.counters(KERNEL_COUNTERS.to_dict())
        tracer.close_span(
            root_span, n_simulated=telem.n_simulated, n_batches=telem.n_batches
        )
    if shard_exec.quarantined and not policy.allow_partial:
        keys = ", ".join(sorted(shard_exec.quarantined))
        late = ""
        if shard_exec.late_results:
            late = (
                f" ({len(shard_exec.late_results)} quarantined shard(s) "
                f"completed during teardown — logged, not merged)"
            )
        raise CampaignError(
            f"{len(shard_exec.quarantined)} shard(s) quarantined ({keys}){late}; "
            f"everything resolved was checkpointed — re-run to retry the "
            f"missing work, or pass --allow-partial to accept a partial sweep"
        )
    return acc


# -- convenience front door (engine-native checkpoint format) ------------------


def run_sweep(
    model: FaultModel,
    jobs: int = 1,
    batch_size: int = 128,
    candidates: np.ndarray | None = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 50_000,
    merge_with: SweepResult | None = None,
    executor=None,
    shards_per_job: int = 4,
    collapse: bool = True,
    policy: ExecutorPolicy | None = None,
    backend=None,
) -> SweepResult:
    """Run a sweep with the engine's native checkpoint format.

    The one-stop entry point for adapters without a historical
    checkpoint format of their own: ``jobs`` picks serial vs sharded,
    ``checkpoint_path`` snapshots :func:`save_sweep` archives that
    :func:`resume_sweep` restarts from.  ``policy`` overrides the
    ambient :class:`ExecutorPolicy` for sharded runs (serial runs have
    no pool to recover); ``backend`` forces an executor transport the
    same way it does for :func:`run_sharded`.
    """
    checkpoint_cb = None
    if checkpoint_path is not None:

        def checkpoint_cb(sweep: SweepResult) -> None:
            save_sweep(sweep, checkpoint_path)

    transport = (policy or get_executor_policy()).transport
    if jobs == 1 and executor is None and backend is None and transport == "local":
        return run_serial(
            model,
            batch_size=batch_size,
            candidates=candidates,
            checkpoint_save=checkpoint_cb,
            checkpoint_every=checkpoint_every,
            merge_with=merge_with,
            collapse=collapse,
        )
    return run_sharded(
        model,
        jobs=jobs,
        batch_size=batch_size,
        candidates=candidates,
        checkpoint_save=checkpoint_cb,
        checkpoint_every=checkpoint_every,
        merge_with=merge_with,
        executor=executor,
        shards_per_job=shards_per_job,
        collapse=collapse,
        policy=policy,
        backend=backend,
    )


def resume_sweep(
    model: FaultModel,
    checkpoint_path: str,
    jobs: int = 1,
    batch_size: int = 128,
    checkpoint_every: int = 50_000,
    executor=None,
    shards_per_job: int = 4,
    collapse: bool = True,
    policy: ExecutorPolicy | None = None,
    backend=None,
) -> SweepResult:
    """Resume an interrupted sweep from an engine-native checkpoint.

    Every checkpoint ever written holds only whole simulator batches,
    so the remainder re-groups into the same batches the uninterrupted
    run would have used — the merged result is byte-identical to a
    never-killed sweep, for any worker count on either side.
    """
    part = load_sweep(checkpoint_path)
    if part.model_key != model.key():
        raise CampaignError(
            f"checkpoint {checkpoint_path!r} is for {part.model_key!r}, "
            f"not {model.key()!r}"
        )
    candidates = np.asarray(model.enumerate_candidates(), dtype=np.int64)
    remaining = np.setdiff1d(candidates, part.candidate_ids)
    if remaining.size == 0:
        return part
    return run_sweep(
        model,
        jobs=jobs,
        batch_size=batch_size,
        candidates=remaining,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        merge_with=part,
        executor=executor,
        shards_per_job=shards_per_job,
        collapse=collapse,
        policy=policy,
        backend=backend,
    )

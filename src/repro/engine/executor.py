"""Fault-tolerant shard execution: the pluggable pool behind ``run_sharded``.

The sharded drivers used to drain a bare ``ProcessPoolExecutor`` with
``f.result()``: one OOM-killed or segfaulted worker raised
``BrokenProcessPool`` in the parent and discarded everything since the
last checkpoint, and the straggler detector only ever printed warnings.
:class:`ShardExecutor` owns that failure surface for both sharded
phases:

* **Per-shard retry** with exponential backoff and decorrelated jitter
  for per-task worker exceptions.
* **Automatic pool rebuild** on ``BrokenProcessPool`` (own pools only):
  the dead pool is replaced and every unresolved task relaunched;
  results already yielded (and therefore checkpointed by the driver)
  are never lost.
* **Speculative re-execution** of stalled shards: the
  :class:`~repro.obs.heartbeat.ShardTracker` straggler signal (factor ×
  median completed duration) or an absolute ``speculate_after_s``
  ceiling launches one duplicate of a stalled task; first result wins.
  Shards are deterministic, so the duplicate's bytes are identical and
  speculation can never change a verdict.
* **Poison-shard quarantine**: a task that keeps failing (or keeps
  hanging past ``hang_timeout_s`` after speculation already tried) is
  quarantined instead of wedging the campaign; the sweep completes,
  quarantined work is reported distinctly through telemetry and trace
  points, and the driver raises at the very end unless
  ``allow_partial``.

Every recovery action is recorded in :class:`CampaignTelemetry`
(``shard_retries``, ``speculative_launches``, ``speculative_wins``,
``pool_rebuilds``, ``shards_quarantined``) and, when observability is
on, as ``retry`` / ``speculate`` / ``pool_rebuild`` / ``quarantine``
trace points that ``repro report`` renders as a recovery timeline.

The determinism contract is untouched: recovery only re-runs pure
worker functions, so any schedule of crashes, hangs and retries that
the executor survives yields verdict bytes identical to an undisturbed
run (pinned by ``tests/seu/test_recovery.py``).  Chaos injection
(:mod:`repro.engine.chaos`) makes that claim testable on demand.

The active :class:`ExecutorPolicy` is ambient, mirroring
:mod:`repro.obs`: the CLI (or a test) activates retry/chaos knobs for a
lexical scope with ``with executor_policy(policy): ...`` and the
drivers pick it up via :func:`get_executor_policy` — no adapter
signature needs to thread it through.
"""

from __future__ import annotations

import heapq
import itertools
import random
import time
from concurrent.futures import FIRST_COMPLETED, Executor, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Iterator

from repro.engine.chaos import ChaosPolicy
from repro.engine.telemetry import CampaignTelemetry
from repro.errors import CampaignError
from repro.obs import get_observer
from repro.obs.heartbeat import ShardTracker

__all__ = [
    "ExecutorPolicy",
    "ShardExecutor",
    "TaskSpec",
    "executor_policy",
    "get_executor_policy",
    "DEFAULT_POLICY",
]


@dataclass(frozen=True)
class ExecutorPolicy:
    """Failure-handling knobs for :class:`ShardExecutor`.

    ``max_attempts`` bounds per-task worker *exceptions*.  Pool-wide
    breaks (one worker death fails every in-flight future, innocents
    included) are attributed by launch recency: a task that crashes its
    worker dies within milliseconds of launching, so the most recently
    launched casualty is charged as the *suspect* and quarantined after
    ``2 × max_attempts`` implications, while bystanders only count
    breaks against a ``4 × max_attempts`` backstop — a poison shard
    cannot drag a long-running healthy shard into quarantine with it,
    but an ambiguous break storm still terminates.  ``on_workers`` is a parent-side
    test hook called with ``(phase, live worker pid set)`` whenever the
    set changes (used by the SIGKILL recovery tests to aim at a real
    worker during a chosen phase).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_seed: int | None = None
    speculate: bool = True
    speculate_after_s: float | None = None  # absolute stall ceiling (None: tracker only)
    straggler_factor: float = 4.0
    min_samples: int = 3
    heartbeat_interval_s: float = 2.0
    hang_timeout_s: float | None = None  # quarantine ceiling for hung tasks (None: never)
    allow_partial: bool = False
    chaos: ChaosPolicy | None = None
    on_workers: Callable[[str, frozenset[int]], None] | None = None


DEFAULT_POLICY = ExecutorPolicy()

_policy: ExecutorPolicy = DEFAULT_POLICY


def get_executor_policy() -> ExecutorPolicy:
    """The ambient policy (``DEFAULT_POLICY`` unless inside a scope)."""
    return _policy


@contextmanager
def executor_policy(policy: ExecutorPolicy | None = None, **overrides: Any):
    """Install ``policy`` (or the default with ``overrides``) for a scope."""
    global _policy
    new = policy if policy is not None else DEFAULT_POLICY
    if overrides:
        new = replace(new, **overrides)
    previous = _policy
    _policy = new
    try:
        yield new
    finally:
        _policy = previous


@dataclass(frozen=True)
class TaskSpec:
    """One unit of sharded work: a picklable function and its arguments.

    ``key`` is the stable identity retries, speculation, chaos and
    quarantine reporting all hash on (e.g. ``"observe:3"``); ``fields``
    are extra span-open fields when the executor traces per-task spans.
    """

    key: str
    fn: Callable[..., Any]
    args: tuple
    fields: dict[str, Any] = field(default_factory=dict)


class _Task:
    """Parent-side lifecycle state of one :class:`TaskSpec`."""

    __slots__ = (
        "spec", "launches", "failures", "pool_failures", "break_suspects",
        "resolved", "speculated", "retry_pending", "last_launch_t",
        "backoff_prev", "futures", "span",
    )

    def __init__(self, spec: TaskSpec):
        self.spec = spec
        self.launches = 0
        self.failures = 0  # per-task worker exceptions
        self.pool_failures = 0  # pool-wide breaks this task was caught in
        self.break_suspects = 0  # breaks where this task was the likely trigger
        self.resolved = False
        self.speculated = False
        self.retry_pending = False
        self.last_launch_t = 0.0
        self.backoff_prev = 0.0
        self.futures: set[Future] = set()
        self.span = -1

    @property
    def live(self) -> bool:
        return bool(self.futures)


def _run_task(chaos: ChaosPolicy, key: str, launch: int, fn, args):
    """Worker entry wrapper: apply the chaos schedule, then do the work."""
    chaos.apply(key, launch)
    return fn(*args)


def _worker_pids(pool: Executor) -> frozenset[int]:
    procs = getattr(pool, "_processes", None)
    return frozenset(procs.keys()) if procs else frozenset()


def _hard_shutdown(pool: Executor) -> None:
    """Tear a pool down without waiting on hung or abandoned workers."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except (OSError, ValueError):
            pass
    for proc in procs:
        try:
            proc.join(5)
        except (OSError, ValueError, AssertionError):
            pass


class ShardExecutor:
    """Failure-owning wrapper around a (process) pool for sharded phases.

    One instance spans both campaign phases (pre-filter and observe) so
    warmed worker processes are reused; :meth:`run` drains one phase's
    tasks, yielding ``(key, result)`` in completion order, and
    :meth:`close` tears the pool down (``shutdown(cancel_futures=True)``
    on the clean path, worker termination when hung futures were
    abandoned — so an exception mid-phase never blocks on queued work).

    With an external ``pool`` the executor never rebuilds or shuts it
    down (a synchronous test executor or a caller-shared pool keeps its
    historical semantics): a ``BrokenProcessPool`` there is re-raised as
    a :class:`CampaignError`.
    """

    def __init__(
        self,
        jobs: int,
        policy: ExecutorPolicy | None = None,
        pool: Executor | None = None,
    ):
        self.jobs = int(jobs)
        self.policy = policy if policy is not None else get_executor_policy()
        self._own_pool = pool is None
        self._pool: Executor = ProcessPoolExecutor(max_workers=self.jobs) if pool is None else pool
        self._rng = random.Random(self.policy.backoff_seed)
        self._seq = itertools.count()
        # Futures left behind (hung quarantined tasks, speculation losers
        # still running): if any is alive at close, workers are
        # terminated instead of joined.
        self._abandoned: set[Future] = set()
        self._known_pids: frozenset[int] = frozenset()
        self.quarantined: dict[str, str] = {}  # task key -> last error description

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the pool (no-op for external pools)."""
        if not self._own_pool:
            return
        if any(not fut.done() for fut in self._abandoned):
            _hard_shutdown(self._pool)
        else:
            self._pool.shutdown(wait=True, cancel_futures=True)

    # -- the drain ------------------------------------------------------------

    def run(
        self,
        tasks: Iterable[TaskSpec],
        *,
        phase: str = "shard",
        telemetry: CampaignTelemetry | None = None,
        span_name: str | None = None,
        span_parent: int | None = None,
    ) -> Iterator[tuple[str, Any]]:
        """Drain one phase: yield ``(key, result)`` as tasks resolve.

        Tasks that exhaust their attempts are quarantined, not raised —
        the phase always drains to completion and the caller decides
        (via :attr:`quarantined` / ``policy.allow_partial``) whether a
        partial sweep is an error.  When ``span_name`` is given and
        observability is on, each task gets a trace span from first
        launch to resolution.
        """
        policy = self.policy
        observer = get_observer()
        tracer, progress = observer.tracer, observer.progress
        tracker = ShardTracker(
            tracer,
            progress,
            kind=phase,
            interval=policy.heartbeat_interval_s,
            straggler_factor=policy.straggler_factor,
            min_samples=policy.min_samples,
        )
        self._known_pids = frozenset()  # re-announce pids to on_workers per phase
        states = {spec.key: _Task(spec) for spec in tasks}
        future_map: dict[Future, tuple[_Task, bool]] = {}  # future -> (task, speculative)
        retries: list[tuple[float, int, str]] = []  # (ready time, seq, key)
        open_keys = {k for k in states if k not in self.quarantined}

        def launch(task: _Task, speculative: bool = False) -> None:
            index = task.launches
            task.launches += 1
            task.last_launch_t = time.perf_counter()
            if index == 0:
                tracker.submitted(task.spec.key)
                if span_name is not None and observer.enabled:
                    task.span = tracer.open_span(
                        span_name, parent=span_parent, **task.spec.fields
                    )
            def submit() -> Future:
                if policy.chaos is not None:
                    return self._pool.submit(
                        _run_task, policy.chaos, task.spec.key, index,
                        task.spec.fn, task.spec.args,
                    )
                return self._pool.submit(task.spec.fn, *task.spec.args)

            try:
                fut = submit()
            except BrokenProcessPool as err:
                # The pool died before accepting this launch (e.g. an
                # abandoned speculative worker crashed between drain
                # rounds).  Rebuild, charge the in-flight casualties —
                # this launch was never accepted, so it is not one —
                # and submit to the fresh pool.
                pool_break(err, set())
                fut = submit()
            future_map[fut] = (task, speculative)
            task.futures.add(fut)

        def fail(task: _Task, err: BaseException, pool_wide: bool) -> None:
            if task.resolved or task.spec.key in self.quarantined or task.retry_pending:
                return
            if pool_wide:
                task.pool_failures += 1
            else:
                task.failures += 1
            exhausted = (
                task.failures >= policy.max_attempts
                or task.break_suspects >= 2 * policy.max_attempts
                or task.pool_failures >= 4 * policy.max_attempts
            )
            if exhausted:
                quarantine(task, err)
                return
            if telemetry is not None:
                telemetry.shard_retries += 1
            attempt = task.failures + task.pool_failures
            if observer.enabled:
                tracer.point(
                    "retry", key=task.spec.key, phase=phase,
                    attempt=attempt, error=repr(err),
                )
            # Exponential backoff with decorrelated jitter: each delay is
            # uniform in [base, 3 x previous], capped — retries of a
            # flapping worker spread out instead of thundering back in.
            prev = task.backoff_prev or policy.backoff_base_s
            delay = min(
                policy.backoff_cap_s,
                self._rng.uniform(policy.backoff_base_s, 3.0 * prev),
            )
            task.backoff_prev = delay
            task.retry_pending = True
            heapq.heappush(
                retries, (time.perf_counter() + delay, next(self._seq), task.spec.key)
            )

        def quarantine(task: _Task, err: BaseException | str) -> None:
            key = task.spec.key
            self.quarantined[key] = str(err) if isinstance(err, str) else repr(err)
            open_keys.discard(key)
            self._abandoned.update(task.futures)  # a hung worker may hold these
            if telemetry is not None:
                telemetry.shards_quarantined += 1
            if observer.enabled:
                tracer.point(
                    "quarantine", key=key, phase=phase,
                    attempts=task.launches, error=self.quarantined[key],
                )
                progress.note(
                    f"warning: {phase} {key} quarantined after "
                    f"{task.launches} launch(es): {self.quarantined[key]}"
                )
                if task.span >= 0:
                    tracer.close_span(task.span, quarantined=True)
                    task.span = -1

        def pool_break(err: BaseException, broken_tasks: set[_Task]) -> None:
            if not self._own_pool:
                raise CampaignError(
                    f"worker pool broke during {phase} and the external "
                    f"executor cannot be rebuilt: {err!r}"
                ) from err
            if telemetry is not None:
                telemetry.pool_rebuilds += 1
            if observer.enabled:
                tracer.point("pool_rebuild", phase=phase, error=repr(err))
                progress.note(f"warning: worker pool broke during {phase}; rebuilding")
            dead, self._pool = self._pool, ProcessPoolExecutor(max_workers=self.jobs)
            dead.shutdown(wait=False, cancel_futures=True)
            self._known_pids = frozenset()
            # Every in-flight future died with the pool — both the ones
            # the drain round already popped (``broken_tasks``) and any
            # still pending in ``future_map``: charge each unresolved
            # task one pool-wide failure and schedule its relaunch.  The
            # most recently launched open casualty is additionally
            # charged as the break's *suspect*: a task that kills its
            # worker dies within milliseconds of launching, so launch
            # recency attributes the break far better than charging the
            # whole blast radius equally.
            casualties = broken_tasks | {t for t, _ in future_map.values()}
            future_map.clear()
            open_casualties = [
                t for t in casualties
                if not t.resolved and t.spec.key not in self.quarantined
            ]
            suspect = max(
                open_casualties, key=lambda t: t.last_launch_t, default=None
            )
            if suspect is not None:
                suspect.break_suspects += 1
            for task in casualties:
                task.futures.clear()
                fail(task, err, pool_wide=True)

        def tick() -> None:
            now = time.perf_counter()
            if self.policy.on_workers is not None:
                pids = _worker_pids(self._pool)
                if pids and pids != self._known_pids:
                    self._known_pids = pids
                    self.policy.on_workers(phase, pids)
            tracker.tick()
            stalled = set(tracker.stragglers())
            for key in list(open_keys):
                task = states[key]
                if task.resolved or not task.live:
                    continue
                elapsed = now - task.last_launch_t
                is_stalled = key in stalled or (
                    policy.speculate_after_s is not None
                    and elapsed > policy.speculate_after_s
                )
                if not is_stalled:
                    continue
                if policy.speculate and not task.speculated and not task.retry_pending:
                    task.speculated = True
                    if telemetry is not None:
                        telemetry.speculative_launches += 1
                    if observer.enabled:
                        tracer.point(
                            "speculate", key=key, phase=phase, elapsed=round(elapsed, 3)
                        )
                        progress.note(
                            f"speculating {phase} {key} (stalled {elapsed:.1f}s)"
                        )
                    launch(task, speculative=True)
                elif (
                    policy.hang_timeout_s is not None
                    and elapsed > policy.hang_timeout_s
                    and (task.speculated or not policy.speculate)
                ):
                    quarantine(task, f"hung for {elapsed:.1f}s (timeout)")

        for task in states.values():
            if task.spec.key in open_keys:
                launch(task)

        while open_keys:
            now = time.perf_counter()
            while retries and retries[0][0] <= now:
                _, _, key = heapq.heappop(retries)
                task = states[key]
                task.retry_pending = False
                if not task.resolved and key in open_keys:
                    launch(task)
            timeout = tracker.interval
            if retries:
                timeout = min(timeout, max(0.0, retries[0][0] - now))
            if not future_map:
                if not retries:  # only quarantined hangs remain
                    break
                time.sleep(min(timeout, 0.1) or 0.01)
                continue
            done, _ = wait(set(future_map), timeout=timeout, return_when=FIRST_COMPLETED)
            broken: BaseException | None = None
            broken_tasks: set[_Task] = set()
            for fut in done:
                entry = future_map.pop(fut, None)
                if entry is None:  # invalidated by a pool rebuild this round
                    continue
                task, speculative = entry
                task.futures.discard(fut)
                try:
                    result = fut.result()
                except BrokenProcessPool as err:
                    broken = err
                    broken_tasks.add(task)
                    continue
                except CampaignError:
                    raise
                except BaseException as err:  # noqa: BLE001 - worker failure, retried
                    fail(task, err, pool_wide=False)
                    continue
                if task.resolved or task.spec.key in self.quarantined:
                    continue  # speculation loser or late success: discard
                task.resolved = True
                open_keys.discard(task.spec.key)
                tracker.completed(task.spec.key)
                self._abandoned.update(task.futures)  # losing duplicates, if any
                if speculative and telemetry is not None:
                    telemetry.speculative_wins += 1
                if task.span >= 0:
                    tracer.close_span(
                        task.span,
                        attempts=task.launches,
                        speculated=task.speculated,
                    )
                    task.span = -1
                yield task.spec.key, result
            if broken is not None:
                pool_break(broken, broken_tasks)
            tick()

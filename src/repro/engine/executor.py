"""Fault-tolerant shard execution: the pluggable engine behind ``run_sharded``.

The sharded drivers used to drain a bare ``ProcessPoolExecutor`` with
``f.result()``: one OOM-killed or segfaulted worker raised
``BrokenProcessPool`` in the parent and discarded everything since the
last checkpoint, and the straggler detector only ever printed warnings.
:class:`ShardExecutor` owns that failure surface for both sharded
phases:

* **Per-shard retry** with exponential backoff and decorrelated jitter
  for per-task worker exceptions.
* **Worker-loss recovery**: a dead local pool is rebuilt and a
  disconnected TCP worker's in-flight shards are requeued — results
  already yielded (and therefore checkpointed by the driver) are never
  lost.
* **Speculative re-execution** of stalled shards: the
  :class:`~repro.obs.heartbeat.ShardTracker` straggler signal (factor ×
  median completed duration) or an absolute ``speculate_after_s``
  ceiling launches one duplicate of a stalled task; first result wins.
  Shards are deterministic, so the duplicate's bytes are identical and
  speculation can never change a verdict.
* **Poison-shard quarantine**: a task that keeps failing (or keeps
  hanging past ``hang_timeout_s`` after speculation already tried) is
  quarantined instead of wedging the campaign; the sweep completes,
  quarantined work is reported distinctly through telemetry and trace
  points, and the driver raises at the very end unless
  ``allow_partial``.  A quarantined task that completes anyway before
  teardown is drained and logged (:attr:`ShardExecutor.late_results`),
  never silently dropped.

All of that recovery logic is written against the
:class:`~repro.engine.backends.ExecutorBackend` protocol — submission
ids in, completion/failure/worker-loss *events* out — so it behaves
identically whether the transport is the in-host process pool
(:class:`~repro.engine.backends.LocalPoolBackend`) or elastic TCP
workers (:class:`~repro.engine.distributed.TcpBackend`).

Every recovery action is recorded in :class:`CampaignTelemetry`
(``shard_retries``, ``speculative_launches``, ``speculative_wins``,
``pool_rebuilds``, ``shards_quarantined``, plus the distributed
counters ``workers_joined``/``workers_left``/``dist_steals``/
``dist_requeues``/``late_results``) and, when observability is on, as
``retry`` / ``speculate`` / ``pool_rebuild`` / ``quarantine`` /
``worker_join`` / ``worker_leave`` / ``requeue`` / ``late_result``
trace points that ``repro report`` renders as a recovery timeline.

The determinism contract is untouched: recovery only re-runs pure
worker functions, so any schedule of crashes, hangs, disconnects and
retries that the executor survives yields verdict bytes identical to
an undisturbed run (pinned by ``tests/seu/test_recovery.py`` and
``tests/engine/test_distributed.py``).  Chaos injection
(:mod:`repro.engine.chaos`) makes that claim testable on demand.

The active :class:`ExecutorPolicy` is ambient, mirroring
:mod:`repro.obs`: the CLI (or a test) activates retry/chaos/transport
knobs for a lexical scope with ``with executor_policy(policy): ...``
and the drivers pick it up via :func:`get_executor_policy` — no
adapter signature needs to thread it through.
"""

from __future__ import annotations

import heapq
import itertools
import random
import time
from concurrent.futures import Executor
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Iterator

from repro.engine.cache import fast_forward_scope, result_cache, result_cache_scope
from repro.engine.backends import (
    ExecutorBackend,
    TaskDone,
    TaskFailed,
    WorkerJoined,
    WorkerLeft,
    WorkersLost,
    _hard_shutdown,  # noqa: F401 - re-exported for compatibility
    _run_task,  # noqa: F401 - re-exported for compatibility (pickled by tests)
    _worker_pids,  # noqa: F401 - re-exported for compatibility
    make_backend,
)
from repro.engine.chaos import ChaosPolicy
from repro.engine.telemetry import CampaignTelemetry
from repro.errors import CampaignError
from repro.obs import get_observer
from repro.obs.heartbeat import ShardTracker

__all__ = [
    "ExecutorPolicy",
    "ShardExecutor",
    "TaskSpec",
    "executor_policy",
    "get_executor_policy",
    "DEFAULT_POLICY",
]


@dataclass(frozen=True)
class ExecutorPolicy:
    """Failure-handling and transport knobs for :class:`ShardExecutor`.

    ``max_attempts`` bounds per-task worker *exceptions*.  Worker-loss
    casualties (one worker death fails every in-flight shard on it,
    innocents included) are attributed by launch recency: a task that
    crashes its worker dies within milliseconds of launching, so the
    most recently launched casualty is charged as the *suspect* and
    quarantined after ``2 × max_attempts`` implications, while
    bystanders only count losses against a ``4 × max_attempts``
    backstop — a poison shard cannot drag a long-running healthy shard
    into quarantine with it, but an ambiguous break storm still
    terminates.  ``on_workers`` is a parent-side test hook called with
    ``(phase, live worker census)`` whenever the set changes (used by
    the SIGKILL recovery tests to aim at a real worker during a chosen
    phase).

    The transport block selects and configures the backend:
    ``transport`` names it (``"local"``/``"tcp"``); ``listen`` is the
    TCP bind address (``HOST:PORT``, port 0 for ephemeral);
    ``announce`` a file the bound address is written to (workers
    connect with ``@FILE``); ``min_workers`` how many workers must have
    joined before the first shard is dispatched (late joiners beyond
    that steal work whenever they arrive); ``worker_timeout_s`` the
    heartbeat silence after which a worker is declared lost and its
    in-flight shards requeued; ``join_timeout_s`` how long to wait for
    ``min_workers``.

    The caching block is tri-state: ``fast_forward`` ``None`` inherits
    the ambient ``REPRO_FAST_FORWARD`` toggle (golden-prefix snapshot
    starts, default on), ``True``/``False`` force it for the scope;
    ``result_cache`` ``None`` inherits ``REPRO_RESULT_CACHE``, a
    directory enables the content-addressed result store there, and the
    string ``"off"`` disables an inherited one.  :func:`executor_policy`
    exports both as environment variables so every worker the scope
    spawns — fork or spawn pools and ``repro worker`` children alike —
    sees the same configuration.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_seed: int | None = None
    speculate: bool = True
    speculate_after_s: float | None = None  # absolute stall ceiling (None: tracker only)
    straggler_factor: float = 4.0
    min_samples: int = 3
    heartbeat_interval_s: float = 2.0
    hang_timeout_s: float | None = None  # quarantine ceiling for hung tasks (None: never)
    allow_partial: bool = False
    chaos: ChaosPolicy | None = None
    on_workers: Callable[[str, frozenset], None] | None = None
    transport: str = "local"
    listen: str | None = None
    announce: str | None = None
    min_workers: int = 0
    worker_timeout_s: float = 30.0
    join_timeout_s: float = 60.0
    fast_forward: bool | None = None
    result_cache: str | None = None


DEFAULT_POLICY = ExecutorPolicy()

_policy: ExecutorPolicy = DEFAULT_POLICY


def get_executor_policy() -> ExecutorPolicy:
    """The ambient policy (``DEFAULT_POLICY`` unless inside a scope)."""
    return _policy


@contextmanager
def executor_policy(policy: ExecutorPolicy | None = None, **overrides: Any):
    """Install ``policy`` (or the default with ``overrides``) for a scope.

    The caching knobs (``fast_forward`` / ``result_cache``) are exported
    as environment variables for the scope when set, so worker processes
    launched inside it inherit them.
    """
    global _policy
    new = policy if policy is not None else DEFAULT_POLICY
    if overrides:
        new = replace(new, **overrides)
    previous = _policy
    _policy = new
    try:
        with ExitStack() as stack:
            if new.result_cache is not None:
                stack.enter_context(result_cache_scope(new.result_cache))
            if new.fast_forward is not None:
                stack.enter_context(fast_forward_scope(new.fast_forward))
            yield new
    finally:
        _policy = previous


@dataclass(frozen=True)
class TaskSpec:
    """One unit of sharded work: a picklable function and its arguments.

    ``key`` is the stable identity retries, speculation, chaos and
    quarantine reporting all hash on (e.g. ``"observe:3"``); ``fields``
    are extra span-open fields when the executor traces per-task spans.
    ``cache_key`` is the optional content address of the task's result:
    when the parent has an ambient result store the executor serves a
    hit instead of launching, and stores the result on completion (the
    same key usually also rides in ``args`` so workers can consult
    *their* local store — see :func:`repro.engine.sweep._shard_cache`).
    """

    key: str
    fn: Callable[..., Any]
    args: tuple
    fields: dict[str, Any] = field(default_factory=dict)
    cache_key: str | None = None


class _Task:
    """Parent-side lifecycle state of one :class:`TaskSpec`."""

    __slots__ = (
        "spec", "launches", "failures", "pool_failures", "break_suspects",
        "resolved", "speculated", "retry_pending", "last_launch_t",
        "backoff_prev", "sids", "span",
    )

    def __init__(self, spec: TaskSpec):
        self.spec = spec
        self.launches = 0
        self.failures = 0  # per-task worker exceptions
        self.pool_failures = 0  # worker-loss events this task was caught in
        self.break_suspects = 0  # losses where this task was the likely trigger
        self.resolved = False
        self.speculated = False
        self.retry_pending = False
        self.last_launch_t = 0.0
        self.backoff_prev = 0.0
        self.sids: set[int] = set()  # in-flight submission ids
        self.span = -1

    @property
    def live(self) -> bool:
        return bool(self.sids)


class ShardExecutor:
    """Failure-owning wrapper around an executor backend for sharded phases.

    One instance spans both campaign phases (pre-filter and observe) so
    warmed workers are reused; :meth:`run` drains one phase's tasks,
    yielding ``(key, result)`` in completion order, and :meth:`close`
    drains late results, then tears the transport down.

    With an external ``pool`` the executor never rebuilds or shuts it
    down (a synchronous test executor or a caller-shared pool keeps its
    historical semantics): a ``BrokenProcessPool`` there is re-raised
    as a :class:`CampaignError`.  ``backend`` overrides the transport
    entirely — an :class:`~repro.engine.backends.ExecutorBackend`
    instance is used (and closed) as-is, a name is resolved against the
    policy's transport block.
    """

    def __init__(
        self,
        jobs: int,
        policy: ExecutorPolicy | None = None,
        pool: Executor | None = None,
        backend: ExecutorBackend | str | None = None,
    ):
        self.jobs = int(jobs)
        self.policy = policy if policy is not None else get_executor_policy()
        self.backend = make_backend(backend, self.policy, self.jobs, pool)
        self._rng = random.Random(self.policy.backoff_seed)
        self._seq = itertools.count()
        self._sids: dict[int, tuple[_Task, bool]] = {}  # sid -> (task, speculative)
        self._known_census: frozenset = frozenset()
        self._phase = "shard"
        self._telemetry: CampaignTelemetry | None = None
        self.quarantined: dict[str, str] = {}  # task key -> last error description
        self.late_results: dict[str, Any] = {}  # quarantined key -> late result

    # -- lifecycle ------------------------------------------------------------

    def prime_blob(self, blob: bytes) -> str | bytes:
        """Register a shared blob with the transport; tasks carry the ref.

        Local owned pools install it into every worker via the pool
        initializer (rebuilds re-prime exactly once); the TCP backend
        uploads it once per worker; external pools fall back to the raw
        bytes riding in task args.
        """
        return self.backend.blob_ref(blob)

    def _record_late(self, task: _Task, result: Any) -> None:
        """A quarantined (or otherwise written-off) task completed anyway.

        The verdict already excludes it — re-incorporating out-of-band
        results would break the batch-aligned resume contract — but the
        completion is drained and logged so ``--allow-partial`` reports
        say which quarantined shards actually finished (a re-run will
        resolve them cheaply).
        """
        key = task.spec.key
        self.late_results[key] = result
        if self._telemetry is not None:
            self._telemetry.late_results += 1
        observer = get_observer()
        if observer.enabled:
            observer.tracer.point("late_result", key=key, phase=self._phase)
            observer.progress.note(
                f"note: quarantined {self._phase} {key} completed late "
                f"(result logged, not folded; a re-run will retry it)"
            )

    def close(self) -> None:
        """Drain late completions, then release the transport."""
        try:
            for ev in self.backend.poll(0.0):
                if not isinstance(ev, TaskDone):
                    continue
                entry = self._sids.pop(ev.sid, None)
                if entry is not None and not entry[0].resolved:
                    self._record_late(entry[0], ev.result)
        except CampaignError:
            pass  # teardown must not mask the caller's outcome
        finally:
            self.backend.close()

    # -- the drain ------------------------------------------------------------

    def run(
        self,
        tasks: Iterable[TaskSpec],
        *,
        phase: str = "shard",
        telemetry: CampaignTelemetry | None = None,
        span_name: str | None = None,
        span_parent: int | None = None,
    ) -> Iterator[tuple[str, Any]]:
        """Drain one phase: yield ``(key, result)`` as tasks resolve.

        Tasks that exhaust their attempts are quarantined, not raised —
        the phase always drains to completion and the caller decides
        (via :attr:`quarantined` / ``policy.allow_partial``) whether a
        partial sweep is an error.  When ``span_name`` is given and
        observability is on, each task gets a trace span from first
        launch to resolution.
        """
        policy = self.policy
        observer = get_observer()
        tracer, progress = observer.tracer, observer.progress
        tracker = ShardTracker(
            tracer,
            progress,
            kind=phase,
            interval=policy.heartbeat_interval_s,
            straggler_factor=policy.straggler_factor,
            min_samples=policy.min_samples,
        )
        self._known_census = frozenset()  # re-announce workers per phase
        self._phase = phase
        self._telemetry = telemetry
        remote = self.backend.name != "local"
        store = result_cache()
        states = {spec.key: _Task(spec) for spec in tasks}
        retries: list[tuple[float, int, str]] = []  # (ready time, seq, key)
        open_keys = {k for k in states if k not in self.quarantined}

        def launch(task: _Task, speculative: bool = False) -> None:
            index = task.launches
            task.launches += 1
            task.last_launch_t = time.perf_counter()
            if index == 0:
                tracker.submitted(task.spec.key)
                if span_name is not None and observer.enabled:
                    task.span = tracer.open_span(
                        span_name, parent=span_parent, **task.spec.fields
                    )
            sid = next(self._seq)
            self._sids[sid] = (task, speculative)
            task.sids.add(sid)
            self.backend.submit(sid, task.spec, index, policy.chaos)

        def fail(task: _Task, err: BaseException | str, pool_wide: bool) -> None:
            if task.resolved or task.spec.key in self.quarantined or task.retry_pending:
                return
            if pool_wide:
                task.pool_failures += 1
            else:
                task.failures += 1
            exhausted = (
                task.failures >= policy.max_attempts
                or task.break_suspects >= 2 * policy.max_attempts
                or task.pool_failures >= 4 * policy.max_attempts
            )
            if exhausted:
                quarantine(task, err)
                return
            if telemetry is not None:
                telemetry.shard_retries += 1
            attempt = task.failures + task.pool_failures
            if observer.enabled:
                tracer.point(
                    "retry", key=task.spec.key, phase=phase,
                    attempt=attempt, error=repr(err),
                )
            # Exponential backoff with decorrelated jitter: each delay is
            # uniform in [base, 3 x previous], capped — retries of a
            # flapping worker spread out instead of thundering back in.
            prev = task.backoff_prev or policy.backoff_base_s
            delay = min(
                policy.backoff_cap_s,
                self._rng.uniform(policy.backoff_base_s, 3.0 * prev),
            )
            task.backoff_prev = delay
            task.retry_pending = True
            heapq.heappush(
                retries, (time.perf_counter() + delay, next(self._seq), task.spec.key)
            )

        def quarantine(task: _Task, err: BaseException | str) -> None:
            key = task.spec.key
            self.quarantined[key] = str(err) if isinstance(err, str) else repr(err)
            open_keys.discard(key)
            # Still-running launches are written off — but their sid
            # entries stay known so a completion that races teardown is
            # logged as a late result instead of vanishing.
            self.backend.abandon(task.sids)
            if telemetry is not None:
                telemetry.shards_quarantined += 1
            if observer.enabled:
                tracer.point(
                    "quarantine", key=key, phase=phase,
                    attempts=task.launches, error=self.quarantined[key],
                )
                progress.note(
                    f"warning: {phase} {key} quarantined after "
                    f"{task.launches} launch(es): {self.quarantined[key]}"
                )
                if task.span >= 0:
                    tracer.close_span(task.span, quarantined=True)
                    task.span = -1

        def workers_lost(ev: WorkersLost) -> None:
            if ev.fatal:
                raise CampaignError(
                    f"worker pool broke during {phase} and the external "
                    f"executor cannot be rebuilt: {ev.error}"
                )
            if ev.rebuilt:
                if telemetry is not None:
                    telemetry.pool_rebuilds += 1
                if observer.enabled:
                    tracer.point("pool_rebuild", phase=phase, error=ev.error)
                    progress.note(
                        f"warning: worker pool broke during {phase}; rebuilding"
                    )
            # Charge each unresolved casualty one worker-loss failure and
            # schedule its relaunch.  The most recently launched open
            # casualty is additionally charged as the loss's *suspect*:
            # a task that kills its worker dies within milliseconds of
            # launching, so launch recency attributes the loss far
            # better than charging the whole blast radius equally.
            casualties: list[_Task] = []
            for sid in ev.sids:
                entry = self._sids.pop(sid, None)
                if entry is None:
                    continue
                task = entry[0]
                task.sids.discard(sid)
                casualties.append(task)
                if ev.worker is not None:
                    if telemetry is not None:
                        telemetry.dist_requeues += 1
                    if observer.enabled:
                        tracer.point(
                            "requeue", key=task.spec.key, phase=phase,
                            worker=ev.worker,
                        )
            open_casualties = [
                t for t in casualties
                if not t.resolved and t.spec.key not in self.quarantined
            ]
            suspect = max(
                open_casualties, key=lambda t: t.last_launch_t, default=None
            )
            if suspect is not None:
                suspect.break_suspects += 1
            for task in casualties:
                fail(task, ev.error, pool_wide=True)

        def handle(ev: Any) -> Iterator[tuple[str, Any]]:
            if isinstance(ev, TaskDone):
                entry = self._sids.pop(ev.sid, None)
                if entry is None:
                    return
                task, speculative = entry
                task.sids.discard(ev.sid)
                if ev.worker is not None and telemetry is not None:
                    telemetry.worker_tasks[ev.worker] = (
                        telemetry.worker_tasks.get(ev.worker, 0) + 1
                    )
                    if ev.stolen:
                        telemetry.dist_steals += 1
                if task.resolved:
                    return  # speculation loser: byte-identical duplicate
                if task.spec.key in self.quarantined:
                    self._record_late(task, ev.result)
                    return
                task.resolved = True
                open_keys.discard(task.spec.key)
                tracker.completed(task.spec.key)
                self.backend.abandon(task.sids)  # losing duplicates, if any
                if store is not None and task.spec.cache_key is not None:
                    store.put(task.spec.cache_key, ev.result)
                if speculative and telemetry is not None:
                    telemetry.speculative_wins += 1
                if task.span >= 0:
                    tracer.close_span(
                        task.span,
                        attempts=task.launches,
                        speculated=task.speculated,
                        worker=ev.worker,
                    )
                    task.span = -1
                yield task.spec.key, ev.result
            elif isinstance(ev, TaskFailed):
                entry = self._sids.pop(ev.sid, None)
                if entry is None:
                    return
                task = entry[0]
                task.sids.discard(ev.sid)
                fail(task, ev.error, pool_wide=False)
            elif isinstance(ev, WorkersLost):
                workers_lost(ev)
            elif isinstance(ev, WorkerJoined):
                if telemetry is not None:
                    telemetry.workers_joined += 1
                if observer.enabled:
                    tracer.point("worker_join", worker=ev.worker, phase=phase)
                    progress.note(f"worker {ev.worker} joined during {phase}")
            elif isinstance(ev, WorkerLeft):
                if telemetry is not None:
                    telemetry.workers_left += 1
                if observer.enabled:
                    tracer.point(
                        "worker_leave", worker=ev.worker, phase=phase,
                        reason=ev.reason,
                    )
                    progress.note(
                        f"worker {ev.worker} left during {phase} ({ev.reason})"
                    )

        def tick() -> None:
            now = time.perf_counter()
            if self.policy.on_workers is not None:
                census = self.backend.census()
                if census and census != self._known_census:
                    self._known_census = census
                    self.policy.on_workers(phase, census)
            tracker.tick(self.backend.census_detail() if remote else None)
            stalled = set(tracker.stragglers())
            for key in list(open_keys):
                task = states[key]
                if task.resolved or not task.live:
                    continue
                elapsed = now - task.last_launch_t
                is_stalled = key in stalled or (
                    policy.speculate_after_s is not None
                    and elapsed > policy.speculate_after_s
                )
                if not is_stalled:
                    continue
                if policy.speculate and not task.speculated and not task.retry_pending:
                    task.speculated = True
                    if telemetry is not None:
                        telemetry.speculative_launches += 1
                    if observer.enabled:
                        tracer.point(
                            "speculate", key=key, phase=phase, elapsed=round(elapsed, 3)
                        )
                        progress.note(
                            f"speculating {phase} {key} (stalled {elapsed:.1f}s)"
                        )
                    launch(task, speculative=True)
                elif (
                    policy.hang_timeout_s is not None
                    and elapsed > policy.hang_timeout_s
                    and (task.speculated or not policy.speculate)
                ):
                    quarantine(task, f"hung for {elapsed:.1f}s (timeout)")

        # Initial dispatch.  A task whose result is already in the
        # parent's store resolves here without ever launching — the
        # warm-cache path of a repeated (or killed-and-resumed) sweep.
        for task in states.values():
            if task.spec.key not in open_keys:
                continue
            if store is not None and task.spec.cache_key is not None:
                hit = store.get(task.spec.cache_key)
                if hit is not None:
                    task.resolved = True
                    open_keys.discard(task.spec.key)
                    if observer.enabled:
                        tracer.point(
                            "cache_hit", scope="shard",
                            key=task.spec.key, phase=phase,
                        )
                    yield task.spec.key, hit
                    continue
            launch(task)

        while open_keys:
            now = time.perf_counter()
            while retries and retries[0][0] <= now:
                _, _, key = heapq.heappop(retries)
                task = states[key]
                task.retry_pending = False
                if not task.resolved and key in open_keys:
                    launch(task)
            timeout = tracker.interval
            if retries:
                timeout = min(timeout, max(0.0, retries[0][0] - now))
            if not any(states[k].live for k in open_keys):
                if not retries:  # only quarantined hangs remain
                    break
                timeout = min(timeout, 0.1) or 0.01
            for ev in self.backend.poll(timeout):
                yield from handle(ev)
            tick()

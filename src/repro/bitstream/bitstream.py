"""Frame-addressable configuration memory backed by one numpy array.

One :class:`ConfigBitstream` is the full configuration state of one
device: every CLB, IOB, clock, BRAM-interconnect and BRAM-content bit.
Storage is a flat ``uint8`` bit vector; frames are views into it, so
frame writes are in-place and bit flips are O(1) — both matter in the
fault-injection hot loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BitstreamError, FrameAddressError
from repro.bitstream.frame import FrameData
from repro.fpga.geometry import DeviceGeometry

__all__ = ["ConfigBitstream"]


class ConfigBitstream:
    """Mutable configuration memory for one device geometry."""

    def __init__(self, geometry: DeviceGeometry, bits: np.ndarray | None = None):
        self.geometry = geometry
        if bits is None:
            self._bits = np.zeros(geometry.total_bits, dtype=np.uint8)
        else:
            bits = np.asarray(bits, dtype=np.uint8)
            if bits.shape != (geometry.total_bits,):
                raise BitstreamError(
                    f"bitstream shape {bits.shape} does not match geometry "
                    f"({geometry.total_bits} bits)"
                )
            self._bits = bits.copy()

    # -- whole-stream access ------------------------------------------------

    @property
    def bits(self) -> np.ndarray:
        """The underlying bit vector.  Mutations are visible immediately.

        Exposed read-write deliberately: the fault injector and the batch
        campaign patch bits in place.
        """
        return self._bits

    @property
    def n_bits(self) -> int:
        return int(self._bits.size)

    def copy(self) -> "ConfigBitstream":
        return ConfigBitstream(self.geometry, self._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfigBitstream):
            return NotImplemented
        return self.geometry == other.geometry and np.array_equal(
            self._bits, other._bits
        )

    # -- single-bit access ----------------------------------------------------

    def get_bit(self, linear: int) -> int:
        self._check_linear(linear)
        return int(self._bits[linear])

    def set_bit(self, linear: int, value: int) -> None:
        self._check_linear(linear)
        if value not in (0, 1):
            raise BitstreamError(f"bit value must be 0 or 1, got {value}")
        self._bits[linear] = value

    def flip_bit(self, linear: int) -> int:
        """Invert one bit (the SEU model); returns the new value."""
        self._check_linear(linear)
        self._bits[linear] ^= 1
        return int(self._bits[linear])

    def _check_linear(self, linear: int) -> None:
        if not 0 <= linear < self._bits.size:
            raise BitstreamError(
                f"linear bit {linear} out of range [0, {self._bits.size})"
            )

    # -- frame access ------------------------------------------------------

    def frame_view(self, frame_index: int) -> np.ndarray:
        """Writable view of one frame's bits (no copy)."""
        off = self.geometry.frame_offset(frame_index)
        n = self.geometry.frame_bits_of(frame_index)
        return self._bits[off : off + n]

    def read_frame(self, frame_index: int) -> FrameData:
        """Copy of one frame, as readback would return it."""
        return FrameData(frame_index, self.frame_view(frame_index).copy())

    def write_frame(self, frame: FrameData) -> None:
        """Overwrite one frame (a partial reconfiguration)."""
        view = self.frame_view(frame.frame_index)
        if frame.n_bits != view.size:
            raise FrameAddressError(
                f"frame {frame.frame_index} expects {view.size} bits, "
                f"got {frame.n_bits}"
            )
        view[:] = frame.bits

    def locate(self, linear: int) -> tuple[int, int]:
        """(frame_index, bit_in_frame) of a linear bit offset.

        Binary search over the monotone frame-offset table.
        """
        self._check_linear(linear)
        offsets = self.geometry.frame_offsets
        frame = int(np.searchsorted(offsets, linear, side="right")) - 1
        return frame, linear - int(offsets[frame])

    # -- comparison ------------------------------------------------------------

    def diff(self, other: "ConfigBitstream") -> np.ndarray:
        """Linear indices where this bitstream differs from ``other``."""
        if self.geometry != other.geometry:
            raise BitstreamError("cannot diff bitstreams of different geometries")
        return np.flatnonzero(self._bits != other._bits)

    def corrupted_frames(self, golden: "ConfigBitstream") -> list[int]:
        """Frame indices containing at least one differing bit."""
        seen: set[int] = set()
        for linear in self.diff(golden):
            seen.add(self.locate(int(linear))[0])
        return sorted(seen)

"""CRC-16/CCITT for frame integrity checking.

The fault manager computes a CRC for every frame of every readback and
compares it with a stored codebook (paper section II-A).  We use
CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), table-driven.

Two call shapes matter:

* :func:`crc16` — one byte buffer, used for single-frame repairs;
* :func:`crc16_frame_matrix` — a ``(n_frames, n_bytes)`` matrix processed
  column-by-column with the whole frame axis vectorised.  A full-device
  scan checks thousands of frames; the per-frame Python-loop version
  would dominate the scrub benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitops import pack_bits

__all__ = ["CRC_POLY", "CRC_INIT", "crc16", "crc16_bits", "crc16_frame_matrix"]

CRC_POLY = 0x1021
CRC_INIT = 0xFFFF


def _build_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint16)
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ CRC_POLY) if (crc & 0x8000) else (crc << 1)
            crc &= 0xFFFF
        table[byte] = crc
    return table


_TABLE = _build_table()


def crc16(data: np.ndarray | bytes) -> int:
    """CRC-16/CCITT-FALSE of a byte buffer."""
    buf = np.frombuffer(bytes(data), dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
    crc = CRC_INIT
    for byte in buf:
        crc = ((crc << 8) & 0xFFFF) ^ int(_TABLE[((crc >> 8) ^ int(byte)) & 0xFF])
    return crc


def crc16_bits(bits: np.ndarray) -> int:
    """CRC of a bit vector (packed little-endian first, as SelectMAP sends it)."""
    return crc16(pack_bits(bits))


def crc16_frame_matrix(frames: np.ndarray) -> np.ndarray:
    """CRC of every row of a ``(n_frames, n_bytes)`` uint8 matrix.

    Vectorised across frames: the loop runs over byte *columns* (a frame
    is ~156 bytes) while each step updates all frame CRCs at once.
    """
    frames = np.asarray(frames, dtype=np.uint8)
    if frames.ndim != 2:
        raise ValueError("expected a 2-D (n_frames, n_bytes) matrix")
    crc = np.full(frames.shape[0], CRC_INIT, dtype=np.uint16)
    for col in range(frames.shape[1]):
        idx = ((crc >> 8) ^ frames[:, col]).astype(np.uint16) & 0xFF
        crc = ((crc << 8) & np.uint16(0xFFFF)) ^ _TABLE[idx]
    return crc

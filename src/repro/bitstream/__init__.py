"""Configuration bitstream: storage, CRC checking, SelectMAP access.

The bitstream is the central artifact of the paper: SEUs corrupt it,
readback observes it, partial reconfiguration repairs it, and the fault
injector flips chosen bits in it.
"""

from repro.bitstream.bitstream import ConfigBitstream
from repro.bitstream.crc import crc16, crc16_bits, crc16_frame_matrix
from repro.bitstream.codebook import CRCCodebook
from repro.bitstream.frame import FrameData
from repro.bitstream.packets import (
    ConfigPacket,
    PacketOp,
    decode_packet_stream,
    encode_readback,
    encode_write_frame,
)
from repro.bitstream.selectmap import SelectMapPort, SelectMapTiming

__all__ = [
    "ConfigBitstream",
    "FrameData",
    "crc16",
    "crc16_bits",
    "crc16_frame_matrix",
    "CRCCodebook",
    "ConfigPacket",
    "PacketOp",
    "encode_write_frame",
    "encode_readback",
    "decode_packet_stream",
    "SelectMapPort",
    "SelectMapTiming",
]

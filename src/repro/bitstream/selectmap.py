"""SelectMAP configuration port with a byte-rate timing model.

The Virtex SelectMAP interface is the byte-wide port through which the
Actel fault manager reads back configurations (while the design keeps
running — "no interruption of service", paper section II-A) and through
which corrupted frames are repaired.

Every operation advances an attached :class:`~repro.utils.simtime.SimClock`
by its modeled cost.  Default timing is calibrated so that a full
readback + CRC scan of one XQVR1000 takes ~60 ms — three devices per
board then take the paper's ~180 ms cycle.

Observers can subscribe to configuration events; the configured-device
model uses this to re-decode after writes and to apply the paper's
readback side effects (half-latch initialisation happens only on *full*
configuration start-up; BRAM output registers are corrupted by readback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.bitstream.crc import crc16_frame_matrix
from repro.bitstream.frame import FrameData
from repro.errors import BitstreamError
from repro.fpga.geometry import FrameKind
from repro.utils.simtime import SimClock

__all__ = ["SelectMapTiming", "SelectMapPort"]


@dataclass(frozen=True)
class SelectMapTiming:
    """Timing parameters of the port.

    ``per_byte_s`` covers the raw byte clock; ``scan_overhead_per_byte_s``
    adds the fault manager's CRC/compare pipeline cost during scans;
    ``op_overhead_s`` is fixed command setup per operation.
    """

    per_byte_s: float = 20e-9  # 50 MHz byte clock
    scan_overhead_per_byte_s: float = 62.6e-9
    op_overhead_s: float = 5e-6

    def transfer_time(self, n_bytes: int) -> float:
        return self.op_overhead_s + n_bytes * self.per_byte_s

    def scan_time(self, n_bytes: int) -> float:
        return self.op_overhead_s + n_bytes * (
            self.per_byte_s + self.scan_overhead_per_byte_s
        )


class SelectMapPort:
    """Byte-wide configuration access to one device's config memory."""

    def __init__(
        self,
        memory: ConfigBitstream,
        clock: SimClock | None = None,
        timing: SelectMapTiming | None = None,
    ):
        self.memory = memory
        self.clock = clock if clock is not None else SimClock()
        self.timing = timing if timing is not None else SelectMapTiming()
        #: called after a full configuration (start-up sequence runs)
        self.on_full_configure: list[Callable[[], None]] = []
        #: called after each partial frame write, with the frame index
        self.on_partial_write: list[Callable[[int], None]] = []
        #: called after each frame readback, with the frame index
        self.on_readback: list[Callable[[int], None]] = []
        # Statistics the benchmarks report.
        self.n_full_configs = 0
        self.n_frame_writes = 0
        self.n_frame_reads = 0
        self.bytes_transferred = 0

    # -- configuration ---------------------------------------------------

    def full_configure(self, golden: ConfigBitstream) -> float:
        """Load a complete bitstream and run the start-up sequence.

        Returns the modeled duration.  This is the only operation that
        re-initialises half-latches (observers implement that).
        """
        if golden.geometry != self.memory.geometry:
            raise BitstreamError("bitstream geometry does not match device")
        self.memory.bits[:] = golden.bits
        n_bytes = (self.memory.n_bits + 7) // 8
        dt = self.timing.transfer_time(n_bytes)
        self.clock.advance(dt)
        self.bytes_transferred += n_bytes
        self.n_full_configs += 1
        for cb in self.on_full_configure:
            cb()
        return dt

    def write_frame(self, frame: FrameData) -> float:
        """Partial reconfiguration of a single frame (no start-up).

        This is the paper's repair primitive: 156 bytes on the XQVR1000.
        """
        self.memory.write_frame(frame)
        dt = self.timing.transfer_time(frame.n_bytes)
        self.clock.advance(dt)
        self.bytes_transferred += frame.n_bytes
        self.n_frame_writes += 1
        for cb in self.on_partial_write:
            cb(frame.frame_index)
        return dt

    # -- readback -----------------------------------------------------------

    def read_frame(self, frame_index: int) -> FrameData:
        """Read one frame back; design keeps running."""
        frame = self.memory.read_frame(frame_index)
        self.clock.advance(self.timing.transfer_time(frame.n_bytes))
        self.bytes_transferred += frame.n_bytes
        self.n_frame_reads += 1
        for cb in self.on_readback:
            cb(frame_index)
        return frame

    def scan_crcs(self, include_bram_content: bool = False) -> tuple[np.ndarray, float]:
        """Read back every frame and return all frame CRCs.

        CRCs of equal-length frame groups are computed with the
        vectorised column-parallel kernel.  Returns ``(crcs, dt)`` where
        ``crcs[f]`` is the CRC of frame ``f`` (0xFFFF placeholder for
        skipped BRAM-content frames) and ``dt`` the modeled scan time.
        """
        geo = self.memory.geometry
        crcs = np.full(geo.n_frames, 0xFFFF, dtype=np.uint16)
        scanned_bytes = 0
        # Group frames by bit length so each group packs into a matrix.
        groups: dict[int, list[int]] = {}
        for f in range(geo.n_frames):
            kind = geo.frame_address(f).kind
            if kind is FrameKind.BRAM_CONTENT and not include_bram_content:
                continue
            groups.setdefault(geo.frame_bits_of(f), []).append(f)
        for n_bits, frame_indices in groups.items():
            n_bytes = (n_bits + 7) // 8
            mat = np.zeros((len(frame_indices), n_bytes), dtype=np.uint8)
            for i, f in enumerate(frame_indices):
                mat[i] = np.packbits(self.memory.frame_view(f), bitorder="little")
            crcs[frame_indices] = crc16_frame_matrix(mat)
            scanned_bytes += n_bytes * len(frame_indices)
        dt = self.timing.scan_time(scanned_bytes)
        self.clock.advance(dt)
        self.bytes_transferred += scanned_bytes
        self.n_frame_reads += len([f for fs in groups.values() for f in fs])
        for frame_indices in groups.values():
            for f in frame_indices:
                for cb in self.on_readback:
                    cb(f)
        return crcs, dt

"""A single configuration frame: bits plus its address.

Frames are the smallest reconfigurable unit on Virtex (the paper repairs
exactly one — 156 bytes on the XQVR1000).  :class:`FrameData` is a small
value object passed between readback, CRC checking and repair paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BitstreamError
from repro.utils.bitops import pack_bits, unpack_bits

__all__ = ["FrameData"]


@dataclass
class FrameData:
    """Bits of one frame, tagged with its linear frame index."""

    frame_index: int
    bits: np.ndarray  # uint8 vector, one element per bit

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=np.uint8)
        if self.bits.ndim != 1:
            raise BitstreamError("frame bits must be a 1-D vector")
        if not np.all(self.bits <= 1):
            raise BitstreamError("frame bits must be 0/1 valued")

    @property
    def n_bits(self) -> int:
        return int(self.bits.size)

    @property
    def n_bytes(self) -> int:
        return (self.n_bits + 7) // 8

    def to_bytes(self) -> np.ndarray:
        """Pack into a byte vector (for SelectMAP transfer / flash storage)."""
        return pack_bits(self.bits)

    @classmethod
    def from_bytes(cls, frame_index: int, data: np.ndarray, n_bits: int) -> "FrameData":
        """Unpack a byte vector received over SelectMAP."""
        return cls(frame_index, unpack_bits(data, n_bits))

    def copy(self) -> "FrameData":
        return FrameData(self.frame_index, self.bits.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrameData):
            return NotImplemented
        return self.frame_index == other.frame_index and np.array_equal(
            self.bits, other.bits
        )

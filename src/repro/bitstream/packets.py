"""Configuration packet encoding for SelectMAP transfers.

The flight system stores configuration data in flash and replays it over
SelectMAP; ground commands upload new configurations as packet streams.
We model a compact packet format (inspired by the Virtex type-1/type-2
packet headers) sufficient for full configuration, partial frame writes
and readback commands:

========  ======================================================
byte      meaning
========  ======================================================
0         sync byte ``0xAA``
1         opcode (:class:`PacketOp`)
2..5      frame index, little-endian (0 for non-frame ops)
6..7      payload byte count, little-endian
8..       payload
========  ======================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import BitstreamError

__all__ = [
    "PacketOp",
    "ConfigPacket",
    "encode_write_frame",
    "encode_readback",
    "decode_packet_stream",
    "HEADER_BYTES",
    "SYNC_BYTE",
]

HEADER_BYTES = 8
SYNC_BYTE = 0xAA


class PacketOp(enum.IntEnum):
    """Operations a configuration packet can request."""

    WRITE_FRAME = 1
    READ_FRAME = 2
    FULL_CONFIG = 3
    STARTUP = 4
    RESET = 5


@dataclass
class ConfigPacket:
    """One decoded configuration packet."""

    op: PacketOp
    frame_index: int = 0
    payload: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint8))

    def __post_init__(self) -> None:
        self.payload = np.asarray(self.payload, dtype=np.uint8)
        if self.payload.size > 0xFFFF:
            raise BitstreamError("packet payload exceeds 64 KiB")

    def encode(self) -> np.ndarray:
        """Serialise to a byte vector."""
        header = np.zeros(HEADER_BYTES, dtype=np.uint8)
        header[0] = SYNC_BYTE
        header[1] = int(self.op)
        header[2:6] = np.frombuffer(
            int(self.frame_index).to_bytes(4, "little"), dtype=np.uint8
        )
        header[6:8] = np.frombuffer(
            int(self.payload.size).to_bytes(2, "little"), dtype=np.uint8
        )
        return np.concatenate([header, self.payload])

    @property
    def n_bytes(self) -> int:
        return HEADER_BYTES + int(self.payload.size)


def encode_write_frame(frame_index: int, frame_bytes: np.ndarray) -> np.ndarray:
    """Packet stream performing one partial-reconfiguration frame write."""
    return ConfigPacket(PacketOp.WRITE_FRAME, frame_index, frame_bytes).encode()


def encode_readback(frame_index: int) -> np.ndarray:
    """Packet stream requesting readback of one frame."""
    return ConfigPacket(PacketOp.READ_FRAME, frame_index).encode()


def decode_packet_stream(data: np.ndarray | bytes) -> list[ConfigPacket]:
    """Parse a byte stream into packets; raises on any framing error."""
    buf = (
        np.frombuffer(bytes(data), dtype=np.uint8)
        if isinstance(data, (bytes, bytearray))
        else np.asarray(data, dtype=np.uint8)
    )
    packets: list[ConfigPacket] = []
    pos = 0
    while pos < buf.size:
        if buf.size - pos < HEADER_BYTES:
            raise BitstreamError(f"truncated packet header at byte {pos}")
        if buf[pos] != SYNC_BYTE:
            raise BitstreamError(f"bad sync byte 0x{int(buf[pos]):02x} at byte {pos}")
        try:
            op = PacketOp(int(buf[pos + 1]))
        except ValueError:
            raise BitstreamError(f"unknown opcode {int(buf[pos + 1])} at byte {pos}") from None
        frame_index = int.from_bytes(bytes(buf[pos + 2 : pos + 6]), "little")
        n_payload = int.from_bytes(bytes(buf[pos + 6 : pos + 8]), "little")
        end = pos + HEADER_BYTES + n_payload
        if end > buf.size:
            raise BitstreamError(f"truncated payload for packet at byte {pos}")
        packets.append(ConfigPacket(op, frame_index, buf[pos + HEADER_BYTES : end].copy()))
        pos = end
    return packets

"""Golden-CRC codebook (paper Figure 4, "Load CRC Codebook").

On orbit the Actel fault manager holds, in local SRAM, the expected CRC
of every frame of every loaded configuration.  Readback CRCs are compared
against this codebook; any mismatch identifies the corrupted device and
frame, which is then repaired by partial reconfiguration.

The codebook supports *masking*: frames whose content legitimately
changes at run time (LUT RAMs, BRAM content — see paper section II-C)
are excluded from checking, exactly as the flight system must either
mask or stop the clock for them.
"""

from __future__ import annotations

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.bitstream.crc import crc16_bits
from repro.errors import FrameAddressError

__all__ = ["CRCCodebook"]


class CRCCodebook:
    """Expected per-frame CRCs for one golden configuration."""

    def __init__(self, crcs: np.ndarray, masked: set[int] | None = None):
        self._crcs = np.asarray(crcs, dtype=np.uint16)
        self.masked = set(masked or ())

    @classmethod
    def from_bitstream(
        cls, golden: ConfigBitstream, masked: set[int] | None = None
    ) -> "CRCCodebook":
        """Compute the codebook of a golden bitstream.

        Frames have unequal lengths across block types, so this packs and
        CRCs each frame individually; it runs once per configuration load,
        not per scrub scan.
        """
        crcs = np.empty(golden.geometry.n_frames, dtype=np.uint16)
        for f in range(golden.geometry.n_frames):
            crcs[f] = crc16_bits(golden.frame_view(f))
        return cls(crcs, masked)

    @property
    def n_frames(self) -> int:
        return int(self._crcs.size)

    def expected(self, frame_index: int) -> int:
        if not 0 <= frame_index < self._crcs.size:
            raise FrameAddressError(f"frame {frame_index} not in codebook")
        return int(self._crcs[frame_index])

    def check_frame(self, frame_index: int, bits: np.ndarray) -> bool:
        """True when the frame readback matches (or the frame is masked)."""
        if frame_index in self.masked:
            return True
        return crc16_bits(bits) == self.expected(frame_index)

    def check_crcs(self, crcs: np.ndarray) -> np.ndarray:
        """Frame indices whose CRC mismatches, given all readback CRCs.

        This is the vectorised scan path: the scrub manager computes all
        frame CRCs with :func:`repro.bitstream.crc.crc16_frame_matrix`
        and diffs them against the codebook in one shot.
        """
        crcs = np.asarray(crcs, dtype=np.uint16)
        if crcs.shape != self._crcs.shape:
            raise FrameAddressError(
                f"expected {self._crcs.size} CRCs, got {crcs.size}"
            )
        bad = np.flatnonzero(crcs != self._crcs)
        if self.masked:
            bad = np.array([f for f in bad if int(f) not in self.masked], dtype=bad.dtype)
        return bad

    def mask_frame(self, frame_index: int) -> None:
        """Exclude a frame from checking (LUT-RAM / BRAM content frames)."""
        if not 0 <= frame_index < self._crcs.size:
            raise FrameAddressError(f"frame {frame_index} not in codebook")
        self.masked.add(frame_index)

"""Upset cross-sections: the Weibull LET curve and device aggregates.

Heavy-ion testing of the XQVR parts (paper section I, citing Fuller et
al.) measured an SEU threshold LET of 1.2 MeV.cm^2/mg and a saturation
cross-section of 8.0e-8 cm^2 per bit; the standard fit through such
data is the four-parameter Weibull curve implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WeibullCrossSection", "DeviceCrossSection"]


@dataclass(frozen=True)
class WeibullCrossSection:
    """sigma(LET) = sigma_sat * (1 - exp(-((LET - L0)/W)^s)) for LET > L0.

    Defaults are the paper's measured Virtex values: threshold
    ``l0 = 1.2`` MeV.cm^2/mg, ``sigma_sat = 8.0e-8`` cm^2/bit; width and
    shape are representative fit values for SRAM FPGA data.
    """

    sigma_sat_cm2: float = 8.0e-8
    l0: float = 1.2
    width: float = 18.0
    shape: float = 1.5

    def sigma(self, let: float | np.ndarray) -> np.ndarray:
        """Per-bit cross-section (cm^2) at linear energy transfer ``let``."""
        let = np.asarray(let, dtype=float)
        out = np.where(
            let <= self.l0,
            0.0,
            self.sigma_sat_cm2
            * (1.0 - np.exp(-(((np.maximum(let, self.l0) - self.l0) / self.width) ** self.shape))),
        )
        return out

    def sigma_saturated(self) -> float:
        return self.sigma_sat_cm2


@dataclass(frozen=True)
class DeviceCrossSection:
    """Aggregate cross-section of one device's upsettable state.

    ``n_config_bits`` scale the per-bit curve; ``hidden_fraction`` is the
    share of the total sensitive cross-section held by state invisible
    to readback (half-latches and other hidden circuits) — the paper
    quantifies the *visible* share at 99.58 %.
    """

    per_bit: WeibullCrossSection
    n_config_bits: int
    hidden_fraction: float = 0.0042

    def total_sigma(self, let: float) -> float:
        """Whole-device cross-section (cm^2) at a given LET."""
        visible = float(self.per_bit.sigma(let)) * self.n_config_bits
        return visible / (1.0 - self.hidden_fraction)

    def visible_sigma(self, let: float) -> float:
        return float(self.per_bit.sigma(let)) * self.n_config_bits

    def hidden_sigma(self, let: float) -> float:
        return self.total_sigma(let) - self.visible_sigma(let)

"""Proton-beam model for accelerator validation (paper section III-B).

The Crocker cyclotron delivers 63.3 MeV protons; the experimenters tune
the flux so that roughly one bitstream upset lands per 0.5 s observation
interval ("more closely mimics the on-orbit occurrence of SEUs since
they are generally isolated events").  The beam samples upset *targets*:
configuration bits (the visible 99.58 % of the sensitive cross-section)
or hidden state (half-latches and friends).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.radiation.cross_section import DeviceCrossSection
from repro.radiation.environment import sample_upset_times

__all__ = ["UpsetTarget", "BeamUpset", "ProtonBeam"]


class UpsetTarget(enum.Enum):
    """What an upset landed on."""

    CONFIG_BIT = "config_bit"
    HALF_LATCH = "half_latch"
    #: configuration/POR control logic: upsets here typically leave the
    #: device "unprogrammed" (paper section III-C) — always an error
    ARCH_CONTROL = "arch_control"


@dataclass(frozen=True)
class BeamUpset:
    """One beam-induced upset event."""

    time_s: float
    target: UpsetTarget
    index: int  #: linear config bit, or hidden-state site index


@dataclass(frozen=True)
class ProtonBeam:
    """A proton beam with adjustable flux.

    ``energy_mev`` is bookkeeping (63.3 MeV in the paper); proton upsets
    act through nuclear reactions, so the effective LET for the Weibull
    lookup is an equivalent-deposition value ``effective_let``.
    """

    flux_cm2_s: float
    energy_mev: float = 63.3
    effective_let: float = 16.0

    def upset_rate(self, device_xs: DeviceCrossSection) -> float:
        """Device upsets per second under this beam."""
        return self.flux_cm2_s * device_xs.total_sigma(self.effective_let)

    @classmethod
    def tuned_for(
        cls,
        device_xs: DeviceCrossSection,
        upsets_per_observation: float = 1.0,
        observation_s: float = 0.5,
        energy_mev: float = 63.3,
    ) -> "ProtonBeam":
        """Tune the flux for ~one upset per observation interval."""
        target_rate = upsets_per_observation / observation_s
        probe = cls(1.0, energy_mev)
        sigma = probe.upset_rate(device_xs)  # rate at unit flux
        if sigma <= 0:
            raise ValueError("device has zero cross-section at beam LET")
        return cls(target_rate / sigma, energy_mev)

    def sample_upsets(
        self,
        device_xs: DeviceCrossSection,
        duration_s: float,
        n_config_bits: int,
        n_hidden_sites: int,
        rng: np.random.Generator,
        arch_control_fraction: float = 0.10,
    ) -> list[BeamUpset]:
        """Sample upset events over an exposure.

        Targets split by cross-section: hidden state takes
        ``hidden_fraction`` of hits, of which ``arch_control_fraction``
        land on configuration-control circuitry (device becomes
        unprogrammed) and the rest on half-latch keepers; visible hits
        land uniformly over the configuration bits.
        """
        times = sample_upset_times(self.upset_rate(device_xs), duration_s, rng)
        upsets: list[BeamUpset] = []
        for t in times:
            if n_hidden_sites > 0 and rng.random() < device_xs.hidden_fraction:
                if rng.random() < arch_control_fraction:
                    upsets.append(BeamUpset(float(t), UpsetTarget.ARCH_CONTROL, 0))
                else:
                    idx = int(rng.integers(n_hidden_sites))
                    upsets.append(BeamUpset(float(t), UpsetTarget.HALF_LATCH, idx))
            else:
                idx = int(rng.integers(n_config_bits))
                upsets.append(BeamUpset(float(t), UpsetTarget.CONFIG_BIT, idx))
        return upsets

"""Radiation environment models: orbits, beams, cross-sections.

Replaces the physical radiation sources of the paper — the Low Earth
Orbit environment the payload flies in (section I's 1.2 upsets/hour
quiet, 9.6/hour during solar flares for the nine-FPGA system) and the
Crocker cyclotron's 63.3 MeV proton beam used for validation.
"""

from repro.radiation.cross_section import WeibullCrossSection, DeviceCrossSection
from repro.radiation.environment import (
    LEO_FLARE,
    LEO_QUIET,
    OrbitEnvironment,
    sample_upset_times,
)
from repro.radiation.beam import BeamUpset, ProtonBeam, UpsetTarget
from repro.radiation.hiddenstate import HiddenStateModel

__all__ = [
    "WeibullCrossSection",
    "DeviceCrossSection",
    "OrbitEnvironment",
    "LEO_QUIET",
    "LEO_FLARE",
    "sample_upset_times",
    "ProtonBeam",
    "BeamUpset",
    "UpsetTarget",
    "HiddenStateModel",
]

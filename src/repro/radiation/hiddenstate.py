"""Hidden-state inventory: the cross-section readback cannot see.

Paper section III-C: corrupting the bitstream "can only upset those
parts of the FPGA that are defined by configuration bits", i.e. 99.58 %
of the sensitive cross-section.  The remainder is hidden state — above
all the half-latch keepers, plus configuration control logic whose
upsets leave the device "unprogrammed".  This module enumerates a
design's hidden sites so the beam model can sample them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga.halflatch import HalfLatchSite
from repro.place.decoder import DecodedDesign

__all__ = ["HiddenStateModel"]


@dataclass
class HiddenStateModel:
    """Hidden upsettable state of one decoded design."""

    nodes: np.ndarray  #: half-latch node indices, beam-sampleable
    sites: list[HalfLatchSite]

    @classmethod
    def from_decoded(cls, decoded: DecodedDesign) -> "HiddenStateModel":
        nodes = []
        sites = []
        for key, node in decoded.halflatch_node.items():
            nodes.append(node)
            sites.append(decoded.halflatch_site_of_node[node])
        return cls(np.array(nodes, dtype=np.int64), sites)

    @property
    def n_sites(self) -> int:
        return int(self.nodes.size)

    def critical_mask(self, decoded: DecodedDesign) -> np.ndarray:
        """Which hidden sites sit inside the output cone.

        Keepers feeding unused logic (or redundantly-encoded LUT pins)
        cannot produce output errors; the cone is the cheap structural
        over-approximation of criticality.
        """
        return np.array([decoded.node_in_cone(int(n)) for n in self.nodes], dtype=bool)

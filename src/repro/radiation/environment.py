"""Orbital radiation environments and Poisson upset arrivals.

The paper quotes system-level expectations for its nine-XQVR1000 payload
in Low Earth Orbit: 1.2 upsets/hour in low-radiation zones, 9.6/hour
during solar flares.  We model an environment as an effective
omnidirectional particle flux above the device threshold; the product
with the device cross-section gives a Poisson upset rate.  The default
fluxes are calibrated so the paper's nine-device system rates emerge
(see ``tests/radiation/test_environment.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.radiation.cross_section import DeviceCrossSection
from repro.utils.units import HOUR

__all__ = ["OrbitEnvironment", "LEO_QUIET", "LEO_FLARE", "sample_upset_times"]


@dataclass(frozen=True)
class OrbitEnvironment:
    """An orbital radiation environment.

    ``effective_flux_cm2_s`` is the flux of particles above threshold,
    folded with the LET spectrum — a single effective number sufficient
    for rate prediction; ``effective_let`` is the LET at which the
    device cross-section is evaluated.
    """

    name: str
    effective_flux_cm2_s: float
    effective_let: float = 37.0  # deep on the Weibull plateau

    def device_upset_rate(self, device_xs: DeviceCrossSection) -> float:
        """Upsets per second for one device."""
        return self.effective_flux_cm2_s * device_xs.total_sigma(self.effective_let)

    def system_upset_rate(self, device_xs: DeviceCrossSection, n_devices: int) -> float:
        """Upsets per second for ``n_devices`` identical devices."""
        return n_devices * self.device_upset_rate(device_xs)

    def system_upsets_per_hour(self, device_xs: DeviceCrossSection, n_devices: int) -> float:
        return self.system_upset_rate(device_xs, n_devices) * HOUR


def _leo_flux(target_system_rate_per_hour: float) -> float:
    """Back out the effective flux giving a target nine-XQVR1000 rate.

    The XQVR1000 carries ~5.88 Mbit of block-0 configuration; with the
    Weibull per-bit cross-section evaluated at the default effective LET
    the nine-device sensitive area is ~4 cm^2.
    """
    from repro.radiation.cross_section import DeviceCrossSection, WeibullCrossSection

    xs = DeviceCrossSection(WeibullCrossSection(), 5_878_080)
    device_sigma = xs.total_sigma(37.0)
    return target_system_rate_per_hour / HOUR / (9 * device_sigma)


#: Low Earth Orbit, low-radiation zones: 1.2 system upsets/hour (paper).
LEO_QUIET = OrbitEnvironment("LEO quiet", _leo_flux(1.2))
#: Low Earth Orbit during solar flares: 9.6 system upsets/hour (paper).
LEO_FLARE = OrbitEnvironment("LEO solar flare", _leo_flux(9.6))


def sample_upset_times(
    rate_per_s: float, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Poisson arrival times in [0, duration) at the given rate."""
    if rate_per_s < 0:
        raise ValueError(f"rate must be non-negative, got {rate_per_s}")
    if rate_per_s == 0:
        return np.zeros(0, dtype=float)
    n = rng.poisson(rate_per_s * duration_s)
    return np.sort(rng.uniform(0.0, duration_s, size=n))

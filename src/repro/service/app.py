"""Campaign-as-a-service: the asyncio HTTP server over the engine.

``repro serve`` turns the campaign engine into a long-lived,
multi-tenant job service — the paper's ground-segment shape, where one
control loop accepts work for nine FPGAs, schedules it, and reports
health.  The split of responsibilities is strict:

* **The engine stays pure.**  Every job executes as a ``repro``
  subprocess rendered from its validated spec
  (:meth:`~repro.service.schemas.JobSpec.to_argv`), with a
  service-owned ``--checkpoint`` and ``--trace``.  Isolation for free:
  cancel is a signal, restart-resume is the engine's own
  batch-aligned checkpoint contract, and the golden byte-identity
  pinned on the CLI transfers to HTTP jobs verbatim.  Specs may carry
  ``jobs``/``executor`` flags, so a single job can still fan out over
  the local pool or TCP workers.

* **The service owns scheduling, quotas, and caching.**  Submissions
  land in the weighted-priority, tenant-fair
  :class:`~repro.service.queue.JobQueue`; a fixed pool of asyncio
  worker tasks drains it.  Before any engine work, the job's
  *result key* (a content address over the verdict-determining spec
  fields) is looked up in the completed-job index and the shared
  :class:`~repro.engine.cache.ResultCache` — a duplicate sweep is
  served in O(1) without a subprocess, byte-identically.

* **Observability is ambient.**  Each job's subprocess writes a
  :mod:`repro.obs` JSONL trace the SSE endpoint tails live
  (:mod:`repro.service.sse`); the server's own lifecycle points
  (submit, start, done, cache-hit) go to the ambient tracer, so
  ``repro serve --trace`` leaves a service-level span log that
  ``repro report`` renders.

Endpoints (all JSON unless noted)::

    GET  /healthz                     liveness + version
    GET  /v1/stats                    queue/cache/tenant counters
    POST /v1/jobs                     submit a spec -> job record (202)
    GET  /v1/jobs[?state=&tenant=]    list job records
    GET  /v1/jobs/<id>                one job record
    GET  /v1/jobs/<id>/result         verdict bytes (octet-stream)
    GET  /v1/jobs/<id>/meta           telemetry + summary JSON
    POST /v1/jobs/<id>/cancel         cancel queued or running
    GET  /v1/jobs/<id>/events         SSE span/heartbeat stream
    GET  /v1/jobs/<id>/report[?format=json|text|html]

The HTTP layer is stdlib asyncio only (no framework): requests are
small, responses are ``Connection: close``, and the SSE stream is the
only long-lived connection type.
"""

from __future__ import annotations

import asyncio
import hashlib
import html
import json
import os
import re
import signal
import sys
import time
import urllib.parse
from dataclasses import dataclass
from typing import Any

from repro.engine.cache import ResultCache, result_cache
from repro.engine.transport import parse_hostport
from repro.errors import ReproError
from repro.obs import get_observer
from repro.service.jobs import Job, JobState, JobStore, UnknownJob
from repro.service.queue import JobQueue, QueueFull, QuotaPolicy
from repro.service.schemas import SpecError, spec_from_json
from repro.service.sse import stream_job_events

__all__ = ["ServiceConfig", "CampaignServer", "run_server"]

#: bump when the public JSON surface changes incompatibly
API_VERSION = 1

_MAX_BODY_BYTES = 1 << 20
_JOB_PATH = re.compile(r"/v1/jobs/(j-\d+)(?:/([a-z]+))?$")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` configures."""

    listen: str = "127.0.0.1:8321"
    state: str = ".repro-service"
    job_workers: int = 2
    #: result-cache directory; None inherits REPRO_RESULT_CACHE, "off" disables
    cache: str | None = None
    max_running_per_tenant: int = 4
    max_queued_per_tenant: int | None = None
    announce: str | None = None


class CampaignServer:
    """One server instance: store + queue + worker pool + HTTP front."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.store = JobStore(config.state)
        self.queue = JobQueue(
            quota=QuotaPolicy(
                max_running=config.max_running_per_tenant,
                max_queued=config.max_queued_per_tenant,
            )
        )
        self.started_at = time.time()
        self.address: str | None = None
        self._server: asyncio.Server | None = None
        self._workers: list[asyncio.Task] = []
        self._procs: dict[str, asyncio.subprocess.Process] = {}
        self._wake = asyncio.Event()
        self._stopping = asyncio.Event()
        self._stats = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "cache_hits": 0,
            "resumed": 0,
        }

    # -- cache ----------------------------------------------------------------

    def _cache(self) -> ResultCache | None:
        if self.config.cache is not None:
            raw = self.config.cache.strip()
            if not raw or raw.lower() == "off":
                return None
            return ResultCache(raw)
        return result_cache()

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        host, port = parse_hostport(self.config.listen, default_port=8321)
        self._server = await asyncio.start_server(self._handle, host, port)
        bound = self._server.sockets[0].getsockname()
        self.address = f"{bound[0]}:{bound[1]}"
        if self.config.announce:
            tmp = f"{self.config.announce}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(self.address + "\n")
            os.replace(tmp, self.config.announce)
        for job in self.store.recover():
            if job.resume:
                self._stats["resumed"] += 1
            self.queue.submit(job.id, tenant=job.spec.tenant, priority=job.spec.priority)
        tracer = get_observer().tracer
        if tracer.enabled:
            tracer.point("serve_start", address=self.address, recovered=len(self.queue))
        self._workers = [
            asyncio.create_task(self._worker_loop(i), name=f"repro-serve-worker-{i}")
            for i in range(max(1, self.config.job_workers))
        ]
        self._wake.set()

    def request_stop(self) -> None:
        self._stopping.set()
        self._wake.set()

    async def wait_stopped(self) -> None:
        await self._stopping.wait()

    async def shutdown(self) -> None:
        """Stop accepting, stop workers, kill running children.

        Job records of killed children stay ``running`` on disk — the
        next server over this state directory resumes them from their
        checkpoints, which is the restart contract the e2e suite pins.
        """
        self._stopping.set()
        self._wake.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for proc in list(self._procs.values()):
            _kill_tree(proc.pid, signal.SIGTERM)

    # -- job execution --------------------------------------------------------

    def _public_job(self, job: Job) -> dict[str, Any]:
        record = job.to_dict()
        record["links"] = {
            "self": f"/v1/jobs/{job.id}",
            "result": f"/v1/jobs/{job.id}/result",
            "meta": f"/v1/jobs/{job.id}/meta",
            "events": f"/v1/jobs/{job.id}/events",
            "report": f"/v1/jobs/{job.id}/report",
        }
        return record

    def _finish(self, job: Job, verdicts: bytes, meta: dict, cached: bool) -> None:
        job.verdict_sha256 = hashlib.sha256(verdicts).hexdigest()
        job.n_verdict_bytes = len(verdicts)
        job.cached = cached
        job.state = JobState.DONE
        job.finished_at = time.time()
        job.pid = None
        self.store.write_result(job, verdicts, meta)
        self.store.save(job)
        self._stats["completed"] += 1
        if cached:
            self._stats["cache_hits"] += 1
        tracer = get_observer().tracer
        if tracer.enabled:
            tracer.point(
                "job_done", job=job.id, cached=cached, sha=job.verdict_sha256
            )

    def _try_serve_cached(self, job: Job) -> bool:
        """Serve ``job`` from a completed twin or the result cache."""
        twin = self.store.latest_done_for_key(job.result_key)
        if twin is not None and twin.id != job.id:
            verdicts = self.store.read_verdicts(twin.id)
            meta = self.store.read_meta(twin.id)
            if verdicts is not None and meta is not None:
                self._finish(job, verdicts, dict(meta, served_from=twin.id), cached=True)
                return True
        cache = self._cache()
        if cache is not None:
            entry = cache.get(job.result_key)
            if (
                isinstance(entry, dict)
                and isinstance(entry.get("verdicts"), bytes)
                and isinstance(entry.get("meta"), dict)
            ):
                self._finish(
                    job,
                    entry["verdicts"],
                    dict(entry["meta"], served_from="result-cache"),
                    cached=True,
                )
                return True
        return False

    def _child_env(self) -> dict[str, str]:
        env = dict(os.environ)
        # The child must import the same repro the server runs; derive
        # the path from the live package instead of trusting the
        # caller's PYTHONPATH.
        import repro

        pkg_parent = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        prior = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = pkg_parent + (os.pathsep + prior if prior else "")
        if self.config.cache is not None:
            env["REPRO_RESULT_CACHE"] = self.config.cache
        return env

    def _harvest(self, job: Job) -> tuple[bytes, dict[str, Any]]:
        """Read the finished job's checkpoint into (verdict bytes, meta)."""
        path = self.store.checkpoint_path(job.id)
        base = {"kind": job.spec.kind, "spec": job.spec.to_dict()}
        if job.spec.kind == "campaign":
            from repro.seu import load_result

            result = load_result(path)
            meta = dict(
                base,
                summary=result.summary(),
                n_candidates=result.n_candidates,
                n_simulated=result.n_simulated,
                sensitivity=result.sensitivity,
                persistence_ratio=result.persistence_ratio,
                telemetry=result.telemetry.to_dict() if result.telemetry else None,
            )
            return result.verdicts.tobytes(), meta
        from repro.engine import load_sweep

        sweep = load_sweep(path)
        meta = dict(
            base,
            model_key=sweep.model_key,
            n_candidates=sweep.n_candidates,
            n_simulated=sweep.n_simulated,
            telemetry=sweep.telemetry.to_dict() if sweep.telemetry else None,
        )
        return sweep.verdicts.tobytes(), meta

    async def _run_job(self, job: Job) -> None:
        if self._try_serve_cached(job):
            return
        job.state = JobState.RUNNING
        job.started_at = time.time()
        job.attempts += 1
        resume = job.resume and os.path.exists(self.store.checkpoint_path(job.id))
        argv = job.spec.to_argv(
            checkpoint=self.store.checkpoint_path(job.id),
            trace=self.store.trace_path(job.id),
            resume=resume,
        )
        self.store.save(job)
        tracer = get_observer().tracer
        if tracer.enabled:
            tracer.point("job_start", job=job.id, resumed=resume, attempts=job.attempts)
        log_path = os.path.join(self.store.root, "jobs", f"{job.id}.log")
        with open(log_path, "ab") as log:
            proc = await asyncio.create_subprocess_exec(
                sys.executable,
                "-m",
                "repro.cli",
                *argv,
                stdout=log,
                stderr=log,
                env=self._child_env(),
                start_new_session=True,
            )
            job.pid = proc.pid
            self.store.save(job)
            self._procs[job.id] = proc
            try:
                rc = await proc.wait()
            finally:
                self._procs.pop(job.id, None)
        if job.state == JobState.CANCELLED:
            return  # cancel() already settled the record
        if rc == 0:
            try:
                verdicts, meta = await asyncio.to_thread(self._harvest, job)
            except (ReproError, OSError, ValueError) as err:
                self._fail(job, f"harvest failed: {err}")
                return
            cache = self._cache()
            if cache is not None:
                cache.put(job.result_key, {"verdicts": verdicts, "meta": meta})
            self._finish(job, verdicts, meta, cached=False)
        else:
            self._fail(job, f"engine exited {rc}: {_tail(log_path)}")

    def _fail(self, job: Job, error: str) -> None:
        job.state = JobState.FAILED
        job.error = error
        job.finished_at = time.time()
        job.pid = None
        self.store.save(job)
        self._stats["failed"] += 1
        tracer = get_observer().tracer
        if tracer.enabled:
            tracer.point("job_failed", job=job.id, error=error[:200])

    async def _worker_loop(self, index: int) -> None:
        while not self._stopping.is_set():
            acquired = self.queue.acquire()
            if acquired is None:
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.5)
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
                continue
            tenant, _priority, job_id = acquired
            try:
                job = self.store.get(job_id)
                if job.state == JobState.QUEUED:
                    await self._run_job(job)
            finally:
                self.queue.release(tenant)
                self._wake.set()

    # -- job control ----------------------------------------------------------

    def submit(self, payload: Any) -> tuple[int, dict[str, Any]]:
        spec = spec_from_json(payload)  # SpecError -> 400 upstream
        job = self.store.new_job(spec)
        self._stats["submitted"] += 1
        tracer = get_observer().tracer
        if tracer.enabled:
            tracer.point(
                "job_submitted",
                job=job.id,
                job_kind=spec.kind,
                tenant=spec.tenant,
                priority=spec.priority,
            )
        if self._try_serve_cached(job):
            return 202, {"job": self._public_job(job), "cached": True}
        try:
            self.queue.submit(job.id, tenant=spec.tenant, priority=spec.priority)
        except QueueFull as err:
            job.state = JobState.CANCELLED
            job.error = str(err)
            job.finished_at = time.time()
            self.store.save(job)
            raise
        self.store.save(job)
        self._wake.set()
        return 202, {"job": self._public_job(job), "cached": False}

    def cancel(self, job_id: str) -> dict[str, Any]:
        job = self.store.get(job_id)
        if job.state in JobState.TERMINAL:
            raise ReproError(f"job {job_id} is already {job.state}")
        if job.state == JobState.QUEUED:
            self.queue.cancel(lambda item: item == job_id)
        else:  # running: kill the engine subprocess tree
            if job.pid:
                _kill_tree(job.pid, signal.SIGKILL)
        job.state = JobState.CANCELLED
        job.finished_at = time.time()
        self.store.save(job)
        self._stats["cancelled"] += 1
        self._wake.set()
        return self._public_job(job)

    def stats(self) -> dict[str, Any]:
        cache = self._cache()
        return {
            "api_version": API_VERSION,
            "address": self.address,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue": self.queue.snapshot(),
            "jobs": dict(self._stats),
            "running_procs": len(self._procs),
            "cache_dir": cache.root if cache is not None else None,
        }

    # -- HTTP front -----------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            request = await _read_request(reader)
            if request is None:
                return
            await self._dispatch(request, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except Exception as err:  # noqa: BLE001 - one bad request must not kill the server
            try:
                _write_response(
                    writer, 500, _json_body({"error": f"internal error: {err}"})
                )
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, request: "_Request", writer: asyncio.StreamWriter):
        method, path, query = request.method, request.path, request.query
        if path == "/healthz" and method == "GET":
            return _write_response(
                writer,
                200,
                _json_body(
                    {"ok": True, "api_version": API_VERSION, "address": self.address}
                ),
            )
        if path == "/v1/stats" and method == "GET":
            return _write_response(writer, 200, _json_body(self.stats()))
        if path == "/v1/jobs" and method == "POST":
            try:
                payload = json.loads(request.body.decode("utf-8"))
            except ValueError:
                return _write_response(
                    writer, 400, _json_body({"error": "body is not valid JSON"})
                )
            try:
                status, body = self.submit(payload)
            except SpecError as err:
                return _write_response(writer, 400, _json_body({"error": str(err)}))
            except QueueFull as err:
                return _write_response(writer, 429, _json_body({"error": str(err)}))
            return _write_response(writer, status, _json_body(body))
        if path == "/v1/jobs" and method == "GET":
            state = query.get("state")
            tenant = query.get("tenant")
            jobs = [
                self._public_job(job)
                for job in self.store.jobs()
                if (state is None or job.state == state)
                and (tenant is None or job.spec.tenant == tenant)
            ]
            return _write_response(writer, 200, _json_body({"jobs": jobs}))
        m = _JOB_PATH.match(path)
        if m is None:
            return _write_response(writer, 404, _json_body({"error": f"no route {path}"}))
        job_id, action = m.group(1), m.group(2)
        try:
            job = self.store.get(job_id)
        except UnknownJob as err:
            return _write_response(writer, 404, _json_body({"error": str(err)}))
        if action is None and method == "GET":
            return _write_response(writer, 200, _json_body(self._public_job(job)))
        if action == "cancel" and method == "POST":
            try:
                return _write_response(writer, 200, _json_body(self.cancel(job_id)))
            except ReproError as err:
                return _write_response(writer, 409, _json_body({"error": str(err)}))
        if action == "result" and method == "GET":
            if job.state != JobState.DONE:
                return _write_response(
                    writer,
                    409,
                    _json_body({"error": f"job {job_id} is {job.state}, not done"}),
                )
            verdicts = self.store.read_verdicts(job_id)
            if verdicts is None:
                return _write_response(
                    writer, 500, _json_body({"error": "result bytes missing"})
                )
            return _write_response(
                writer,
                200,
                verdicts,
                content_type="application/octet-stream",
                extra_headers={
                    "X-Verdict-SHA256": job.verdict_sha256 or "",
                    "X-Job-Cached": "1" if job.cached else "0",
                },
            )
        if action == "meta" and method == "GET":
            meta = self.store.read_meta(job_id)
            if meta is None:
                return _write_response(
                    writer,
                    409,
                    _json_body({"error": f"job {job_id} has no meta (state {job.state})"}),
                )
            return _write_response(writer, 200, _json_body(meta))
        if action == "events" and method == "GET":
            return await self._serve_sse(writer, job)
        if action == "report" and method == "GET":
            return self._serve_report(writer, job, query.get("format", "json"))
        return _write_response(
            writer, 405, _json_body({"error": f"{method} {path} not supported"})
        )

    async def _serve_sse(self, writer: asyncio.StreamWriter, job: Job) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        def current_state() -> dict[str, Any]:
            return self._public_job(self.store.get(job.id))

        async for block in stream_job_events(
            self.store.trace_path(job.id), current_state
        ):
            writer.write(block)
            await writer.drain()

    def _serve_report(self, writer: asyncio.StreamWriter, job: Job, fmt: str) -> None:
        from repro.obs import load_trace, render_report
        from repro.obs.report import report_dict

        trace_path = self.store.trace_path(job.id)
        if not os.path.exists(trace_path):
            return _write_response(
                writer,
                404,
                _json_body(
                    {"error": f"job {job.id} has no trace (cached or not started)"}
                ),
            )
        trace = load_trace(trace_path)
        if fmt == "json":
            return _write_response(writer, 200, _json_body(report_dict(trace)))
        text = render_report(trace)
        if fmt == "text":
            return _write_response(
                writer, 200, text.encode("utf-8"), content_type="text/plain; charset=utf-8"
            )
        if fmt == "html":
            page = (
                "<!doctype html><html><head><meta charset='utf-8'>"
                f"<title>repro job {job.id}</title></head><body>"
                f"<h1>job {job.id} — {html.escape(job.spec.kind)} "
                f"{html.escape(str(job.spec.design or ''))}</h1>"
                f"<p>state: {html.escape(job.state)}, verdict sha256: "
                f"<code>{html.escape(job.verdict_sha256 or '-')}</code></p>"
                f"<pre>{html.escape(text)}</pre></body></html>"
            )
            return _write_response(
                writer, 200, page.encode("utf-8"), content_type="text/html; charset=utf-8"
            )
        return _write_response(
            writer, 400, _json_body({"error": f"unknown format {fmt!r}"})
        )


# -- HTTP plumbing -------------------------------------------------------------


@dataclass
class _Request:
    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        return None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", "0") or "0")
    if length:
        if length > _MAX_BODY_BYTES:
            raise ValueError(f"body too large ({length} bytes)")
        body = await reader.readexactly(length)
    parsed = urllib.parse.urlsplit(target)
    query = {k: v[-1] for k, v in urllib.parse.parse_qs(parsed.query).items()}
    return _Request(
        method=method, path=parsed.path, query=query, headers=headers, body=body
    )


def _json_body(obj: Any) -> bytes:
    return (json.dumps(obj, indent=1) + "\n").encode("utf-8")


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> None:
    head = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)


def _kill_tree(pid: int, sig: int) -> None:
    """Signal a job's whole process group (children run in their own)."""
    try:
        os.killpg(pid, sig)
    except (OSError, ProcessLookupError):
        try:
            os.kill(pid, sig)
        except (OSError, ProcessLookupError):
            pass


def _tail(path: str, limit: int = 400) -> str:
    try:
        with open(path, "rb") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            fh.seek(max(0, size - limit))
            return fh.read().decode("utf-8", "replace").strip()
    except OSError:
        return ""


# -- entry point ---------------------------------------------------------------


async def _serve_async(config: ServiceConfig) -> int:
    server = CampaignServer(config)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, server.request_stop)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await server.start()
    print(
        f"repro serve: listening on http://{server.address} "
        f"(state {config.state}, {config.job_workers} job worker(s), "
        f"cache {'on' if server._cache() else 'off'})",
        file=sys.stderr,
    )
    await server.wait_stopped()
    await server.shutdown()
    return 0


def run_server(config: ServiceConfig) -> int:
    """Blocking entry point for ``repro serve``."""
    return asyncio.run(_serve_async(config))

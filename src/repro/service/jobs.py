"""Job records and the state directory: the service's durable memory.

Every job's lifecycle lives in one JSON file under
``<state>/jobs/<id>.json`` (atomic tmp+rename writes, same discipline
as the engine's checkpoints), its artifacts beside it::

    <state>/jobs/j-000042.json         # the record below
    <state>/results/j-000042.verdicts  # raw verdict bytes
    <state>/results/j-000042.meta.json # telemetry + summary JSON
    <state>/traces/j-000042.jsonl      # repro.obs span trace (SSE source)
    <state>/checkpoints/j-000042.npz   # engine checkpoint (resume source)

Because the engine's checkpoint format already makes any sweep
resumable at batch granularity, a server restart needs no job-side
cooperation: :meth:`JobStore.recover` re-queues every ``queued`` job
and turns every ``running`` job (its process died with the server, or
is killed as an orphan) into a resume — the finished verdict bytes are
pinned byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.service.schemas import JobSpec, spec_from_json

__all__ = ["JobState", "Job", "JobStore", "UnknownJob"]


class JobState:
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)


class UnknownJob(ReproError):
    """No job with that id in the store (HTTP 404)."""


@dataclass
class Job:
    """One submitted sweep and everything known about it."""

    id: str
    spec: JobSpec
    state: str = JobState.QUEUED
    result_key: str = ""
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: served from the result cache without running the engine
    cached: bool = False
    #: resume-from-checkpoint pending (set by recovery after a restart)
    resume: bool = False
    attempts: int = 0
    pid: int | None = None
    error: str | None = None
    #: hex SHA-256 of the verdict bytes, set when done
    verdict_sha256: str | None = None
    n_verdict_bytes: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "result_key": self.result_key,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cached": self.cached,
            "resume": self.resume,
            "attempts": self.attempts,
            "pid": self.pid,
            "error": self.error,
            "verdict_sha256": self.verdict_sha256,
            "n_verdict_bytes": self.n_verdict_bytes,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Job":
        spec = spec_from_json(raw["spec"])
        return cls(
            id=str(raw["id"]),
            spec=spec,
            state=str(raw.get("state", JobState.QUEUED)),
            result_key=str(raw.get("result_key", "")) or spec.result_key(),
            submitted_at=float(raw.get("submitted_at", 0.0)),
            started_at=raw.get("started_at"),
            finished_at=raw.get("finished_at"),
            cached=bool(raw.get("cached", False)),
            resume=bool(raw.get("resume", False)),
            attempts=int(raw.get("attempts", 0)),
            pid=raw.get("pid"),
            error=raw.get("error"),
            verdict_sha256=raw.get("verdict_sha256"),
            n_verdict_bytes=raw.get("n_verdict_bytes"),
        )


class JobStore:
    """The on-disk job registry plus its in-memory index."""

    def __init__(self, root: str):
        self.root = str(root)
        for sub in ("jobs", "results", "traces", "checkpoints"):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)
        self._jobs: dict[str, Job] = {}
        self._serial = 0
        self._load()

    # -- paths ----------------------------------------------------------------

    def record_path(self, job_id: str) -> str:
        return os.path.join(self.root, "jobs", f"{job_id}.json")

    def verdicts_path(self, job_id: str) -> str:
        return os.path.join(self.root, "results", f"{job_id}.verdicts")

    def meta_path(self, job_id: str) -> str:
        return os.path.join(self.root, "results", f"{job_id}.meta.json")

    def trace_path(self, job_id: str) -> str:
        return os.path.join(self.root, "traces", f"{job_id}.jsonl")

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.root, "checkpoints", f"{job_id}.npz")

    # -- registry -------------------------------------------------------------

    def _load(self) -> None:
        jobs_dir = os.path.join(self.root, "jobs")
        for name in sorted(os.listdir(jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(jobs_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    job = Job.from_dict(json.load(fh))
            except (OSError, ValueError, KeyError, ReproError):
                continue  # an unreadable record is dropped, never trusted
            self._jobs[job.id] = job
            try:
                self._serial = max(self._serial, int(job.id.split("-")[-1]))
            except ValueError:
                pass

    def new_job(self, spec: JobSpec) -> Job:
        self._serial += 1
        job = Job(
            id=f"j-{self._serial:06d}", spec=spec, result_key=spec.result_key()
        )
        self._jobs[job.id] = job
        self.save(job)
        return job

    def save(self, job: Job) -> None:
        path = self.record_path(job.id)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(job.to_dict(), fh, indent=1)
        os.replace(tmp, path)

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(f"no such job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        return sorted(self._jobs.values(), key=lambda j: j.id)

    def latest_done_for_key(self, result_key: str) -> Job | None:
        """The most recent completed job with these verdict bytes."""
        best: Job | None = None
        for job in self._jobs.values():
            if job.state == JobState.DONE and job.result_key == result_key:
                if best is None or job.id > best.id:
                    best = job
        return best

    # -- results --------------------------------------------------------------

    def write_result(self, job: Job, verdicts: bytes, meta: dict[str, Any]) -> None:
        vpath = self.verdicts_path(job.id)
        tmp = f"{vpath}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(verdicts)
        os.replace(tmp, vpath)
        mpath = self.meta_path(job.id)
        tmp = f"{mpath}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(meta, fh, indent=1)
        os.replace(tmp, mpath)

    def read_verdicts(self, job_id: str) -> bytes | None:
        try:
            with open(self.verdicts_path(job_id), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    def read_meta(self, job_id: str) -> dict[str, Any] | None:
        try:
            with open(self.meta_path(job_id), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    # -- restart recovery -----------------------------------------------------

    def recover(self) -> list[Job]:
        """Turn interrupted jobs back into runnable ones; return them.

        ``queued`` jobs re-queue as submitted.  ``running`` jobs lost
        their process with the server: any orphan still alive is
        killed (the server owns its children's lifecycle), and the job
        re-queues with ``resume=True`` when its checkpoint exists —
        the engine replays the remainder to byte-identical verdicts.
        """
        import signal

        recovered: list[Job] = []
        for job in self.jobs():
            if job.state == JobState.RUNNING:
                if job.pid:
                    try:
                        os.killpg(job.pid, signal.SIGKILL)
                    except (OSError, ProcessLookupError):
                        try:
                            os.kill(job.pid, signal.SIGKILL)
                        except (OSError, ProcessLookupError):
                            pass
                job.state = JobState.QUEUED
                job.resume = os.path.exists(self.checkpoint_path(job.id))
                job.pid = None
                self.save(job)
                recovered.append(job)
            elif job.state == JobState.QUEUED:
                recovered.append(job)
        return recovered

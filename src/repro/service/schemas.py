"""Job specs: the service's wire format, validated against the CLI surface.

A job is one engine sweep — the same thing a human would run as ``repro
campaign|multibit|bist-coverage ...`` — expressed as JSON::

    {"kind": "campaign", "design": "MULT4", "device": "S8",
     "tenant": "ops", "priority": "high",
     "flags": {"stride": 7, "detect_cycles": 48, "batch_size": 32}}

Rather than inventing a parallel schema that could drift from the CLI,
:meth:`JobSpec.to_argv` renders the spec back to a ``repro`` argv and
:func:`validate_spec` runs it through :func:`repro.cli.build_parser` —
a spec is valid *iff* the equivalent command line is.  The service then
executes exactly that argv in a subprocess, so the byte-identity
contracts pinned on the CLI (golden SHAs, jobs-invariance) transfer to
HTTP jobs for free.

The **result key** (:meth:`JobSpec.result_key`) hashes only the fields
that determine verdict bytes: design, device, and the model parameters.
``jobs``, ``backend``, ``no_collapse``/``no_retire`` are excluded — the
engine pins byte-identity across all of them — so a duplicate sweep
hits the cache even when asked to run with different execution knobs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.engine.cache import content_key
from repro.errors import ReproError
from repro.service.queue import PRIORITY_CLASSES

__all__ = ["SpecError", "JobSpec", "validate_spec", "spec_from_json"]

#: schema version folded into every result key
RESULT_KEY_VERSION = "service-job-v1"


class SpecError(ReproError):
    """A submitted job spec failed validation (HTTP 400)."""


def _flag_name(key: str) -> str:
    return "--" + key.replace("_", "-")


@dataclass(frozen=True)
class _Flag:
    """One accepted engine flag: its type and whether it changes bytes."""

    type: type
    keyed: bool  # participates in the result key (verdict-determining)
    store_true: bool = False


_COMMON_FLAGS: dict[str, _Flag] = {
    # Execution knobs: verdict bytes are pinned byte-identical across
    # all of these, so they are accepted but excluded from the key.
    "jobs": _Flag(int, keyed=False),
    "backend": _Flag(str, keyed=False),
    "no_collapse": _Flag(bool, keyed=False, store_true=True),
    "no_retire": _Flag(bool, keyed=False, store_true=True),
    "batch_size": _Flag(int, keyed=True),
    "detect_cycles": _Flag(int, keyed=True),
}

_KIND_FLAGS: dict[str, dict[str, _Flag]] = {
    "campaign": {
        **_COMMON_FLAGS,
        "persist_cycles": _Flag(int, keyed=True),
        "stride": _Flag(int, keyed=True),
        "checkpoint_every": _Flag(int, keyed=False),
    },
    "multibit": {
        **_COMMON_FLAGS,
        "k": _Flag(int, keyed=True),
        "trials": _Flag(int, keyed=True),
        "seed": _Flag(int, keyed=True),
        # Affects reported statistics only, never verdict bytes; keyed
        # anyway so one cache entry's meta JSON matches its spec.
        "single_sensitivity": _Flag(float, keyed=True),
        "stride": _Flag(int, keyed=True),
    },
    "bist-coverage": {
        **_COMMON_FLAGS,
        "faults": _Flag(int, keyed=True),
        "seed": _Flag(int, keyed=True),
        "cycles": _Flag(int, keyed=True),
        "register_pairs": _Flag(int, keyed=True),
    },
}

#: kinds that take a positional design argument
_DESIGN_KINDS = ("campaign", "multibit")


@dataclass(frozen=True)
class JobSpec:
    """One validated sweep request."""

    kind: str
    design: str | None
    device: str = "S12"
    tenant: str = "default"
    priority: str = "normal"
    flags: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    def flag(self, name: str, default: Any = None) -> Any:
        for key, value in self.flags:
            if key == name:
                return value
        return default

    def to_argv(
        self,
        *,
        checkpoint: str | None = None,
        trace: str | None = None,
        resume: bool = False,
    ) -> list[str]:
        """Render the equivalent ``repro`` argv (optionally with the
        service-owned checkpoint/trace/resume flags appended)."""
        argv: list[str] = [self.kind]
        if self.kind in _DESIGN_KINDS:
            argv.append(str(self.design))
        argv += ["--device", self.device]
        table = _KIND_FLAGS[self.kind]
        for key, value in self.flags:
            spec = table[key]
            if spec.store_true:
                if value:
                    argv.append(_flag_name(key))
            else:
                argv += [_flag_name(key), str(value)]
        if checkpoint is not None:
            argv += ["--checkpoint", checkpoint]
        if trace is not None:
            argv += ["--trace", trace]
        if resume:
            argv.append("--resume")
        return argv

    def result_key(self) -> str:
        """Content address of this spec's verdict bytes (see module doc)."""
        table = _KIND_FLAGS[self.kind]
        keyed = [
            (key, value) for key, value in self.flags if table[key].keyed
        ]
        return content_key(
            RESULT_KEY_VERSION,
            self.kind,
            self.design,
            self.device,
            json.dumps(sorted(keyed)),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "design": self.design,
            "device": self.device,
            "tenant": self.tenant,
            "priority": self.priority,
            "flags": dict(self.flags),
        }


def spec_from_json(payload: Any) -> JobSpec:
    """Parse and validate one submitted job body (raises :class:`SpecError`)."""
    if not isinstance(payload, dict):
        raise SpecError("job body must be a JSON object")
    unknown = set(payload) - {"kind", "design", "device", "tenant", "priority", "flags"}
    if unknown:
        raise SpecError(f"unknown job field(s): {', '.join(sorted(unknown))}")
    kind = payload.get("kind")
    if kind not in _KIND_FLAGS:
        raise SpecError(
            f"unknown kind {kind!r} (choose from {', '.join(sorted(_KIND_FLAGS))})"
        )
    design = payload.get("design")
    if kind in _DESIGN_KINDS:
        if not isinstance(design, str) or not design:
            raise SpecError(f"kind {kind!r} requires a design name")
    elif design is not None:
        raise SpecError(f"kind {kind!r} takes no design")
    device = payload.get("device", "S12")
    if not isinstance(device, str) or not device:
        raise SpecError("device must be a non-empty string")
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise SpecError("tenant must be a string of 1..64 characters")
    if not all(c.isalnum() or c in "-_." for c in tenant):
        raise SpecError("tenant may only contain alphanumerics, '-', '_', '.'")
    priority = payload.get("priority", "normal")
    if priority not in PRIORITY_CLASSES:
        raise SpecError(
            f"unknown priority {priority!r} (choose from "
            f"{', '.join(PRIORITY_CLASSES)})"
        )
    raw_flags = payload.get("flags", {})
    if not isinstance(raw_flags, dict):
        raise SpecError("flags must be an object")
    table = _KIND_FLAGS[kind]
    flags: list[tuple[str, Any]] = []
    for key in sorted(raw_flags):
        spec = table.get(key)
        if spec is None:
            raise SpecError(
                f"kind {kind!r} does not accept flag {key!r} (accepted: "
                f"{', '.join(sorted(table))})"
            )
        value = raw_flags[key]
        if spec.store_true:
            if not isinstance(value, bool):
                raise SpecError(f"flag {key!r} must be a boolean")
        elif spec.type is int:
            if not isinstance(value, int) or isinstance(value, bool):
                raise SpecError(f"flag {key!r} must be an integer")
        elif spec.type is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SpecError(f"flag {key!r} must be a number")
            value = float(value)
        elif not isinstance(value, str):
            raise SpecError(f"flag {key!r} must be a string")
        flags.append((key, value))
    spec = JobSpec(
        kind=kind,
        design=design,
        device=device,
        tenant=tenant,
        priority=priority,
        flags=tuple(flags),
    )
    validate_spec(spec)
    return spec


def validate_spec(spec: JobSpec) -> None:
    """Check ``spec`` against the real CLI surface and catalogs.

    The argv render must parse under :func:`repro.cli.build_parser`
    (the single source of truth for accepted commands and flags), the
    device must exist, and — for design kinds — the design must be in
    the catalog.  Failing fast here turns a typo into an HTTP 400
    instead of a failed job.
    """
    import contextlib
    import io

    from repro.cli import build_parser

    argv = spec.to_argv()
    stderr = io.StringIO()
    try:
        with contextlib.redirect_stderr(stderr):
            build_parser().parse_args(argv)
    except SystemExit:
        detail = stderr.getvalue().strip().splitlines()
        raise SpecError(
            "spec does not parse as a repro command"
            + (f": {detail[-1]}" if detail else "")
        ) from None
    from repro.fpga import DEVICE_CATALOG

    if spec.device not in DEVICE_CATALOG:
        raise SpecError(
            f"unknown device {spec.device!r} (choose from "
            f"{', '.join(DEVICE_CATALOG)})"
        )
    if spec.kind in _DESIGN_KINDS:
        from repro.designs import get_design

        try:
            get_design(str(spec.design))
        except ReproError as err:
            raise SpecError(str(err)) from None

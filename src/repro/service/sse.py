"""Server-sent events over the observability layer's JSONL traces.

A running job's subprocess appends :mod:`repro.obs` span events to its
trace file; :func:`stream_job_events` tails that file and forwards each
line as one SSE ``trace`` event — the browser (or ``curl -N``) sees the
same span stream ``repro report`` renders after the fact, live.  The
stream is read-only over the trace: it can lag or disconnect without
touching the job, in keeping with the obs layer's verdict-invariance
contract.

Event grammar (one blank-line-terminated block per event)::

    event: trace          # one obs JSONL event, verbatim JSON
    id: 17                # 1-based line number in the trace file
    data: {"kind": ...}

    event: heartbeat      # periodic liveness while the job is quiet
    data: {"state": "running", "t": 12.3}

    event: done           # terminal: the job reached a final state
    data: {"state": "done", "verdict_sha256": ...}
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Any, AsyncIterator, Callable

__all__ = ["format_event", "stream_job_events"]


def format_event(event: str, data: Any, event_id: int | None = None) -> bytes:
    """One wire-format SSE block (``data`` is JSON-encoded unless str)."""
    payload = data if isinstance(data, str) else json.dumps(data)
    lines = [f"event: {event}"]
    if event_id is not None:
        lines.append(f"id: {event_id}")
    # SSE forbids bare newlines inside a data value; JSONL lines never
    # contain them, but split defensively so a multiline payload stays
    # one well-formed event instead of corrupting the stream.
    lines.extend(f"data: {chunk}" for chunk in payload.splitlines() or ["{}"])
    return ("\n".join(lines) + "\n\n").encode("utf-8")


async def stream_job_events(
    trace_path: str,
    job_state: Callable[[], dict[str, Any]],
    *,
    heartbeat_s: float = 1.0,
    poll_s: float = 0.15,
) -> AsyncIterator[bytes]:
    """Yield SSE blocks tailing ``trace_path`` until the job finishes.

    ``job_state`` is polled for the job's current public record; the
    stream ends with a ``done`` event once ``state`` turns terminal
    *and* the trace has been drained to EOF — a fast consumer misses
    nothing.  A job served from the result cache never writes a trace;
    its stream is a single ``done`` event.
    """
    from repro.service.jobs import JobState

    offset = 0
    line_no = 0
    pending = b""
    last_beat = asyncio.get_running_loop().time()
    started = last_beat
    while True:
        sent_any = False
        if os.path.exists(trace_path):
            try:
                with open(trace_path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                chunk = b""
            if chunk:
                offset += len(chunk)
                pending += chunk
                # Only complete lines are forwarded; a torn tail (the
                # writer flushes per line, but reads can race) waits
                # for its remainder.
                *lines, pending = pending.split(b"\n")
                for raw in lines:
                    raw = raw.strip()
                    if not raw:
                        continue
                    line_no += 1
                    yield format_event(
                        "trace", raw.decode("utf-8", "replace"), event_id=line_no
                    )
                    sent_any = True
        state = job_state()
        if state.get("state") in JobState.TERMINAL and not sent_any:
            yield format_event("done", state)
            return
        now = asyncio.get_running_loop().time()
        if not sent_any and now - last_beat >= heartbeat_s:
            beat = {"state": state.get("state"), "t": round(now - started, 3)}
            yield format_event("heartbeat", beat)
            last_beat = now
        if not sent_any:
            await asyncio.sleep(poll_s)

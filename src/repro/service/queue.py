"""The campaign job scheduler: weighted priorities, tenant fairness, quotas.

The service must absorb many concurrent clients without letting any one
of them monopolise the engine — the same shape as the paper's ground
segment multiplexing commands to nine FPGAs over one uplink.  The
scheduler is a plain synchronous data structure (the asyncio layer in
:mod:`repro.service.app` calls it from one event loop; the hypothesis
suite in ``tests/property/test_property_queue.py`` drives it directly)
with three hard guarantees:

* **Weighted priority, not strict priority.**  Draining follows a fixed
  cyclic pattern built from the class weights (default
  ``high:4 normal:2 batch:1``), so a saturated queue serves every class
  in exact weight proportion — ``batch`` work is slowed by ``high``
  traffic, never starved by it.  A slot whose class has nothing
  eligible is lent to the next class in the pattern (work conserving).

* **Tenant fairness.**  Within a priority class, tenants are served
  round-robin; within one ``(tenant, priority)`` lane, jobs are FIFO.
  A tenant submitting 100 jobs delays its *own* work, not its
  neighbours'.

* **Quotas.**  Per-tenant ``max_running`` caps concurrent executions
  (:meth:`JobQueue.acquire` skips tenants at their cap until
  :meth:`JobQueue.release`); ``max_queued`` bounds backlog at submit
  time (:class:`QueueFull`, HTTP 429 upstream).

Everything is deterministic — no randomness, no wall-clock reads — so a
fixed submission sequence always drains in the same order, which is
itself a pinned property.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ReproError

__all__ = [
    "PRIORITY_CLASSES",
    "DEFAULT_WEIGHTS",
    "QuotaPolicy",
    "QueueFull",
    "JobQueue",
]

#: priority classes, most to least urgent
PRIORITY_CLASSES = ("high", "normal", "batch")

#: drain slots per pattern cycle for each class
DEFAULT_WEIGHTS = {"high": 4, "normal": 2, "batch": 1}


class QueueFull(ReproError):
    """A tenant hit its ``max_queued`` backlog quota."""


@dataclass(frozen=True)
class QuotaPolicy:
    """Per-tenant limits (service-wide default, overridable per tenant)."""

    max_running: int = 4
    max_queued: int | None = None

    def __post_init__(self):
        if self.max_running < 1:
            raise ReproError("max_running must be >= 1")
        if self.max_queued is not None and self.max_queued < 1:
            raise ReproError("max_queued must be >= 1")


class JobQueue:
    """Priority/tenant-fair job queue with per-tenant running quotas.

    Items are opaque; the queue tracks them by the ``(tenant,
    priority)`` lane they were submitted to.  The contract with the
    caller: every successful :meth:`acquire` is eventually paired with
    exactly one :meth:`release` for the same tenant.
    """

    def __init__(
        self,
        *,
        weights: dict[str, int] | None = None,
        quota: QuotaPolicy | None = None,
        tenant_quotas: dict[str, QuotaPolicy] | None = None,
    ):
        self.weights = dict(DEFAULT_WEIGHTS)
        if weights:
            for name, weight in weights.items():
                if name not in PRIORITY_CLASSES:
                    raise ReproError(f"unknown priority class {name!r}")
                if int(weight) < 1:
                    raise ReproError(f"weight for {name!r} must be >= 1")
                self.weights[name] = int(weight)
        self.quota = quota or QuotaPolicy()
        self.tenant_quotas = dict(tenant_quotas or {})
        # The fixed drain pattern: weight slots per class, per cycle.
        self._pattern: tuple[str, ...] = tuple(
            cls for cls in PRIORITY_CLASSES for _ in range(self.weights[cls])
        )
        self._cursor = 0
        # One FIFO lane per (priority, tenant); rotation preserves
        # round-robin position across acquires.
        self._lanes: dict[str, dict[str, collections.deque]] = {
            cls: {} for cls in PRIORITY_CLASSES
        }
        self._rotation: dict[str, collections.deque[str]] = {
            cls: collections.deque() for cls in PRIORITY_CLASSES
        }
        self._running: collections.Counter[str] = collections.Counter()
        self._queued: collections.Counter[str] = collections.Counter()

    # -- introspection --------------------------------------------------------

    def quota_for(self, tenant: str) -> QuotaPolicy:
        return self.tenant_quotas.get(tenant, self.quota)

    def __len__(self) -> int:
        return sum(self._queued.values())

    def pending(self, tenant: str | None = None) -> int:
        if tenant is not None:
            return self._queued[tenant]
        return len(self)

    def running(self, tenant: str | None = None) -> int:
        if tenant is not None:
            return self._running[tenant]
        return sum(self._running.values())

    def snapshot(self) -> dict[str, Any]:
        """Queue state for the ``/v1/stats`` endpoint."""
        return {
            "pending": len(self),
            "running": self.running(),
            "by_priority": {
                cls: sum(len(lane) for lane in self._lanes[cls].values())
                for cls in PRIORITY_CLASSES
            },
            "by_tenant": {
                tenant: {
                    "pending": self._queued[tenant],
                    "running": self._running[tenant],
                    "max_running": self.quota_for(tenant).max_running,
                }
                for tenant in sorted(set(self._queued) | set(self._running))
                if self._queued[tenant] or self._running[tenant]
            },
        }

    def items(self) -> Iterator[tuple[str, str, Any]]:
        """Every queued item as ``(priority, tenant, item)``, lane order."""
        for cls in PRIORITY_CLASSES:
            for tenant, lane in self._lanes[cls].items():
                for item in lane:
                    yield (cls, tenant, item)

    # -- the scheduler --------------------------------------------------------

    def submit(self, item: Any, *, tenant: str, priority: str = "normal") -> None:
        """Enqueue ``item`` on the ``(tenant, priority)`` FIFO lane."""
        if priority not in PRIORITY_CLASSES:
            raise ReproError(
                f"unknown priority {priority!r} (choose from "
                f"{', '.join(PRIORITY_CLASSES)})"
            )
        policy = self.quota_for(tenant)
        if policy.max_queued is not None and self._queued[tenant] >= policy.max_queued:
            raise QueueFull(
                f"tenant {tenant!r} already has {self._queued[tenant]} queued "
                f"job(s) (max_queued={policy.max_queued})"
            )
        lanes = self._lanes[priority]
        lane = lanes.get(tenant)
        if lane is None:
            lane = lanes[tenant] = collections.deque()
            self._rotation[priority].append(tenant)  # new tenants join the back
        lane.append(item)
        self._queued[tenant] += 1

    def _pop_class(self, priority: str) -> tuple[str, Any] | None:
        """Next eligible ``(tenant, item)`` of one class, rotating fairly."""
        rotation = self._rotation[priority]
        lanes = self._lanes[priority]
        for _ in range(len(rotation)):
            tenant = rotation[0]
            rotation.rotate(-1)  # head moves to the back either way
            if self._running[tenant] >= self.quota_for(tenant).max_running:
                continue  # at quota: the slot falls to the next tenant
            lane = lanes.get(tenant)
            if not lane:
                continue
            item = lane.popleft()
            if not lane:
                del lanes[tenant]
                rotation.remove(tenant)
            self._queued[tenant] -= 1
            return (tenant, item)
        return None

    def acquire(self) -> tuple[str, str, Any] | None:
        """Pop the next runnable job as ``(tenant, priority, item)``.

        Walks the weighted pattern from the cursor; the first class with
        an eligible job (a tenant under its running cap) wins the slot.
        Returns None when nothing is eligible — either truly empty, or
        every pending tenant is at quota.  The caller owns a running
        slot until :meth:`release`.
        """
        n = len(self._pattern)
        for offset in range(n):
            priority = self._pattern[(self._cursor + offset) % n]
            popped = self._pop_class(priority)
            if popped is not None:
                self._cursor = (self._cursor + offset + 1) % n
                tenant, item = popped
                self._running[tenant] += 1
                return (tenant, priority, item)
        return None

    def release(self, tenant: str) -> None:
        """Return the running slot acquired for ``tenant``."""
        if self._running[tenant] <= 0:
            raise ReproError(f"release without acquire for tenant {tenant!r}")
        self._running[tenant] -= 1

    def cancel(self, predicate) -> list[Any]:
        """Remove (and return) every queued item matching ``predicate``."""
        removed: list[Any] = []
        for cls in PRIORITY_CLASSES:
            lanes = self._lanes[cls]
            for tenant in list(lanes):
                lane = lanes[tenant]
                kept = collections.deque()
                for item in lane:
                    if predicate(item):
                        removed.append(item)
                        self._queued[tenant] -= 1
                    else:
                        kept.append(item)
                if kept:
                    lanes[tenant] = kept
                else:
                    del lanes[tenant]
                    self._rotation[cls].remove(tenant)
        return removed

"""Campaign-as-a-service: an asyncio HTTP job server over the engine.

``repro serve`` exposes the campaign engine to concurrent clients as a
small HTTP API: jobs are validated sweep specs (:mod:`.schemas`),
scheduled by a weighted-priority tenant-fair queue (:mod:`.queue`),
executed as engine subprocesses with durable records (:mod:`.jobs`),
observed live over SSE (:mod:`.sse`), and served in O(1) from the
content-addressed result cache on repeats.  The engine stays pure; the
service owns scheduling, quotas, and caching (:mod:`.app`).
"""

from repro.service.app import CampaignServer, ServiceConfig, run_server
from repro.service.jobs import Job, JobState, JobStore, UnknownJob
from repro.service.queue import (
    DEFAULT_WEIGHTS,
    PRIORITY_CLASSES,
    JobQueue,
    QueueFull,
    QuotaPolicy,
)
from repro.service.schemas import JobSpec, SpecError, spec_from_json, validate_spec
from repro.service.sse import format_event, stream_job_events

__all__ = [
    "CampaignServer",
    "ServiceConfig",
    "run_server",
    "Job",
    "JobState",
    "JobStore",
    "UnknownJob",
    "JobQueue",
    "QueueFull",
    "QuotaPolicy",
    "PRIORITY_CLASSES",
    "DEFAULT_WEIGHTS",
    "JobSpec",
    "SpecError",
    "spec_from_json",
    "validate_spec",
    "format_event",
    "stream_job_events",
]

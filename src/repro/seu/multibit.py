"""Multiple-bit upset (MBU) campaigns — beyond the paper's assumption.

The paper keeps beam flux low so "SEUs ... are generally isolated
events", and the scrub loop likewise assumes at most one corrupted
frame per scan.  This extension measures what happens when that
assumption bends: inject *k* simultaneous configuration upsets and
compare the measured failure probability against the independence
prediction ``1 - (1 - s)^k`` from the single-bit sensitivity ``s``.
Interaction effects (two harmless bits conspiring, or two sensitive
bits masking) show up as the difference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CampaignError
from repro.netlist.compiled import Patch
from repro.netlist.simulator import BatchSimulator
from repro.place.flow import HardwareDesign
from repro.seu.campaign import CampaignConfig, _batch_active_mask
from repro.utils.rng import derive_rng

__all__ = ["MultiBitResult", "run_multibit_campaign"]


@dataclass
class MultiBitResult:
    """Failure statistics of k-bit simultaneous upsets."""

    k: int
    n_trials: int
    n_failures: int
    single_bit_sensitivity: float

    @property
    def failure_probability(self) -> float:
        return self.n_failures / self.n_trials if self.n_trials else 0.0

    @property
    def independence_prediction(self) -> float:
        """1 - (1 - s)^k under the no-interaction assumption."""
        return 1.0 - (1.0 - self.single_bit_sensitivity) ** self.k

    @property
    def interaction_excess(self) -> float:
        """Measured minus predicted failure probability."""
        return self.failure_probability - self.independence_prediction

    def summary(self) -> str:
        return (
            f"k={self.k}: {self.n_failures}/{self.n_trials} failed "
            f"({100 * self.failure_probability:.2f}%); independence predicts "
            f"{100 * self.independence_prediction:.2f}% "
            f"(excess {100 * self.interaction_excess:+.2f}%)"
        )


def run_multibit_campaign(
    hw: HardwareDesign,
    single_bit_sensitivity: float,
    k: int = 2,
    n_trials: int = 512,
    config: CampaignConfig | None = None,
    seed: int = 0,
) -> MultiBitResult:
    """Inject ``n_trials`` random k-bit upset sets; count output failures.

    Each trial merges the k individual single-bit patches — the decoded
    semantics compose because each configuration bit's patch touches
    disjoint hardware except where the bits genuinely interact (e.g. two
    bits of one mux field, which the merge resolves last-writer-wins in
    patch order; such same-field pairs are rare at random and are the
    interaction being measured).
    """
    if k < 1:
        raise CampaignError("k must be >= 1")
    config = config or CampaignConfig()
    rng = derive_rng(seed, "mbu", hw.spec.name)
    decoded = hw.decoded
    design = decoded.design

    stim = hw.spec.stimulus(config.total_cycles, config.seed)
    golden = BatchSimulator.golden_trace(design, stim)
    warm = BatchSimulator(design)
    warm.run(stim[: config.warmup_cycles])
    snapshot = warm.state_snapshot()
    post_stim = stim[config.warmup_cycles :]
    post_out = golden.outputs[config.warmup_cycles :]

    n_failures = 0
    done = 0
    B = config.batch_size
    while done < n_trials:
        batch_n = min(B, n_trials - done)
        patches: list[Patch] = []
        for _ in range(batch_n):
            bits = rng.choice(hw.device.block0_bits, size=k, replace=False)
            merged = Patch()
            for b in bits:
                # Bits must be flipped together so same-CLB interactions
                # decode jointly: flip all, then compute patches one bit
                # at a time against the *partially corrupted* memory.
                p = decoded.patch_for_bit(int(b))
                if p is not None:
                    merged = merged.merged_with(p)
            patches.append(merged)
        sim = BatchSimulator(
            design,
            patches,
            initial_values=snapshot,
            active_nodes=_batch_active_mask(design, patches),
        )
        failed = np.zeros(batch_n, dtype=bool)
        for t in range(config.detect_cycles):
            out = sim.step(post_stim[t])
            failed |= np.any(out != post_out[t][None, :], axis=1)
            if failed.all():
                break
        n_failures += int(failed.sum())
        done += batch_n
    return MultiBitResult(k, n_trials, n_failures, single_bit_sensitivity)

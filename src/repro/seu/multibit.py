"""Multiple-bit upset (MBU) campaigns — beyond the paper's assumption.

The paper keeps beam flux low so "SEUs ... are generally isolated
events", and the scrub loop likewise assumes at most one corrupted
frame per scan.  This extension measures what happens when that
assumption bends: inject *k* simultaneous configuration upsets and
compare the measured failure probability against the independence
prediction ``1 - (1 - s)^k`` from the single-bit sensitivity ``s``.
Interaction effects (two harmless bits conspiring, or two sensitive
bits masking) show up as the difference.

The sweep runs on the shared campaign engine (:mod:`repro.engine`): a
candidate is one trial (a pre-drawn k-bit upset set), the observation
is the packed-word detect kernel, and the engine contributes ``jobs=N``
process sharding, checkpoint/resume and :class:`CampaignTelemetry`.
The trial sets are drawn **once, sequentially, at context-build time**
from the historical ``derive_rng(seed, "mbu", design)`` stream, so
results are bit-identical to the original serial implementation for
any worker count.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.engine.cache import implemented_design, prime_design_cache
from repro.engine.detect import detect_failures
from repro.engine.model import CODE_FAIL, CODE_NO_EFFECT, FaultModel
from repro.engine.sweep import SweepResult, resume_sweep, run_sweep
from repro.engine.telemetry import CampaignTelemetry
from repro.errors import CampaignError
from repro.netlist.compiled import Patch
from repro.netlist.backends import make_simulator
from repro.netlist.simulator import SETTLE_CAP, max_schedule_violations
from repro.place.flow import HardwareDesign
from repro.seu.campaign import (
    CampaignConfig,
    CampaignContext,
    batch_active_mask,
    build_context,
)
from repro.utils.rng import derive_rng

__all__ = ["MultiBitResult", "MBUFaultModel", "run_multibit_campaign"]


@dataclass
class MultiBitResult:
    """Failure statistics of k-bit simultaneous upsets."""

    k: int
    n_trials: int
    n_failures: int
    single_bit_sensitivity: float
    #: throughput record of the sweep that produced this result
    telemetry: CampaignTelemetry | None = None

    @property
    def failure_probability(self) -> float:
        return self.n_failures / self.n_trials if self.n_trials else 0.0

    @property
    def independence_prediction(self) -> float:
        """1 - (1 - s)^k under the no-interaction assumption."""
        return 1.0 - (1.0 - self.single_bit_sensitivity) ** self.k

    @property
    def interaction_excess(self) -> float:
        """Measured minus predicted failure probability."""
        return self.failure_probability - self.independence_prediction

    def summary(self) -> str:
        return (
            f"k={self.k}: {self.n_failures}/{self.n_trials} failed "
            f"({100 * self.failure_probability:.2f}%); independence predicts "
            f"{100 * self.independence_prediction:.2f}% "
            f"(excess {100 * self.interaction_excess:+.2f}%)"
        )


@dataclass(frozen=True)
class MBUFaultModel(FaultModel):
    """k simultaneous configuration upsets per trial, engine model.

    Each trial merges the k individual single-bit patches — the decoded
    semantics compose because each configuration bit's patch touches
    disjoint hardware except where the bits genuinely interact (e.g.
    two bits of one mux field, which the merge resolves
    last-writer-wins in patch order; such same-field pairs are rare at
    random and are the interaction being measured).
    """

    spec: Any
    device_name: str
    config: CampaignConfig
    k: int
    n_trials: int
    seed: int
    retire: bool = True

    name: ClassVar[str] = "mbu"

    def key(self) -> str:
        return (
            f"mbu:{self.spec.name}:{self.device_name}:k={self.k}:"
            f"n={self.n_trials}:seed={self.seed}:"
            f"{json.dumps(dataclasses.asdict(self.config), sort_keys=True)}"
        )

    def space_size(self) -> int:
        return self.n_trials

    def enumerate_candidates(self) -> np.ndarray:
        return np.arange(self.n_trials, dtype=np.int64)

    def fast_forward_cycle(self) -> int | None:
        # All k upsets of a trial land together at the warmup boundary.
        return self.config.warmup_cycles

    def build_context(self) -> tuple[HardwareDesign, CampaignContext, np.ndarray]:
        hw = implemented_design(self.spec, self.device_name)
        # Draw every trial's bit set sequentially from one stream — the
        # exact draw order of the historical serial loop, so trial t is
        # the same upset set no matter how trials are later sharded.
        rng = derive_rng(self.seed, "mbu", self.spec.name)
        trial_bits = np.stack(
            [
                rng.choice(hw.device.block0_bits, size=self.k, replace=False)
                for _ in range(self.n_trials)
            ]
        ) if self.n_trials else np.empty((0, self.k), dtype=np.int64)
        return (
            hw,
            build_context(
                hw,
                self.config,
                fast_forward=None if self.fast_forward_cycle() is not None else False,
            ),
            trial_bits,
        )

    def patch_for(self, candidate: int, ctx) -> Patch:
        hw, _, trial_bits = ctx
        merged = Patch()
        for b in trial_bits[candidate]:
            # Bits must be flipped together so same-CLB interactions
            # decode jointly: flip all, then compute patches one bit
            # at a time against the *partially corrupted* memory.
            p = hw.decoded.patch_for_bit(int(b))
            if p is not None:
                merged = merged.merged_with(p)
        return merged

    def observe_batch(self, ctx, pending: list[tuple[int, Patch]]) -> list[bool]:
        return self._observe(ctx, pending, settle_passes=None)

    def _observe(
        self, ctx, pending: list[tuple[int, Patch]], settle_passes: int | None
    ) -> list[bool]:
        _, cctx, _ = ctx
        patches = [p for _, p in pending]
        sim = make_simulator(
            cctx.design,
            patches,
            settle_passes=settle_passes,
            initial_values=cctx.snapshot,
            active_nodes=batch_active_mask(cctx.design, patches),
        )
        failed = detect_failures(
            sim,
            cctx.post_stim,
            cctx.post_golden.outputs,
            self.config.detect_cycles,
            retire=self.retire,
        )
        return [bool(f) for f in failed]

    # Trials whose k bits decode to identical (often empty) merged
    # patches collapse; the settle count auto-detects per batch, so the
    # salt is the count the trial's naive batch would derive.
    def collapse_salt_datum(self, candidate: int, ctx, patch: Patch) -> int:
        _, cctx, _ = ctx
        return max_schedule_violations(cctx.design, [patch])

    def collapse_salt(self, ctx, data: list[int]) -> int:
        return 1 + min(SETTLE_CAP, max(data) if data else 0)

    def observe_collapsed(self, ctx, pending: list[tuple[int, Patch]], salt: int) -> list[bool]:
        return self._observe(ctx, pending, settle_passes=salt)

    def classify(self, observation: bool) -> int:
        return CODE_FAIL if observation else CODE_NO_EFFECT


def run_multibit_campaign(
    hw: HardwareDesign,
    single_bit_sensitivity: float,
    k: int = 2,
    n_trials: int = 512,
    config: CampaignConfig | None = None,
    seed: int = 0,
    jobs: int = 1,
    checkpoint_path: str | None = None,
    resume: bool = False,
    collapse: bool = True,
    retire: bool = True,
) -> MultiBitResult:
    """Inject ``n_trials`` random k-bit upset sets; count output failures.

    Runs on the shared campaign engine: ``jobs=N`` shards trials over
    processes (batch-aligned, so the failure count is identical to
    ``jobs=1``), and ``checkpoint_path`` snapshots engine-native
    archives a killed sweep restarts from (``resume=True``).
    ``collapse``/``retire`` toggle the verdict-identical campaign
    shrinkers (identical-patch trials share one simulation; latched
    machines drop out of the batch mid-run).
    """
    if k < 1:
        raise CampaignError("k must be >= 1")
    config = config or CampaignConfig()
    prime_design_cache(hw)
    model = MBUFaultModel(
        hw.spec, hw.device.name, config, k, n_trials, seed, retire=retire
    )
    if resume:
        if checkpoint_path is None:
            raise CampaignError("resume requires a checkpoint path")
        sweep: SweepResult = resume_sweep(
            model,
            checkpoint_path,
            jobs=jobs,
            batch_size=config.batch_size,
            collapse=collapse,
        )
    else:
        sweep = run_sweep(
            model,
            jobs=jobs,
            batch_size=config.batch_size,
            checkpoint_path=checkpoint_path,
            collapse=collapse,
        )
    return MultiBitResult(
        k,
        n_trials,
        sweep.count(CODE_FAIL),
        single_bit_sensitivity,
        telemetry=sweep.telemetry,
    )

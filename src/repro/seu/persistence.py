"""Persistent-error traces (paper Figure 7).

Figure 7 shows a counter whose high bit upsets around cycle 502: after
the upset the actual value never matches the expected one again, even
though scrubbing restored the configuration — only a reset
resynchronises.  :func:`persistent_error_trace` reproduces that
experiment for any design and fault bit, returning the expected/actual
output-word series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CampaignError
from repro.netlist.backends import make_simulator, simulator_class
from repro.place.flow import HardwareDesign

__all__ = ["PersistenceTrace", "persistent_error_trace"]


@dataclass
class PersistenceTrace:
    """Expected vs actual output words around one injected fault."""

    inject_cycle: int
    repair_cycle: int
    expected: np.ndarray  # (cycles,) uint64 output words
    actual: np.ndarray  # (cycles,) uint64
    first_error_cycle: int  # -1 if none
    recovered: bool  # outputs re-matched after repair

    @property
    def persistent(self) -> bool:
        return self.first_error_cycle >= 0 and not self.recovered


def _words(outputs: np.ndarray) -> np.ndarray:
    """Pack per-cycle output bit vectors into integers (LSB = bit 0)."""
    weights = (1 << np.arange(outputs.shape[-1], dtype=np.uint64)).astype(np.uint64)
    return (outputs.astype(np.uint64) @ weights).astype(np.uint64)


def persistent_error_trace(
    hw: HardwareDesign,
    fault_bit: int,
    inject_cycle: int = 502,
    repair_after: int = 24,
    total_cycles: int = 1024,
    seed: int = 0,
) -> PersistenceTrace:
    """Inject ``fault_bit`` at ``inject_cycle``, scrub ``repair_after``
    cycles later, and record expected-vs-actual output words throughout.
    """
    if inject_cycle + repair_after >= total_cycles:
        raise CampaignError("trace window too small for inject + repair")
    patch = hw.decoded.patch_for_bit(fault_bit)
    if patch is None:
        raise CampaignError(f"bit {fault_bit} does not alter the decoded design")

    design = hw.decoded.design
    stim = hw.spec.stimulus(total_cycles, seed)
    golden = simulator_class().golden_trace(design, stim)
    expected = _words(golden.outputs)

    sim = make_simulator(design)  # starts clean; fault applied mid-run
    actual = np.zeros(total_cycles, dtype=np.uint64)
    injected = False
    repaired = False
    repair_cycle = inject_cycle + repair_after
    for t in range(total_cycles):
        if t == inject_cycle and not injected:
            sim._apply_patch(0, patch)
            injected = True
        if t == repair_cycle and not repaired:
            sim.repair_machine(0)
            repaired = True
        out = sim.step(stim[t])
        actual[t] = _words(out)[0]

    errors = np.flatnonzero(actual != expected)
    first_error = int(errors[0]) if errors.size else -1
    tail = slice(repair_cycle + 8, total_cycles)
    recovered = bool(np.array_equal(actual[tail], expected[tail]))
    return PersistenceTrace(
        inject_cycle=inject_cycle,
        repair_cycle=repair_cycle,
        expected=expected,
        actual=actual,
        first_error_cycle=first_error,
        recovered=recovered,
    )

"""Sensitivity maps: which configuration bits matter for a design.

The paper correlates bitstream locations with output errors to
"characterise the sensitive cross-section of the design", then applies
selective mitigation to exactly that cross-section.  A
:class:`SensitivityMap` is that artifact: a bit-indexed boolean map with
frame-level aggregation, savable alongside a configuration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CampaignError
from repro.fpga.device import VirtexDevice
from repro.seu.campaign import CampaignResult

__all__ = ["SensitivityMap"]


class SensitivityMap:
    """Boolean map over all configuration bits of one device."""

    def __init__(self, device: VirtexDevice, sensitive: np.ndarray, persistent: np.ndarray | None = None):
        n = device.total_config_bits
        self.device = device
        self.sensitive = np.zeros(n, dtype=bool)
        self.sensitive[np.asarray(sensitive, dtype=np.int64)] = True
        self.persistent = np.zeros(n, dtype=bool)
        if persistent is not None:
            self.persistent[np.asarray(persistent, dtype=np.int64)] = True

    @classmethod
    def from_campaign(cls, device: VirtexDevice, result: CampaignResult) -> "SensitivityMap":
        return cls(device, result.sensitive_bits, result.persistent_bits)

    @property
    def n_sensitive(self) -> int:
        return int(np.count_nonzero(self.sensitive))

    def is_sensitive(self, linear_bit: int) -> bool:
        return bool(self.sensitive[linear_bit])

    def sensitive_frames(self) -> dict[int, int]:
        """Frame index -> sensitive-bit count (the paper's correlation
        of bitstream locations with output errors)."""
        geo = self.device.geometry
        out: dict[int, int] = {}
        # Walk frames, counting hits in each span (frames are contiguous).
        for f in range(geo.n_frames):
            start = geo.frame_offset(f)
            n = geo.frame_bits_of(f)
            c = int(np.count_nonzero(self.sensitive[start : start + n]))
            if c:
                out[f] = c
        return out

    def clb_heatmap(self) -> np.ndarray:
        """(rows, cols) sensitive-bit counts per CLB."""
        dev = self.device
        geo = dev.geometry
        grid = np.zeros((dev.rows, dev.cols), dtype=np.int64)
        for linear in np.flatnonzero(self.sensitive):
            frame = int(np.searchsorted(geo.frame_offsets, linear, side="right")) - 1
            clb = geo.clb_of_bit(frame, int(linear - geo.frame_offset(frame)))
            if clb is not None:
                grid[clb[0], clb[1]] += 1
        return grid

    def ascii_heatmap(self) -> str:
        """Terminal rendering of the sensitive cross-section.

        The paper's 'correlation between specific locations in the bit
        stream and output area' as a glanceable picture: one character
        per CLB, '.' for clean, 1-9/# scaling with sensitive-bit count.
        """
        grid = self.clb_heatmap()
        peak = grid.max()
        lines = []
        for r in range(grid.shape[0]):
            chars = []
            for c in range(grid.shape[1]):
                v = grid[r, c]
                if v == 0:
                    chars.append(".")
                else:
                    level = int(np.ceil(9 * v / peak))
                    chars.append(str(min(level, 9)) if level < 10 else "#")
            lines.append("".join(chars))
        return "\n".join(lines)

    def save(self, path: str) -> None:
        np.savez_compressed(
            path,
            device=self.device.name,
            sensitive=np.flatnonzero(self.sensitive),
            persistent=np.flatnonzero(self.persistent),
        )

    @classmethod
    def load(cls, path: str, device: VirtexDevice) -> "SensitivityMap":
        data = np.load(path, allow_pickle=False)
        if str(data["device"]) != device.name:
            raise CampaignError(
                f"map was built for {data['device']}, not {device.name}"
            )
        return cls(device, data["sensitive"], data["persistent"])

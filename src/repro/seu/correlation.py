"""Bitstream-location x output-error correlation (paper section III-A).

"By repeated exhaustive tests, it is possible to correlate a single-bit
upset in the bitstream with an output error.  Such a correlation table
was developed for our example designs.  High correlation between
specific locations in the bit stream and output area helps to
characterize the sensitive cross-section of the design."

:func:`build_correlation_table` re-runs the sensitive bits of a campaign
and records *which output bits* each upset disturbs; the resulting
:class:`OutputCorrelation` answers the designer's questions: which
outputs does frame F endanger, and which bitstream region must I harden
to protect output k (the input to selective TMR).

The sweep runs on the shared campaign engine (:mod:`repro.engine`),
using its *payload* channel to retain the per-bit disturbed-output mask
beside the verdict code — which is what gives this table ``jobs=N``
process sharding and checkpoint/resume for free.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.engine.cache import implemented_design, prime_design_cache
from repro.engine.detect import detect_disturbed_outputs
from repro.engine.model import CODE_FAIL, CODE_NO_EFFECT, FaultModel
from repro.engine.sweep import resume_sweep, run_sweep
from repro.engine.telemetry import CampaignTelemetry
from repro.errors import CampaignError
from repro.netlist.compiled import Patch
from repro.netlist.backends import make_simulator
from repro.place.flow import HardwareDesign
from repro.seu.campaign import (
    CampaignConfig,
    CampaignContext,
    CampaignResult,
    batch_active_mask,
    build_context,
)

__all__ = ["OutputCorrelation", "CorrelationFaultModel", "build_correlation_table"]


@dataclass
class OutputCorrelation:
    """Sparse (sensitive bit -> affected output bits) table."""

    n_outputs: int
    #: linear config bit -> bool vector over outputs (True = disturbed)
    by_bit: dict[int, np.ndarray] = field(default_factory=dict)
    #: throughput record of the sweep that produced this table
    telemetry: CampaignTelemetry | None = None

    def outputs_of(self, linear_bit: int) -> np.ndarray:
        """Output indices disturbed by upsetting ``linear_bit``."""
        mask = self.by_bit.get(linear_bit)
        if mask is None:
            return np.zeros(0, dtype=np.int64)
        return np.flatnonzero(mask)

    def bits_endangering(self, output_index: int) -> list[int]:
        """Sensitive bits whose upset disturbs output ``output_index``."""
        if not 0 <= output_index < self.n_outputs:
            raise CampaignError(f"output {output_index} out of range")
        return sorted(
            bit for bit, mask in self.by_bit.items() if mask[output_index]
        )

    def output_cross_section(self) -> np.ndarray:
        """Per-output count of endangering bits — the paper's 'output
        area' correlation."""
        counts = np.zeros(self.n_outputs, dtype=np.int64)
        for mask in self.by_bit.values():
            counts += mask.astype(np.int64)
        return counts

    def fanin_histogram(self) -> dict[int, int]:
        """How many outputs a typical sensitive bit disturbs."""
        hist: dict[int, int] = {}
        for mask in self.by_bit.values():
            k = int(mask.sum())
            hist[k] = hist.get(k, 0) + 1
        return hist


@dataclass(frozen=True)
class CorrelationFaultModel(FaultModel):
    """Sensitive-bit re-run retaining the disturbed-output mask.

    Candidates are the campaign's sensitive bits; the observation is
    the accumulated per-output deviation mask over the full detect
    window (no early exit), kept as the engine payload.
    """

    spec: Any
    device_name: str
    config: CampaignConfig
    bits: tuple[int, ...]

    name: ClassVar[str] = "correlation"
    #: every candidate is an already-confirmed-sensitive bit, so classes
    #: are near-singletons and the fan-out would duplicate payload rows
    #: for no simulation saved — stay on the naive path
    collapsible: ClassVar[bool] = False

    def key(self) -> str:
        return (
            f"correlation:{self.spec.name}:{self.device_name}:"
            f"{len(self.bits)}@{hash(self.bits):x}:"
            f"{json.dumps(dataclasses.asdict(self.config), sort_keys=True)}"
        )

    def _hw(self) -> HardwareDesign:
        return implemented_design(self.spec, self.device_name)

    def space_size(self) -> int:
        return int(self._hw().device.total_config_bits)

    def enumerate_candidates(self) -> np.ndarray:
        return np.asarray(self.bits, dtype=np.int64)

    def build_context(self) -> tuple[HardwareDesign, CampaignContext]:
        hw = self._hw()
        # fast_forward_cycle() stays None (like collapsible above): the
        # correlation observation spans the whole run, so the context is
        # built on the cold path regardless of the ambient toggle.
        return hw, build_context(hw, self.config, fast_forward=False)

    def patch_for(self, candidate: int, ctx) -> Patch:
        hw, _ = ctx
        patch = hw.decoded.patch_for_bit(candidate)
        if patch is None:  # cannot happen for campaign-sensitive bits
            raise CampaignError(f"bit {candidate} no longer decodes to a fault")
        return patch

    def observe_batch(self, ctx, pending: list[tuple[int, Patch]]) -> list[np.ndarray]:
        _, cctx = ctx
        patches = [p for _, p in pending]
        sim = make_simulator(
            cctx.design,
            patches,
            initial_values=cctx.snapshot,
            active_nodes=batch_active_mask(cctx.design, patches),
        )
        disturbed = detect_disturbed_outputs(
            sim, cctx.post_stim, cctx.post_golden.outputs, self.config.detect_cycles
        )
        return [disturbed[i] for i in range(len(pending))]

    def classify(self, observation: np.ndarray) -> int:
        return CODE_FAIL if observation.any() else CODE_NO_EFFECT

    def payload(self, observation: np.ndarray) -> np.ndarray:
        return observation


def build_correlation_table(
    hw: HardwareDesign,
    result: CampaignResult,
    config: CampaignConfig | None = None,
    max_bits: int | None = None,
    jobs: int = 1,
    checkpoint_path: str | None = None,
    resume: bool = False,
) -> OutputCorrelation:
    """Re-run each sensitive bit recording the disturbed output set.

    ``max_bits`` truncates the sweep for quick looks; the default
    processes every sensitive bit of the campaign.  Runs on the shared
    campaign engine: ``jobs=N`` shards bits over processes
    (batch-aligned, so the table is identical to ``jobs=1``), and
    ``checkpoint_path`` snapshots engine-native archives a killed sweep
    restarts from (``resume=True``).
    """
    config = config or result.config
    bits = [int(b) for b in result.sensitive_bits]
    if max_bits is not None:
        bits = bits[:max_bits]
    prime_design_cache(hw)
    model = CorrelationFaultModel(hw.spec, hw.device.name, config, tuple(bits))
    if resume:
        if checkpoint_path is None:
            raise CampaignError("resume requires a checkpoint path")
        sweep = resume_sweep(
            model, checkpoint_path, jobs=jobs, batch_size=config.batch_size
        )
    else:
        sweep = run_sweep(
            model,
            jobs=jobs,
            batch_size=config.batch_size,
            checkpoint_path=checkpoint_path,
        )
    table = OutputCorrelation(
        n_outputs=hw.decoded.design.n_outputs, telemetry=sweep.telemetry
    )
    for bit in bits:
        table.by_bit[bit] = sweep.payloads[bit]
    return table

"""Bitstream-location x output-error correlation (paper section III-A).

"By repeated exhaustive tests, it is possible to correlate a single-bit
upset in the bitstream with an output error.  Such a correlation table
was developed for our example designs.  High correlation between
specific locations in the bit stream and output area helps to
characterize the sensitive cross-section of the design."

:func:`build_correlation_table` re-runs the sensitive bits of a campaign
and records *which output bits* each upset disturbs; the resulting
:class:`OutputCorrelation` answers the designer's questions: which
outputs does frame F endanger, and which bitstream region must I harden
to protect output k (the input to selective TMR).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CampaignError
from repro.netlist.simulator import BatchSimulator
from repro.place.flow import HardwareDesign
from repro.seu.campaign import CampaignConfig, CampaignResult, _batch_active_mask

__all__ = ["OutputCorrelation", "build_correlation_table"]


@dataclass
class OutputCorrelation:
    """Sparse (sensitive bit -> affected output bits) table."""

    n_outputs: int
    #: linear config bit -> bool vector over outputs (True = disturbed)
    by_bit: dict[int, np.ndarray] = field(default_factory=dict)

    def outputs_of(self, linear_bit: int) -> np.ndarray:
        """Output indices disturbed by upsetting ``linear_bit``."""
        mask = self.by_bit.get(linear_bit)
        if mask is None:
            return np.zeros(0, dtype=np.int64)
        return np.flatnonzero(mask)

    def bits_endangering(self, output_index: int) -> list[int]:
        """Sensitive bits whose upset disturbs output ``output_index``."""
        if not 0 <= output_index < self.n_outputs:
            raise CampaignError(f"output {output_index} out of range")
        return sorted(
            bit for bit, mask in self.by_bit.items() if mask[output_index]
        )

    def output_cross_section(self) -> np.ndarray:
        """Per-output count of endangering bits — the paper's 'output
        area' correlation."""
        counts = np.zeros(self.n_outputs, dtype=np.int64)
        for mask in self.by_bit.values():
            counts += mask.astype(np.int64)
        return counts

    def fanin_histogram(self) -> dict[int, int]:
        """How many outputs a typical sensitive bit disturbs."""
        hist: dict[int, int] = {}
        for mask in self.by_bit.values():
            k = int(mask.sum())
            hist[k] = hist.get(k, 0) + 1
        return hist


def build_correlation_table(
    hw: HardwareDesign,
    result: CampaignResult,
    config: CampaignConfig | None = None,
    max_bits: int | None = None,
) -> OutputCorrelation:
    """Re-run each sensitive bit recording the disturbed output set.

    ``max_bits`` truncates the sweep for quick looks; the default
    processes every sensitive bit of the campaign.
    """
    config = config or result.config
    decoded = hw.decoded
    design = decoded.design

    stim = hw.spec.stimulus(config.total_cycles, config.seed)
    golden = BatchSimulator.golden_trace(design, stim)
    warm = BatchSimulator(design)
    warm.run(stim[: config.warmup_cycles])
    snapshot = warm.state_snapshot()
    post_stim = stim[config.warmup_cycles :]
    post_out = golden.outputs[config.warmup_cycles :]

    bits = [int(b) for b in result.sensitive_bits]
    if max_bits is not None:
        bits = bits[:max_bits]

    table = OutputCorrelation(n_outputs=design.n_outputs)
    B = config.batch_size
    for start in range(0, len(bits), B):
        chunk = bits[start : start + B]
        patches = []
        kept = []
        for bit in chunk:
            p = decoded.patch_for_bit(bit)
            if p is None:  # cannot happen for campaign-sensitive bits
                raise CampaignError(f"bit {bit} no longer decodes to a fault")
            patches.append(p)
            kept.append(bit)
        sim = BatchSimulator(
            design,
            patches,
            initial_values=snapshot,
            active_nodes=_batch_active_mask(design, patches),
        )
        disturbed = np.zeros((len(kept), design.n_outputs), dtype=bool)
        for t in range(config.detect_cycles):
            out = sim.step(post_stim[t])
            disturbed |= out != post_out[t][None, :]
        for bit, mask in zip(kept, disturbed):
            table.by_bit[bit] = mask
    return table

"""Single-bit fault injector over a live configuration memory.

This is the "artificial insertion of SEUs" primitive (paper section
II-A): flip a chosen bit in the device's configuration, leaving repair
to either the injector itself (bench campaigns) or the scrub manager
(on-orbit rehearsals).  The campaign engine does not use this class —
it works with sparse patches for speed — but the testbed and scrubbing
demos exercise the true flip-the-memory path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.errors import CampaignError

__all__ = ["FaultInjector"]


@dataclass
class FaultInjector:
    """Flips and restores bits of one configuration memory."""

    memory: ConfigBitstream
    golden: ConfigBitstream
    _outstanding: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.memory.geometry != self.golden.geometry:
            raise CampaignError("memory and golden geometry differ")

    @property
    def outstanding(self) -> list[int]:
        """Linear indices currently corrupted (sorted)."""
        return sorted(self._outstanding)

    def inject(self, linear_bit: int) -> None:
        """Corrupt one bit (idempotent per bit: re-injecting restores)."""
        self.memory.flip_bit(linear_bit)
        if linear_bit in self._outstanding:
            self._outstanding.discard(linear_bit)
        else:
            self._outstanding.add(linear_bit)

    def inject_random(self, rng: np.random.Generator, n: int = 1) -> list[int]:
        """Corrupt ``n`` distinct uniformly random bits; returns them."""
        picks = rng.choice(self.memory.n_bits, size=n, replace=False)
        out = []
        for p in picks:
            self.inject(int(p))
            out.append(int(p))
        return out

    def repair_bit(self, linear_bit: int) -> None:
        """Restore one bit from the golden image."""
        self.memory.set_bit(linear_bit, self.golden.get_bit(linear_bit))
        self._outstanding.discard(linear_bit)

    def repair_all(self) -> int:
        """Restore every outstanding corruption; returns how many."""
        n = len(self._outstanding)
        for b in list(self._outstanding):
            self.repair_bit(b)
        return n

    def verify_clean(self) -> bool:
        """True when memory matches golden exactly."""
        return bool(np.array_equal(self.memory.bits, self.golden.bits))

"""Plain-text tables matching the paper's layout."""

from __future__ import annotations

from repro.seu.sensitivity import Table1Row

__all__ = ["format_table", "format_table1", "format_table2"]


def format_table(headers: list[str], rows: list[tuple[str, ...]]) -> str:
    """Fixed-width table with a header rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in rows)
    return "\n".join(lines)


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table I: SEU simulator results for test designs."""
    return format_table(
        ["Design", "Logic Slices", "Failures", "Sensitivity", "Normalized Sensitivity"],
        [r.cells() for r in rows],
    )


def format_table2(rows: list[tuple[str, int, float, float, float]]) -> str:
    """Render Table II rows: (design, slices, util, sensitivity, persistence)."""
    cells = [
        (
            name,
            f"{slices} ({100 * util:.1f}%)",
            f"{100 * sens:.2f}%",
            f"{100 * persist:.1f}%",
        )
        for name, slices, util, sens, persist in rows
    ]
    return format_table(
        ["Design", "Logic Slices", "Sensitivity", "Persistence Ratio"], cells
    )

"""SEU simulation: fault-injection campaigns over configuration memory.

The paper's headline contribution (section III): corrupt one
configuration bit of a running design, watch the outputs against a
lock-step golden copy, repair the bit, classify.  Aggregates:

* **sensitivity** — fraction of all configuration bits whose upset
  produces an output error (Table I);
* **normalised sensitivity** — sensitivity with the area factored out
  (design-family constant, Table I);
* **persistence** — fraction of sensitive bits whose error survives
  configuration repair and requires a reset (Table II, Figure 7).
"""

from repro.seu.campaign import (
    BitVerdict,
    CampaignConfig,
    CampaignResult,
    CampaignTelemetry,
    HalfLatchFaultModel,
    SEUFaultModel,
    batch_active_mask,
    load_result,
    merge_results,
    resume_campaign,
    run_campaign,
    run_halflatch_campaign,
    run_halflatch_sweep,
    save_result,
)
from repro.seu.parallel import (
    default_jobs,
    resume_campaign_parallel,
    run_campaign_parallel,
)
from repro.seu.multibit import MBUFaultModel, MultiBitResult, run_multibit_campaign
from repro.seu.correlation import (
    CorrelationFaultModel,
    OutputCorrelation,
    build_correlation_table,
)
from repro.seu.injector import FaultInjector
from repro.seu.maps import SensitivityMap
from repro.seu.persistence import persistent_error_trace
from repro.seu.sensitivity import Table1Row, table1_row
from repro.seu.report import format_table1, format_table2

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CampaignTelemetry",
    "BitVerdict",
    "SEUFaultModel",
    "HalfLatchFaultModel",
    "MBUFaultModel",
    "CorrelationFaultModel",
    "batch_active_mask",
    "run_campaign",
    "run_campaign_parallel",
    "resume_campaign_parallel",
    "default_jobs",
    "run_halflatch_campaign",
    "run_halflatch_sweep",
    "merge_results",
    "save_result",
    "load_result",
    "resume_campaign",
    "MultiBitResult",
    "run_multibit_campaign",
    "FaultInjector",
    "SensitivityMap",
    "OutputCorrelation",
    "build_correlation_table",
    "persistent_error_trace",
    "Table1Row",
    "table1_row",
    "format_table1",
    "format_table2",
]

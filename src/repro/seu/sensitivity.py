"""Sensitivity metrics: the quantities of paper Table I.

*Sensitivity* is failures over total configuration upsets; *normalised
sensitivity* factors out area by dividing by slice utilisation — the
paper's demonstration that similar designs of varying sizes share a
family constant (LFSR ~7.5 %, VMULT ~25 %, MULT ~22-24 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.place.flow import HardwareDesign
from repro.seu.campaign import CampaignResult

__all__ = ["Table1Row", "table1_row"]


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    design: str
    logic_slices: int
    utilization: float
    failures: int
    n_upsets: int
    sensitivity: float
    normalized_sensitivity: float

    def cells(self) -> tuple[str, ...]:
        return (
            self.design,
            f"{self.logic_slices} ({100 * self.utilization:.1f}%)",
            str(self.failures),
            f"{100 * self.sensitivity:.2f}%",
            f"{100 * self.normalized_sensitivity:.1f}%",
        )


def table1_row(hw: HardwareDesign, result: CampaignResult) -> Table1Row:
    """Assemble a Table I row from a campaign result.

    Normalised sensitivity divides by slice utilisation, exactly the
    paper's normalisation (its Table I divides out the area fraction).
    """
    util = hw.utilization
    sens = result.sensitivity
    return Table1Row(
        design=hw.spec.name,
        logic_slices=hw.used_slices,
        utilization=util,
        failures=result.n_failures,
        n_upsets=result.n_candidates,
        sensitivity=sens,
        normalized_sensitivity=sens / util if util > 0 else 0.0,
    )

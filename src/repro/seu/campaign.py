"""Fault-injection campaigns: the paper's Figure 8 loop, vectorised.

For every candidate configuration bit the campaign:

1. computes the sparse hardware difference of the flip
   (:meth:`DecodedDesign.patch_for_bit`) — bits that decode to nothing
   (reserved fields, unused fabric) are skipped without simulation;
2. drops patches that cannot reach the output cone, and LUT-content
   flips on truth-table entries the golden run never addresses (the
   equivalence argument is in the method docs);
3. batches the survivors into lock-step
   :class:`~repro.netlist.simulator.BatchSimulator` runs that detect the
   first output error, repair the configuration without reset, and
   classify persistence.

The sweep machinery — batching, process sharding, checkpoint/resume,
merging, telemetry — lives in the fault-model-agnostic engine
(:mod:`repro.engine`); this module contributes the *SEU fault model*
(:class:`SEUFaultModel`) and keeps the historical public API:
:func:`build_context` derives the per-(design, config) artifacts (golden
trace, warm-state snapshot), :func:`classify_candidate` is the
structural pre-filter for one bit, and :func:`simulate_batch` runs one
batch of survivors to verdicts.  Results and checkpoints remain
:class:`CampaignResult` archives in the original ``.npz`` schema.

A separate campaign (:func:`run_halflatch_campaign`) sweeps the *hidden*
half-latch state — the cross-section readback cannot see, which drives
the beam-validation residual (paper section III-C).  It rides the same
engine via :class:`HalfLatchFaultModel`, so it shares ``jobs=N``
sharding and checkpoint/resume with the single-bit sweep.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import pickle
import warnings
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.engine.cache import (
    cached_golden_pack,
    content_key,
    fast_forward_enabled,
    implemented_design,
    prime_design_cache,
    snapshot_stride,
    store_golden_pack,
)
from repro.engine.detect import detect_failures
from repro.engine.model import (
    CODE_FAIL,
    CODE_NO_EFFECT,
    CODE_NOT_TESTED,
    CODE_SKIP_CONE,
    FaultModel,
)
from repro.engine.sweep import (
    SweepResult,
    resume_sweep,
    run_serial,
    run_sweep,
)
from repro.engine.telemetry import CampaignTelemetry
from repro.errors import CampaignError
from repro.fpga.resources import ResourceKind
from repro.netlist.backends import make_simulator, resolve_backend, simulator_class
from repro.netlist.compiled import CompiledDesign, FFField, Patch
from repro.netlist.simulator import (
    KERNEL_COUNTERS,
    SETTLE_CAP,
    BatchSimulator,
    GoldenTrace,
    max_schedule_violations,
)
from repro.place.flow import HardwareDesign

__all__ = [
    "BitVerdict",
    "CampaignConfig",
    "CampaignContext",
    "CampaignResult",
    "CampaignTelemetry",
    "SEUFaultModel",
    "HalfLatchFaultModel",
    "batch_active_mask",
    "build_context",
    "classify_candidate",
    "simulate_batch",
    "run_campaign",
    "run_halflatch_campaign",
    "run_halflatch_sweep",
    "merge_results",
    "save_result",
    "load_result",
    "resume_campaign",
]


class BitVerdict(enum.IntEnum):
    """Per-bit campaign outcome.

    Codes 0-3 follow the engine-wide convention of
    :mod:`repro.engine.model`; codes 4-6 are the SEU model's simulated
    outcomes.
    """

    NOT_TESTED = 0  #: outside the candidate set
    SKIP_STRUCTURAL = 1  #: flip does not alter the decoded hardware
    SKIP_CONE = 2  #: alteration cannot reach the outputs
    SKIP_UNADDRESSED = 3  #: LUT entry never addressed by the golden run
    NO_EFFECT = 4  #: simulated; outputs never deviated
    FAIL_TRANSIENT = 5  #: output error; scrubbing alone recovers
    FAIL_PERSISTENT = 6  #: output error; survives repair, needs reset


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one campaign run.

    The cycle counts mirror the SLAAC-1V protocol: the design runs
    ``warmup_cycles`` before injection (faults hit a *running* design),
    is observed for ``detect_cycles``, then — after the frame repair —
    for ``persist_cycles`` more; ``converge_run`` matching cycles close
    a transient verdict.
    """

    warmup_cycles: int = 32
    detect_cycles: int = 160
    persist_cycles: int = 96
    converge_run: int = 8
    batch_size: int = 128
    seed: int = 0
    classify_persistence: bool = True
    #: test only every k-th candidate bit (1 = exhaustive)
    stride: int = 1

    @property
    def total_cycles(self) -> int:
        return self.warmup_cycles + self.detect_cycles + self.persist_cycles


@dataclass
class CampaignResult:
    """Aggregate of one campaign."""

    design_name: str
    device_name: str
    config: CampaignConfig
    n_candidates: int
    verdicts: np.ndarray  # (n_bits_total,) uint8 of BitVerdict
    candidate_bits: np.ndarray  # linear indices tested
    #: sensitive-bit count per resource kind
    by_kind: dict[ResourceKind, int] = field(default_factory=dict)
    host_seconds: float = 0.0
    n_simulated: int = 0
    #: throughput record of the run that produced this result (not merged)
    telemetry: CampaignTelemetry | None = None

    @property
    def sensitive_bits(self) -> np.ndarray:
        """Linear indices of bits whose upset caused an output error."""
        mask = (self.verdicts == BitVerdict.FAIL_TRANSIENT) | (
            self.verdicts == BitVerdict.FAIL_PERSISTENT
        )
        return np.flatnonzero(mask)

    @property
    def persistent_bits(self) -> np.ndarray:
        return np.flatnonzero(self.verdicts == BitVerdict.FAIL_PERSISTENT)

    @property
    def n_failures(self) -> int:
        return int(self.sensitive_bits.size)

    @property
    def sensitivity(self) -> float:
        """Design failures / configuration upsets (Table I definition)."""
        if self.n_candidates == 0:
            return 0.0
        return self.n_failures / self.n_candidates

    @property
    def persistence_ratio(self) -> float:
        """Persistent bits per sensitive bit (Table II definition)."""
        if self.n_failures == 0:
            return 0.0
        return int(self.persistent_bits.size) / self.n_failures

    def summary(self) -> str:
        return (
            f"{self.design_name}: {self.n_failures}/{self.n_candidates} sensitive "
            f"({100 * self.sensitivity:.2f}%), persistence "
            f"{100 * self.persistence_ratio:.1f}%, simulated {self.n_simulated}, "
            f"host {self.host_seconds:.1f}s"
        )


def _candidate_bits(hw: HardwareDesign, config: CampaignConfig) -> np.ndarray:
    """The paper sweeps the whole (block-0) bitstream; BRAM content is
    masked out of readback-based campaigns."""
    n = hw.device.block0_bits
    return np.arange(0, n, config.stride, dtype=np.int64)


@dataclass
class CampaignContext:
    """Artifacts derived once per (design, config) and shared by every
    shard of a campaign: the golden trace, the warm-state snapshot at the
    injection instant, the post-injection stimulus/reference, and the
    golden address-suffix masks fault dropping proves retirements with
    (``addr_suffix[t]`` ORs every LUT address golden exercises from
    post-injection cycle ``t`` onward)."""

    design: CompiledDesign
    golden: GoldenTrace
    snapshot: np.ndarray
    post_stim: np.ndarray
    post_golden: GoldenTrace
    addr_suffix: np.ndarray | None = None


def _golden_pack_key(design, stim: np.ndarray, stride: int) -> str:
    """Content address of one (design, stimulus, backend, stride) golden run."""
    return content_key(
        "golden-pack-v1",
        pickle.dumps(design),
        stim,
        resolve_backend(),
        stride,
    )


def build_context(
    hw: HardwareDesign,
    config: CampaignConfig,
    fast_forward: bool | None = None,
) -> CampaignContext:
    """Derive the shared campaign artifacts for one (design, config).

    With fast-forward on (the ambient default, see
    :func:`repro.engine.cache.fast_forward_enabled`; ``None`` defers to
    it) the golden run records state snapshots every
    ``REPRO_SNAPSHOT_STRIDE`` cycles and is kept in the golden-pack
    store, so the warm-state snapshot at the injection instant is
    restored from the nearest golden checkpoint (replaying only the
    residual prefix) and repeat context builds — second sweeps, every
    worker process after the first on a shared store, resumed runs —
    skip the full-stimulus golden simulation entirely.  Node values
    fully determine future evolution given the stimulus, so both
    shortcuts are byte-identical to the cold path.
    """
    design = hw.decoded.design
    stim = hw.spec.stimulus(config.total_cycles, config.seed)
    if fast_forward is None:
        fast_forward = fast_forward_enabled()
    if fast_forward:
        stride = snapshot_stride()
        key = _golden_pack_key(design, stim, stride)
        golden = cached_golden_pack(key)
        if golden is None:
            golden = simulator_class().golden_trace(
                design, stim, record_addr_rows=True, snapshot_stride=stride
            )
            store_golden_pack(key, golden)
        else:
            # The whole golden simulation was served from the pack store.
            KERNEL_COUNTERS.ff_cycles_skipped += golden.n_cycles
        start, state = golden.nearest_snapshot(config.warmup_cycles)
        if start == config.warmup_cycles and state is not None:
            snapshot = state.copy()
        else:
            warm_sim = make_simulator(design, initial_values=state)
            warm_sim.run(stim[start : config.warmup_cycles])
            snapshot = warm_sim.state_snapshot()
        KERNEL_COUNTERS.ff_cycles_skipped += start
    else:
        golden = simulator_class().golden_trace(design, stim, record_addr_rows=True)
        # Snapshot the running state at the injection instant.
        warm_sim = make_simulator(design)
        warm_sim.run(stim[: config.warmup_cycles])
        snapshot = warm_sim.state_snapshot()
    post_stim = stim[config.warmup_cycles :]
    post_golden = GoldenTrace(
        golden.outputs[config.warmup_cycles :], golden.addr_seen, golden.final_state
    )
    # Reverse-cumulative OR of the post-injection per-cycle address
    # masks: row t covers everything golden addresses from cycle t on,
    # and the final all-zero row says "nothing remains after the run".
    rows = golden.addr_rows[config.warmup_cycles :]
    n_post = int(rows.shape[0])
    addr_suffix = np.zeros((n_post + 1, design.n_luts), dtype=np.uint16)
    if n_post:
        addr_suffix[:n_post] = np.bitwise_or.accumulate(rows[::-1], axis=0)[::-1]
    return CampaignContext(
        design, golden, snapshot, post_stim, post_golden, addr_suffix
    )


def classify_candidate(
    hw: HardwareDesign, ctx: CampaignContext, bit: int
) -> tuple[int, Patch | None]:
    """Structural pre-filter for one candidate bit.

    Returns ``(skip_verdict, None)`` when the flip provably cannot
    produce an output error, or ``(BitVerdict.NOT_TESTED, patch)`` when
    the bit survives and must be simulated.
    """
    patch = hw.decoded.patch_for_bit(bit)
    if patch is None:
        return int(BitVerdict.SKIP_STRUCTURAL), None
    if not hw.decoded.patch_is_relevant(patch):
        return int(BitVerdict.SKIP_CONE), None
    if _lut_content_skip(patch, hw, ctx.golden.addr_seen):
        return int(BitVerdict.SKIP_UNADDRESSED), None
    return int(BitVerdict.NOT_TESTED), patch


def simulate_batch(
    config: CampaignConfig,
    ctx: CampaignContext,
    pending: list[tuple[int, Patch]],
    settle_passes: int | None = None,
    retire: bool = True,
) -> list[int]:
    """Simulate one batch of pre-filter survivors to per-bit verdicts.

    ``pending`` is the ordered ``(bit, patch)`` list of one batch; the
    returned verdict codes align with it.  Both the serial loop and the
    parallel shards call this, so batch composition alone determines the
    verdicts — the determinism contract sharding relies on.

    ``settle_passes`` forces the settle count instead of auto-detecting
    it from this batch — the collapse driver passes each class's salt so
    regrouped representatives keep their naive batch's behaviour.
    ``retire`` turns on mid-run fault dropping (verdict-identical; adds
    a golden companion machine to the batch).
    """
    patches = [p for _, p in pending]
    sim = make_simulator(
        ctx.design,
        patches,
        settle_passes=settle_passes,
        initial_values=ctx.snapshot,
        active_nodes=batch_active_mask(ctx.design, patches),
        companion=retire,
    )
    machine_verdicts = sim.run_verdicts(
        ctx.post_stim,
        ctx.post_golden,
        config.detect_cycles,
        config.persist_cycles if config.classify_persistence else 0,
        config.converge_run,
        retire=retire,
        addr_suffix=ctx.addr_suffix if retire else None,
    )
    codes: list[int] = []
    for mv in machine_verdicts:
        if not mv.failed:
            codes.append(int(BitVerdict.NO_EFFECT))
        elif mv.persistent and config.classify_persistence:
            codes.append(int(BitVerdict.FAIL_PERSISTENT))
        else:
            codes.append(int(BitVerdict.FAIL_TRANSIENT))
    return codes


def _lut_content_skip(patch: Patch, hw: HardwareDesign, addr_seen: np.ndarray) -> bool:
    """True when the patch flips only LUT entries never addressed.

    Sound because a machine identical to golden except in unaddressed
    truth-table entries stays cycle-identical by induction: equal state
    produces equal addresses, which never reach a differing entry.
    """
    if patch.lut_inputs or patch.ff_fields or patch.consts or patch.outputs:
        return False
    d = hw.decoded.design
    for row, table in patch.lut_tables:
        changed = np.flatnonzero(table ^ d.lut_tables[row])
        if changed.size == 0:
            continue
        mask = np.bitwise_or.reduce(np.left_shift(np.uint16(1), changed.astype(np.uint16)))
        if addr_seen[row] & mask:
            return False
    return True


def batch_active_mask(design, patches: list[Patch]) -> np.ndarray:
    """Node mask closing the output cone over golden + patch edges.

    Sound superset of what any machine in the batch can need: the
    backward closure from the outputs where each LUT/FF contributes its
    golden operands *plus* every operand any patch retargets it to.
    """
    extra: dict[int, list[int]] = {}
    seeds: list[int] = [int(x) for x in design.output_nodes]
    for p in patches:
        for row, pin, node in p.lut_inputs:
            extra.setdefault(int(design.lut_nodes[row]), []).append(int(node))
        for row, fieldname, value in p.ff_fields:
            if fieldname in (FFField.D, FFField.CE, FFField.SR):
                extra.setdefault(int(design.ff_nodes[row]), []).append(int(value))
        for _, node in p.outputs:
            seeds.append(int(node))

    lut_row_of = {int(n): r for r, n in enumerate(design.lut_nodes)}
    ff_row_of = {int(n): r for r, n in enumerate(design.ff_nodes)}
    mask = np.zeros(design.n_nodes, dtype=bool)
    stack = seeds
    while stack:
        n = stack.pop()
        if mask[n]:
            continue
        mask[n] = True
        r = lut_row_of.get(n)
        if r is not None:
            stack.extend(int(s) for s in design.lut_inputs[r])
        else:
            r = ff_row_of.get(n)
            if r is not None:
                stack.extend(
                    (int(design.ff_d[r]), int(design.ff_ce[r]), int(design.ff_sr[r]))
                )
        for s in extra.get(n, ()):  # patch edges
            if not mask[s]:
                stack.append(s)
    return mask


def _batch_active_mask(design, patches: list[Patch]) -> np.ndarray:
    """Deprecated alias of :func:`batch_active_mask`."""
    warnings.warn(
        "_batch_active_mask is deprecated; use batch_active_mask",
        DeprecationWarning,
        stacklevel=2,
    )
    return batch_active_mask(design, patches)


#: device name -> {(frame, offset) -> ResourceKind}; bit classification
#: is a pure function of the device geometry, which the name identifies.
_BIT_KIND_CACHE: dict[str, dict[tuple[int, int], ResourceKind]] = {}


def _by_kind(hw: HardwareDesign, sensitive_bits: np.ndarray) -> dict[ResourceKind, int]:
    """Per-resource-kind breakdown of sensitive bits.

    Runs at every checkpoint, so the frame lookup is vectorised (one
    ``searchsorted`` over the monotone frame-offset table instead of a
    binary search per bit) and the per-(frame, offset) classification is
    memoized per device — re-checkpointing a large sweep only pays for
    bits it has not classified before.
    """
    bits = np.asarray(sensitive_bits, dtype=np.int64)
    out: dict[ResourceKind, int] = {}
    if bits.size == 0:
        return out
    offsets = np.asarray(hw.bitstream.geometry.frame_offsets)
    frames = np.searchsorted(offsets, bits, side="right") - 1
    offs = bits - offsets[frames]
    cache = _BIT_KIND_CACHE.setdefault(hw.device.name, {})
    classify = hw.device.classify_bit
    for frame, off in zip(frames.tolist(), offs.tolist()):
        key = (frame, off)
        kind = cache.get(key)
        if kind is None:
            kind = classify(frame, off).kind
            cache[key] = kind
        out[kind] = out.get(kind, 0) + 1
    return out


def save_result(result: CampaignResult, path: str) -> None:
    """Persist a (possibly partial) campaign result to ``path`` (.npz).

    The write is atomic (tmp file + rename) so a campaign killed while
    checkpointing never leaves a truncated snapshot behind.
    """
    payload = dict(
        design_name=np.str_(result.design_name),
        device_name=np.str_(result.device_name),
        config_json=np.str_(json.dumps(dataclasses.asdict(result.config))),
        n_candidates=np.int64(result.n_candidates),
        verdicts=result.verdicts,
        candidate_bits=result.candidate_bits,
        by_kind_names=np.array([k.name for k in result.by_kind], dtype=np.str_),
        by_kind_counts=np.array(list(result.by_kind.values()), dtype=np.int64),
        host_seconds=np.float64(result.host_seconds),
        n_simulated=np.int64(result.n_simulated),
    )
    if result.telemetry is not None:
        payload["telemetry_json"] = np.str_(json.dumps(result.telemetry.to_dict()))
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        np.savez_compressed(f, **payload)
    os.replace(tmp, path)


def load_result(path: str) -> CampaignResult:
    """Load a campaign result / checkpoint written by :func:`save_result`."""
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as err:
        raise CampaignError(f"cannot load campaign checkpoint {path!r}: {err}") from None
    config = CampaignConfig(**json.loads(str(data["config_json"])))
    by_kind = {
        ResourceKind[str(name)]: int(count)
        for name, count in zip(data["by_kind_names"], data["by_kind_counts"])
    }
    telemetry = None
    if "telemetry_json" in data:
        fields = {f.name for f in dataclasses.fields(CampaignTelemetry)}
        raw = json.loads(str(data["telemetry_json"]))
        telemetry = CampaignTelemetry(**{k: v for k, v in raw.items() if k in fields})
    return CampaignResult(
        design_name=str(data["design_name"]),
        device_name=str(data["device_name"]),
        config=config,
        n_candidates=int(data["n_candidates"]),
        verdicts=data["verdicts"],
        candidate_bits=data["candidate_bits"],
        by_kind=by_kind,
        host_seconds=float(data["host_seconds"]),
        n_simulated=int(data["n_simulated"]),
        telemetry=telemetry,
    )


# -- the SEU fault model -------------------------------------------------------


@dataclass(frozen=True)
class SEUFaultModel(FaultModel):
    """Single-bit configuration upsets, as seen by the campaign engine.

    Candidates are linear block-0 bitstream indices; the pre-filter is
    :func:`classify_candidate`, the observation is
    :func:`simulate_batch`'s inject/observe/repair/classify verdict.
    Picklable by construction: heavy state (the implemented design, the
    golden trace, the warm snapshot) is derived per process in
    :meth:`build_context` through the shared implemented-design cache.

    ``retire`` enables mid-run fault dropping (verdict-identical, see
    :meth:`BatchSimulator.run_verdicts`); it is an execution knob, so it
    is deliberately excluded from :meth:`key` — checkpoints written with
    either setting resume into each other.
    """

    spec: Any
    device_name: str
    config: CampaignConfig
    retire: bool = True

    name: ClassVar[str] = "seu"

    def key(self) -> str:
        return (
            f"seu:{self.spec.name}:{self.device_name}:"
            f"{json.dumps(dataclasses.asdict(self.config), sort_keys=True)}"
        )

    def space_size(self) -> int:
        return int(self._hw().device.total_config_bits)

    def enumerate_candidates(self) -> np.ndarray:
        return _candidate_bits(self._hw(), self.config)

    def _hw(self) -> HardwareDesign:
        return implemented_design(self.spec, self.device_name)

    def fast_forward_cycle(self) -> int | None:
        # Every machine is golden until the upset lands at the warmup
        # boundary, so context builds may start from a golden snapshot.
        return self.config.warmup_cycles

    def build_context(self) -> tuple[HardwareDesign, CampaignContext]:
        hw = self._hw()
        return hw, build_context(
            hw, self.config, fast_forward=None if self.fast_forward_cycle() is not None else False
        )

    def prefilter(self, candidate: int, ctx) -> tuple[int, Patch | None]:
        hw, cctx = ctx
        return classify_candidate(hw, cctx, candidate)

    def patch_for(self, candidate: int, ctx) -> Patch:
        hw, _ = ctx
        return hw.decoded.patch_for_bit(candidate)

    def observe_batch(self, ctx, pending: list[tuple[int, Patch]]) -> list[int]:
        _, cctx = ctx
        return simulate_batch(self.config, cctx, pending, retire=self.retire)

    # A bit's verdict is a function of (patch, settle passes), and the
    # settle count auto-detects *per batch* — so the collapse salt is
    # the settle count the candidate's naive batch would derive, and
    # representatives simulate with it forced.
    def collapse_salt_datum(self, candidate: int, ctx, patch: Patch) -> int:
        _, cctx = ctx
        return max_schedule_violations(cctx.design, [patch])

    def collapse_salt(self, ctx, data: list[int]) -> int:
        return 1 + min(SETTLE_CAP, max(data) if data else 0)

    def observe_collapsed(self, ctx, pending: list[tuple[int, Patch]], salt: int) -> list[int]:
        _, cctx = ctx
        return simulate_batch(
            self.config, cctx, pending, settle_passes=salt, retire=self.retire
        )

    def classify(self, observation: int) -> int:
        return int(observation)


def _to_sweep(model: SEUFaultModel, result: CampaignResult) -> SweepResult:
    """View a prior :class:`CampaignResult` as an engine partial."""
    return SweepResult(
        model_name=model.name,
        model_key=model.key(),
        n_space=int(result.verdicts.size),
        verdicts=result.verdicts,
        candidate_ids=np.asarray(result.candidate_bits, dtype=np.int64),
        n_simulated=result.n_simulated,
        host_seconds=result.host_seconds,
        telemetry=result.telemetry,
    )


def _from_sweep(
    hw: HardwareDesign, config: CampaignConfig, sweep: SweepResult
) -> CampaignResult:
    """Materialise an engine sweep as the historical result type."""
    result = CampaignResult(
        design_name=hw.spec.name,
        device_name=hw.device.name,
        config=config,
        n_candidates=sweep.n_candidates,
        verdicts=sweep.verdicts,
        candidate_bits=sweep.candidate_ids,
        host_seconds=sweep.host_seconds,
        n_simulated=sweep.n_simulated,
        telemetry=sweep.telemetry,
    )
    result.by_kind = _by_kind(hw, result.sensitive_bits)
    return result


def run_campaign(
    hw: HardwareDesign,
    config: CampaignConfig | None = None,
    candidate_bits: np.ndarray | None = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 50_000,
    merge_with: CampaignResult | None = None,
    collapse: bool = True,
    retire: bool = True,
) -> CampaignResult:
    """Exhaustive (or strided) single-bit SEU campaign over one design.

    With ``checkpoint_path`` the campaign periodically snapshots a
    partial :class:`CampaignResult` to disk (every ``checkpoint_every``
    candidate bits, and once more at the end), so a multi-hour sweep
    killed mid-run resumes with :func:`resume_campaign` instead of
    starting over.  ``merge_with`` folds an earlier partial result into
    every snapshot (used by resume so re-interrupted runs stay whole).

    ``collapse`` (fault collapsing: one simulation per identical-patch
    class) and ``retire`` (mid-run fault dropping) are verdict-identical
    accelerations, on by default; the ``--no-collapse`` / ``--no-retire``
    CLI flags map here.

    For multi-core sweeps see
    :func:`repro.seu.parallel.run_campaign_parallel`, which produces
    bit-identical verdicts by sharding at batch boundaries.
    """
    config = config or CampaignConfig()
    prime_design_cache(hw)
    model = SEUFaultModel(hw.spec, hw.device.name, config, retire=retire)
    if candidate_bits is None:
        candidate_bits = _candidate_bits(hw, config)
    candidate_bits = np.asarray(candidate_bits, dtype=np.int64)

    checkpoint_cb = None
    if checkpoint_path is not None:

        def checkpoint_cb(sweep: SweepResult) -> None:
            # Resolve save_result at call time so tests (and tools) that
            # monkeypatch it see every checkpoint write.
            save_result(_from_sweep(hw, config, sweep), checkpoint_path)

    # No pre-built context: run_serial consults the whole-sweep result
    # cache *before* building one (model.build_context reuses the primed
    # implemented design), so a warm repeat sweep never pays for the
    # golden run at all.
    sweep = run_serial(
        model,
        batch_size=config.batch_size,
        candidates=candidate_bits,
        checkpoint_save=checkpoint_cb,
        checkpoint_every=checkpoint_every,
        merge_with=_to_sweep(model, merge_with) if merge_with is not None else None,
        collapse=collapse,
    )
    return _from_sweep(hw, config, sweep)


def resume_campaign(
    hw: HardwareDesign,
    checkpoint_path: str,
    candidate_bits: np.ndarray | None = None,
    checkpoint_every: int = 50_000,
    collapse: bool = True,
    retire: bool = True,
) -> CampaignResult:
    """Resume an interrupted campaign from its checkpoint.

    Loads the snapshot, skips every bit that already has a verdict, runs
    the remainder (checkpointing to the same file as it goes), and
    merges.  Verdicts are deterministic per bit given the config, so the
    merged result is identical to an uninterrupted run.
    """
    part = load_result(checkpoint_path)
    if part.design_name != hw.spec.name or part.device_name != hw.device.name:
        raise CampaignError(
            f"checkpoint {checkpoint_path!r} is for "
            f"{part.design_name}/{part.device_name}, not "
            f"{hw.spec.name}/{hw.device.name}"
        )
    if candidate_bits is None:
        candidate_bits = _candidate_bits(hw, part.config)
    candidate_bits = np.asarray(candidate_bits, dtype=np.int64)
    remaining = np.setdiff1d(candidate_bits, part.candidate_bits)
    if remaining.size == 0:
        return part
    return run_campaign(
        hw,
        part.config,
        candidate_bits=remaining,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        merge_with=part,
        collapse=collapse,
        retire=retire,
    )


def merge_results(parts: list[CampaignResult]) -> CampaignResult:
    """Combine campaigns over disjoint candidate sets into one result.

    Supports chunked or parallel execution: split the bit space, run
    each chunk (possibly in separate processes), merge.  Configurations
    must match; candidate sets must not overlap.
    """
    if not parts:
        raise CampaignError("nothing to merge")
    first = parts[0]
    verdicts = first.verdicts.copy()
    candidates = [first.candidate_bits]
    seen = set(int(b) for b in first.candidate_bits)
    n_sim = first.n_simulated
    host = first.host_seconds
    by_kind: dict[ResourceKind, int] = dict(first.by_kind)
    for part in parts[1:]:
        if part.design_name != first.design_name or part.device_name != first.device_name:
            raise CampaignError("cannot merge campaigns of different designs")
        if part.config != first.config:
            raise CampaignError("cannot merge campaigns with different configs")
        overlap = seen.intersection(int(b) for b in part.candidate_bits)
        if overlap:
            raise CampaignError(
                f"candidate sets overlap ({len(overlap)} bits, e.g. {min(overlap)})"
            )
        seen.update(int(b) for b in part.candidate_bits)
        mask = part.verdicts != BitVerdict.NOT_TESTED
        verdicts[mask] = part.verdicts[mask]
        candidates.append(part.candidate_bits)
        n_sim += part.n_simulated
        host += part.host_seconds
        for kind, n in part.by_kind.items():
            by_kind[kind] = by_kind.get(kind, 0) + n
    merged_bits = np.sort(np.concatenate(candidates))
    return CampaignResult(
        design_name=first.design_name,
        device_name=first.device_name,
        config=first.config,
        n_candidates=int(merged_bits.size),
        verdicts=verdicts,
        candidate_bits=merged_bits,
        by_kind=by_kind,
        host_seconds=host,
        n_simulated=n_sim,
    )


# -- the half-latch fault model ------------------------------------------------


@dataclass(frozen=True)
class HalfLatchFaultModel(FaultModel):
    """Hidden half-latch upsets (paper Figures 13-14), engine model.

    Candidates are node ids; the upset pins the node to 0.  These
    upsets are invisible to readback and unrepaired by partial
    reconfiguration, so the sweep runs detect-only, with no repair
    phase.  Per-machine outcomes are independent of batch composition
    here (const patches never violate the evaluation schedule and no
    active-node mask is applied), so any grouping is sound.
    """

    spec: Any
    device_name: str
    config: CampaignConfig
    nodes: tuple[int, ...] | None = None
    retire: bool = True

    name: ClassVar[str] = "halflatch"

    def key(self) -> str:
        nodes_part = (
            "all" if self.nodes is None else f"{len(self.nodes)}@{hash(self.nodes):x}"
        )
        return (
            f"halflatch:{self.spec.name}:{self.device_name}:{nodes_part}:"
            f"{json.dumps(dataclasses.asdict(self.config), sort_keys=True)}"
        )

    def _hw(self) -> HardwareDesign:
        return implemented_design(self.spec, self.device_name)

    def space_size(self) -> int:
        return int(self._hw().decoded.design.n_nodes)

    def enumerate_candidates(self) -> np.ndarray:
        if self.nodes is not None:
            return np.asarray(self.nodes, dtype=np.int64)
        return np.asarray(self._hw().decoded.design.half_latch_nodes, dtype=np.int64)

    def fast_forward_cycle(self) -> int | None:
        # The pin-to-0 upset lands at the warmup boundary like an SEU.
        return self.config.warmup_cycles

    def build_context(self) -> tuple[HardwareDesign, CampaignContext]:
        hw = self._hw()
        return hw, build_context(
            hw, self.config, fast_forward=None if self.fast_forward_cycle() is not None else False
        )

    def prefilter(self, candidate: int, ctx) -> tuple[int, None]:
        hw, _ = ctx
        # Only nodes inside the output cone can matter; skip the rest.
        if not hw.decoded.node_in_cone(candidate):
            return CODE_SKIP_CONE, None
        return CODE_NOT_TESTED, None

    def patch_for(self, candidate: int, ctx) -> Patch:
        return Patch(consts=[(candidate, 0)])

    def observe_batch(self, ctx, pending: list[tuple[int, Patch]]) -> list[bool]:
        _, cctx = ctx
        sim = make_simulator(
            cctx.design, [p for _, p in pending], initial_values=cctx.snapshot
        )
        failed = detect_failures(
            sim,
            cctx.post_stim,
            cctx.post_golden.outputs,
            self.config.detect_cycles,
            retire=self.retire,
        )
        return [bool(f) for f in failed]

    def classify(self, observation: bool) -> int:
        return CODE_FAIL if observation else CODE_NO_EFFECT


def run_halflatch_sweep(
    hw: HardwareDesign,
    config: CampaignConfig | None = None,
    nodes: np.ndarray | None = None,
    jobs: int = 1,
    checkpoint_path: str | None = None,
    resume: bool = False,
    collapse: bool = True,
    retire: bool = True,
) -> SweepResult:
    """Half-latch sweep as a full engine result (verdicts + telemetry).

    Runs on the shared campaign engine: ``jobs=N`` shards the node set
    over processes with verdicts identical to ``jobs=1``, and
    ``checkpoint_path`` snapshots engine-native archives a killed sweep
    restarts from (``resume=True``).
    """
    config = config or CampaignConfig()
    prime_design_cache(hw)
    model = HalfLatchFaultModel(
        hw.spec,
        hw.device.name,
        config,
        None if nodes is None else tuple(int(n) for n in np.asarray(nodes).ravel()),
        retire=retire,
    )
    if resume:
        if checkpoint_path is None:
            raise CampaignError("resume requires a checkpoint path")
        return resume_sweep(
            model,
            checkpoint_path,
            jobs=jobs,
            batch_size=config.batch_size,
            collapse=collapse,
        )
    return run_sweep(
        model,
        jobs=jobs,
        batch_size=config.batch_size,
        checkpoint_path=checkpoint_path,
        collapse=collapse,
    )


def run_halflatch_campaign(
    hw: HardwareDesign,
    config: CampaignConfig | None = None,
    nodes: np.ndarray | None = None,
    jobs: int = 1,
    checkpoint_path: str | None = None,
    resume: bool = False,
    collapse: bool = True,
    retire: bool = True,
) -> dict[int, bool]:
    """Sweep half-latch (hidden-state) upsets: node -> caused an error?

    The historical dict-shaped view of :func:`run_halflatch_sweep`
    (which exposes the engine verdicts and telemetry).
    """
    sweep = run_halflatch_sweep(
        hw,
        config,
        nodes=nodes,
        jobs=jobs,
        checkpoint_path=checkpoint_path,
        resume=resume,
        collapse=collapse,
        retire=retire,
    )
    if nodes is None:
        nodes = hw.decoded.design.half_latch_nodes
    return {
        int(n): bool(sweep.verdicts[int(n)] == CODE_FAIL)
        for n in np.asarray(nodes, dtype=np.int64)
    }

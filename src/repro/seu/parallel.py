"""Multi-core sharded SEU campaigns: the Figure 8 sweep, fanned out.

The paper's exhaustive sweep is tractable only because hardware runs it
at 214 µs/bit; our software reproduction gets its throughput from two
levers — the batched simulator kernel and process sharding.  The
sharding machinery itself (two-phase pre-filter/observe split, shard
cuts at whole-batch boundaries, worker-side context caching,
checkpoint folding) lives in the fault-model-agnostic engine
(:mod:`repro.engine.sweep`); this module is the SEU adapter that keeps
the historical entry points and the :class:`CampaignResult` checkpoint
format.

**Determinism contract** (enforced by the engine): ``jobs=N`` produces
verdicts *byte-identical* to ``jobs=1``, because shards are cut only at
``config.batch_size`` boundaries and so reproduce exactly the serial
loop's batch composition.  **Checkpoint/resume**: every checkpoint
holds whole batches only, so a killed parallel sweep resumes to the
byte-identical result, and serial and parallel runs can resume each
other's checkpoints.

**Observability** (:mod:`repro.obs`): with an active tracer or progress
reporter the engine's observe phase waits on shard futures with a
heartbeat timeout instead of blocking, so shard *completion order* may
differ from an untraced run — admissible because each shard covers a
disjoint candidate range and the merge is order-independent; the
verdict bytes still match the untraced golden SHAs
(``tests/seu/test_shrinkers.py::TestObservabilityInvariance``).
"""

from __future__ import annotations

from concurrent.futures import Executor

import numpy as np

from repro.engine.cache import prime_design_cache
from repro.engine.sweep import SweepResult, default_jobs, run_sharded
from repro.engine.sweep import shard_survivors as _shard_survivors  # noqa: F401 (compat)
from repro.errors import CampaignError
from repro.place.flow import HardwareDesign
from repro.seu.campaign import (
    CampaignConfig,
    CampaignResult,
    SEUFaultModel,
    _candidate_bits,
    _from_sweep,
    _to_sweep,
    load_result,
    run_campaign,
    save_result,
)

__all__ = ["run_campaign_parallel", "resume_campaign_parallel", "default_jobs"]


def run_campaign_parallel(
    hw: HardwareDesign,
    config: CampaignConfig | None = None,
    jobs: int | None = None,
    candidate_bits: np.ndarray | None = None,
    checkpoint_path: str | None = None,
    merge_with: CampaignResult | None = None,
    executor: Executor | None = None,
    shards_per_job: int = 4,
    collapse: bool = True,
    retire: bool = True,
) -> CampaignResult:
    """Sharded multi-process SEU campaign, byte-identical to ``jobs=1``.

    ``jobs=None`` uses every CPU (:func:`default_jobs`); ``jobs=1``
    delegates to the serial :func:`~repro.seu.campaign.run_campaign`.
    With ``checkpoint_path`` the parent snapshots after the pre-filter
    and after every completed shard (shards are the checkpoint
    granularity; raise ``shards_per_job`` for finer snapshots), so a
    killed sweep resumes with :func:`resume_campaign_parallel`.  An
    external ``executor`` (e.g. a shared pool) is used as-is and not
    shut down.  ``collapse``/``retire`` toggle the verdict-identical
    campaign shrinkers.
    """
    config = config or CampaignConfig()
    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs < 1:
        raise CampaignError(f"jobs must be >= 1, got {jobs}")
    if candidate_bits is None:
        candidate_bits = _candidate_bits(hw, config)
    candidate_bits = np.asarray(candidate_bits, dtype=np.int64)
    if jobs == 1 and executor is None:
        return run_campaign(
            hw,
            config,
            candidate_bits=candidate_bits,
            checkpoint_path=checkpoint_path,
            merge_with=merge_with,
            collapse=collapse,
            retire=retire,
        )

    prime_design_cache(hw)
    model = SEUFaultModel(hw.spec, hw.device.name, config, retire=retire)

    checkpoint_cb = None
    if checkpoint_path is not None:

        def checkpoint_cb(sweep: SweepResult) -> None:
            # Resolve save_result at call time so tests (and tools) that
            # monkeypatch it see every checkpoint write.
            save_result(_from_sweep(hw, config, sweep), checkpoint_path)

    sweep = run_sharded(
        model,
        jobs=jobs,
        batch_size=config.batch_size,
        candidates=candidate_bits,
        checkpoint_save=checkpoint_cb,
        merge_with=_to_sweep(model, merge_with) if merge_with is not None else None,
        executor=executor,
        shards_per_job=shards_per_job,
        collapse=collapse,
    )
    return _from_sweep(hw, config, sweep)


def resume_campaign_parallel(
    hw: HardwareDesign,
    checkpoint_path: str,
    jobs: int | None = None,
    candidate_bits: np.ndarray | None = None,
    executor: Executor | None = None,
    shards_per_job: int = 4,
    collapse: bool = True,
    retire: bool = True,
) -> CampaignResult:
    """Resume an interrupted (serial *or* parallel) campaign, sharded.

    Every checkpoint ever written holds only whole simulator batches, so
    the remainder re-shards into the same batch grouping the
    uninterrupted run would have used — the merged result is
    byte-identical to a never-killed sweep.
    """
    part = load_result(checkpoint_path)
    if part.design_name != hw.spec.name or part.device_name != hw.device.name:
        raise CampaignError(
            f"checkpoint {checkpoint_path!r} is for "
            f"{part.design_name}/{part.device_name}, not "
            f"{hw.spec.name}/{hw.device.name}"
        )
    if candidate_bits is None:
        candidate_bits = _candidate_bits(hw, part.config)
    candidate_bits = np.asarray(candidate_bits, dtype=np.int64)
    remaining = np.setdiff1d(candidate_bits, part.candidate_bits)
    if remaining.size == 0:
        return part
    return run_campaign_parallel(
        hw,
        part.config,
        jobs=jobs,
        candidate_bits=remaining,
        checkpoint_path=checkpoint_path,
        merge_with=part,
        executor=executor,
        shards_per_job=shards_per_job,
        collapse=collapse,
        retire=retire,
    )

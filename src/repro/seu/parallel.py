"""Multi-core sharded SEU campaigns: the Figure 8 sweep, fanned out.

The paper's exhaustive sweep is tractable only because hardware runs it
at 214 µs/bit; our software reproduction gets its throughput from two
levers — the batched simulator kernel and, here, sharding the candidate
bit space over a :class:`~concurrent.futures.ProcessPoolExecutor`.

**Determinism contract.** ``jobs=N`` produces verdicts *byte-identical*
to ``jobs=1``.  Batch composition decides marginal verdicts (the
active-node closure and settle-pass count are per-batch), so sharding
must not change which bits share a batch.  The engine therefore runs in
two phases:

1. **Pre-filter** — candidate bits are split into contiguous chunks and
   classified in parallel (:func:`~repro.seu.campaign.classify_candidate`
   is a pure per-bit function, so any split is safe).  Survivors are
   collected in candidate order.
2. **Simulate** — the survivor sequence is cut into contiguous shards
   whose sizes are multiples of ``config.batch_size`` (only the global
   tail shard may be ragged).  Grouping each shard into consecutive
   ``batch_size`` blocks then reproduces exactly the serial loop's
   batches, so every batch simulates with the same companions it would
   have had under ``jobs=1``.

Workers re-derive the :class:`HardwareDesign` (the implementation flow
is deterministic) and the campaign context **once per process** and
cache them; under a ``fork`` start method the parent pre-populates the
caches so children inherit them copy-on-write and re-derive nothing.

**Checkpoint/resume.** The parent folds each completed shard into the
checkpoint through :func:`~repro.seu.campaign.merge_results`.  Because
every completed shard is a whole number of batches, the un-simulated
remainder re-shards on resume into the *same* batch grouping — a killed
parallel sweep resumes to the byte-identical result, and serial and
parallel runs can resume each other's checkpoints.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import Executor, ProcessPoolExecutor, as_completed

import numpy as np

from repro.errors import CampaignError
from repro.place.flow import HardwareDesign, implement
from repro.seu.campaign import (
    BitVerdict,
    CampaignConfig,
    CampaignContext,
    CampaignResult,
    CampaignTelemetry,
    _by_kind,
    _candidate_bits,
    build_context,
    classify_candidate,
    load_result,
    merge_results,
    run_campaign,
    save_result,
    simulate_batch,
)

__all__ = ["run_campaign_parallel", "resume_campaign_parallel", "default_jobs"]


def default_jobs() -> int:
    """CPU-count-aware default worker count."""
    return max(1, os.cpu_count() or 1)


# -- per-worker state ----------------------------------------------------------
#
# Keyed by the pickled DesignSpec (names alone do not identify scaled
# suite variants built with non-default keyword arguments).  Bounded so a
# long-lived pool sweeping many designs cannot hoard implementations.

_MAX_CACHED = 4
_HW_CACHE: dict[tuple[bytes, str], HardwareDesign] = {}
_CTX_CACHE: dict[tuple[bytes, str, CampaignConfig], CampaignContext] = {}


def _worker_state(
    spec_blob: bytes, device_name: str, config: CampaignConfig
) -> tuple[HardwareDesign, CampaignContext]:
    """The worker-side cache: implement once, derive context once."""
    from repro.fpga import get_device

    key = (spec_blob, device_name)
    hw = _HW_CACHE.get(key)
    if hw is None:
        if len(_HW_CACHE) >= _MAX_CACHED:
            _HW_CACHE.clear()
        hw = implement(pickle.loads(spec_blob), get_device(device_name))
        _HW_CACHE[key] = hw
    ckey = (spec_blob, device_name, config)
    ctx = _CTX_CACHE.get(ckey)
    if ctx is None:
        if len(_CTX_CACHE) >= _MAX_CACHED:
            _CTX_CACHE.clear()
        ctx = build_context(hw, config)
        _CTX_CACHE[ckey] = ctx
    return hw, ctx


def _worker_prefilter(
    spec_blob: bytes, device_name: str, config: CampaignConfig, bits: np.ndarray
) -> tuple[np.ndarray, float]:
    """Classify one contiguous candidate chunk.

    Returns per-bit verdict codes aligned with ``bits``
    (``BitVerdict.NOT_TESTED`` marks a pre-filter survivor that must be
    simulated) and the worker seconds spent.
    """
    t0 = time.perf_counter()
    hw, ctx = _worker_state(spec_blob, device_name, config)
    codes = np.empty(bits.size, dtype=np.uint8)
    for i, bit in enumerate(bits):
        codes[i], _ = classify_candidate(hw, ctx, int(bit))
    return codes, time.perf_counter() - t0


def _worker_simulate(
    spec_blob: bytes, device_name: str, config: CampaignConfig, bits: np.ndarray
) -> tuple[np.ndarray, int, float]:
    """Simulate one survivor shard in consecutive ``batch_size`` batches.

    ``bits`` must be pre-filter survivors in candidate order; patches are
    re-derived in process (``patch_for_bit`` is deterministic).  Returns
    verdict codes aligned with ``bits``, the batch count, and the worker
    seconds spent.
    """
    t0 = time.perf_counter()
    hw, ctx = _worker_state(spec_blob, device_name, config)
    codes = np.empty(bits.size, dtype=np.uint8)
    n_batches = 0
    for start in range(0, int(bits.size), config.batch_size):
        chunk = bits[start : start + config.batch_size]
        pending = [(int(b), hw.decoded.patch_for_bit(int(b))) for b in chunk]
        codes[start : start + len(pending)] = simulate_batch(config, ctx, pending)
        n_batches += 1
    return codes, n_batches, time.perf_counter() - t0


# -- parent-side engine --------------------------------------------------------


def _part_result(
    hw: HardwareDesign,
    config: CampaignConfig,
    bits: np.ndarray,
    codes: np.ndarray,
    host_seconds: float,
    n_simulated: int,
) -> CampaignResult:
    """Wrap one shard's verdicts as a mergeable partial result."""
    verdicts = np.zeros(hw.device.total_config_bits, dtype=np.uint8)
    verdicts[bits] = codes
    part = CampaignResult(
        design_name=hw.spec.name,
        device_name=hw.device.name,
        config=config,
        n_candidates=int(bits.size),
        verdicts=verdicts,
        candidate_bits=np.asarray(bits, dtype=np.int64),
        host_seconds=host_seconds,
        n_simulated=n_simulated,
    )
    part.by_kind = _by_kind(hw, part.sensitive_bits)
    return part


def _shard_survivors(survivors: np.ndarray, batch_size: int, n_shards: int) -> list[np.ndarray]:
    """Cut the survivor sequence into contiguous shards of whole batches.

    Every shard except (possibly) the last holds a multiple of
    ``batch_size`` survivors — the invariant that makes shard-local
    batching identical to the serial loop's, both on a fresh run and
    when re-sharding the remainder after a partial (killed) sweep.
    """
    n_batches = -(-int(survivors.size) // batch_size)
    n_shards = max(1, min(n_shards, n_batches))
    bounds = [round(i * n_batches / n_shards) for i in range(n_shards + 1)]
    shards = []
    for b0, b1 in zip(bounds[:-1], bounds[1:]):
        shard = survivors[b0 * batch_size : b1 * batch_size]
        if shard.size:
            shards.append(shard)
    return shards


def run_campaign_parallel(
    hw: HardwareDesign,
    config: CampaignConfig | None = None,
    jobs: int | None = None,
    candidate_bits: np.ndarray | None = None,
    checkpoint_path: str | None = None,
    merge_with: CampaignResult | None = None,
    executor: Executor | None = None,
    shards_per_job: int = 4,
) -> CampaignResult:
    """Sharded multi-process SEU campaign, byte-identical to ``jobs=1``.

    ``jobs=None`` uses every CPU (:func:`default_jobs`); ``jobs=1``
    delegates to the serial :func:`~repro.seu.campaign.run_campaign`.
    With ``checkpoint_path`` the parent snapshots after the pre-filter
    and after every completed shard (shards are the checkpoint
    granularity; raise ``shards_per_job`` for finer snapshots), so a
    killed sweep resumes with :func:`resume_campaign_parallel`.  An
    external ``executor`` (e.g. a shared pool) is used as-is and not
    shut down.
    """
    config = config or CampaignConfig()
    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs < 1:
        raise CampaignError(f"jobs must be >= 1, got {jobs}")
    if candidate_bits is None:
        candidate_bits = _candidate_bits(hw, config)
    candidate_bits = np.asarray(candidate_bits, dtype=np.int64)
    if jobs == 1 and executor is None:
        return run_campaign(
            hw,
            config,
            candidate_bits=candidate_bits,
            checkpoint_path=checkpoint_path,
            merge_with=merge_with,
        )

    t0 = time.perf_counter()
    telem = CampaignTelemetry(n_candidates=int(candidate_bits.size), jobs=jobs)
    spec_blob = pickle.dumps(hw.spec)
    device_name = hw.device.name
    # Pre-populate the worker caches: under fork the children inherit
    # the implemented design and context copy-on-write; under spawn this
    # only warms the parent (harmless).
    _HW_CACHE.setdefault((spec_blob, device_name), hw)
    _CTX_CACHE.setdefault(
        (spec_blob, device_name, config), build_context(hw, config)
    )

    own_pool = executor is None
    if own_pool:
        executor = ProcessPoolExecutor(max_workers=jobs)
    try:
        # Phase 1: parallel pre-filter over contiguous candidate chunks.
        n_chunks = max(1, min(jobs * shards_per_job, int(candidate_bits.size)))
        chunks = np.array_split(candidate_bits, n_chunks)
        futures = [
            executor.submit(_worker_prefilter, spec_blob, device_name, config, c)
            for c in chunks
            if c.size
        ]
        code_parts = []
        for f in futures:
            codes, seconds = f.result()
            code_parts.append(codes)
            telem.prefilter_seconds += seconds
        codes = (
            np.concatenate(code_parts)
            if code_parts
            else np.empty(0, dtype=np.uint8)
        )
        survivor_mask = codes == BitVerdict.NOT_TESTED
        survivors = candidate_bits[survivor_mask]
        skipped = candidate_bits[~survivor_mask]
        telem.skip_structural = int(np.count_nonzero(codes == BitVerdict.SKIP_STRUCTURAL))
        telem.skip_cone = int(np.count_nonzero(codes == BitVerdict.SKIP_CONE))
        telem.skip_unaddressed = int(
            np.count_nonzero(codes == BitVerdict.SKIP_UNADDRESSED)
        )
        telem.n_simulated = int(survivors.size)

        parts: list[CampaignResult] = []
        if merge_with is not None:
            parts.append(merge_with)
        if skipped.size:
            parts.append(
                _part_result(
                    hw, config, skipped, codes[~survivor_mask], telem.prefilter_seconds, 0
                )
            )
        acc = merge_results(parts) if len(parts) > 1 else (parts[0] if parts else None)

        def checkpoint(result: CampaignResult) -> None:
            if checkpoint_path is not None:
                t_ck = time.perf_counter()
                save_result(result, checkpoint_path)
                telem.checkpoint_seconds += time.perf_counter() - t_ck

        if acc is not None:
            checkpoint(acc)

        # Phase 2: survivor shards, whole batches each, fanned out.
        shard_futures = {
            executor.submit(_worker_simulate, spec_blob, device_name, config, shard): shard
            for shard in _shard_survivors(survivors, config.batch_size, jobs * shards_per_job)
        }
        for f in as_completed(shard_futures):
            shard = shard_futures[f]
            shard_codes, n_batches, seconds = f.result()
            telem.n_batches += n_batches
            telem.simulate_seconds += seconds
            part = _part_result(hw, config, shard, shard_codes, seconds, int(shard.size))
            acc = part if acc is None else merge_results([acc, part])
            checkpoint(acc)
    finally:
        if own_pool:
            executor.shutdown()

    if acc is None:  # no candidates at all
        acc = _part_result(
            hw, config, candidate_bits, np.empty(0, dtype=np.uint8), 0.0, 0
        )
    telem.wall_seconds = time.perf_counter() - t0
    prior = merge_with.host_seconds if merge_with is not None else 0.0
    acc.host_seconds = prior + telem.wall_seconds
    acc.telemetry = telem
    checkpoint(acc)
    return acc


def resume_campaign_parallel(
    hw: HardwareDesign,
    checkpoint_path: str,
    jobs: int | None = None,
    candidate_bits: np.ndarray | None = None,
    executor: Executor | None = None,
    shards_per_job: int = 4,
) -> CampaignResult:
    """Resume an interrupted (serial *or* parallel) campaign, sharded.

    Every checkpoint ever written holds only whole simulator batches, so
    the remainder re-shards into the same batch grouping the
    uninterrupted run would have used — the merged result is
    byte-identical to a never-killed sweep.
    """
    part = load_result(checkpoint_path)
    if part.design_name != hw.spec.name or part.device_name != hw.device.name:
        raise CampaignError(
            f"checkpoint {checkpoint_path!r} is for "
            f"{part.design_name}/{part.device_name}, not "
            f"{hw.spec.name}/{hw.device.name}"
        )
    if candidate_bits is None:
        candidate_bits = _candidate_bits(hw, part.config)
    candidate_bits = np.asarray(candidate_bits, dtype=np.int64)
    remaining = np.setdiff1d(candidate_bits, part.candidate_bits)
    if remaining.size == 0:
        return part
    return run_campaign_parallel(
        hw,
        part.config,
        jobs=jobs,
        candidate_bits=remaining,
        checkpoint_path=checkpoint_path,
        merge_with=part,
        executor=executor,
        shards_per_job=shards_per_job,
    )

"""The logical netlist: a named graph of cells.

This is the designer-facing representation produced by the generators in
:mod:`repro.designs` and consumed by the placer.  It is deliberately
simple — a dict of cells plus an ordered list of primary outputs — with
validation concentrated in :meth:`Netlist.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import NetlistError
from repro.netlist.cells import Cell, CellKind

__all__ = ["Netlist"]


class Netlist:
    """A mutable gate-level design."""

    def __init__(self, name: str):
        if not name:
            raise NetlistError("netlist must have a non-empty name")
        self.name = name
        self._cells: dict[str, Cell] = {}
        self._outputs: list[str] = []

    # -- construction -----------------------------------------------------

    def _add(self, cell: Cell) -> str:
        if cell.name in self._cells:
            raise NetlistError(f"duplicate cell name {cell.name!r}")
        self._cells[cell.name] = cell
        return cell.name

    def add_input(self, name: str) -> str:
        """Declare a primary input."""
        return self._add(Cell(name, CellKind.INPUT))

    def add_const(self, name: str, value: int) -> str:
        """Declare a constant-generator cell.

        The mapper decides how to realise it: a half-latch (the CAD
        default the paper criticises) or a LUT ROM (the RadDRC fix).
        """
        return self._add(Cell(name, CellKind.CONST, value=value))

    def add_lut(self, name: str, table: int, pins: Iterable[str]) -> str:
        """Add a LUT4.  ``pins`` are driving-cell names, pin 0 first."""
        return self._add(Cell(name, CellKind.LUT, tuple(pins), table=table))

    def add_ff(
        self, name: str, d: str, ce: str | None = None, sr: str | None = None, init: int = 0
    ) -> str:
        """Add a D flip-flop.

        A ``None`` clock-enable means "always enabled" — in hardware the
        CE input is then unconnected and a **half-latch** supplies the
        constant 1 (paper Figure 14(b)).
        """
        pins: tuple[str, ...] = (d,)
        if ce is not None:
            pins += (ce,)
            if sr is not None:
                pins += (sr,)
        elif sr is not None:
            raise NetlistError(f"FF {name}: sr requires an explicit ce")
        return self._add(Cell(name, CellKind.FF, pins, init=init))

    def set_outputs(self, names: Iterable[str]) -> None:
        """Declare the primary outputs (order defines the output bus)."""
        names = list(names)
        for n in names:
            if n not in self._cells:
                raise NetlistError(f"output {n!r} is not a cell")
        self._outputs = names

    # -- access --------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise NetlistError(f"no cell named {name!r}") from None

    def cells(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    @property
    def outputs(self) -> list[str]:
        return list(self._outputs)

    @property
    def inputs(self) -> list[str]:
        """Primary inputs in insertion order."""
        return [c.name for c in self._cells.values() if c.kind is CellKind.INPUT]

    def count(self, kind: CellKind) -> int:
        return sum(1 for c in self._cells.values() if c.kind is kind)

    @property
    def n_luts(self) -> int:
        return self.count(CellKind.LUT)

    @property
    def n_ffs(self) -> int:
        return self.count(CellKind.FF)

    def fanout(self) -> dict[str, list[str]]:
        """Map of cell name -> names of cells reading it."""
        out: dict[str, list[str]] = {name: [] for name in self._cells}
        for cell in self._cells.values():
            for pin in cell.pins:
                if pin in out:
                    out[pin].append(cell.name)
        return out

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`NetlistError` on dangling pins or missing outputs."""
        for cell in self._cells.values():
            for pin in cell.pins:
                if pin not in self._cells:
                    raise NetlistError(
                        f"cell {cell.name!r} reads undefined signal {pin!r}"
                    )
        if not self._outputs:
            raise NetlistError(f"netlist {self.name!r} declares no outputs")

    def stats(self) -> dict[str, int]:
        """Cell counts by kind plus output width."""
        return {
            "inputs": self.count(CellKind.INPUT),
            "consts": self.count(CellKind.CONST),
            "luts": self.n_luts,
            "ffs": self.n_ffs,
            "outputs": len(self._outputs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"Netlist({self.name!r}: {s['luts']} LUTs, {s['ffs']} FFs, "
            f"{s['inputs']} in, {s['outputs']} out)"
        )

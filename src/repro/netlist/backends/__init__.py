"""Pluggable kernel backends for :class:`~repro.netlist.simulator.BatchSimulator`.

Three backends share one semantic contract — verdict bytes identical
across ``backend x jobs x collapse x retire x trace`` (enforced by the
golden-SHA registry and the differential oracle suite):

``reference``
    The uint8 numpy kernel in ``repro.netlist.simulator``.  Default.
``bitplane``
    64 machines packed per uint64 lane; LUTs evaluate as bitwise mux
    trees (``repro.netlist.backends.bitplane``).
``bitplane-jit``
    The bit-plane schedule compiled by numba into one fused
    word-parallel function (``repro.netlist.backends.jit``).  Requires
    the optional ``jit`` extra (``pip install .[jit]``); when numba is
    absent the selection silently degrades to ``bitplane`` with a
    one-line stderr note.

Selection is ambient, mirroring ``repro.obs``: a module-level current
backend, seeded from the ``REPRO_KERNEL_BACKEND`` environment variable
so sharded workers (fork *and* spawn) inherit the choice, scoped by the
:func:`kernel_backend` context manager.  Code that builds simulators
goes through :func:`make_simulator` / :func:`simulator_class` instead
of naming ``BatchSimulator`` directly.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from typing import Iterator

from repro.errors import NetlistError
from repro.netlist.simulator import BatchSimulator

__all__ = [
    "BACKENDS",
    "current_backend",
    "jit_available",
    "kernel_backend",
    "make_simulator",
    "resolve_backend",
    "simulator_class",
]

#: registered backend names, in documentation order
BACKENDS = ("reference", "bitplane", "bitplane-jit")

_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: ambient selection; ``None`` means "defer to the environment variable"
_backend: str | None = None

_jit_available: bool | None = None
_fallback_noted = False


def jit_available() -> bool:
    """True when numba imports cleanly (the optional ``jit`` extra)."""
    global _jit_available
    if _jit_available is None:
        try:
            import numba  # noqa: F401

            _jit_available = True
        except ImportError:
            _jit_available = False
    return _jit_available


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise NetlistError(
            f"unknown kernel backend {name!r}; expected one of {', '.join(BACKENDS)}"
        )
    return name


def current_backend() -> str:
    """The requested backend: ambient selection, else env, else reference."""
    if _backend is not None:
        return _backend
    return _validate(os.environ.get(_ENV_VAR, "reference"))


def resolve_backend() -> str:
    """The backend that will actually run (JIT degrades without numba)."""
    global _fallback_noted
    name = current_backend()
    if name == "bitplane-jit" and not jit_available():
        if not _fallback_noted:
            print(
                "repro: numba not installed (pip install .[jit]); "
                "falling back to the bitplane backend",
                file=sys.stderr,
            )
            _fallback_noted = True
        return "bitplane"
    return name


@contextmanager
def kernel_backend(name: str) -> Iterator[None]:
    """Scope the ambient backend selection.

    Also exports ``REPRO_KERNEL_BACKEND`` for the scope so worker
    processes started inside it (fork or spawn) build their simulators
    with the same backend.
    """
    global _backend
    _validate(name)
    prev = _backend
    prev_env = os.environ.get(_ENV_VAR)
    _backend = name
    os.environ[_ENV_VAR] = name
    try:
        yield
    finally:
        _backend = prev
        if prev_env is None:
            os.environ.pop(_ENV_VAR, None)
        else:
            os.environ[_ENV_VAR] = prev_env


def simulator_class() -> type[BatchSimulator]:
    """The simulator class for the resolved backend."""
    name = resolve_backend()
    if name == "reference":
        return BatchSimulator
    if name == "bitplane":
        from repro.netlist.backends.bitplane import BitplaneBatchSimulator

        return BitplaneBatchSimulator
    from repro.netlist.backends.jit import BitplaneJitBatchSimulator

    return BitplaneJitBatchSimulator


def make_simulator(*args, **kwargs) -> BatchSimulator:
    """Build a simulator with the currently selected backend."""
    return simulator_class()(*args, **kwargs)

"""Bit-plane kernel backend: 64 machines per uint64 lane.

The reference kernel keeps node values as a ``(B, n_nodes)`` uint8
matrix and pays one byte of memory traffic per machine per operand.
This backend transposes and packs that matrix into ``(n_nodes, W)``
uint64 *planes* (``W = ceil(B/64)``): machine ``b`` is bit ``b % 64``
of word ``b // 64``, so one bitwise word op advances 64 machines at
once.

A 4-input LUT evaluates as a mux tree of bitwise ops over its 16
truth-table bits.  Because almost every machine in a batch shares the
*golden* configuration, the table bits are compiled into broadcast
constant masks (0 / all-ones per level row) and each mux stage is the
masked-merge identity ``sel(a, b, m) = a ^ ((a ^ b) & m)`` — three word
ops per stage, with the first stage folded to two because both sides
are constants.  Per-machine hardware differences (patched LUT inputs or
tables, FF field rewires, output rebinds) are applied afterwards as
sparse per-lane fixups via unbuffered ``np.bitwise_*.at`` scatters, so
the cost of faults scales with the number of patch entries, not with
``B × n_nodes``.

Semantics are byte-identical to :class:`BatchSimulator` by
construction: the same levelized gather-then-scatter order, settle
passes, FF clock-enable/set-reset priority, repair/compact behaviour
and address-capture timing — pinned by the differential oracle suite
and the golden-SHA registry.  Node values must be strictly 0/1 (the
repo-wide invariant); the packed form cannot represent anything else,
so non-binary stimulus raises instead of silently diverging.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.errors import NetlistError
from repro.netlist.compiled import NodeKind
from repro.netlist.simulator import BatchSimulator

__all__ = ["BitplaneBatchSimulator", "pack_lanes", "unpack_lanes"]

#: bit index of each lane inside a word (uint64 so shifts stay uint64)
BIT_WEIGHTS = np.arange(64, dtype=np.uint64)

_U1 = np.uint64(1)
_U0 = np.uint64(0)

#: weights turning a 16-entry 0/1 truth table into its packed integer
_TABLE_WEIGHTS = np.left_shift(np.int64(1), np.arange(16, dtype=np.int64))


def pack_lanes_portable(bits: np.ndarray) -> np.ndarray:
    """Shift-based :func:`pack_lanes`: endianness-free, any platform."""
    B, n = bits.shape
    W = (B + 63) // 64
    padded = np.zeros((W * 64, n), dtype=np.uint64)
    padded[:B] = bits
    lanes = padded.reshape(W, 64, n) << BIT_WEIGHTS[None, :, None]
    return np.ascontiguousarray(np.bitwise_or.reduce(lanes, axis=1).T)


def unpack_lanes_portable(planes: np.ndarray, B: int) -> np.ndarray:
    """Shift-based :func:`unpack_lanes`: endianness-free, any platform."""
    n, W = planes.shape
    bits = (planes[:, :, None] >> BIT_WEIGHTS[None, None, :]) & _U1
    return bits.reshape(n, W * 64).T[:B].astype(np.uint8)


def _pack_lanes_le(bits: np.ndarray) -> np.ndarray:
    """packbits fast path; valid only where uint64 words are little-endian."""
    B, n = bits.shape
    W = (B + 63) // 64
    packed = np.packbits(np.ascontiguousarray(bits.T), axis=1, bitorder="little")
    out = np.zeros((n, W * 8), dtype=np.uint8)
    out[:, : packed.shape[1]] = packed
    return out.view(np.uint64)


def _unpack_lanes_le(planes: np.ndarray, B: int) -> np.ndarray:
    bits = np.unpackbits(
        np.ascontiguousarray(planes).view(np.uint8), axis=1, bitorder="little"
    )
    return np.ascontiguousarray(bits[:, :B].T)


# pack_lanes packs a (B, n) 0/1 matrix into (n, W) uint64 lane planes:
# machine b is bit b % 64 of word b // 64; padding lanes of the last
# word are zero.  unpack_lanes is the exact inverse.  The packbits view
# trick is only correct where uint64 byte order matches the bit order
# packbits emits, i.e. little-endian hosts; others take the shift path.
if sys.byteorder == "little":
    pack_lanes = _pack_lanes_le
    unpack_lanes = _unpack_lanes_le
else:  # pragma: no cover - big-endian host
    pack_lanes = pack_lanes_portable
    unpack_lanes = unpack_lanes_portable


def _full_masks(bits: np.ndarray) -> np.ndarray:
    """0/1 array -> uint64 broadcast masks (0 -> 0, 1 -> all-ones)."""
    return _U0 - bits.astype(np.uint64)


class BitplaneBatchSimulator(BatchSimulator):
    """Drop-in :class:`BatchSimulator` with uint64 bit-plane state.

    The per-machine *hardware* arrays (``lut_inputs``, ``lut_tables``,
    FF fields, ``const_values``, ``output_nodes``) stay in the base
    class's dense per-machine form — patch application, repair and
    compaction reuse the proven base logic — and the plane kernel is
    derived from them: golden-configuration constants for the broadcast
    path plus a sparse override table built by diffing each broken
    machine against the golden arrays.

    :attr:`values` is a read-only materialisation (a fresh ``(B,
    n_nodes)`` uint8 array per access); code that needs to *write*
    node state directly (the interactive testbed) should stay on the
    reference backend.
    """

    # -- state allocation --------------------------------------------------

    def _alloc_state(self) -> None:
        d = self.design
        self.W = (self.B + 63) // 64
        self._planes = np.zeros((d.n_nodes, self.W), dtype=np.uint64)

    @property
    def values(self) -> np.ndarray:  # type: ignore[override]
        """Materialised ``(B, n_nodes)`` uint8 node values (read-only)."""
        return unpack_lanes(self._planes, self.B)

    def _machine0_values(self) -> np.ndarray:
        return (self._planes[:, 0] & _U1).astype(np.uint8)

    # -- cache construction ------------------------------------------------

    def _build_gather_caches(self) -> None:
        d = self.design
        B = self.B
        self.W = W = (B + 63) // 64
        self._planes_flat = self._planes.reshape(-1)

        # Row/position maps: overrides address per-level buffer slots.
        # -1 marks rows pruned by active_nodes (never evaluated).
        self._row_level = np.full(d.n_luts, -1, dtype=np.int64)
        self._row_slot = np.full(d.n_luts, -1, dtype=np.int64)
        for k, rows in enumerate(self._levels):
            self._row_level[rows] = k
            self._row_slot[rows] = np.arange(rows.size)
        self._ffrow_slot = np.full(d.n_ffs, -1, dtype=np.int64)
        self._ffrow_slot[self._ff_rows] = np.arange(self._ff_rows.size)

        # Per-level golden structures and work buffers.
        self._bp_src: list[np.ndarray] = []  # intp (L*4,) operand nodes
        self._bp_dst: list[np.ndarray] = []  # intp (L,) destination nodes
        self._bp_A: list[np.ndarray] = []  # uint64 (L, 8, 1) table constants
        self._bp_X: list[np.ndarray] = []  # uint64 (L, 8, 1) pair-xor constants
        self._bp_ops2: list[np.ndarray] = []  # uint64 (L*4, W) operand planes
        self._bp_ops3: list[np.ndarray] = []  # (L, 4, W) view of ops2
        self._bp_ops_flat: list[np.ndarray] = []  # flat view of ops2
        self._bp_b8: list[np.ndarray] = []
        self._bp_b4: list[np.ndarray] = []
        self._bp_b2: list[np.ndarray] = []
        self._bp_b1: list[np.ndarray] = []
        self._bp_b1_flat: list[np.ndarray] = []
        for rows in self._levels:
            n = int(rows.size)
            self._bp_src.append(d.lut_inputs[rows].reshape(-1).astype(np.intp))
            self._bp_dst.append(d.lut_nodes[rows].astype(np.intp))
            tt = d.lut_tables[rows]  # (L, 16) of 0/1
            self._bp_A.append(_full_masks(tt[:, 0::2])[:, :, None])
            self._bp_X.append(_full_masks(tt[:, 0::2] ^ tt[:, 1::2])[:, :, None])
            ops2 = np.empty((n * 4, W), dtype=np.uint64)
            self._bp_ops2.append(ops2)
            self._bp_ops3.append(ops2.reshape(n, 4, W))
            self._bp_ops_flat.append(ops2.reshape(-1))
            self._bp_b8.append(np.empty((n, 8, W), dtype=np.uint64))
            self._bp_b4.append(np.empty((n, 4, W), dtype=np.uint64))
            self._bp_b2.append(np.empty((n, 2, W), dtype=np.uint64))
            b1 = np.empty((n, W), dtype=np.uint64)
            self._bp_b1.append(b1)
            self._bp_b1_flat.append(b1.reshape(-1))
        # active_nodes pruning can empty a level entirely; skip those.
        self._bp_live_levels = [
            k for k, rows in enumerate(self._levels) if rows.size
        ]

        # FF golden structures and buffers.
        rows = self._ff_rows
        R = int(rows.size)
        self._bp_ff_d = d.ff_d[rows].astype(np.intp)
        self._bp_ff_ce = d.ff_ce[rows].astype(np.intp)
        self._bp_ff_sr = d.ff_sr[rows].astype(np.intp)
        self._bp_ff_nodes = d.ff_nodes[rows].astype(np.intp)
        self._fb_d = np.empty((R, W), dtype=np.uint64)
        self._fb_ce = np.empty((R, W), dtype=np.uint64)
        self._fb_sr = np.empty((R, W), dtype=np.uint64)
        self._fb_cur = np.empty((R, W), dtype=np.uint64)
        self._fb_new = np.empty((R, W), dtype=np.uint64)
        self._fb_tmp = np.empty((R, W), dtype=np.uint64)

        # Output gather structures (golden bindings; overrides fix lanes).
        self._bp_out_src = d.output_nodes.astype(np.intp)
        self._bp_outplanes = np.empty((d.n_outputs, W), dtype=np.uint64)
        self._bp_outplanes_flat = self._bp_outplanes.reshape(-1)
        self._out_shift = np.empty((d.n_outputs, W, 64), dtype=np.uint64)
        self._out_buf = np.empty((B, d.n_outputs), dtype=np.uint8)
        self._eq_buf = np.empty((d.n_nodes, W), dtype=np.uint64)

        # Golden CONST partition (repair reasserts these per machine).
        const_kind = d.node_kind == int(NodeKind.CONST)
        self._const0_nodes = np.flatnonzero(const_kind & (d.const_values == 0))
        self._const1_nodes = np.flatnonzero(const_kind & (d.const_values != 0))

        self._rebuild_unclocked()
        self._scan_all_overrides()
        self._compile_overrides()
        self._caches_built = True

    def _rebuild_unclocked(self) -> None:
        """(R, W) mask: lanes whose FF clock mux is broken keep state."""
        rows = self._ff_rows
        self._bp_unclk = pack_lanes((self.ff_clocked[:, rows] != 1).astype(np.uint8))

    # -- the sparse override table -----------------------------------------
    #
    # Canonical entries are derived by diffing each broken machine's
    # hardware arrays against the golden design — the base class already
    # normalised patch application (last write wins), so the diff is the
    # exact per-lane difference the plane kernel must reproduce.

    def _scan_all_overrides(self) -> None:
        """Whole-batch diffs against the golden arrays, one numpy pass each.

        Canonical entries are int64 matrices (machine in column 0) so
        per-machine refresh is a boolean-mask filter plus a concat.
        """
        d = self.design
        ms, rows, pins = np.nonzero(self.lut_inputs != d.lut_inputs[None])
        self._ov_in = np.stack(
            [ms, rows, pins, self.lut_inputs[ms, rows, pins]], axis=1
        ).astype(np.int64)
        ms, rows = np.nonzero(np.any(self.lut_tables != d.lut_tables[None], axis=2))
        tab16 = self.lut_tables[ms, rows].astype(np.int64) @ _TABLE_WEIGHTS
        self._ov_tab = np.stack([ms, rows, tab16], axis=1).astype(np.int64)
        parts = []
        for fld, mine, gold in (
            (0, self.ff_d, d.ff_d),
            (1, self.ff_ce, d.ff_ce),
            (2, self.ff_sr, d.ff_sr),
        ):
            ms, rows = np.nonzero(mine != gold[None])
            parts.append(
                np.stack(
                    [ms, rows, np.full(ms.size, fld), mine[ms, rows]], axis=1
                ).astype(np.int64)
            )
        self._ov_ff = np.concatenate(parts, axis=0)
        ms, poss = np.nonzero(self.output_nodes != d.output_nodes[None])
        self._ov_out = np.stack(
            [ms, poss, self.output_nodes[ms, poss]], axis=1
        ).astype(np.int64)

    def _machine_overrides(self, m: int):
        """One machine's canonical override entries (same column layout)."""
        d = self.design
        rows, pins = np.nonzero(self.lut_inputs[m] != d.lut_inputs)
        ov_in = np.stack(
            [np.full(rows.size, m), rows, pins, self.lut_inputs[m, rows, pins]],
            axis=1,
        ).astype(np.int64)
        rows = np.flatnonzero(np.any(self.lut_tables[m] != d.lut_tables, axis=1))
        tab16 = self.lut_tables[m, rows].astype(np.int64) @ _TABLE_WEIGHTS
        ov_tab = np.stack([np.full(rows.size, m), rows, tab16], axis=1).astype(
            np.int64
        )
        parts = []
        for fld, mine, gold in (
            (0, self.ff_d, d.ff_d),
            (1, self.ff_ce, d.ff_ce),
            (2, self.ff_sr, d.ff_sr),
        ):
            rr = np.flatnonzero(mine[m] != gold)
            parts.append(
                np.stack(
                    [np.full(rr.size, m), rr, np.full(rr.size, fld), mine[m, rr]],
                    axis=1,
                ).astype(np.int64)
            )
        ov_ff = np.concatenate(parts, axis=0)
        poss = np.flatnonzero(self.output_nodes[m] != d.output_nodes)
        ov_out = np.stack(
            [np.full(poss.size, m), poss, self.output_nodes[m, poss]], axis=1
        ).astype(np.int64)
        return ov_in, ov_tab, ov_ff, ov_out

    def _compile_overrides(self) -> None:
        """Turn canonical override entries into per-site scatter arrays.

        Fully vectorised: repairs mark the table dirty and this runs at
        the next kernel entry, so its cost must stay O(entries) numpy
        work even when invoked once per repaired cycle.
        """
        self._ov_dirty = False
        W = self.W
        n_levels = len(self._levels)

        arr = self._ov_in
        lev = self._row_level[arr[:, 1]]
        ok = lev >= 0  # rows pruned by active_nodes are never evaluated
        arr, lev = arr[ok], lev[ok]
        slot = self._row_slot[arr[:, 1]]
        w, s = np.divmod(arr[:, 0], 64)
        order = np.argsort(lev, kind="stable")
        lev = lev[order]
        idx = ((slot * 4 + arr[:, 2]) * W + w)[order].astype(np.intp)
        srcf = (arr[:, 3] * W + w)[order].astype(np.intp)
        mask = np.left_shift(_U1, s[order].astype(np.uint64))
        b = np.searchsorted(lev, np.arange(n_levels + 1))
        self._ovi_idx = [idx[b[k] : b[k + 1]] for k in range(n_levels)]
        self._ovi_src = [srcf[b[k] : b[k + 1]] for k in range(n_levels)]
        self._ovi_mask = [mask[b[k] : b[k + 1]] for k in range(n_levels)]
        self._ovi_not = [~mk for mk in self._ovi_mask]

        arr = self._ov_tab
        lev = self._row_level[arr[:, 1]]
        ok = lev >= 0
        arr, lev = arr[ok], lev[ok]
        slot = self._row_slot[arr[:, 1]]
        w, s = np.divmod(arr[:, 0], 64)
        order = np.argsort(lev, kind="stable")
        lev, slot, w, s = lev[order], slot[order], w[order], s[order]
        tab = arr[:, 2][order].astype(np.uint64)
        idx = (slot * W + w).astype(np.intp)
        opi = (((slot * 4)[:, None] + np.arange(4)[None, :]) * W + w[:, None]).astype(
            np.intp
        )
        shift = s.astype(np.uint64)
        mask = np.left_shift(_U1, shift)
        b = np.searchsorted(lev, np.arange(n_levels + 1))
        self._ovt_idx = [idx[b[k] : b[k + 1]] for k in range(n_levels)]
        self._ovt_op_idx = [opi[b[k] : b[k + 1]] for k in range(n_levels)]
        self._ovt_shift = [shift[b[k] : b[k + 1]] for k in range(n_levels)]
        self._ovt_tab = [tab[b[k] : b[k + 1]] for k in range(n_levels)]
        self._ovt_mask = [mask[b[k] : b[k + 1]] for k in range(n_levels)]
        self._ovt_not = [~mk for mk in self._ovt_mask]

        arr = self._ov_ff
        slot = self._ffrow_slot[arr[:, 1]]
        ok = slot >= 0  # rows pruned by active_nodes
        arr, slot = arr[ok], slot[ok]
        w, s = np.divmod(arr[:, 0], 64)
        fld = arr[:, 2]
        order = np.argsort(fld, kind="stable")
        fld = fld[order]
        idx = (slot * W + w)[order].astype(np.intp)
        srcf = (arr[:, 3] * W + w)[order].astype(np.intp)
        mask = np.left_shift(_U1, s[order].astype(np.uint64))
        b = np.searchsorted(fld, np.arange(4))
        self._ovf_idx = [idx[b[f] : b[f + 1]] for f in range(3)]
        self._ovf_src = [srcf[b[f] : b[f + 1]] for f in range(3)]
        self._ovf_mask = [mask[b[f] : b[f + 1]] for f in range(3)]
        self._ovf_not = [~mk for mk in self._ovf_mask]

        arr = self._ov_out
        w, s = np.divmod(arr[:, 0], 64)
        self._ovo_idx = (arr[:, 1] * W + w).astype(np.intp)
        self._ovo_src = (arr[:, 2] * W + w).astype(np.intp)
        self._ovo_mask = np.left_shift(_U1, s.astype(np.uint64))
        self._ovo_not = ~self._ovo_mask

    def _refresh_machine_caches(self, m: int | None = None) -> None:
        if m is None:
            # Full rebuild happens through _build_gather_caches at
            # construction/compaction; nothing extra to do here.
            self._rebuild_unclocked()
            self._scan_all_overrides()
            self._compile_overrides()
            return
        # One machine changed (mid-run patch or repair): drop its
        # entries, rescan just that machine, and leave recompilation to
        # the next kernel entry — repairs arrive in bursts at phase
        # boundaries, and compiling once per burst instead of once per
        # machine keeps repair storms O(B) instead of O(B^2).
        ov_in, ov_tab, ov_ff, ov_out = self._machine_overrides(m)
        self._ov_in = np.concatenate([self._ov_in[self._ov_in[:, 0] != m], ov_in])
        self._ov_tab = np.concatenate([self._ov_tab[self._ov_tab[:, 0] != m], ov_tab])
        self._ov_ff = np.concatenate([self._ov_ff[self._ov_ff[:, 0] != m], ov_ff])
        self._ov_out = np.concatenate([self._ov_out[self._ov_out[:, 0] != m], ov_out])
        self._ov_dirty = True
        rows = self._ff_rows
        if rows.size:
            w, b = divmod(m, 64)
            bit = _U1 << np.uint64(b)
            col = self._bp_unclk[:, w]
            col &= ~bit
            col |= np.where(self.ff_clocked[m, rows] != 1, bit, _U0)

    # -- state transitions --------------------------------------------------

    def reset(self) -> None:
        d = self.design
        vals = np.empty((self.B, d.n_nodes), dtype=np.uint8)
        if self._initial_values is not None:
            if self._initial_values.max(initial=0) > 1:
                raise NetlistError("bit-plane backend requires 0/1 node values")
            vals[:] = self._initial_values[None, :]
        else:
            vals[:] = 0
            if d.n_ffs:
                vals[np.arange(self.B)[:, None], d.ff_nodes[None, :]] = self.ff_init
        vals[:, self._const_mask] = self.const_values[:, self._const_mask]
        self._planes[:] = pack_lanes(vals)

    def _restore_const_state(self, m: int, const_only: np.ndarray) -> None:
        w, b = divmod(m, 64)
        bit = _U1 << np.uint64(b)
        self._planes[self._const0_nodes, w] &= ~bit
        self._planes[self._const1_nodes, w] |= bit

    def _compact_state(self, keep: np.ndarray) -> None:
        self._planes = pack_lanes(unpack_lanes(self._planes, self.B)[keep])

    # -- execution ----------------------------------------------------------

    def _eval_combinational(self) -> None:
        if self._ov_dirty:
            self._compile_overrides()
        planes = self._planes
        pf = self._planes_flat
        for _ in range(self.settle_passes):
            for k in self._bp_live_levels:
                ops2 = self._bp_ops2[k]
                # Golden operand gather: whole level before any scatter,
                # so schedule-violating patched reads see pre-level
                # values exactly as in the reference kernel.
                np.take(planes, self._bp_src[k], axis=0, out=ops2)
                idx = self._ovi_idx[k]
                if idx.size:
                    opsf = self._bp_ops_flat[k]
                    np.bitwise_and.at(opsf, idx, self._ovi_not[k])
                    np.bitwise_or.at(
                        opsf, idx, pf[self._ovi_src[k]] & self._ovi_mask[k]
                    )
                ops = self._bp_ops3[k]
                # Mux tree over the 16 golden table bits: stage one is
                # constant-vs-constant, so it folds to two ops.
                b8 = self._bp_b8[k]
                np.bitwise_and(self._bp_X[k], ops[:, 0][:, None, :], out=b8)
                np.bitwise_xor(b8, self._bp_A[k], out=b8)
                b4 = self._bp_b4[k]
                r0, r1 = b8[:, 0::2], b8[:, 1::2]
                np.bitwise_xor(r0, r1, out=b4)
                np.bitwise_and(b4, ops[:, 1][:, None, :], out=b4)
                np.bitwise_xor(b4, r0, out=b4)
                b2 = self._bp_b2[k]
                s0, s1 = b4[:, 0::2], b4[:, 1::2]
                np.bitwise_xor(s0, s1, out=b2)
                np.bitwise_and(b2, ops[:, 2][:, None, :], out=b2)
                np.bitwise_xor(b2, s0, out=b2)
                b1 = self._bp_b1[k]
                u0, u1 = b2[:, 0], b2[:, 1]
                np.bitwise_xor(u0, u1, out=b1)
                np.bitwise_and(b1, ops[:, 3], out=b1)
                np.bitwise_xor(b1, u0, out=b1)
                tidx = self._ovt_idx[k]
                if tidx.size:
                    # Patched-table lanes: recompose that lane's 4-bit
                    # address from the (already input-fixed) operand
                    # planes and index the machine's own table.
                    opsf = self._bp_ops_flat[k]
                    opi = self._ovt_op_idx[k]
                    shift = self._ovt_shift[k]
                    addr = (
                        ((opsf[opi[:, 0]] >> shift) & _U1)
                        | (((opsf[opi[:, 1]] >> shift) & _U1) << _U1)
                        | (((opsf[opi[:, 2]] >> shift) & _U1) << np.uint64(2))
                        | (((opsf[opi[:, 3]] >> shift) & _U1) << np.uint64(3))
                    )
                    val = (self._ovt_tab[k] >> addr) & _U1
                    b1f = self._bp_b1_flat[k]
                    np.bitwise_and.at(b1f, tidx, self._ovt_not[k])
                    np.bitwise_or.at(b1f, tidx, val << shift)
                planes[self._bp_dst[k]] = b1

    def _clock_ffs(self) -> None:
        if self._ff_rows.size == 0:
            return
        if self._ov_dirty:
            self._compile_overrides()
        planes = self._planes
        pf = self._planes_flat
        np.take(planes, self._bp_ff_d, axis=0, out=self._fb_d)
        np.take(planes, self._bp_ff_ce, axis=0, out=self._fb_ce)
        np.take(planes, self._bp_ff_sr, axis=0, out=self._fb_sr)
        np.take(planes, self._bp_ff_nodes, axis=0, out=self._fb_cur)
        for fld, buf in ((0, self._fb_d), (1, self._fb_ce), (2, self._fb_sr)):
            idx = self._ovf_idx[fld]
            if idx.size:
                bf = buf.reshape(-1)
                np.bitwise_and.at(bf, idx, self._ovf_not[fld])
                np.bitwise_or.at(
                    bf, idx, pf[self._ovf_src[fld]] & self._ovf_mask[fld]
                )
        new, tmp = self._fb_new, self._fb_tmp
        # new = cur, then D where CE, then 0 where SR, then cur where
        # the clock mux is broken — the reference FF priority exactly.
        np.bitwise_xor(self._fb_cur, self._fb_d, out=new)
        np.bitwise_and(new, self._fb_ce, out=new)
        np.bitwise_xor(new, self._fb_cur, out=new)
        np.bitwise_not(self._fb_sr, out=tmp)
        np.bitwise_and(new, tmp, out=new)
        np.bitwise_xor(new, self._fb_cur, out=tmp)
        np.bitwise_and(tmp, self._bp_unclk, out=tmp)
        np.bitwise_xor(new, tmp, out=new)
        planes[self._bp_ff_nodes] = new

    def _gather_outputs(self) -> np.ndarray:
        if self._ov_dirty:
            self._compile_overrides()
        d = self.design
        np.take(self._planes, self._bp_out_src, axis=0, out=self._bp_outplanes)
        if self._ovo_idx.size:
            opf = self._bp_outplanes_flat
            np.bitwise_and.at(opf, self._ovo_idx, self._ovo_not)
            np.bitwise_or.at(
                opf, self._ovo_idx, self._planes_flat[self._ovo_src] & self._ovo_mask
            )
        np.right_shift(
            self._bp_outplanes[:, :, None], BIT_WEIGHTS[None, None, :], out=self._out_shift
        )
        np.bitwise_and(self._out_shift, _U1, out=self._out_shift)
        self._out_buf[:] = self._out_shift.reshape(d.n_outputs, self.W * 64).T[: self.B]
        return self._out_buf

    def step(self, stimulus_row: np.ndarray) -> np.ndarray:
        d = self.design
        if stimulus_row.shape != (d.n_inputs,):
            raise NetlistError(
                f"stimulus row must have {d.n_inputs} entries, got {stimulus_row.shape}"
            )
        if d.n_inputs:
            if stimulus_row.max(initial=0) > 1:
                raise NetlistError("bit-plane backend requires 0/1 stimulus")
            self._planes[d.input_nodes] = _full_masks(stimulus_row)[:, None]
        self._eval_combinational()
        out = self._gather_outputs()
        if self._addr_capture is not None:
            self._addr_capture.append(self._machine0_addr_row())
        self._clock_ffs()
        return out

    # -- retire support ------------------------------------------------------

    def _machines_equal_companion(self, n_live: int) -> np.ndarray:
        wc, bc = divmod(self.B - 1, 64)
        comp = (self._planes[:, wc] >> np.uint64(bc)) & _U1
        np.bitwise_xor(self._planes, _full_masks(comp)[:, None], out=self._eq_buf)
        neq_words = np.bitwise_or.reduce(self._eq_buf, axis=0)  # (W,)
        neq = (neq_words[:, None] >> BIT_WEIGHTS[None, :]) & _U1
        return neq.reshape(-1)[:n_live] == 0

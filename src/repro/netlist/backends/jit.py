"""Numba-JIT bit-plane backend: the levelized schedule as one fused kernel.

The numpy bit-plane backend still pays ~20 ufunc dispatches per level
per settle pass; with the small levels a pruned campaign batch
produces, dispatch overhead rivals the actual bit work.  This backend
flattens the schedule (levels, golden mux constants, sparse override
table) into CSR arrays and hands one whole ``step()`` — stimulus
scatter, settle passes over every level, output capture, FF clock — to
a single ``@njit(cache=True, parallel=True)`` function parallelised
over the ``W`` plane words (words never interact, so the parallel
split is race-free by construction).

numba is strictly optional (``pip install .[jit]``).  The module
imports cleanly without it: the kernel below is deliberately written
in nopython-compatible plain Python (scalar loops, no object types),
so with numba absent it still *runs* — slowly — which is how the
differential tests pin its semantics on hosts without numba, and
:func:`repro.netlist.backends.resolve_backend` transparently degrades
``bitplane-jit`` to ``bitplane`` for real workloads.

Semantics are inherited, not reimplemented: patch/repair/compact and
the override bookkeeping live in :class:`BitplaneBatchSimulator`; this
class only swaps the execution engine.  Address-mask capture needs the
per-cycle machine-0 probe, so a capturing ``step()`` falls back to the
numpy bit-plane path (identical bytes, just unfused).
"""

from __future__ import annotations

import time

import numpy as np

from repro.netlist.backends.bitplane import (
    BitplaneBatchSimulator,
    _full_masks,
)
from repro.netlist.simulator import NetlistError

__all__ = ["BitplaneJitBatchSimulator", "NUMBA_AVAILABLE", "step_kernel"]

try:  # pragma: no cover - exercised only with the [jit] extra installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False
    prange = range

    def njit(*args, **kwargs):  # type: ignore[misc]
        """No-op decorator so the kernel stays importable and testable."""
        if len(args) == 1 and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco


#: wall-clock seconds spent in numba compilation, for bench reporting
compile_seconds: float = 0.0

_U1 = np.uint64(1)


def step_kernel(
    planes,
    settle,
    in_nodes,
    in_masks,
    lev_ptr,
    src,
    dst,
    tab_a,
    tab_x,
    inov_ptr,
    inov_pin,
    inov_w,
    inov_mask,
    inov_src,
    tabov_ptr,
    tabov_w,
    tabov_shift,
    tabov_mask,
    tabov_tab,
    out_src,
    outov_ptr,
    outov_w,
    outov_mask,
    outov_src,
    outplanes,
    ff_d,
    ff_ce,
    ff_sr,
    ff_nodes,
    unclk,
    ffov_ptr,
    ffov_field,
    ffov_w,
    ffov_mask,
    ffov_src,
    max_level,
):
    """One full simulator step over every plane word.

    Pure nopython-compatible scalar code: compiled by numba when
    available, run as plain Python otherwise.  Each ``w`` iteration
    touches only column ``w`` of every plane/output array, so the
    ``prange`` split is free of data races.
    """
    W = planes.shape[1]
    n_levels = lev_ptr.shape[0] - 1
    n_out = out_src.shape[0]
    n_ffs = ff_nodes.shape[0]
    one = np.uint64(1)
    for w in prange(W):
        # stimulus broadcast: same value for every machine in the word
        for i in range(in_nodes.shape[0]):
            planes[in_nodes[i], w] = in_masks[i]
        scratch = np.empty(max_level, np.uint64)
        for _ in range(settle):
            for k in range(n_levels):
                lo = lev_ptr[k]
                hi = lev_ptr[k + 1]
                # gather-then-scatter: the whole level computes from
                # pre-level planes before any result lands
                for j in range(lo, hi):
                    i0 = planes[src[j, 0], w]
                    i1 = planes[src[j, 1], w]
                    i2 = planes[src[j, 2], w]
                    i3 = planes[src[j, 3], w]
                    for e in range(inov_ptr[j], inov_ptr[j + 1]):
                        if inov_w[e] != w:
                            continue
                        mk = inov_mask[e]
                        v = planes[inov_src[e], w] & mk
                        p = inov_pin[e]
                        if p == 0:
                            i0 = (i0 & ~mk) | v
                        elif p == 1:
                            i1 = (i1 & ~mk) | v
                        elif p == 2:
                            i2 = (i2 & ~mk) | v
                        else:
                            i3 = (i3 & ~mk) | v
                    # 16->1 mux tree; first stage folded into constants
                    r0 = tab_a[j, 0] ^ (tab_x[j, 0] & i0)
                    r1 = tab_a[j, 1] ^ (tab_x[j, 1] & i0)
                    r2 = tab_a[j, 2] ^ (tab_x[j, 2] & i0)
                    r3 = tab_a[j, 3] ^ (tab_x[j, 3] & i0)
                    r4 = tab_a[j, 4] ^ (tab_x[j, 4] & i0)
                    r5 = tab_a[j, 5] ^ (tab_x[j, 5] & i0)
                    r6 = tab_a[j, 6] ^ (tab_x[j, 6] & i0)
                    r7 = tab_a[j, 7] ^ (tab_x[j, 7] & i0)
                    s0 = r0 ^ ((r0 ^ r1) & i1)
                    s1 = r2 ^ ((r2 ^ r3) & i1)
                    s2 = r4 ^ ((r4 ^ r5) & i1)
                    s3 = r6 ^ ((r6 ^ r7) & i1)
                    t0 = s0 ^ ((s0 ^ s1) & i2)
                    t1 = s2 ^ ((s2 ^ s3) & i2)
                    res = t0 ^ ((t0 ^ t1) & i3)
                    for e in range(tabov_ptr[j], tabov_ptr[j + 1]):
                        if tabov_w[e] != w:
                            continue
                        sh = tabov_shift[e]
                        a = (
                            ((i0 >> sh) & one)
                            | (((i1 >> sh) & one) << one)
                            | (((i2 >> sh) & one) << np.uint64(2))
                            | (((i3 >> sh) & one) << np.uint64(3))
                        )
                        v = (tabov_tab[e] >> a) & one
                        res = (res & ~tabov_mask[e]) | (v << sh)
                    scratch[j - lo] = res
                for j in range(lo, hi):
                    planes[dst[j], w] = scratch[j - lo]
        # outputs are captured post-eval, pre-clock
        for o in range(n_out):
            v = planes[out_src[o], w]
            for e in range(outov_ptr[o], outov_ptr[o + 1]):
                if outov_w[e] != w:
                    continue
                mk = outov_mask[e]
                v = (v & ~mk) | (planes[outov_src[e], w] & mk)
            outplanes[o, w] = v
        # FF clock: compute every next-state before any lands, since an
        # FF's D input may read another FF node
        news = np.empty(n_ffs, np.uint64)
        for r in range(n_ffs):
            dv = planes[ff_d[r], w]
            ce = planes[ff_ce[r], w]
            sr = planes[ff_sr[r], w]
            for e in range(ffov_ptr[r], ffov_ptr[r + 1]):
                if ffov_w[e] != w:
                    continue
                mk = ffov_mask[e]
                v = planes[ffov_src[e], w] & mk
                f = ffov_field[e]
                if f == 0:
                    dv = (dv & ~mk) | v
                elif f == 1:
                    ce = (ce & ~mk) | v
                else:
                    sr = (sr & ~mk) | v
            cur = planes[ff_nodes[r], w]
            new = cur ^ ((cur ^ dv) & ce)
            new = new & ~sr
            # lanes with a broken clock mux keep their current value
            news[r] = new ^ ((new ^ cur) & unclk[r, w])
        for r in range(n_ffs):
            planes[ff_nodes[r], w] = news[r]


_jitted_kernel = None


def _get_kernel():
    """The compiled kernel when numba is present, plain Python otherwise."""
    global _jitted_kernel, compile_seconds
    if _jitted_kernel is None:
        if NUMBA_AVAILABLE:
            t0 = time.perf_counter()
            _jitted_kernel = njit(cache=True, parallel=True)(step_kernel)
            compile_seconds += time.perf_counter() - t0
        else:
            _jitted_kernel = step_kernel
    return _jitted_kernel


class BitplaneJitBatchSimulator(BitplaneBatchSimulator):
    """Bit-plane simulator whose ``step()`` is one fused (JIT) kernel call.

    All state, patching, repair, compaction and override bookkeeping is
    inherited from :class:`BitplaneBatchSimulator`; this class compiles
    the schedule and override table into flat CSR arrays and dispatches
    the fused kernel instead of the per-level numpy loop.
    """

    def _build_gather_caches(self) -> None:
        self._jit_structs_ready = False
        super()._build_gather_caches()
        d = self.design
        # Rows in evaluation order (levels concatenated); lev_ptr marks
        # level boundaries inside the concatenation.
        sizes = np.array([rows.size for rows in self._levels], dtype=np.int64)
        self._jt_lev_ptr = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=self._jt_lev_ptr[1:])
        rows_concat = (
            np.concatenate(self._levels)
            if self._levels
            else np.zeros(0, dtype=np.int64)
        ).astype(np.int64)
        self._jt_rows_concat = rows_concat
        self._jt_src = d.lut_inputs[rows_concat].astype(np.int64)
        self._jt_dst = d.lut_nodes[rows_concat].astype(np.int64)
        tt = d.lut_tables[rows_concat]
        self._jt_tab_a = _full_masks(tt[:, 0::2])
        self._jt_tab_x = _full_masks(tt[:, 0::2] ^ tt[:, 1::2])
        self._jt_max_level = int(sizes.max()) if sizes.size else 1
        self._jt_in_nodes = d.input_nodes.astype(np.int64)
        self._jt_out_src = d.output_nodes.astype(np.int64)
        self._jt_ff_d = self._bp_ff_d.astype(np.int64)
        self._jt_ff_ce = self._bp_ff_ce.astype(np.int64)
        self._jt_ff_sr = self._bp_ff_sr.astype(np.int64)
        self._jt_ff_nodes = self._bp_ff_nodes.astype(np.int64)
        # Global slot of a LUT row inside the concatenation (-1: pruned)
        self._row_g = np.where(
            self._row_level >= 0,
            self._jt_lev_ptr[np.maximum(self._row_level, 0)] + self._row_slot,
            -1,
        )
        self._jit_structs_ready = True
        self._compile_jit_overrides()

    def _compile_overrides(self) -> None:
        super()._compile_overrides()
        # During _build_gather_caches the base class compiles overrides
        # before the CSR structures exist; that call is followed by an
        # explicit _compile_jit_overrides once they do.
        if getattr(self, "_jit_structs_ready", False):
            self._compile_jit_overrides()

    def _compile_jit_overrides(self) -> None:
        """Project the canonical override table into per-row CSR arrays."""
        G = self._jt_dst.shape[0]

        arr = self._ov_in
        g = self._row_g[arr[:, 1]]
        ok = g >= 0
        arr, g = arr[ok], g[ok]
        order = np.argsort(g, kind="stable")
        arr, g = arr[order], g[order]
        w, s = np.divmod(arr[:, 0], 64)
        self._jt_inov_ptr = _csr_ptr(g, G)
        self._jt_inov_pin = arr[:, 2].astype(np.int64)
        self._jt_inov_w = w.astype(np.int64)
        self._jt_inov_mask = np.left_shift(_U1, s.astype(np.uint64))
        self._jt_inov_src = arr[:, 3].astype(np.int64)

        arr = self._ov_tab
        g = self._row_g[arr[:, 1]]
        ok = g >= 0
        arr, g = arr[ok], g[ok]
        order = np.argsort(g, kind="stable")
        arr, g = arr[order], g[order]
        w, s = np.divmod(arr[:, 0], 64)
        self._jt_tabov_ptr = _csr_ptr(g, G)
        self._jt_tabov_w = w.astype(np.int64)
        self._jt_tabov_shift = s.astype(np.uint64)
        self._jt_tabov_mask = np.left_shift(_U1, self._jt_tabov_shift)
        self._jt_tabov_tab = arr[:, 2].astype(np.uint64)

        arr = self._ov_ff
        slot = self._ffrow_slot[arr[:, 1]]
        ok = slot >= 0
        arr, slot = arr[ok], slot[ok]
        order = np.argsort(slot, kind="stable")
        arr, slot = arr[order], slot[order]
        w, s = np.divmod(arr[:, 0], 64)
        self._jt_ffov_ptr = _csr_ptr(slot, self._jt_ff_nodes.shape[0])
        self._jt_ffov_field = arr[:, 2].astype(np.int64)
        self._jt_ffov_w = w.astype(np.int64)
        self._jt_ffov_mask = np.left_shift(_U1, s.astype(np.uint64))
        self._jt_ffov_src = arr[:, 3].astype(np.int64)

        arr = self._ov_out
        pos = arr[:, 1]
        order = np.argsort(pos, kind="stable")
        arr, pos = arr[order], pos[order]
        w, s = np.divmod(arr[:, 0], 64)
        self._jt_outov_ptr = _csr_ptr(pos, self._jt_out_src.shape[0])
        self._jt_outov_w = w.astype(np.int64)
        self._jt_outov_mask = np.left_shift(_U1, s.astype(np.uint64))
        self._jt_outov_src = arr[:, 2].astype(np.int64)

    def step(self, stimulus_row: np.ndarray) -> np.ndarray:
        if self._addr_capture is not None:
            # Address capture probes machine 0 between eval and clock;
            # take the unfused (byte-identical) bit-plane path.
            return super().step(stimulus_row)
        d = self.design
        if stimulus_row.shape != (d.n_inputs,):
            raise NetlistError(
                f"stimulus row must have {d.n_inputs} entries, got {stimulus_row.shape}"
            )
        if d.n_inputs and stimulus_row.max(initial=0) > 1:
            raise NetlistError("bit-plane backend requires 0/1 stimulus")
        if self._ov_dirty:
            self._compile_overrides()
        in_masks = _full_masks(stimulus_row)
        _get_kernel()(
            self._planes,
            self.settle_passes,
            self._jt_in_nodes,
            in_masks,
            self._jt_lev_ptr,
            self._jt_src,
            self._jt_dst,
            self._jt_tab_a,
            self._jt_tab_x,
            self._jt_inov_ptr,
            self._jt_inov_pin,
            self._jt_inov_w,
            self._jt_inov_mask,
            self._jt_inov_src,
            self._jt_tabov_ptr,
            self._jt_tabov_w,
            self._jt_tabov_shift,
            self._jt_tabov_mask,
            self._jt_tabov_tab,
            self._jt_out_src,
            self._jt_outov_ptr,
            self._jt_outov_w,
            self._jt_outov_mask,
            self._jt_outov_src,
            self._bp_outplanes,
            self._jt_ff_d,
            self._jt_ff_ce,
            self._jt_ff_sr,
            self._jt_ff_nodes,
            self._bp_unclk,
            self._jt_ffov_ptr,
            self._jt_ffov_field,
            self._jt_ffov_w,
            self._jt_ffov_mask,
            self._jt_ffov_src,
            self._jt_max_level,
        )
        np.right_shift(
            self._bp_outplanes[:, :, None],
            np.arange(64, dtype=np.uint64)[None, None, :],
            out=self._out_shift,
        )
        np.bitwise_and(self._out_shift, _U1, out=self._out_shift)
        self._out_buf[:] = self._out_shift.reshape(d.n_outputs, self.W * 64).T[
            : self.B
        ]
        return self._out_buf


def _csr_ptr(sorted_groups: np.ndarray, n_groups: int) -> np.ndarray:
    """Row-pointer array for entries already sorted by group index."""
    counts = np.bincount(sorted_groups, minlength=n_groups) if sorted_groups.size else (
        np.zeros(n_groups, dtype=np.int64)
    )
    ptr = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return ptr

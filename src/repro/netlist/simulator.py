"""Vectorised lock-step simulator for batches of faulty machines.

This is the performance core of the reproduction.  The paper gets its
"many orders of magnitude" speed-up by running corrupted designs on real
silicon; we get ours by simulating B corrupted variants of one design
simultaneously with numpy:

* node values live in a ``(B, n_nodes)`` uint8 matrix;
* each LUT level evaluates for all machines at once via two
  ``take_along_axis`` gathers (operand fetch, table lookup);
* flip-flops update in one vectorised step honouring per-machine CE, SR
  and clock health.

Per-machine hardware differences come in as :class:`Patch` objects; the
simulator records undo information so a machine can be *repaired*
mid-run (configuration scrubbing restores the bitstream but not the
state — exactly the persistence experiment of paper section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetlistError
from repro.netlist.compiled import (
    CompiledDesign,
    FFField,
    NodeKind,
    Patch,
)

__all__ = ["GoldenTrace", "MachineVerdict", "BatchSimulator"]


@dataclass
class GoldenTrace:
    """Reference behaviour of the fault-free design.

    ``addr_seen[lut]`` is a 16-bit occupancy mask of the truth-table
    entries the run actually addressed — the structural pre-filter uses
    it to skip LUT-content faults on never-exercised entries.
    """

    outputs: np.ndarray  # (cycles, n_outputs) uint8
    addr_seen: np.ndarray  # (n_luts,) uint16
    final_state: np.ndarray  # (n_ffs,) uint8

    @property
    def n_cycles(self) -> int:
        return int(self.outputs.shape[0])


@dataclass
class MachineVerdict:
    """Outcome of one faulty machine in a detect/repair/persist run."""

    failed: bool
    first_error_cycle: int  # -1 when no error observed
    persistent: bool  # meaningful only when failed
    recovered_cycle: int  # cycle outputs re-matched after repair; -1 if never


class BatchSimulator:
    """Simulates ``B`` patched variants of one compiled design in lock-step."""

    def __init__(
        self,
        design: CompiledDesign,
        patches: list[Patch] | None = None,
        settle_passes: int | None = None,
        initial_values: np.ndarray | None = None,
        active_nodes: np.ndarray | None = None,
    ):
        """``initial_values`` (a ``(n_nodes,)`` snapshot from a golden run)
        makes :meth:`reset` restore that mid-run state instead of the
        power-on state — faults are injected into *running* designs, as
        on the SLAAC-1V (paper Figure 8).

        ``active_nodes`` (bool per node) prunes evaluation to a node
        subset.  The caller must guarantee closure: every node an active
        LUT/FF reads — under golden wiring *or* any machine's patch — is
        itself active.  Campaigns compute this as the backward cone of
        the outputs plus all patch edges; it cuts the per-cycle work by
        the device's idle-fabric fraction.

        ``settle_passes=None`` (default) auto-detects: patches that
        reroute a LUT operand onto a node computed at the same or a
        later level violate the golden evaluation schedule; each extra
        pass absorbs one stale step, so the batch runs with enough
        passes that acyclic rewirings settle to their exact fixpoint
        (golden-equivalent machines are unaffected — levelized
        evaluation is idempotent)."""
        self.design = design
        if settle_passes is None:
            settle_passes = 1 + min(3, self._max_schedule_violations(design, patches))
        if settle_passes < 1:
            raise NetlistError("settle_passes must be >= 1")
        self.settle_passes = settle_passes
        self._initial_values = (
            None if initial_values is None else np.asarray(initial_values, dtype=np.uint8)
        )
        if self._initial_values is not None and self._initial_values.shape != (design.n_nodes,):
            raise NetlistError("initial_values must be a (n_nodes,) snapshot")
        self.patches = list(patches) if patches else [Patch()]
        self.B = len(self.patches)
        if self.B < 1:
            raise NetlistError("batch must contain at least one machine")

        d = design
        B = self.B
        # Per-machine hardware arrays (patched copies of the golden arrays).
        self.lut_inputs = np.broadcast_to(d.lut_inputs, (B, d.n_luts, 4)).copy()
        self.lut_tables = np.broadcast_to(d.lut_tables, (B, d.n_luts, 16)).copy()
        self.ff_d = np.broadcast_to(d.ff_d, (B, d.n_ffs)).copy()
        self.ff_ce = np.broadcast_to(d.ff_ce, (B, d.n_ffs)).copy()
        self.ff_sr = np.broadcast_to(d.ff_sr, (B, d.n_ffs)).copy()
        self.ff_init = np.broadcast_to(d.ff_init, (B, d.n_ffs)).copy()
        self.ff_clocked = np.broadcast_to(d.ff_clocked, (B, d.n_ffs)).copy()
        self.const_values = np.broadcast_to(d.const_values, (B, d.n_nodes)).copy()
        self.output_nodes = np.broadcast_to(d.output_nodes, (B, d.n_outputs)).copy()

        self._broken = np.zeros(B, dtype=bool)  # patched (faulty) machines
        for m, patch in enumerate(self.patches):
            self._apply_patch(m, patch)

        if active_nodes is None:
            self._levels = d.levels
            self._ff_rows = np.arange(d.n_ffs, dtype=np.int64)
        else:
            active_nodes = np.asarray(active_nodes, dtype=bool)
            if active_nodes.shape != (d.n_nodes,):
                raise NetlistError("active_nodes must be a (n_nodes,) mask")
            lut_active = active_nodes[d.lut_nodes]
            self._levels = [lv[lut_active[lv]] for lv in d.levels]
            self._levels = [lv for lv in self._levels if lv.size]
            self._ff_rows = np.flatnonzero(active_nodes[d.ff_nodes])

        self.values = np.zeros((B, d.n_nodes), dtype=np.uint8)
        self._const_mask = np.isin(
            d.node_kind, (int(NodeKind.CONST), int(NodeKind.HALF_LATCH))
        )
        self.reset()

    @staticmethod
    def _max_schedule_violations(design: CompiledDesign, patches: list[Patch] | None) -> int:
        """Largest per-machine count of LUT edges defying golden levels."""
        if not patches:
            return 0
        level_of = design.level_of_row
        row_of = design.row_of_lut_node
        worst = 0
        for patch in patches:
            v = 0
            for row, _pin, node in patch.lut_inputs:
                src_row = row_of.get(int(node))
                if src_row is not None and level_of[src_row] >= level_of[row]:
                    v += 1
            worst = max(worst, v)
        return worst

    # -- patching ------------------------------------------------------------

    def _apply_patch(self, m: int, patch: Patch) -> None:
        if patch.is_empty():
            return
        self._broken[m] = True
        d = self.design
        for row, table in patch.lut_tables:
            self.lut_tables[m, row] = table
        for row, pin, node in patch.lut_inputs:
            self.lut_inputs[m, row, pin] = node
        for row, fieldname, value in patch.ff_fields:
            if fieldname is FFField.D:
                self.ff_d[m, row] = value
            elif fieldname is FFField.CE:
                self.ff_ce[m, row] = value
            elif fieldname is FFField.SR:
                self.ff_sr[m, row] = value
            elif fieldname is FFField.INIT:
                self.ff_init[m, row] = value
            elif fieldname is FFField.CLOCKED:
                self.ff_clocked[m, row] = value
            else:  # pragma: no cover - exhaustive enum
                raise NetlistError(f"unknown FF field {fieldname}")
        for node, value in patch.consts:
            kind = NodeKind(int(d.node_kind[node]))
            if kind not in (NodeKind.CONST, NodeKind.HALF_LATCH):
                raise NetlistError(f"const patch targets non-constant node {node}")
            self.const_values[m, node] = value
        for pos, node in patch.outputs:
            self.output_nodes[m, pos] = node

    def repair_machine(self, m: int) -> None:
        """Restore machine ``m``'s *hardware* to golden; keep its state.

        Models a configuration scrub: the corrupted frame is rewritten,
        but flip-flop contents — and half-latch keepers — are untouched.
        """
        d = self.design
        self.lut_inputs[m] = d.lut_inputs
        self.lut_tables[m] = d.lut_tables
        self.ff_d[m] = d.ff_d
        self.ff_ce[m] = d.ff_ce
        self.ff_sr[m] = d.ff_sr
        self.ff_init[m] = d.ff_init
        self.ff_clocked[m] = d.ff_clocked
        self.output_nodes[m] = d.output_nodes
        # Constants: CONST nodes are configuration (repaired); HALF_LATCH
        # keepers are hidden state and deliberately NOT restored.
        const_only = d.node_kind == int(NodeKind.CONST)
        self.const_values[m, const_only] = d.const_values[const_only]
        self.values[m, const_only] = d.const_values[const_only]
        self._broken[m] = False

    # -- execution ---------------------------------------------------------

    def reset(self) -> None:
        """Restore the start state.

        Power-on semantics (constants asserted, FFs to INIT) by default;
        with ``initial_values`` the golden mid-run snapshot is restored
        and per-machine constant patches (e.g. half-latch upsets) are
        applied on top.
        """
        d = self.design
        if self._initial_values is not None:
            self.values[:] = self._initial_values[None, :]
            self.values[:, self._const_mask] = self.const_values[:, self._const_mask]
            return
        self.values[:] = 0
        self.values[:, self._const_mask] = self.const_values[:, self._const_mask]
        if d.n_ffs:
            self.values[
                np.arange(self.B)[:, None], d.ff_nodes[None, :]
            ] = self.ff_init

    def state_snapshot(self) -> np.ndarray:
        """Copy of machine 0's node values (for mid-run injection starts)."""
        return self.values[0].copy()

    def _eval_combinational(self) -> None:
        d = self.design
        B = self.B
        for _ in range(self.settle_passes):
            for rows in self._levels:
                idx = self.lut_inputs[:, rows, :]  # (B, L, 4)
                flat = np.take_along_axis(
                    self.values, idx.reshape(B, -1), axis=1
                ).reshape(B, rows.size, 4)
                addr = (
                    flat[:, :, 0].astype(np.int32)
                    | (flat[:, :, 1].astype(np.int32) << 1)
                    | (flat[:, :, 2].astype(np.int32) << 2)
                    | (flat[:, :, 3].astype(np.int32) << 3)
                )
                tabs = self.lut_tables[:, rows, :]  # (B, L, 16)
                out = np.take_along_axis(tabs, addr[:, :, None], axis=2)[:, :, 0]
                self.values[:, d.lut_nodes[rows]] = out

    def _clock_ffs(self) -> None:
        d = self.design
        rows = self._ff_rows
        if rows.size == 0:
            return
        dval = np.take_along_axis(self.values, self.ff_d[:, rows], axis=1)
        ce = np.take_along_axis(self.values, self.ff_ce[:, rows], axis=1)
        sr = np.take_along_axis(self.values, self.ff_sr[:, rows], axis=1)
        nodes = d.ff_nodes[rows]
        cur = self.values[:, nodes]
        new = np.where(ce == 1, dval, cur)
        new = np.where(sr == 1, np.uint8(0), new)
        new = np.where(self.ff_clocked[:, rows] == 1, new, cur)
        self.values[:, nodes] = new

    def step(self, stimulus_row: np.ndarray) -> np.ndarray:
        """Advance one clock cycle; returns outputs as (B, n_outputs).

        ``stimulus_row`` is the primary-input vector for this cycle,
        shared by every machine (golden and faulty parts see identical
        stimulus, as on the SLAAC-1V).
        """
        d = self.design
        if stimulus_row.shape != (d.n_inputs,):
            raise NetlistError(
                f"stimulus row must have {d.n_inputs} entries, got {stimulus_row.shape}"
            )
        if d.n_inputs:
            self.values[:, d.input_nodes] = stimulus_row[None, :]
        self._eval_combinational()
        out = np.take_along_axis(self.values, self.output_nodes, axis=1)
        self._clock_ffs()
        return out

    def run(self, stimulus: np.ndarray, record_addresses: bool = False) -> np.ndarray:
        """Run all machines over a (cycles, n_inputs) stimulus.

        Returns outputs of shape ``(cycles, B, n_outputs)``.  With
        ``record_addresses`` the LUT address-occupancy mask is collected
        into :attr:`last_addr_seen` (meaningful for the golden machine).
        """
        d = self.design
        stimulus = np.asarray(stimulus, dtype=np.uint8)
        cycles = stimulus.shape[0]
        outputs = np.empty((cycles, self.B, d.n_outputs), dtype=np.uint8)
        addr_seen = np.zeros(d.n_luts, dtype=np.uint16)
        for t in range(cycles):
            outputs[t] = self.step(stimulus[t])
            if record_addresses and d.n_luts:
                flat = np.take_along_axis(
                    self.values, self.lut_inputs[0].reshape(1, -1), axis=1
                ).reshape(d.n_luts, 4)
                addr = (
                    flat[:, 0].astype(np.uint16)
                    | (flat[:, 1].astype(np.uint16) << 1)
                    | (flat[:, 2].astype(np.uint16) << 2)
                    | (flat[:, 3].astype(np.uint16) << 3)
                )
                addr_seen |= np.left_shift(np.uint16(1), addr)
        self.last_addr_seen = addr_seen
        return outputs

    # -- golden reference ------------------------------------------------------

    @classmethod
    def golden_trace(
        cls, design: CompiledDesign, stimulus: np.ndarray, settle_passes: int = 1
    ) -> GoldenTrace:
        """Run the fault-free design once, recording the reference trace."""
        sim = cls(design, settle_passes=settle_passes)
        outputs = sim.run(stimulus, record_addresses=True)
        final_state = sim.values[0, design.ff_nodes].copy() if design.n_ffs else np.zeros(0, np.uint8)
        return GoldenTrace(outputs[:, 0, :].copy(), sim.last_addr_seen, final_state)

    # -- detect / repair / persist campaign step ---------------------------------

    def run_verdicts(
        self,
        stimulus: np.ndarray,
        golden: GoldenTrace,
        detect_cycles: int,
        persist_cycles: int,
        converge_run: int = 8,
    ) -> list[MachineVerdict]:
        """The paper's injection protocol, for every machine in the batch.

        Phase 1 (up to ``detect_cycles``): outputs are compared against
        the golden trace each cycle.  On the first mismatch the machine's
        configuration is repaired in place (scrub, no reset) and it
        enters phase 2.  Phase 2 (up to ``persist_cycles`` more cycles):
        if outputs match golden for ``converge_run`` consecutive cycles
        the fault was **non-persistent**; machines still diverging when
        the budget runs out are **persistent** (they need a reset, paper
        Figure 7).
        """
        stimulus = np.asarray(stimulus, dtype=np.uint8)
        total_needed = detect_cycles + persist_cycles
        if stimulus.shape[0] < total_needed:
            raise NetlistError(
                f"stimulus has {stimulus.shape[0]} cycles; need {total_needed}"
            )
        if golden.n_cycles < total_needed:
            raise NetlistError("golden trace shorter than the verdict run")

        B = self.B
        phase = np.zeros(B, dtype=np.int8)  # 0 watch, 1 converge, 2 done
        first_error = np.full(B, -1, dtype=np.int64)
        recovered = np.full(B, -1, dtype=np.int64)
        run_len = np.zeros(B, dtype=np.int64)
        persistent = np.zeros(B, dtype=bool)

        self.reset()
        for t in range(total_needed):
            out = self.step(stimulus[t])
            mismatch = np.any(out != golden.outputs[t][None, :], axis=1)

            # Phase 0: first mismatch -> repair, enter phase 1.
            hits = np.flatnonzero((phase == 0) & mismatch)
            for m in hits:
                first_error[m] = t
                self.repair_machine(int(m))
                phase[m] = 1
                run_len[m] = 0
            # Machines that never err within the detect window are done.
            if t == detect_cycles - 1:
                phase[(phase == 0)] = 2

            # Phase 1: count consecutive matching cycles.
            watching = phase == 1
            if np.any(watching):
                good = watching & ~mismatch
                run_len[good] += 1
                run_len[watching & mismatch] = 0
                conv = watching & (run_len >= converge_run)
                if np.any(conv):
                    recovered[conv] = t
                    phase[conv] = 2
            if np.all(phase == 2):
                break

        # Anything still in phase 1 never re-converged: persistent error.
        persistent[phase == 1] = True
        return [
            MachineVerdict(
                failed=first_error[m] >= 0,
                first_error_cycle=int(first_error[m]),
                persistent=bool(persistent[m]),
                recovered_cycle=int(recovered[m]),
            )
            for m in range(B)
        ]

"""Vectorised lock-step simulator for batches of faulty machines.

This is the performance core of the reproduction.  The paper gets its
"many orders of magnitude" speed-up by running corrupted designs on real
silicon; we get ours by simulating B corrupted variants of one design
simultaneously with numpy:

* node values live in a ``(B, n_nodes)`` uint8 matrix;
* each LUT level evaluates for all machines at once via two flat
  gathers (operand fetch, table lookup) whose index arrays are built
  once — per-machine wiring only changes at patch/repair time, so the
  per-cycle work is pure ``np.take`` into preallocated buffers;
* LUT addresses are composed with in-place uint8 shift/or (no per-cycle
  ``astype`` widening);
* flip-flops update in one vectorised step honouring per-machine CE, SR
  and clock health;
* the per-cycle output-vs-golden comparison packs both sides into
  uint64 words, so a machine's health check is a handful of word
  compares instead of ``n_outputs`` byte compares.

Per-machine hardware differences come in as :class:`Patch` objects; the
simulator records undo information so a machine can be *repaired*
mid-run (configuration scrubbing restores the bitstream but not the
state — exactly the persistence experiment of paper section III-A).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.errors import NetlistError
from repro.netlist.compiled import (
    CompiledDesign,
    FFField,
    NodeKind,
    Patch,
)

__all__ = [
    "GoldenTrace",
    "MachineVerdict",
    "BatchSimulator",
    "KernelCounters",
    "KERNEL_COUNTERS",
    "SETTLE_CAP",
    "compose_lut_addresses",
    "max_schedule_violations",
]

#: largest auto-detected settle-pass surplus; deeper acyclic rewirings
#: run under-settled (and warn, so campaigns cannot miss it silently)
SETTLE_CAP = 3

_SETTLE_CAP_MSG = (
    "patch set exceeds the settle-pass cap: schedule-violating rewires deeper "
    "than SETTLE_CAP run with capped settle passes and may not reach their "
    "exact fixpoint (see BatchSimulator.schedule_violations_uncapped)"
)


@dataclass
class KernelCounters:
    """Process-global fault-dropping statistics of the simulator kernel.

    Campaign drivers snapshot/diff these around observation calls (and
    collect the diffs from worker processes) to report retirement rates
    in :class:`~repro.engine.telemetry.CampaignTelemetry`.
    """

    machines_retired: int = 0
    batch_compactions: int = 0
    machine_cycles_saved: int = 0
    ff_cycles_skipped: int = 0

    def snapshot(self) -> tuple[int, int, int, int]:
        return (
            self.machines_retired,
            self.batch_compactions,
            self.machine_cycles_saved,
            self.ff_cycles_skipped,
        )

    def delta(self, since: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
        now = self.snapshot()
        return (
            now[0] - since[0],
            now[1] - since[1],
            now[2] - since[2],
            now[3] - since[3],
        )

    def add(self, delta: tuple[int, int, int, int]) -> None:
        self.machines_retired += int(delta[0])
        self.batch_compactions += int(delta[1])
        self.machine_cycles_saved += int(delta[2])
        self.ff_cycles_skipped += int(delta[3])

    def to_dict(self) -> dict[str, int]:
        """JSON-ready sample (the trace ``counters`` event payload)."""
        return {
            "machines_retired": int(self.machines_retired),
            "batch_compactions": int(self.batch_compactions),
            "machine_cycles_saved": int(self.machine_cycles_saved),
            "ff_cycles_skipped": int(self.ff_cycles_skipped),
        }


KERNEL_COUNTERS = KernelCounters()


def compose_lut_addresses(operands: np.ndarray, out: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """Compose 4-bit LUT addresses from an ``(..., 4)`` operand array.

    Writes ``op0 | op1<<1 | op2<<2 | op3<<3`` into ``out`` using ``tmp``
    as shift scratch; ``out``/``tmp`` share the operands' leading shape
    and may be any unsigned dtype wide enough for a 4-bit value.
    Operand values must be 0/1.  The single source of the address
    idiom the per-level kernel, the machine-0 address capture and the
    occupancy recording all used to duplicate.
    """
    np.left_shift(operands[..., 1], 1, out=tmp)
    np.bitwise_or(operands[..., 0], tmp, out=out)
    np.left_shift(operands[..., 2], 2, out=tmp)
    np.bitwise_or(out, tmp, out=out)
    np.left_shift(operands[..., 3], 3, out=tmp)
    np.bitwise_or(out, tmp, out=out)
    return out


def max_schedule_violations(design: CompiledDesign, patches: list[Patch] | None) -> int:
    """Largest per-machine count of LUT edges defying golden levels.

    Public view of the settle-pass auto-detect input: fault models use
    it to *salt* collapse classes, so a representative simulated in a
    regrouped batch is forced to the settle count its candidate's
    original batch would have auto-detected.
    """
    return BatchSimulator._max_schedule_violations(design, patches)


@dataclass
class GoldenTrace:
    """Reference behaviour of the fault-free design.

    ``addr_seen[lut]`` is a 16-bit occupancy mask of the truth-table
    entries the run actually addressed — the structural pre-filter uses
    it to skip LUT-content faults on never-exercised entries.

    ``addr_rows`` (recorded on request) is the per-cycle version: row
    ``t`` holds each LUT's one-hot address mask at the *evaluation
    fixpoint* of cycle ``t`` (before the flip-flops clock), which is the
    exact entry set a lock-step machine can read that cycle.  Fault
    dropping builds its "never addressed again" suffix masks from it.

    ``snapshot_cycles``/``snapshots`` (recorded with a
    ``snapshot_stride``) are the golden-prefix checkpoints: row ``j`` of
    ``snapshots`` is the full node-value vector *after*
    ``snapshot_cycles[j]`` cycles have run, i.e. the exact state a fresh
    simulator restores through ``initial_values`` to fast-forward past
    the fault-free prefix.  Node values fully determine future evolution
    given the stimulus, so a restored run is byte-identical to one from
    cycle 0.
    """

    outputs: np.ndarray  # (cycles, n_outputs) uint8
    addr_seen: np.ndarray  # (n_luts,) uint16
    final_state: np.ndarray  # (n_ffs,) uint8
    addr_rows: np.ndarray | None = field(default=None)  # (cycles, n_luts) uint16
    snapshot_cycles: np.ndarray | None = field(default=None)  # (k,) int64
    snapshots: np.ndarray | None = field(default=None)  # (k, n_nodes) uint8

    @property
    def n_cycles(self) -> int:
        return int(self.outputs.shape[0])

    def nearest_snapshot(self, cycle: int) -> tuple[int, np.ndarray | None]:
        """Latest recorded snapshot at or before ``cycle``.

        Returns ``(snapshot_cycle, state)`` — the number of cycles the
        snapshot already covers and the node values to restore — or
        ``(0, None)`` when no snapshot helps (replay from power-on).
        """
        if self.snapshot_cycles is None or self.snapshot_cycles.size == 0:
            return 0, None
        j = int(np.searchsorted(self.snapshot_cycles, cycle, side="right")) - 1
        if j < 0:
            return 0, None
        return int(self.snapshot_cycles[j]), self.snapshots[j]


@dataclass
class MachineVerdict:
    """Outcome of one faulty machine in a detect/repair/persist run."""

    failed: bool
    first_error_cycle: int  # -1 when no error observed
    persistent: bool  # meaningful only when failed
    recovered_cycle: int  # cycle outputs re-matched after repair; -1 if never


class BatchSimulator:
    """Simulates ``B`` patched variants of one compiled design in lock-step."""

    def __init__(
        self,
        design: CompiledDesign,
        patches: list[Patch] | None = None,
        settle_passes: int | None = None,
        initial_values: np.ndarray | None = None,
        active_nodes: np.ndarray | None = None,
        companion: bool = False,
    ):
        """``initial_values`` (a ``(n_nodes,)`` snapshot from a golden run)
        makes :meth:`reset` restore that mid-run state instead of the
        power-on state — faults are injected into *running* designs, as
        on the SLAAC-1V (paper Figure 8).

        ``active_nodes`` (bool per node) prunes evaluation to a node
        subset.  The caller must guarantee closure: every node an active
        LUT/FF reads — under golden wiring *or* any machine's patch — is
        itself active.  Campaigns compute this as the backward cone of
        the outputs plus all patch edges; it cuts the per-cycle work by
        the device's idle-fabric fraction.

        ``settle_passes=None`` (default) auto-detects: patches that
        reroute a LUT operand onto a node computed at the same or a
        later level violate the golden evaluation schedule; each extra
        pass absorbs one stale step, so the batch runs with enough
        passes that acyclic rewirings settle to their exact fixpoint
        (golden-equivalent machines are unaffected — levelized
        evaluation is idempotent).  Sets beyond :data:`SETTLE_CAP`
        violations warn and record the uncapped count in
        :attr:`schedule_violations_uncapped`.

        ``companion=True`` appends one extra *golden* machine (empty
        patch) at the last batch slot.  It adds no patch edges and no
        schedule violations, so it never changes any other machine's
        verdict; :meth:`run_verdicts` uses it as the in-batch golden
        state reference that fault dropping compares against."""
        self.design = design
        self.companion = bool(companion)
        patches = list(patches) if patches else [Patch()]
        if companion:
            patches.append(Patch())
        #: uncapped schedule-violation count when auto-detect ran, else None
        self.schedule_violations_uncapped: int | None = None
        if settle_passes is None:
            raw = self._max_schedule_violations(design, patches)
            self.schedule_violations_uncapped = raw
            if raw > SETTLE_CAP:
                warnings.warn(_SETTLE_CAP_MSG, RuntimeWarning, stacklevel=2)
            settle_passes = 1 + min(SETTLE_CAP, raw)
        if settle_passes < 1:
            raise NetlistError("settle_passes must be >= 1")
        self.settle_passes = settle_passes
        self._initial_values = (
            None if initial_values is None else np.asarray(initial_values, dtype=np.uint8)
        )
        if self._initial_values is not None and self._initial_values.shape != (design.n_nodes,):
            raise NetlistError("initial_values must be a (n_nodes,) snapshot")
        self.patches = patches
        self.B = len(self.patches)
        if self.B < 1:
            raise NetlistError("batch must contain at least one machine")
        #: original slot of each current machine (compaction bookkeeping)
        self.batch_slots = np.arange(self.B, dtype=np.int64)
        self._addr_capture: list[np.ndarray] | None = None

        d = design
        B = self.B
        #: set once the gather caches exist; a mid-run patch refreshes
        #: the touched machine's caches only when this is True
        self._caches_built = False
        # Per-machine hardware arrays (patched copies of the golden arrays).
        self.lut_inputs = np.broadcast_to(d.lut_inputs, (B, d.n_luts, 4)).copy()
        self.lut_tables = np.broadcast_to(d.lut_tables, (B, d.n_luts, 16)).copy()
        self.ff_d = np.broadcast_to(d.ff_d, (B, d.n_ffs)).copy()
        self.ff_ce = np.broadcast_to(d.ff_ce, (B, d.n_ffs)).copy()
        self.ff_sr = np.broadcast_to(d.ff_sr, (B, d.n_ffs)).copy()
        self.ff_init = np.broadcast_to(d.ff_init, (B, d.n_ffs)).copy()
        self.ff_clocked = np.broadcast_to(d.ff_clocked, (B, d.n_ffs)).copy()
        self.const_values = np.broadcast_to(d.const_values, (B, d.n_nodes)).copy()
        self.output_nodes = np.broadcast_to(d.output_nodes, (B, d.n_outputs)).copy()

        self._broken = np.zeros(B, dtype=bool)  # patched (faulty) machines
        for m, patch in enumerate(self.patches):
            self._apply_patch(m, patch)

        if active_nodes is None:
            self._levels = d.levels
            self._ff_rows = np.arange(d.n_ffs, dtype=np.int64)
        else:
            active_nodes = np.asarray(active_nodes, dtype=bool)
            if active_nodes.shape != (d.n_nodes,):
                raise NetlistError("active_nodes must be a (n_nodes,) mask")
            lut_active = active_nodes[d.lut_nodes]
            self._levels = [lv[lut_active[lv]] for lv in d.levels]
            self._levels = [lv for lv in self._levels if lv.size]
            self._ff_rows = np.flatnonzero(active_nodes[d.ff_nodes])

        self._const_mask = np.isin(
            d.node_kind, (int(NodeKind.CONST), int(NodeKind.HALF_LATCH))
        )
        self._alloc_state()
        self._build_gather_caches()
        self.reset()

    def _alloc_state(self) -> None:
        """Allocate the node-state storage (backend hook).

        The reference backend keeps a dense ``(B, n_nodes)`` uint8
        matrix; bit-plane backends override this with packed planes.
        """
        self.values = np.zeros((self.B, self.design.n_nodes), dtype=np.uint8)

    # -- gather-index caches --------------------------------------------------
    #
    # Per-machine wiring (LUT operand sources, FF control sources, output
    # bindings) changes only when a patch is applied or a machine is
    # repaired.  The flat gather indices derived from it are therefore
    # precomputed here — per cycle the simulator only executes ``np.take``
    # into preallocated buffers, never rebuilding index arrays.

    def _build_gather_caches(self) -> None:
        d = self.design
        B = self.B
        self._values_flat = self.values.reshape(-1)
        self._lut_tables_flat = self.lut_tables.reshape(-1)
        self._moff = (np.arange(B, dtype=np.intp) * d.n_nodes)[:, None]  # (B, 1)

        self._lvl_gather: list[np.ndarray] = []  # intp (B, L*4) into values
        self._lvl_buf: list[np.ndarray] = []  # uint8 (B, L*4) operand buffer
        self._lvl_buf3: list[np.ndarray] = []  # (B, L, 4) view of _lvl_buf
        self._lvl_addr: list[np.ndarray] = []  # uint8 (B, L) LUT addresses
        self._lvl_tmp: list[np.ndarray] = []  # uint8 (B, L) shift scratch
        self._lvl_tab_base: list[np.ndarray] = []  # intp (B, L) table row base
        self._lvl_tab_idx: list[np.ndarray] = []  # intp (B, L) table entry
        self._lvl_out: list[np.ndarray] = []  # uint8 (B, L) LUT outputs
        self._lvl_scatter: list[np.ndarray] = []  # intp (B, L) into values
        tab_moff = (np.arange(B, dtype=np.intp) * (d.n_luts * 16))[:, None]
        for rows in self._levels:
            n = int(rows.size)
            buf = np.empty((B, n * 4), dtype=np.uint8)
            self._lvl_gather.append(np.empty((B, n * 4), dtype=np.intp))
            self._lvl_buf.append(buf)
            self._lvl_buf3.append(buf.reshape(B, n, 4))
            self._lvl_addr.append(np.empty((B, n), dtype=np.uint8))
            self._lvl_tmp.append(np.empty((B, n), dtype=np.uint8))
            self._lvl_tab_base.append(tab_moff + (rows.astype(np.intp) * 16)[None, :])
            self._lvl_tab_idx.append(np.empty((B, n), dtype=np.intp))
            self._lvl_out.append(np.empty((B, n), dtype=np.uint8))
            self._lvl_scatter.append(
                self._moff + d.lut_nodes[rows].astype(np.intp)[None, :]
            )

        rows = self._ff_rows
        R = int(rows.size)
        self._ff_idx_d = np.empty((B, R), dtype=np.intp)
        self._ff_idx_ce = np.empty((B, R), dtype=np.intp)
        self._ff_idx_sr = np.empty((B, R), dtype=np.intp)
        self._ff_scatter = (
            self._moff + d.ff_nodes[rows].astype(np.intp)[None, :]
            if R
            else np.empty((B, 0), dtype=np.intp)
        )
        self._ff_dval = np.empty((B, R), dtype=np.uint8)
        self._ff_cebuf = np.empty((B, R), dtype=np.uint8)
        self._ff_srbuf = np.empty((B, R), dtype=np.uint8)
        self._ff_cur = np.empty((B, R), dtype=np.uint8)
        self._ff_new = np.empty((B, R), dtype=np.uint8)
        self._ff_boolbuf = np.empty((B, R), dtype=bool)
        self._ff_unclocked = np.empty((B, R), dtype=bool)

        self._out_idx = np.empty((B, d.n_outputs), dtype=np.intp)
        # Per-cycle reusable buffers: step() returns _out_buf (callers
        # must copy to keep a cycle's outputs), and the stimulus scatter
        # index makes the input write one flat broadcast assignment.
        self._out_buf = np.empty((B, d.n_outputs), dtype=np.uint8)
        self._in_scatter = self._moff + d.input_nodes.astype(np.intp)[None, :]
        self._refresh_machine_caches()
        self._caches_built = True

    def _refresh_machine_caches(self, m: int | None = None) -> None:
        """Rebuild gather indices after wiring changed (patch / repair).

        ``m=None`` rebuilds every machine (init); an int rebuilds only
        that machine's rows — a repair touches one machine, not the
        batch.
        """
        d = self.design
        if m is None:
            for k, rows in enumerate(self._levels):
                np.add(
                    self.lut_inputs[:, rows, :].reshape(self.B, -1),
                    self._moff,
                    out=self._lvl_gather[k],
                )
            rows = self._ff_rows
            if rows.size:
                np.add(self.ff_d[:, rows], self._moff, out=self._ff_idx_d)
                np.add(self.ff_ce[:, rows], self._moff, out=self._ff_idx_ce)
                np.add(self.ff_sr[:, rows], self._moff, out=self._ff_idx_sr)
                np.not_equal(self.ff_clocked[:, rows], 1, out=self._ff_unclocked)
            np.add(self.output_nodes, self._moff, out=self._out_idx)
            return
        off = m * d.n_nodes
        for k, rows in enumerate(self._levels):
            self._lvl_gather[k][m] = (
                self.lut_inputs[m, rows, :].reshape(-1).astype(np.intp) + off
            )
        rows = self._ff_rows
        if rows.size:
            self._ff_idx_d[m] = self.ff_d[m, rows].astype(np.intp) + off
            self._ff_idx_ce[m] = self.ff_ce[m, rows].astype(np.intp) + off
            self._ff_idx_sr[m] = self.ff_sr[m, rows].astype(np.intp) + off
            self._ff_unclocked[m] = self.ff_clocked[m, rows] != 1
        self._out_idx[m] = self.output_nodes[m].astype(np.intp) + off

    @staticmethod
    def _max_schedule_violations(design: CompiledDesign, patches: list[Patch] | None) -> int:
        """Largest per-machine count of LUT edges defying golden levels."""
        if not patches:
            return 0
        level_of = design.level_of_row
        row_of = design.row_of_lut_node
        worst = 0
        for patch in patches:
            v = 0
            for row, _pin, node in patch.lut_inputs:
                src_row = row_of.get(int(node))
                if src_row is not None and level_of[src_row] >= level_of[row]:
                    v += 1
            worst = max(worst, v)
        return worst

    # -- patching ------------------------------------------------------------

    def _apply_patch(self, m: int, patch: Patch) -> None:
        if patch.is_empty():
            return
        self._broken[m] = True
        d = self.design
        for row, table in patch.lut_tables:
            self.lut_tables[m, row] = table
        for row, pin, node in patch.lut_inputs:
            self.lut_inputs[m, row, pin] = node
        for row, fieldname, value in patch.ff_fields:
            if fieldname is FFField.D:
                self.ff_d[m, row] = value
            elif fieldname is FFField.CE:
                self.ff_ce[m, row] = value
            elif fieldname is FFField.SR:
                self.ff_sr[m, row] = value
            elif fieldname is FFField.INIT:
                self.ff_init[m, row] = value
            elif fieldname is FFField.CLOCKED:
                self.ff_clocked[m, row] = value
            else:  # pragma: no cover - exhaustive enum
                raise NetlistError(f"unknown FF field {fieldname}")
        for node, value in patch.consts:
            kind = NodeKind(int(d.node_kind[node]))
            if kind not in (NodeKind.CONST, NodeKind.HALF_LATCH):
                raise NetlistError(f"const patch targets non-constant node {node}")
            self.const_values[m, node] = value
        for pos, node in patch.outputs:
            self.output_nodes[m, pos] = node
        # Mid-run injection (after __init__) must rebuild the machine's
        # gather indices; during __init__ the caches do not exist yet and
        # are built once after all patches are applied.
        if self._caches_built:
            self._refresh_machine_caches(m)

    def repair_machine(self, m: int) -> None:
        """Restore machine ``m``'s *hardware* to golden; keep its state.

        Models a configuration scrub: the corrupted frame is rewritten,
        but flip-flop contents — and half-latch keepers — are untouched.
        """
        d = self.design
        self.lut_inputs[m] = d.lut_inputs
        self.lut_tables[m] = d.lut_tables
        self.ff_d[m] = d.ff_d
        self.ff_ce[m] = d.ff_ce
        self.ff_sr[m] = d.ff_sr
        self.ff_init[m] = d.ff_init
        self.ff_clocked[m] = d.ff_clocked
        self.output_nodes[m] = d.output_nodes
        # Constants: CONST nodes are configuration (repaired); HALF_LATCH
        # keepers are hidden state and deliberately NOT restored.
        const_only = d.node_kind == int(NodeKind.CONST)
        self.const_values[m, const_only] = d.const_values[const_only]
        self._restore_const_state(m, const_only)
        self._broken[m] = False
        self._refresh_machine_caches(m)

    def _restore_const_state(self, m: int, const_only: np.ndarray) -> None:
        """Reassert golden CONST node *values* for machine ``m`` (hook)."""
        self.values[m, const_only] = self.design.const_values[const_only]

    def compact(self, keep: np.ndarray) -> None:
        """Drop retired machines: shrink the batch to ``keep`` in place.

        ``keep`` lists *current* machine indices (order-preserving).
        All per-machine arrays, node values and patches are re-indexed
        and the gather caches are rebuilt over the survivors, so from
        here on the per-cycle ``np.take`` cost scales with live machines
        instead of the original batch size.  :attr:`batch_slots` keeps
        each survivor's original slot so callers can map results back.

        Sound for any subset: machines never interact during evaluation
        (lock-step batching is pure data parallelism), so each
        survivor's future trajectory is unchanged by its companions
        leaving.  The settle-pass count is frozen at construction and
        deliberately *not* re-derived from the surviving patches — a
        smaller settle count could change a survivor's fixpoint.
        """
        keep = np.asarray(keep, dtype=np.int64)
        if keep.size == self.B:
            return
        if keep.size < 1:
            raise NetlistError("cannot compact a batch to zero machines")
        n_dropped = self.B - int(keep.size)
        self.lut_inputs = self.lut_inputs[keep]
        self.lut_tables = self.lut_tables[keep]
        self.ff_d = self.ff_d[keep]
        self.ff_ce = self.ff_ce[keep]
        self.ff_sr = self.ff_sr[keep]
        self.ff_init = self.ff_init[keep]
        self.ff_clocked = self.ff_clocked[keep]
        self.const_values = self.const_values[keep]
        self.output_nodes = self.output_nodes[keep]
        self._compact_state(keep)
        self._broken = self._broken[keep]
        self.batch_slots = self.batch_slots[keep]
        self.patches = [self.patches[int(i)] for i in keep]
        self.B = int(keep.size)
        self._build_gather_caches()
        KERNEL_COUNTERS.machines_retired += n_dropped
        KERNEL_COUNTERS.batch_compactions += 1

    def _compact_state(self, keep: np.ndarray) -> None:
        """Re-index the node state over the surviving machines (hook)."""
        self.values = np.ascontiguousarray(self.values[keep])

    # -- execution ---------------------------------------------------------

    def reset(self) -> None:
        """Restore the start state.

        Power-on semantics (constants asserted, FFs to INIT) by default;
        with ``initial_values`` the golden mid-run snapshot is restored
        and per-machine constant patches (e.g. half-latch upsets) are
        applied on top.
        """
        d = self.design
        if self._initial_values is not None:
            self.values[:] = self._initial_values[None, :]
            self.values[:, self._const_mask] = self.const_values[:, self._const_mask]
            return
        self.values[:] = 0
        self.values[:, self._const_mask] = self.const_values[:, self._const_mask]
        if d.n_ffs:
            self.values[
                np.arange(self.B)[:, None], d.ff_nodes[None, :]
            ] = self.ff_init

    def state_snapshot(self) -> np.ndarray:
        """Copy of machine 0's node values (for mid-run injection starts)."""
        return self._machine0_values().copy()

    def _machine0_values(self) -> np.ndarray:
        """Machine 0's ``(n_nodes,)`` uint8 node values (backend hook).

        May return a view; callers that keep the array must copy.
        """
        return self.values[0]

    def _eval_combinational(self) -> None:
        vf = self._values_flat
        tf = self._lut_tables_flat
        n_levels = len(self._levels)
        for _ in range(self.settle_passes):
            for k in range(n_levels):
                # Operand fetch: one flat gather into the level buffer.
                np.take(vf, self._lvl_gather[k], out=self._lvl_buf[k])
                # Compose 4-bit addresses in uint8 (operands are 0/1).
                addr = compose_lut_addresses(
                    self._lvl_buf3[k], self._lvl_addr[k], self._lvl_tmp[k]
                )
                # Table lookup: flat gather into the per-level out buffer.
                np.add(self._lvl_tab_base[k], addr, out=self._lvl_tab_idx[k])
                np.take(tf, self._lvl_tab_idx[k], out=self._lvl_out[k])
                vf[self._lvl_scatter[k]] = self._lvl_out[k]

    def _clock_ffs(self) -> None:
        if self._ff_rows.size == 0:
            return
        vf = self._values_flat
        np.take(vf, self._ff_idx_d, out=self._ff_dval)
        np.take(vf, self._ff_idx_ce, out=self._ff_cebuf)
        np.take(vf, self._ff_idx_sr, out=self._ff_srbuf)
        np.take(vf, self._ff_scatter, out=self._ff_cur)
        new = self._ff_new
        np.copyto(new, self._ff_cur)
        np.equal(self._ff_cebuf, 1, out=self._ff_boolbuf)
        np.copyto(new, self._ff_dval, where=self._ff_boolbuf)
        np.equal(self._ff_srbuf, 1, out=self._ff_boolbuf)
        np.copyto(new, np.uint8(0), where=self._ff_boolbuf)
        np.copyto(new, self._ff_cur, where=self._ff_unclocked)
        vf[self._ff_scatter] = new

    def step(self, stimulus_row: np.ndarray) -> np.ndarray:
        """Advance one clock cycle; returns outputs as (B, n_outputs).

        ``stimulus_row`` is the primary-input vector for this cycle,
        shared by every machine (golden and faulty parts see identical
        stimulus, as on the SLAAC-1V).  The returned array is a
        preallocated buffer reused by the next step — callers that keep
        a cycle's outputs must copy them.
        """
        d = self.design
        if stimulus_row.shape != (d.n_inputs,):
            raise NetlistError(
                f"stimulus row must have {d.n_inputs} entries, got {stimulus_row.shape}"
            )
        if d.n_inputs:
            self._values_flat[self._in_scatter] = stimulus_row
        self._eval_combinational()
        out = np.take(self._values_flat, self._out_idx, out=self._out_buf)
        if self._addr_capture is not None:
            # Machine 0's one-hot LUT address masks at the evaluation
            # fixpoint — captured *before* the flip-flops clock, because
            # a LUT reading an FF node composes this cycle's address
            # from the pre-clock value.
            self._addr_capture.append(self._machine0_addr_row())
        self._clock_ffs()
        return out

    def _machine0_addr_row(self) -> np.ndarray:
        """One-hot uint16 per LUT: machine 0's current address mask."""
        d = self.design
        if not d.n_luts:
            return np.zeros(0, dtype=np.uint16)
        flat = self._machine0_values().take(self._m0_flat_idx).reshape(d.n_luts, 4)
        addr = np.empty(d.n_luts, dtype=np.uint16)
        compose_lut_addresses(flat, addr, np.empty(d.n_luts, dtype=np.uint16))
        return np.left_shift(np.uint16(1), addr)

    def run(
        self,
        stimulus: np.ndarray,
        record_addresses: bool = False,
        record_addr_rows: bool = False,
        snapshot_stride: int | None = None,
    ) -> np.ndarray:
        """Run all machines over a (cycles, n_inputs) stimulus.

        Returns outputs of shape ``(cycles, B, n_outputs)``.  With
        ``record_addresses`` the LUT address-occupancy mask is collected
        into :attr:`last_addr_seen` (meaningful for the golden machine);
        ``record_addr_rows`` additionally collects machine 0's per-cycle
        evaluation-fixpoint address masks into :attr:`last_addr_rows`.
        With ``snapshot_stride`` machine 0's full node state is copied
        into :attr:`last_snapshots` every ``stride`` cycles (post-clock,
        so snapshot ``c`` is the state *entering* cycle ``c``) — the
        golden-prefix checkpoints fast-forward restores from.
        """
        d = self.design
        stimulus = np.asarray(stimulus, dtype=np.uint8)
        cycles = stimulus.shape[0]
        outputs = np.empty((cycles, self.B, d.n_outputs), dtype=np.uint8)
        addr_seen = np.zeros(d.n_luts, dtype=np.uint16)
        snaps: list[tuple[int, np.ndarray]] = []
        # The flat machine-0 operand index is fixed for the whole run
        # (no patch/repair happens inside run), so build it once instead
        # of reconstructing it every recorded cycle.
        self._m0_flat_idx = self.lut_inputs[0].reshape(-1).astype(np.intp)
        if record_addr_rows:
            self._addr_capture = []
        try:
            for t in range(cycles):
                outputs[t] = self.step(stimulus[t])
                if record_addresses and d.n_luts:
                    # Post-clock capture (unlike the pre-clock addr_rows
                    # capture inside step): occupancy accumulates the
                    # address each LUT presents *entering* the next cycle.
                    addr_seen |= self._machine0_addr_row()
                if snapshot_stride and (t + 1) % snapshot_stride == 0:
                    snaps.append((t + 1, self.state_snapshot()))
            if record_addr_rows:
                self.last_addr_rows = (
                    np.stack(self._addr_capture)
                    if self._addr_capture
                    else np.zeros((0, d.n_luts), dtype=np.uint16)
                )
        finally:
            self._addr_capture = None
        self.last_addr_seen = addr_seen
        self.last_snapshots = snaps
        return outputs

    # -- golden reference ------------------------------------------------------

    @classmethod
    def golden_trace(
        cls,
        design: CompiledDesign,
        stimulus: np.ndarray,
        settle_passes: int = 1,
        record_addr_rows: bool = False,
        snapshot_stride: int | None = None,
    ) -> GoldenTrace:
        """Run the fault-free design once, recording the reference trace.

        With ``snapshot_stride`` the trace additionally carries full
        node-state checkpoints every ``stride`` cycles (all backends —
        the capture lives in the shared :meth:`run` loop), which
        fast-forwarding campaigns restore through ``initial_values``.
        """
        sim = cls(design, settle_passes=settle_passes)
        outputs = sim.run(
            stimulus,
            record_addresses=True,
            record_addr_rows=record_addr_rows,
            snapshot_stride=snapshot_stride,
        )
        final_state = (
            sim.state_snapshot()[design.ff_nodes] if design.n_ffs else np.zeros(0, np.uint8)
        )
        snap_cycles = snap_states = None
        if snapshot_stride and sim.last_snapshots:
            snap_cycles = np.array([c for c, _ in sim.last_snapshots], dtype=np.int64)
            snap_states = np.stack([s for _, s in sim.last_snapshots])
        return GoldenTrace(
            outputs[:, 0, :].copy(),
            sim.last_addr_seen,
            final_state,
            addr_rows=sim.last_addr_rows if record_addr_rows else None,
            snapshot_cycles=snap_cycles,
            snapshots=snap_states,
        )

    # -- detect / repair / persist campaign step ---------------------------------

    def _tables_only_flip_masks(self, n_machines: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-machine flipped-entry masks for tables-only patches.

        Returns ``(eligible, flips)``: ``eligible[m]`` is True when
        machine ``m``'s patch touches nothing but LUT truth tables (its
        wiring, FF fields, constants and output bindings are golden);
        ``flips[m]`` is the ``(n_luts,)`` uint16 mask of truth-table
        entries the patch actually changes.  Fault dropping combines
        these with the golden address-suffix masks to prove an
        unrepaired quiet machine can never deviate again.
        """
        d = self.design
        eligible = np.zeros(n_machines, dtype=bool)
        flips = np.zeros((n_machines, d.n_luts), dtype=np.uint16)
        for m in range(n_machines):
            p = self.patches[m]
            if p.lut_inputs or p.ff_fields or p.consts or p.outputs:
                continue
            eligible[m] = True
            for row, table in p.lut_tables:
                changed = np.flatnonzero(np.asarray(table, dtype=np.uint8) ^ d.lut_tables[row])
                if changed.size:
                    flips[m, row] |= np.bitwise_or.reduce(
                        np.left_shift(np.uint16(1), changed.astype(np.uint16))
                    )
        return eligible, flips

    def _machines_equal_companion(self, n_live: int) -> np.ndarray:
        """Per-machine bool: node state equals the golden companion's.

        Backend hook for the retire state-equality rule; the companion
        occupies the last batch slot.
        """
        return ~np.any(
            self.values[:n_live] != self.values[self.B - 1][None, :], axis=1
        )

    def run_verdicts(
        self,
        stimulus: np.ndarray,
        golden: GoldenTrace,
        detect_cycles: int,
        persist_cycles: int,
        converge_run: int = 8,
        retire: bool = False,
        addr_suffix: np.ndarray | None = None,
    ) -> list[MachineVerdict]:
        """The paper's injection protocol, for every machine in the batch.

        Phase 1 (up to ``detect_cycles``): outputs are compared against
        the golden trace each cycle.  On the first mismatch the machine's
        configuration is repaired in place (scrub, no reset) and it
        enters phase 2.  Phase 2 (up to ``persist_cycles`` more cycles):
        if outputs match golden for ``converge_run`` consecutive cycles
        the fault was **non-persistent**; machines still diverging when
        the budget runs out are **persistent** (they need a reset, paper
        Figure 7).

        ``retire=True`` (requires ``companion=True`` at construction)
        turns on *fault dropping*: machines whose remaining trajectory
        is provably decided are sealed early and compacted out of the
        batch, so the per-cycle cost tracks live machines.  Three exact
        rules seal a machine:

        * its verdict phase already completed (done machines only cost
          cycles);
        * it was repaired and its node values equal the golden
          companion's — every future cycle matches, so the convergence
          cycle is the closed form ``t + (converge_run - run_len)``;
        * it is unrepaired and quiet, its patch flips only LUT
          truth-table entries, its values equal the companion's, and
          ``addr_suffix`` proves golden never addresses a flipped entry
          again — by induction it stays lock-step with golden forever.

        ``addr_suffix`` (optional, enables the third rule) is the
        reverse-OR of the golden per-cycle address masks aligned with
        ``stimulus``: row ``t`` must cover every address golden
        exercises from cycle ``t`` on.  All three rules reproduce the
        byte-identical verdicts of ``retire=False``.
        """
        stimulus = np.asarray(stimulus, dtype=np.uint8)
        total_needed = detect_cycles + persist_cycles
        if stimulus.shape[0] < total_needed:
            raise NetlistError(
                f"stimulus has {stimulus.shape[0]} cycles; need {total_needed}"
            )
        if golden.n_cycles < total_needed:
            raise NetlistError("golden trace shorter than the verdict run")
        if retire and not self.companion:
            raise NetlistError("retire=True needs a batch built with companion=True")

        # Verdict bookkeeping is indexed by *original* slot and covers
        # the logical machines only (the companion, always the last
        # slot, is excluded from verdicts and from the exit condition).
        n_logical = self.B - 1 if self.companion else self.B
        phase = np.zeros(n_logical, dtype=np.int8)  # 0 watch, 1 converge, 2 done
        first_error = np.full(n_logical, -1, dtype=np.int64)
        recovered = np.full(n_logical, -1, dtype=np.int64)
        run_len = np.zeros(n_logical, dtype=np.int64)
        persistent = np.zeros(n_logical, dtype=bool)
        retired_at = np.full(n_logical, -1, dtype=np.int64)

        # Pack the output-vs-golden comparison into uint64 words: both
        # sides become (·, W) word vectors, so the per-cycle health check
        # is W word compares per machine instead of n_outputs byte
        # compares.  Golden is packed once for the whole run.
        n_out = self.design.n_outputs
        n_bytes = (n_out + 7) // 8
        n_words = max(1, (n_bytes + 7) // 8)
        golden_padded = np.zeros((total_needed, n_words * 8), dtype=np.uint8)
        if n_out:
            golden_padded[:, :n_bytes] = np.packbits(
                golden.outputs[:total_needed], axis=1
            )
        golden_words = golden_padded.view(np.uint64)  # (total_needed, W)
        out_padded = np.zeros((self.B, n_words * 8), dtype=np.uint8)
        out_words = out_padded.view(np.uint64)  # (B, W)

        if retire and addr_suffix is not None:
            if addr_suffix.shape[0] < total_needed + 1:
                raise NetlistError("addr_suffix shorter than the verdict run")
            quiet_ok, flip_masks = self._tables_only_flip_masks(n_logical)
        else:
            addr_suffix = None
            quiet_ok = flip_masks = None

        self.reset()
        t_exit = total_needed - 1
        for t in range(total_needed):
            out = self.step(stimulus[t])
            if n_out:
                out_padded[:, :n_bytes] = np.packbits(out, axis=1)
            mismatch = np.any(out_words != golden_words[t][None, :], axis=1)

            n_live = self.B - 1 if self.companion else self.B
            live = self.batch_slots[:n_live]  # original slots, batch order

            # Phase 0: first mismatch -> repair, enter phase 1.
            hits = np.flatnonzero((phase[live] == 0) & mismatch[:n_live])
            for c in hits:
                m = int(live[c])
                first_error[m] = t
                self.repair_machine(int(c))
                phase[m] = 1
                run_len[m] = 0
            # Machines that never err within the detect window are done.
            if t == detect_cycles - 1:
                phase[(phase == 0)] = 2

            # Phase 1: count consecutive matching cycles.
            ph = phase[live]
            watching = ph == 1
            if np.any(watching):
                good = live[watching & ~mismatch[:n_live]]
                run_len[good] += 1
                run_len[live[watching & mismatch[:n_live]]] = 0
                conv = good[run_len[good] >= converge_run]
                if conv.size:
                    recovered[conv] = t
                    phase[conv] = 2

            if retire:
                # State-equality sealing against the in-batch golden
                # companion (valid post-repair and post-reset alike).
                eq = self._machines_equal_companion(n_live)
                ph = phase[live]
                # Repaired machines whose state re-converged: every
                # future cycle matches, so the verdict is closed-form.
                for c in np.flatnonzero((ph == 1) & eq):
                    m = int(live[c])
                    u = t + (converge_run - int(run_len[m]))
                    if u <= total_needed - 1:
                        recovered[m] = u
                    else:
                        persistent[m] = True
                    phase[m] = 2
                # Quiet tables-only machines whose flipped entries are
                # provably never addressed again stay lock-step forever.
                if addr_suffix is not None:
                    cand = np.flatnonzero((phase[live] == 0) & eq & quiet_ok[live])
                    if cand.size:
                        suf = addr_suffix[t + 1]
                        safe = ~np.any(flip_masks[live[cand]] & suf[None, :], axis=1)
                        phase[live[cand[safe]]] = 2

            if np.all(phase == 2):
                t_exit = t
                break

            if retire:
                sealed = phase[live] == 2
                n_sealed = int(np.count_nonzero(sealed))
                # Compact with hysteresis: rebuilding the gather caches
                # costs a few batch-cycles, so only shrink once enough
                # machines are sealed to pay for it.
                if n_sealed >= max(8, self.B // 4):
                    retired_at[live[sealed]] = t
                    keep = np.flatnonzero(~sealed)
                    self.compact(np.append(keep, self.B - 1))
                    out_padded = np.zeros((self.B, n_words * 8), dtype=np.uint8)
                    out_words = out_padded.view(np.uint64)

        if retire:
            dropped = retired_at >= 0
            KERNEL_COUNTERS.machine_cycles_saved += int(
                np.sum(t_exit - retired_at[dropped])
            )

        # Anything still in phase 1 never re-converged: persistent error.
        persistent[phase == 1] = True
        return [
            MachineVerdict(
                failed=first_error[m] >= 0,
                first_error_cycle=int(first_error[m]),
                persistent=bool(persistent[m]),
                recovered_cycle=int(recovered[m]),
            )
            for m in range(n_logical)
        ]

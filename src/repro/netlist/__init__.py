"""Gate-level netlists and the vectorised batch simulator.

A :class:`Netlist` is the logical design (LUT4s, flip-flops, constants,
primary I/O).  :func:`compile_netlist` lowers it to a
:class:`CompiledDesign` — flat numpy arrays the :class:`BatchSimulator`
evaluates.  The simulator's batch mode runs many *faulty variants* of one
design in lock-step, which is what makes an exhaustive SEU sweep
tractable in pure Python (see DESIGN.md section 4).
"""

from repro.netlist.cells import Cell, CellKind, LUT_AND2, LUT_BUF, LUT_XOR2, lut_table
from repro.netlist.netlist import Netlist
from repro.netlist.levelize import levelize
from repro.netlist.compiled import CompiledDesign, NodeKind, Patch
from repro.netlist.compile import compile_netlist
from repro.netlist.simulator import BatchSimulator, GoldenTrace

__all__ = [
    "Cell",
    "CellKind",
    "Netlist",
    "lut_table",
    "LUT_BUF",
    "LUT_AND2",
    "LUT_XOR2",
    "levelize",
    "CompiledDesign",
    "NodeKind",
    "Patch",
    "compile_netlist",
    "BatchSimulator",
    "GoldenTrace",
]

"""Flat array form of a design, plus the fault-patch representation.

A :class:`CompiledDesign` is what the simulator executes: numpy arrays
indexed by *node* (a value-carrying signal) and by *LUT row* / *FF row*
(the elements that compute).  Nodes 0 and 1 are always the constants 0
and 1.

A :class:`Patch` is a sparse difference against a compiled design — the
output of the incremental bitstream decoder for one flipped
configuration bit.  Patches are what the batch simulator applies to give
each machine in a batch its own (slightly different) hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import NetlistError

__all__ = ["NodeKind", "CompiledDesign", "Patch", "FFField", "NODE_CONST0", "NODE_CONST1"]

#: Node index of the hard constant 0.
NODE_CONST0 = 0
#: Node index of the hard constant 1.
NODE_CONST1 = 1


class NodeKind(enum.IntEnum):
    """What drives a node's value."""

    CONST = 0
    INPUT = 1
    LUT = 2
    FF = 3
    HALF_LATCH = 4  #: constant-1 keeper; hidden state, not in the bitstream


class FFField(enum.IntEnum):
    """Patchable per-FF fields."""

    D = 0
    CE = 1
    SR = 2
    INIT = 3
    CLOCKED = 4


@dataclass
class Patch:
    """Sparse hardware difference of one faulty machine vs the golden one.

    Index spaces: ``lut_tables``/``lut_inputs`` use LUT *rows*;
    ``ff_fields`` uses FF rows; ``consts`` uses *node* indices (only
    CONST / HALF_LATCH nodes may appear); ``outputs`` patches the output
    binding.
    """

    #: (lut_row, new 16-entry uint8 table)
    lut_tables: list[tuple[int, np.ndarray]] = field(default_factory=list)
    #: (lut_row, pin, new source node)
    lut_inputs: list[tuple[int, int, int]] = field(default_factory=list)
    #: (ff_row, field, new value) — D/CE/SR take node indices, INIT/CLOCKED take 0/1
    ff_fields: list[tuple[int, FFField, int]] = field(default_factory=list)
    #: (node, new constant value)
    consts: list[tuple[int, int]] = field(default_factory=list)
    #: (output position, new source node)
    outputs: list[tuple[int, int]] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (
            self.lut_tables
            or self.lut_inputs
            or self.ff_fields
            or self.consts
            or self.outputs
        )

    def merged_with(self, other: "Patch") -> "Patch":
        """Apply ``other`` on top of this patch (later entries win)."""
        return Patch(
            self.lut_tables + other.lut_tables,
            self.lut_inputs + other.lut_inputs,
            self.ff_fields + other.ff_fields,
            self.consts + other.consts,
            self.outputs + other.outputs,
        )

    def signature(self) -> tuple:
        """Canonical hashable form: two patches get equal signatures iff
        they configure identical hardware.

        Normalises exactly the way the simulator applies a patch — the
        last writer wins per target (a LUT row for tables, a (row, pin)
        for inputs, a (row, field) for FF fields, a node for constants,
        a position for outputs) — then sorts each target map, so entry
        order and shadowed writes cannot distinguish equivalent patches.
        Fault collapsing keys its equivalence classes on this.
        """
        tables: dict[int, bytes] = {}
        for row, table in self.lut_tables:
            tables[int(row)] = np.asarray(table, dtype=np.uint8).tobytes()
        inputs: dict[tuple[int, int], int] = {}
        for row, pin, node in self.lut_inputs:
            inputs[(int(row), int(pin))] = int(node)
        ffs: dict[tuple[int, int], int] = {}
        for row, fieldname, value in self.ff_fields:
            ffs[(int(row), int(fieldname))] = int(value)
        consts: dict[int, int] = {}
        for node, value in self.consts:
            consts[int(node)] = int(value)
        outputs: dict[int, int] = {}
        for pos, node in self.outputs:
            outputs[int(pos)] = int(node)
        return (
            tuple(sorted(tables.items())),
            tuple(sorted(inputs.items())),
            tuple(sorted(ffs.items())),
            tuple(sorted(consts.items())),
            tuple(sorted(outputs.items())),
        )


@dataclass
class CompiledDesign:
    """Executable array form of one design.

    Invariants (checked by :meth:`validate`):

    * ``values`` space has ``n_nodes`` entries, nodes 0/1 are constants;
    * every LUT row appears in exactly one level;
    * all index arrays point inside the node space.
    """

    name: str
    n_nodes: int
    node_kind: np.ndarray  # (n_nodes,) uint8 of NodeKind
    const_values: np.ndarray  # (n_nodes,) uint8; meaningful for CONST/HALF_LATCH
    input_nodes: np.ndarray  # (n_inputs,) int32
    output_nodes: np.ndarray  # (n_outputs,) int32
    lut_nodes: np.ndarray  # (n_luts,) int32 — node written by each LUT row
    lut_inputs: np.ndarray  # (n_luts, 4) int32
    lut_tables: np.ndarray  # (n_luts, 16) uint8
    levels: list[np.ndarray]  # evaluation order over LUT rows
    ff_nodes: np.ndarray  # (n_ffs,) int32
    ff_d: np.ndarray  # (n_ffs,) int32
    ff_ce: np.ndarray  # (n_ffs,) int32 (NODE_CONST1 when always enabled)
    ff_sr: np.ndarray  # (n_ffs,) int32 (NODE_CONST0 when never reset)
    ff_init: np.ndarray  # (n_ffs,) uint8
    ff_clocked: np.ndarray  # (n_ffs,) uint8 — 0 models a broken clock mux
    node_names: dict[str, int] = field(default_factory=dict)

    @property
    def n_luts(self) -> int:
        return int(self.lut_nodes.size)

    @property
    def n_ffs(self) -> int:
        return int(self.ff_nodes.size)

    @property
    def n_inputs(self) -> int:
        return int(self.input_nodes.size)

    @property
    def n_outputs(self) -> int:
        return int(self.output_nodes.size)

    @property
    def half_latch_nodes(self) -> np.ndarray:
        """Node indices of half-latch keepers (the hidden state)."""
        return np.flatnonzero(self.node_kind == int(NodeKind.HALF_LATCH)).astype(np.int32)

    def node_of(self, name: str) -> int:
        try:
            return self.node_names[name]
        except KeyError:
            raise NetlistError(f"no node named {name!r}") from None

    @property
    def level_of_row(self) -> np.ndarray:
        """Evaluation level of each LUT row (cached)."""
        cached = getattr(self, "_level_of_row", None)
        if cached is None:
            cached = np.zeros(self.n_luts, dtype=np.int64)
            for lvl, rows in enumerate(self.levels):
                cached[rows] = lvl
            object.__setattr__(self, "_level_of_row", cached)
        return cached

    @property
    def row_of_lut_node(self) -> dict[int, int]:
        """Map node index -> LUT row (cached)."""
        cached = getattr(self, "_row_of_lut_node", None)
        if cached is None:
            cached = {int(n): r for r, n in enumerate(self.lut_nodes)}
            object.__setattr__(self, "_row_of_lut_node", cached)
        return cached

    def validate(self) -> None:
        """Check structural invariants; raises :class:`NetlistError`."""
        n = self.n_nodes
        if self.node_kind.shape != (n,) or self.const_values.shape != (n,):
            raise NetlistError("node table shapes inconsistent with n_nodes")
        if self.node_kind[NODE_CONST0] != int(NodeKind.CONST) or self.const_values[NODE_CONST0] != 0:
            raise NetlistError("node 0 must be the constant 0")
        if self.node_kind[NODE_CONST1] != int(NodeKind.CONST) or self.const_values[NODE_CONST1] != 1:
            raise NetlistError("node 1 must be the constant 1")
        for arr, label in [
            (self.input_nodes, "input_nodes"),
            (self.output_nodes, "output_nodes"),
            (self.lut_nodes, "lut_nodes"),
            (self.lut_inputs, "lut_inputs"),
            (self.ff_nodes, "ff_nodes"),
            (self.ff_d, "ff_d"),
            (self.ff_ce, "ff_ce"),
            (self.ff_sr, "ff_sr"),
        ]:
            if arr.size and (arr.min() < 0 or arr.max() >= n):
                raise NetlistError(f"{label} contains out-of-range node indices")
        if self.lut_inputs.shape != (self.n_luts, 4):
            raise NetlistError("lut_inputs must be (n_luts, 4)")
        if self.lut_tables.shape != (self.n_luts, 16):
            raise NetlistError("lut_tables must be (n_luts, 16)")
        covered = np.concatenate([lv for lv in self.levels]) if self.levels else np.zeros(0, dtype=np.int64)
        if sorted(covered.tolist()) != list(range(self.n_luts)):
            raise NetlistError("levels must cover every LUT row exactly once")
        for name, arr in [("ff_init", self.ff_init), ("ff_clocked", self.ff_clocked)]:
            if arr.shape != (self.n_ffs,):
                raise NetlistError(f"{name} must be (n_ffs,)")

    def stats(self) -> dict[str, int]:
        return {
            "nodes": self.n_nodes,
            "luts": self.n_luts,
            "ffs": self.n_ffs,
            "inputs": self.n_inputs,
            "outputs": self.n_outputs,
            "levels": len(self.levels),
            "half_latches": int(self.half_latch_nodes.size),
        }

"""Cell library: the primitives a Virtex slice offers.

Everything combinational is a 4-input LUT (truth table stored as a
16-bit integer: bit ``i`` is the output for input vector ``i``, with pin
0 the least-significant address bit).  State is a D flip-flop with
clock-enable and optional synchronous reset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.errors import NetlistError

__all__ = [
    "CellKind",
    "Cell",
    "lut_table",
    "LUT_BUF",
    "LUT_INV",
    "LUT_AND2",
    "LUT_OR2",
    "LUT_XOR2",
    "LUT_XOR3",
    "LUT_MAJ3",
    "LUT_MUX21",
    "LUT_AND2_XOR",
]


class CellKind(enum.Enum):
    """Primitive cell kinds."""

    INPUT = "input"  #: primary input (stimulus-driven)
    CONST = "const"  #: constant 0/1 (may be realised as a half-latch)
    LUT = "lut"  #: 4-input look-up table
    FF = "ff"  #: D flip-flop with CE and sync reset


@dataclass
class Cell:
    """One netlist cell.

    ``pins`` holds the names of driving cells: up to 4 for a LUT
    (missing pins are unconnected and read as constant 1 in hardware —
    the half-latch), ``[d]`` or ``[d, ce]`` or ``[d, ce, sr]`` for a FF.
    """

    name: str
    kind: CellKind
    pins: tuple[str, ...] = ()
    table: int = 0  #: LUT truth table (LUTs only)
    value: int = 0  #: constant value (CONST only)
    init: int = 0  #: reset state (FFs only)

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("cell must have a non-empty name")
        if self.kind is CellKind.LUT:
            if not 0 <= self.table < 1 << 16:
                raise NetlistError(f"LUT table {self.table:#x} out of 16-bit range")
            if len(self.pins) > 4:
                raise NetlistError(f"LUT {self.name} has {len(self.pins)} pins (max 4)")
        elif self.kind is CellKind.FF:
            if not 1 <= len(self.pins) <= 3:
                raise NetlistError(f"FF {self.name} needs 1-3 pins (d[, ce[, sr]])")
            if self.init not in (0, 1):
                raise NetlistError(f"FF init must be 0/1, got {self.init}")
        elif self.kind is CellKind.CONST:
            if self.value not in (0, 1):
                raise NetlistError(f"const value must be 0/1, got {self.value}")
            if self.pins:
                raise NetlistError("const cells take no pins")
        elif self.kind is CellKind.INPUT:
            if self.pins:
                raise NetlistError("input cells take no pins")


def lut_table(fn: Callable[..., int], n_pins: int) -> int:
    """Build a 16-bit LUT table from a boolean function of ``n_pins`` args.

    Unused high pins are don't-care: the table is replicated across them,
    which mirrors how the CAD tool encodes LUTs redundantly (the paper
    notes this redundancy is why half-latch upsets on unused LUT pins are
    harmless).

    >>> hex(lut_table(lambda a, b: a ^ b, 2))
    '0x6666'
    """
    if not 1 <= n_pins <= 4:
        raise NetlistError(f"n_pins must be 1..4, got {n_pins}")
    table = 0
    for addr in range(16):
        args = [(addr >> p) & 1 for p in range(n_pins)]
        if fn(*args):
            table |= 1 << addr
    return table


#: Common tables.
LUT_BUF = lut_table(lambda a: a, 1)
LUT_INV = lut_table(lambda a: 1 - a, 1)
LUT_AND2 = lut_table(lambda a, b: a & b, 2)
LUT_OR2 = lut_table(lambda a, b: a | b, 2)
LUT_XOR2 = lut_table(lambda a, b: a ^ b, 2)
LUT_XOR3 = lut_table(lambda a, b, c: a ^ b ^ c, 3)
LUT_MAJ3 = lut_table(lambda a, b, c: (a & b) | (a & c) | (b & c), 3)
LUT_MUX21 = lut_table(lambda a, b, s: b if s else a, 3)
#: Partial-product cell: (a AND b) XOR c — one half of a multiplier cell.
LUT_AND2_XOR = lut_table(lambda a, b, c: (a & b) ^ c, 3)

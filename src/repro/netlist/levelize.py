"""Topological levelization of combinational logic.

The batch simulator evaluates LUTs level by level: every LUT in level
*k* depends only on sequential elements, inputs, constants and LUTs of
levels < *k*.  Faulty machines may contain combinational cycles (an SEU
can reroute a LUT input onto its own cone); levelization therefore works
on the strongly-connected-component condensation: every multi-node SCC
(and every self-loop) becomes a *relaxation group* scheduled at its
topological position, whose members evaluate with one-pass-stale
operands, while everything downstream still levels normally.
"""

from __future__ import annotations

import numpy as np

__all__ = ["levelize"]


def _tarjan_sccs(n: int, succ: list[list[int]]) -> list[list[int]]:
    """Strongly connected components, iteratively (no recursion limit)."""
    index = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0

    for root in range(n):
        if index[root] != -1:
            continue
        work = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            while pi < len(succ[v]):
                w = succ[v][pi]
                pi += 1
                if index[w] == -1:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            if pi >= len(succ[v]):
                if low[v] == index[v]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        comp.append(w)
                        if w == v:
                            break
                    sccs.append(comp)
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[v])
    return sccs


def levelize(
    n_luts: int, lut_sources: list[list[int]]
) -> tuple[list[np.ndarray], np.ndarray]:
    """Group LUTs into evaluation levels.

    Parameters
    ----------
    n_luts:
        Number of LUT rows.
    lut_sources:
        For each LUT row, the LUT rows it reads (non-LUT operands —
        FFs, inputs, constants — are already level-0 and omitted).

    Returns
    -------
    levels:
        List of int arrays of LUT rows, in evaluation order.
    in_cycle:
        Boolean mask of LUT rows on a combinational cycle (members of a
        multi-node SCC or a self-loop).
    """
    in_cycle = np.zeros(n_luts, dtype=bool)
    if n_luts == 0:
        return [], in_cycle

    succ: list[list[int]] = [[] for _ in range(n_luts)]
    for i, srcs in enumerate(lut_sources):
        for s in set(srcs):
            succ[s].append(i)

    sccs = _tarjan_sccs(n_luts, succ)
    comp_of = np.empty(n_luts, dtype=np.int64)
    for ci, comp in enumerate(sccs):
        for v in comp:
            comp_of[v] = ci
    for i, srcs in enumerate(lut_sources):
        if len(sccs[comp_of[i]]) > 1 or i in set(srcs):
            in_cycle[i] = True

    # Level the condensation DAG (components in Tarjan's output are in
    # reverse topological order: sources last).
    n_comp = len(sccs)
    comp_level = np.zeros(n_comp, dtype=np.int64)
    for ci in range(n_comp - 1, -1, -1):
        best = 0
        for v in sccs[ci]:
            for s in set(lut_sources[v]):
                cs = comp_of[s]
                if cs != ci:
                    best = max(best, int(comp_level[cs]) + 1)
        comp_level[ci] = best

    depth = comp_level[comp_of]
    levels = [
        np.flatnonzero(depth == d).astype(np.int64)
        for d in range(int(depth.max()) + 1)
    ]
    return [lv for lv in levels if lv.size], in_cycle

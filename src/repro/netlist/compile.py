"""Lower a logical :class:`~repro.netlist.netlist.Netlist` to arrays.

This is the *reference* compiler: it preserves the netlist exactly (no
placement, no routing, no half-latches beyond unconnected LUT pins).
The hardware path — place, generate configuration bits, decode them
back — must produce a behaviourally identical :class:`CompiledDesign`;
tests assert that equivalence cycle-by-cycle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NetlistError
from repro.netlist.cells import CellKind
from repro.netlist.compiled import (
    NODE_CONST0,
    NODE_CONST1,
    CompiledDesign,
    NodeKind,
)
from repro.netlist.levelize import levelize
from repro.netlist.netlist import Netlist

__all__ = ["compile_netlist"]


def compile_netlist(netlist: Netlist) -> CompiledDesign:
    """Compile a validated netlist into its executable array form.

    Unconnected LUT pins are tied to the constant-1 node, matching the
    half-latch value they would see in hardware (the reference compiler
    uses the hard constant because there is no hidden state to model at
    this level).
    """
    netlist.validate()

    node_names: dict[str, int] = {}
    kinds: list[int] = [int(NodeKind.CONST), int(NodeKind.CONST)]
    const_vals: list[int] = [0, 1]

    def new_node(kind: NodeKind, const: int = 0) -> int:
        kinds.append(int(kind))
        const_vals.append(const)
        return len(kinds) - 1

    # Assign a node to every cell, in insertion order.
    inputs: list[int] = []
    lut_cells = []
    ff_cells = []
    for cell in netlist.cells():
        if cell.kind is CellKind.INPUT:
            node = new_node(NodeKind.INPUT)
            inputs.append(node)
        elif cell.kind is CellKind.CONST:
            node = new_node(NodeKind.CONST, cell.value)
        elif cell.kind is CellKind.LUT:
            node = new_node(NodeKind.LUT)
            lut_cells.append(cell)
        elif cell.kind is CellKind.FF:
            node = new_node(NodeKind.FF)
            ff_cells.append(cell)
        else:  # pragma: no cover - exhaustive enum
            raise NetlistError(f"unknown cell kind {cell.kind}")
        node_names[cell.name] = node

    n_luts = len(lut_cells)
    lut_nodes = np.zeros(n_luts, dtype=np.int32)
    lut_inputs = np.full((n_luts, 4), NODE_CONST1, dtype=np.int32)
    lut_tables = np.zeros((n_luts, 16), dtype=np.uint8)
    lut_row_of_node: dict[int, int] = {}
    for row, cell in enumerate(lut_cells):
        node = node_names[cell.name]
        lut_nodes[row] = node
        lut_row_of_node[node] = row
        for pin, src in enumerate(cell.pins):
            lut_inputs[row, pin] = node_names[src]
        for entry in range(16):
            lut_tables[row, entry] = (cell.table >> entry) & 1

    n_ffs = len(ff_cells)
    ff_nodes = np.zeros(n_ffs, dtype=np.int32)
    ff_d = np.zeros(n_ffs, dtype=np.int32)
    ff_ce = np.full(n_ffs, NODE_CONST1, dtype=np.int32)
    ff_sr = np.full(n_ffs, NODE_CONST0, dtype=np.int32)
    ff_init = np.zeros(n_ffs, dtype=np.uint8)
    for row, cell in enumerate(ff_cells):
        ff_nodes[row] = node_names[cell.name]
        ff_d[row] = node_names[cell.pins[0]]
        if len(cell.pins) >= 2:
            ff_ce[row] = node_names[cell.pins[1]]
        if len(cell.pins) >= 3:
            ff_sr[row] = node_names[cell.pins[2]]
        ff_init[row] = cell.init

    # Levelize over LUT-to-LUT dependencies only.
    lut_sources: list[list[int]] = []
    for row, cell in enumerate(lut_cells):
        srcs = []
        for pin in cell.pins:
            src_node = node_names[pin]
            if src_node in lut_row_of_node:
                srcs.append(lut_row_of_node[src_node])
        lut_sources.append(srcs)
    levels, in_cycle = levelize(n_luts, lut_sources)
    if np.any(in_cycle):
        names = [lut_cells[i].name for i in np.flatnonzero(in_cycle)[:5]]
        raise NetlistError(
            f"netlist {netlist.name!r} has a combinational cycle through {names}"
        )

    design = CompiledDesign(
        name=netlist.name,
        n_nodes=len(kinds),
        node_kind=np.array(kinds, dtype=np.uint8),
        const_values=np.array(const_vals, dtype=np.uint8),
        input_nodes=np.array(inputs, dtype=np.int32),
        output_nodes=np.array([node_names[o] for o in netlist.outputs], dtype=np.int32),
        lut_nodes=lut_nodes,
        lut_inputs=lut_inputs,
        lut_tables=lut_tables,
        levels=levels,
        ff_nodes=ff_nodes,
        ff_d=ff_d,
        ff_ce=ff_ce,
        ff_sr=ff_sr,
        ff_init=ff_init,
        ff_clocked=np.ones(n_ffs, dtype=np.uint8),
        node_names=node_names,
    )
    design.validate()
    return design

"""Simulated wall-clock for modeled-time accounting.

The paper reports hardware latencies (180 ms scrub scan, 214 us per
injected fault, 20 min per exhaustive sweep).  Our substrate is a
simulator, so those durations are *modeled*: every component that would
consume real time on the SLAAC-1V or the flight payload advances a
:class:`SimClock` by its modeled cost.  Benchmarks then report modeled
time next to measured host time.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance by ``seconds`` (must be non-negative); returns new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump forward to absolute time ``when`` (no-op if in the past)."""
        if when > self._now:
            self._now = when
        return self._now

    def reset(self) -> None:
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(t={self._now:.6f}s)"

"""Vectorised bit-manipulation primitives.

All bit vectors in the library are numpy ``uint8`` arrays holding one bit
per element (value 0 or 1).  That representation trades 8x memory for the
ability to use plain numpy arithmetic everywhere — the hot loops of the
batch simulator index these arrays with ``take_along_axis`` and cannot
afford per-access shift/mask work.  Packing helpers below convert to and
from dense byte buffers at the edges (SelectMAP transfers, flash images).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bits_to_int",
    "int_to_bits",
    "pack_bits",
    "unpack_bits",
    "parity",
    "popcount",
]


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Expand ``value`` into a little-endian bit vector of length ``width``.

    Bit ``i`` of the result is ``(value >> i) & 1``.

    >>> int_to_bits(0b1011, 4).tolist()
    [1, 1, 0, 1]
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if width < value.bit_length():
        raise ValueError(f"value {value} does not fit in {width} bits")
    out = np.empty(width, dtype=np.uint8)
    for i in range(width):
        out[i] = (value >> i) & 1
    return out


def bits_to_int(bits: np.ndarray) -> int:
    """Collapse a little-endian bit vector into a Python integer.

    Inverse of :func:`int_to_bits` for values that fit.

    >>> bits_to_int(np.array([1, 1, 0, 1], dtype=np.uint8))
    11
    """
    value = 0
    for i, b in enumerate(np.asarray(bits, dtype=np.uint8)):
        if b:
            value |= 1 << i
    return value


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a bit vector into bytes (little-endian within each byte).

    The length is padded with zero bits up to a byte boundary, mirroring
    what a SelectMAP write does with a partial final byte.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    return np.packbits(bits, bitorder="little")


def unpack_bits(data: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack bytes into a bit vector of exactly ``n_bits`` bits."""
    data = np.asarray(data, dtype=np.uint8)
    bits = np.unpackbits(data, bitorder="little")
    if n_bits > bits.size:
        raise ValueError(f"need {n_bits} bits but buffer holds only {bits.size}")
    return bits[:n_bits].copy()


def parity(bits: np.ndarray) -> int:
    """Even-parity bit of a vector: 1 if an odd number of bits are set."""
    return int(np.bitwise_xor.reduce(np.asarray(bits, dtype=np.uint8))) & 1


def popcount(bits: np.ndarray) -> int:
    """Number of set bits in a bit vector."""
    return int(np.count_nonzero(np.asarray(bits)))

"""Shared low-level helpers: bit manipulation, RNG plumbing, time units."""

from repro.utils.bitops import (
    bits_to_int,
    int_to_bits,
    pack_bits,
    parity,
    popcount,
    unpack_bits,
)
from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.units import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    MINUTE,
    HOUR,
    format_duration,
    format_rate,
)

__all__ = [
    "bits_to_int",
    "int_to_bits",
    "pack_bits",
    "unpack_bits",
    "parity",
    "popcount",
    "derive_rng",
    "spawn_rngs",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "MINUTE",
    "HOUR",
    "format_duration",
    "format_rate",
]

"""Simulated-time units and formatting.

All modeled durations in the library are plain floats in **seconds**.  The
constants here exist so call sites read like the paper they reproduce:
``180 * MILLISECOND`` for the scrub scan, ``214 * MICROSECOND`` for one
fault-injection iteration.
"""

from __future__ import annotations

__all__ = [
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "MINUTE",
    "HOUR",
    "format_duration",
    "format_rate",
]

MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0


def format_duration(seconds: float) -> str:
    """Human-readable duration: picks µs/ms/s/min/h by magnitude.

    >>> format_duration(214e-6)
    '214.0 us'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MILLISECOND:
        return f"{seconds / MICROSECOND:.1f} us"
    if seconds < SECOND:
        return f"{seconds / MILLISECOND:.1f} ms"
    if seconds < MINUTE:
        return f"{seconds:.2f} s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f} min"
    return f"{seconds / HOUR:.2f} h"


def format_rate(per_second: float) -> str:
    """Human-readable event rate, choosing /s or /hr by magnitude."""
    if per_second >= 1.0:
        return f"{per_second:.2f}/s"
    per_hour = per_second * HOUR
    return f"{per_hour:.2f}/hr"

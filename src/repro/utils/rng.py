"""Deterministic random-number plumbing.

Every stochastic component (beam arrivals, stimulus generators, sampled
campaigns) takes a :class:`numpy.random.Generator`.  These helpers derive
independent child generators from a parent seed so that experiments are
reproducible bit-for-bit yet sub-components do not share streams.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["derive_rng", "spawn_rngs"]


def derive_rng(seed: int | np.random.Generator | None, *path: str) -> np.random.Generator:
    """Return a generator derived from ``seed`` and a label path.

    ``seed`` may be an integer, ``None`` (non-deterministic), or an existing
    generator (returned unchanged so callers can thread one stream through).
    The label path makes sibling components statistically independent:
    ``derive_rng(7, "beam")`` and ``derive_rng(7, "stimulus")`` differ.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    mix = np.uint64(np.int64(seed))
    for label in path:
        for ch in label:
            # FNV-1a style mixing keeps the derivation order-sensitive.
            mix = np.uint64((int(mix) ^ ord(ch)) * 0x100000001B3 % (1 << 64))
    return np.random.default_rng(int(mix))


def spawn_rngs(rng: np.random.Generator, n: int) -> Sequence[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent children."""
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]

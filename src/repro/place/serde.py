"""On-disk configuration artifacts.

The flight system stores configurations in flash and uploads new ones
from the ground; downstream users of this library likewise need to
store an implemented configuration — the bitstream plus its I/O binding
— and reload it without re-running place and route.  One artifact is a
single ``.npz`` holding the device name, the raw bits and the flattened
binding tables.
"""

from __future__ import annotations

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.errors import BitstreamError
from repro.fpga.device import VirtexDevice
from repro.fpga.family import get_device
from repro.place.configgen import IOBinding

__all__ = ["save_configuration", "load_configuration"]

_FORMAT_VERSION = 1


def save_configuration(
    path: str, device: VirtexDevice, bits: ConfigBitstream, io: IOBinding
) -> None:
    """Write a configuration artifact to ``path`` (.npz)."""
    if bits.geometry != device.geometry:
        raise BitstreamError("bitstream geometry does not match device")
    taps = np.array(
        [list(coords) + [idx] for coords, idx in sorted(io.taps.items())],
        dtype=np.int64,
    ).reshape(-1, 5)
    net_taps = np.array(
        [list(coords) + list(sig) for coords, sig in sorted(io.net_taps.items())],
        dtype=np.int64,
    ).reshape(-1, 7)
    probes = np.array(io.output_probes, dtype=np.int64).reshape(-1, 3)
    np.savez_compressed(
        path,
        version=_FORMAT_VERSION,
        device=device.name,
        bits=np.packbits(bits.bits, bitorder="little"),
        n_bits=bits.n_bits,
        input_order=np.array(io.input_order, dtype="U64"),
        taps=taps,
        net_taps=net_taps,
        output_probes=probes,
    )


def load_configuration(path: str) -> tuple[VirtexDevice, ConfigBitstream, IOBinding]:
    """Read a configuration artifact; returns (device, bits, io)."""
    data = np.load(path, allow_pickle=False)
    version = int(data["version"])
    if version != _FORMAT_VERSION:
        raise BitstreamError(f"unsupported artifact version {version}")
    device = get_device(str(data["device"]))
    n_bits = int(data["n_bits"])
    if n_bits != device.geometry.total_bits:
        raise BitstreamError(
            f"artifact has {n_bits} bits; {device.name} expects "
            f"{device.geometry.total_bits}"
        )
    raw = np.unpackbits(data["bits"], bitorder="little")[:n_bits]
    bits = ConfigBitstream(device.geometry, raw.astype(np.uint8))
    io = IOBinding(input_order=[str(s) for s in data["input_order"]])
    for row in data["taps"]:
        io.taps[(int(row[0]), int(row[1]), int(row[2]), int(row[3]))] = int(row[4])
    for row in data["net_taps"]:
        io.net_taps[(int(row[0]), int(row[1]), int(row[2]), int(row[3]))] = (
            int(row[4]),
            int(row[5]),
            int(row[6]),
        )
    io.output_probes = [(int(r), int(c), int(s)) for r, c, s in data["output_probes"]]
    return device, bits, io

"""Bitstream decoder: configuration bits -> executable hardware model.

The decoder gives the configuration memory its *meaning*: it reads every
CLB's fields and produces a :class:`CompiledDesign` whose behaviour is
exactly what the configured fabric would compute.  Crucially it decodes
**any** bit pattern, not only router output — a flipped input-mux bit
reroutes a LUT operand, a flipped PIP shorts two nets (modelled as the
AND a keeper-pulled pass-transistor fabric settles to), a flipped clock
mux freezes a slice.  That property is what makes bitstream fault
injection meaningful.

Two entry points:

* :func:`decode_bitstream` — full decode of a golden configuration,
  producing a :class:`DecodedDesign` with resolution caches;
* :meth:`DecodedDesign.patch_for_bit` — the fault-injection fast path:
  the sparse hardware difference caused by flipping one configuration
  bit, computed in ~O(affected cone) without re-decoding the device.

Half-latches appear wherever a mux field selects nothing; each floating
field that the decoded hardware actually reads gets its own
HALF_LATCH node (hidden state the beam can flip but readback cannot see).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.errors import DecodeError
from repro.fpga.device import VirtexDevice
from repro.fpga.geometry import CLB_BITS_PER_CLB, COLUMN_OVERHEAD_BITS, CLB_BITS_PER_ROW
from repro.fpga.halflatch import HalfLatchKind, HalfLatchSite
from repro.fpga.resources import (
    CTRL_CE,
    CTRL_CLK,
    CTRL_SR,
    FF_BYPASS,
    FF_CE_INV,
    FF_INIT,
    FF_LATCH_MODE,
    FF_SR_EN,
    Direction,
    LocalSource,
    MUX_FIELD_BITS,
    ResourceKind,
    UnconnectedSource,
    WireSource,
    classify_intra,
    ctrl_candidates,
    ctrl_mux_offset,
    ff_config_offset,
    imux_candidates,
    imux_offset,
    lut_content_offset,
    output_mux_offset,
    pip_drive_offset,
    pip_straight_offset,
    pip_turn_offset,
)
from repro.netlist.compiled import (
    NODE_CONST0,
    NODE_CONST1,
    CompiledDesign,
    FFField,
    NodeKind,
    Patch,
)
from repro.netlist.levelize import levelize
from repro.place.configgen import IOBinding

__all__ = ["DecodedDesign", "decode_bitstream"]

#: AND-of-all-four-pins truth table (unused pins tied to const 1).
_AND4_TABLE = np.zeros(16, dtype=np.uint8)
_AND4_TABLE[15] = 1
#: NOT(pin0) with pins 1..3 tied to const 1.
_INV_TABLE = np.zeros(16, dtype=np.uint8)
_INV_TABLE[14] = 1

WireKey = tuple[int, int, int, int]  # (row, col, direction, index) — outgoing
InKey = tuple[int, int, int, int]  # (row, col, side, index) — incoming view


@dataclass
class _Builder:
    """Growable node/LUT-row tables used during decode."""

    kinds: list[int] = field(default_factory=lambda: [int(NodeKind.CONST), int(NodeKind.CONST)])
    const_vals: list[int] = field(default_factory=lambda: [0, 1])
    lut_nodes: list[int] = field(default_factory=list)
    lut_inputs: list[list[int]] = field(default_factory=list)
    lut_tables: list[np.ndarray] = field(default_factory=list)

    def new_node(self, kind: NodeKind, const: int = 0) -> int:
        self.kinds.append(int(kind))
        self.const_vals.append(const)
        return len(self.kinds) - 1

    def new_lut_row(self, node: int, inputs: list[int], table: np.ndarray) -> int:
        self.lut_nodes.append(node)
        self.lut_inputs.append(list(inputs))
        self.lut_tables.append(table)
        return len(self.lut_nodes) - 1


class DecodedDesign:
    """A decoded configuration plus the caches for incremental patching."""

    def __init__(
        self,
        device: VirtexDevice,
        bits: ConfigBitstream,
        io: IOBinding,
        n_spare: int = 32,
    ):
        self.device = device
        self.bits = bits
        self.io = io
        self.n_spare = n_spare

        # Vectorised CLB bit gather: linear offsets of every intra-CLB bit.
        self._clb_matrix = self._build_clb_matrix()

        b = _Builder()
        self._b = b
        n_inputs = len(io.input_order)
        self.input_nodes = [b.new_node(NodeKind.INPUT) for _ in range(n_inputs)]

        nc = device.n_clbs
        # Fabric LUT/FF nodes: row for position p of CLB i is 4*i + p.
        self.first_lut_node = len(b.kinds)
        for _ in range(4 * nc):
            b.new_node(NodeKind.LUT)
        self.first_ff_node = len(b.kinds)
        for _ in range(4 * nc):
            b.new_node(NodeKind.FF)

        # Resolution caches (golden state).
        self.wire_value: dict[WireKey, int] = {}
        self.wire_consumers: dict[WireKey, list[tuple]] = {}
        self.port_value: dict[tuple[int, int, int], int] = {}
        self.port_wires: dict[tuple[int, int, int], list[WireKey]] = {}
        self.pin_source: dict[tuple[int, int, int, int], int] = {}
        self.ctrl_node: dict[tuple[int, int, int, int], int] = {}
        self.halflatch_node: dict[tuple, int] = {}
        self.halflatch_site_of_node: dict[int, HalfLatchSite] = {}
        self._resolving: set[WireKey] = set()

        self._decode_all()
        self.design = self._finalize()
        # Output cone membership, for the structural pre-filter.
        self._cone = self._compute_cone()

    # ------------------------------------------------------------------
    # raw bit access
    # ------------------------------------------------------------------

    def _build_clb_matrix(self) -> np.ndarray:
        """(rows, cols, 864) linear bit offsets of every CLB bit."""
        geo = self.device.geometry
        rows, cols = geo.rows, geo.cols
        fb = geo.clb_frame_bits
        col_base = np.empty(cols, dtype=np.int64)
        for c in range(cols):
            col_base[c] = geo.frame_offset(geo.clb_frame_index(c, 0))
        intra = np.arange(CLB_BITS_PER_CLB, dtype=np.int64)
        minor, i = np.divmod(intra, CLB_BITS_PER_ROW)
        r = np.arange(rows, dtype=np.int64)
        # offset = col_base[c] + minor*frame_bits + overhead + row*18 + i
        mat = (
            col_base[None, :, None]
            + (minor * fb)[None, None, :]
            + COLUMN_OVERHEAD_BITS
            + (r * CLB_BITS_PER_ROW)[:, None, None]
            + i[None, None, :]
        )
        return mat

    def clb_bits(self, row: int, col: int) -> np.ndarray:
        """The 864 configuration bits of one CLB (a gather, not a view)."""
        return self.bits.bits[self._clb_matrix[row, col]]

    def _bit(self, row: int, col: int, intra: int) -> int:
        return int(self.bits.bits[self._clb_matrix[row, col, intra]])

    def _field(self, row: int, col: int, base_offset: int) -> tuple[int, ...]:
        """Selected candidate indices of an 8-bit one-hot field."""
        mat = self._clb_matrix[row, col]
        vals = self.bits.bits[mat[base_offset : base_offset + MUX_FIELD_BITS]]
        return tuple(int(x) for x in np.flatnonzero(vals))

    # ------------------------------------------------------------------
    # node helpers
    # ------------------------------------------------------------------

    def lut_node(self, row: int, col: int, pos: int) -> int:
        return self.first_lut_node + 4 * self.device.clb_index(row, col) + pos

    def ff_node(self, row: int, col: int, pos: int) -> int:
        return self.first_ff_node + 4 * self.device.clb_index(row, col) + pos

    def lut_row(self, row: int, col: int, pos: int) -> int:
        return 4 * self.device.clb_index(row, col) + pos

    def ff_row(self, row: int, col: int, pos: int) -> int:
        return 4 * self.device.clb_index(row, col) + pos

    def _get_halflatch(self, key: tuple, site: HalfLatchSite) -> int:
        node = self.halflatch_node.get(key)
        if node is None:
            node = self._b.new_node(NodeKind.HALF_LATCH, 1)
            self.halflatch_node[key] = node
            self.halflatch_site_of_node[node] = site
        return node

    def _and_node(self, sources: list[int]) -> int:
        """A fabric-contention node: AND of up to 4 sources (extra LUT row)."""
        srcs = sources[:4] + [NODE_CONST1] * (4 - min(len(sources), 4))
        node = self._b.new_node(NodeKind.LUT)
        self._b.new_lut_row(node, srcs, _AND4_TABLE.copy())
        return node

    # ------------------------------------------------------------------
    # golden resolution
    # ------------------------------------------------------------------

    def _resolve_local(self, row: int, col: int, index: int) -> int:
        return (
            self.lut_node(row, col, index)
            if index < 4
            else self.ff_node(row, col, index - 4)
        )

    def _resolve_incoming(self, row: int, col: int, side: Direction, w: int, consumer: tuple) -> int:
        coords: InKey = (row, col, int(side), w)
        tap = self.io.taps.get(coords)
        if tap is not None:
            return self.input_nodes[tap]
        net_tap = self.io.net_taps.get(coords)
        if net_tap is not None:
            return self._resolve_local(net_tap[0], net_tap[1], net_tap[2])
        nb = self.device.incoming_wire(row, col, side, w)
        if nb is None:
            site = HalfLatchSite(HalfLatchKind.WIRE, row, col, (int(side), w))
            return self._get_halflatch(("pad", coords), site)
        key: WireKey = (nb.row, nb.col, int(nb.direction), nb.index)
        node = self._resolve_wire(key)
        self.wire_consumers.setdefault(key, []).append(consumer)
        return node

    def _wire_driver_specs(self, key: WireKey) -> list[tuple]:
        """Who can drive outgoing wire ``key``, per the *current* bits.

        Returns specs: ("port", r, c, p) or ("in", r, c, side, w).
        """
        r, c, d, w = key
        specs: list[tuple] = []
        if self._bit(r, c, pip_drive_offset(Direction(d), w)):
            specs.append(("port", r, c, w % 4))
        back = Direction(d).opposite
        if self._bit(r, c, pip_straight_offset(back, w)):
            specs.append(("in", r, c, int(back), w))
        for a in Direction:
            for p, perp in enumerate(a.perpendicular):
                if int(perp) == d and self._bit(r, c, pip_turn_offset(a, p, w)):
                    specs.append(("in", r, c, int(a), w))
        return specs

    def _resolve_wire(self, key: WireKey) -> int:
        if key in self.wire_value:
            return self.wire_value[key]
        if key in self._resolving:
            # Combinational wire loop: floats at the keeper value.
            return NODE_CONST1
        self._resolving.add(key)
        try:
            nodes: list[int] = []
            for spec in self._wire_driver_specs(key):
                if spec[0] == "port":
                    _, r, c, p = spec
                    nodes.append(self._resolve_port(r, c, p))
                    self.port_wires.setdefault((r, c, p), []).append(key)
                else:
                    _, r, c, side, w = spec
                    nodes.append(
                        self._resolve_incoming(r, c, Direction(side), w, ("wire", key))
                    )
            nodes = sorted(set(nodes))
            if not nodes:
                r, c, d, w = key
                site = HalfLatchSite(HalfLatchKind.WIRE, r, c, (d, w))
                node = self._get_halflatch(("wire", key), site)
            elif len(nodes) == 1:
                node = nodes[0]
            else:
                node = self._and_node(nodes)
            self.wire_value[key] = node
            return node
        finally:
            self._resolving.discard(key)

    def _resolve_port(self, row: int, col: int, port: int) -> int:
        pkey = (row, col, port)
        if pkey in self.port_value:
            return self.port_value[pkey]
        sel = self._field(row, col, output_mux_offset(port, 0))
        if not sel:
            site = HalfLatchSite(HalfLatchKind.OUTPUT_PORT, row, col, (port,))
            node = self._get_halflatch(("portfloat", pkey), site)
        else:
            nodes = sorted({self._resolve_local(row, col, s) for s in sel})
            node = nodes[0] if len(nodes) == 1 else self._and_node(nodes)
        self.port_value[pkey] = node
        return node

    def _resolve_pin(self, row: int, col: int, pos: int, pin: int) -> int:
        key = (row, col, pos, pin)
        if key in self.pin_source:
            return self.pin_source[key]
        node = self._pin_value(row, col, pos, pin, register=True)
        self.pin_source[key] = node
        return node

    def _pin_value(self, row: int, col: int, pos: int, pin: int, register: bool) -> int:
        sel = self._field(row, col, imux_offset(pos, pin, 0))
        cands = imux_candidates(pos, pin)
        consumer = ("pin", row, col, pos, pin)
        nodes: list[int] = []
        for ci in sel:
            cand = cands[ci]
            if isinstance(cand, LocalSource):
                nodes.append(self._resolve_local(row, col, cand.index))
            elif isinstance(cand, WireSource):
                nodes.append(
                    self._resolve_incoming(row, col, cand.direction, cand.index, consumer)
                    if register
                    else self._transient_incoming(row, col, cand.direction, cand.index, {})
                )
            else:  # pragma: no cover - UnconnectedSource never in candidate lists
                raise DecodeError("unexpected candidate kind")
        nodes = sorted(set(nodes))
        if not nodes:
            site = HalfLatchSite(HalfLatchKind.LUT_PIN, row, col, (pos, pin))
            return self._get_halflatch(("imux", row, col, pos, pin), site)
        if len(nodes) == 1:
            return nodes[0]
        return self._and_node(nodes)

    def _resolve_ctrl(self, row: int, col: int, slc: int, which: int) -> int:
        key = (row, col, slc, which)
        if key in self.ctrl_node:
            return self.ctrl_node[key]
        node = self._ctrl_value(row, col, slc, which, register=True)
        self.ctrl_node[key] = node
        return node

    def _ctrl_value(self, row: int, col: int, slc: int, which: int, register: bool) -> int:
        sel = self._field(row, col, ctrl_mux_offset(slc, which, 0))
        cands = ctrl_candidates(slc, which)
        consumer = ("ctrl", row, col, slc, which)
        nodes: list[int] = []
        for ci in sel:
            cand = cands[ci]
            if isinstance(cand, LocalSource):
                nodes.append(self._resolve_local(row, col, cand.index))
            elif isinstance(cand, WireSource):
                nodes.append(
                    self._resolve_incoming(row, col, cand.direction, cand.index, consumer)
                    if register
                    else self._transient_incoming(row, col, cand.direction, cand.index, {})
                )
        nodes = sorted(set(nodes))
        if not nodes:
            site = HalfLatchSite(HalfLatchKind.CTRL, row, col, (slc, which))
            return self._get_halflatch(("ctrl", row, col, slc, which), site)
        if len(nodes) == 1:
            return nodes[0]
        return self._and_node(nodes)

    def _slice_clocked(self, row: int, col: int, slc: int) -> bool:
        """Clocked iff the CLK field is exactly the one-hot global-clock tap."""
        return self._field(row, col, ctrl_mux_offset(slc, CTRL_CLK, 0)) == (0,)

    # ------------------------------------------------------------------
    # full decode
    # ------------------------------------------------------------------

    def _decode_all(self) -> None:
        dev = self.device
        b = self._b
        nc = dev.n_clbs
        self._ff_d = np.zeros(4 * nc, dtype=np.int32)
        self._ff_ce = np.full(4 * nc, NODE_CONST1, dtype=np.int32)
        self._ff_sr = np.full(4 * nc, NODE_CONST0, dtype=np.int32)
        self._ff_init = np.zeros(4 * nc, dtype=np.uint8)
        self._ff_clocked = np.ones(4 * nc, dtype=np.uint8)

        # Fabric LUT rows must occupy rows [0, 4*nc) in order; reserve them
        # first, then fill (extra AND rows created during resolution land
        # after them).
        for row in range(dev.rows):
            for col in range(dev.cols):
                for pos in range(4):
                    node = self.lut_node(row, col, pos)
                    table = np.zeros(16, dtype=np.uint8)
                    b.new_lut_row(node, [NODE_CONST1] * 4, table)

        for row in range(dev.rows):
            for col in range(dev.cols):
                cbits = self.clb_bits(row, col)
                for pos in range(4):
                    lrow = self.lut_row(row, col, pos)
                    b.lut_tables[lrow] = cbits[
                        lut_content_offset(pos, 0) : lut_content_offset(pos, 0) + 16
                    ].astype(np.uint8).copy()
                    b.lut_inputs[lrow] = [
                        self._resolve_pin(row, col, pos, pin) for pin in range(4)
                    ]
                for slc in range(2):
                    ce = self._resolve_ctrl(row, col, slc, CTRL_CE)
                    sr = self._resolve_ctrl(row, col, slc, CTRL_SR)
                    clocked = self._slice_clocked(row, col, slc)
                    for pos in (2 * slc, 2 * slc + 1):
                        frow = self.ff_row(row, col, pos)
                        init = int(cbits[ff_config_offset(pos, FF_INIT)])
                        bypass = int(cbits[ff_config_offset(pos, FF_BYPASS)])
                        ce_inv = int(cbits[ff_config_offset(pos, FF_CE_INV)])
                        sr_en = int(cbits[ff_config_offset(pos, FF_SR_EN)])
                        latch = int(cbits[ff_config_offset(pos, FF_LATCH_MODE)])
                        self._ff_d[frow] = (
                            self._resolve_pin(row, col, pos, 0)
                            if bypass
                            else self.lut_node(row, col, pos)
                        )
                        self._ff_ce[frow] = self._invert(ce) if ce_inv else ce
                        self._ff_sr[frow] = sr if sr_en else NODE_CONST0
                        self._ff_init[frow] = init
                        self._ff_clocked[frow] = 1 if (clocked and not latch) else 0

        # Spare rows for fault patches: inert AND4 gates fed by const 1.
        self.spare_rows: list[int] = []
        self.spare_nodes: list[int] = []
        for _ in range(self.n_spare):
            node = b.new_node(NodeKind.LUT)
            srow = b.new_lut_row(node, [NODE_CONST1] * 4, _AND4_TABLE.copy())
            self.spare_rows.append(srow)
            self.spare_nodes.append(node)

    def _invert(self, node: int) -> int:
        if node == NODE_CONST0:
            return NODE_CONST1
        if node == NODE_CONST1:
            return NODE_CONST0
        inv = self._b.new_node(NodeKind.LUT)
        self._b.new_lut_row(inv, [node] + [NODE_CONST1] * 3, _INV_TABLE.copy())
        return inv

    def _finalize(self) -> CompiledDesign:
        b = self._b
        dev = self.device
        n_luts = len(b.lut_nodes)
        lut_nodes = np.array(b.lut_nodes, dtype=np.int32)
        lut_inputs = np.array(b.lut_inputs, dtype=np.int32)
        lut_tables = np.stack(b.lut_tables).astype(np.uint8)

        node_of_lut_row = {int(lut_nodes[r]): r for r in range(n_luts)}
        lut_sources: list[list[int]] = []
        for r in range(n_luts):
            if r in set(self.spare_rows):
                lut_sources.append([])  # spares forced into the last level below
                continue
            srcs = [
                node_of_lut_row[int(s)]
                for s in lut_inputs[r]
                if int(s) in node_of_lut_row
            ]
            lut_sources.append(srcs)
        levels, _ = levelize(n_luts, lut_sources)
        # Pull spare rows out of whatever level they landed in and append
        # them as a dedicated final level so patches may wire them to any
        # signal (evaluated last; consumers see them next pass).
        spare_set = set(self.spare_rows)
        levels = [lv[~np.isin(lv, list(spare_set))] for lv in levels]
        levels = [lv for lv in levels if lv.size]
        levels.append(np.array(sorted(spare_set), dtype=np.int64))

        outputs = [
            self._resolve_local(r, c, s) for (r, c, s) in self.io.output_probes
        ]
        ff_nodes = np.arange(
            self.first_ff_node, self.first_ff_node + 4 * dev.n_clbs, dtype=np.int32
        )
        design = CompiledDesign(
            name=f"decoded[{dev.name}]",
            n_nodes=len(b.kinds),
            node_kind=np.array(b.kinds, dtype=np.uint8),
            const_values=np.array(b.const_vals, dtype=np.uint8),
            input_nodes=np.array(self.input_nodes, dtype=np.int32),
            output_nodes=np.array(outputs, dtype=np.int32),
            lut_nodes=lut_nodes,
            lut_inputs=lut_inputs,
            lut_tables=lut_tables,
            levels=levels,
            ff_nodes=ff_nodes,
            ff_d=self._ff_d,
            ff_ce=self._ff_ce,
            ff_sr=self._ff_sr,
            ff_init=self._ff_init,
            ff_clocked=self._ff_clocked,
        )
        design.validate()
        return design

    # ------------------------------------------------------------------
    # output cone (structural pre-filter)
    # ------------------------------------------------------------------

    def _compute_cone(self) -> np.ndarray:
        d = self.design
        in_cone = np.zeros(d.n_nodes, dtype=bool)
        row_of_lut_node = {int(n): r for r, n in enumerate(d.lut_nodes)}
        row_of_ff_node = {int(n): r for r, n in enumerate(d.ff_nodes)}
        stack = [int(n) for n in d.output_nodes]
        while stack:
            n = stack.pop()
            if in_cone[n]:
                continue
            in_cone[n] = True
            if n in row_of_lut_node:
                stack.extend(int(s) for s in d.lut_inputs[row_of_lut_node[n]])
            elif n in row_of_ff_node:
                r = row_of_ff_node[n]
                stack.extend(
                    (int(d.ff_d[r]), int(d.ff_ce[r]), int(d.ff_sr[r]))
                )
        return in_cone

    def node_in_cone(self, node: int) -> bool:
        return bool(self._cone[node])

    def patch_is_relevant(self, patch: Patch) -> bool:
        """Can this patch possibly change the outputs?

        True iff some patch entry targets a node inside the output cone.
        Spare-row entries count as relevant only through the consumer
        entry that points a cone node at them, which the same patch must
        contain.
        """
        d = self.design
        spare_set = set(self.spare_rows)
        for row, _ in patch.lut_tables:
            if row not in spare_set and self._cone[d.lut_nodes[row]]:
                return True
        for row, _, _ in patch.lut_inputs:
            if row not in spare_set and self._cone[d.lut_nodes[row]]:
                return True
        for row, _, _ in patch.ff_fields:
            if self._cone[d.ff_nodes[row]]:
                return True
        for node, _ in patch.consts:
            if self._cone[node]:
                return True
        return bool(patch.outputs)

    # ------------------------------------------------------------------
    # transient (overlay) resolution for patch computation
    # ------------------------------------------------------------------

    def _transient_wire(self, key: WireKey, overlay: dict, stack: set | None = None) -> int:
        if key in overlay:
            return overlay[key]
        stack = stack if stack is not None else set()
        if key in stack:
            return NODE_CONST1
        stack.add(key)
        try:
            nodes: list[int] = []
            for spec in self._wire_driver_specs(key):
                if spec[0] == "port":
                    _, r, c, p = spec
                    nodes.append(self._transient_port(r, c, p, overlay))
                else:
                    _, r, c, side, w = spec
                    nodes.append(
                        self._transient_incoming(r, c, Direction(side), w, overlay, stack)
                    )
            nodes = sorted(set(nodes))
            if not nodes:
                # Use the golden keeper node when one exists; else const 1.
                return self.halflatch_node.get(("wire", key), NODE_CONST1)
            if len(nodes) == 1:
                return nodes[0]
            return -1 - self._overlay_and(nodes, overlay)
        finally:
            stack.discard(key)

    def _transient_port(self, r: int, c: int, p: int, overlay: dict) -> int:
        """Port value under the current bits, without allocating nodes.

        Unlike :meth:`_resolve_port` (golden decode) this never mutates
        the builder — patch computation runs after the design is frozen.
        """
        key = ("port", r, c, p)
        if key in overlay:
            return overlay[key]
        if (r, c, p) in self.port_value:
            return self.port_value[(r, c, p)]
        sel = self._field(r, c, output_mux_offset(p, 0))
        if not sel:
            return self.halflatch_node.get(("portfloat", (r, c, p)), NODE_CONST1)
        nodes = sorted({self._resolve_local(r, c, s) for s in sel})
        if len(nodes) == 1:
            return nodes[0]
        return -1 - self._overlay_and(nodes, overlay)

    def _overlay_and(self, nodes: list[int], overlay: dict) -> int:
        """Record an AND requirement in the overlay; returns its ticket.

        Transient resolution cannot allocate real nodes (patches must not
        mutate the golden design), so multi-driver results are returned
        as negative tickets ``-1 - k`` referring to ``overlay['_ands'][k]``.
        """
        ands = overlay.setdefault("_ands", [])
        ands.append(nodes)
        return len(ands) - 1

    def _transient_incoming(
        self, row: int, col: int, side: Direction, w: int, overlay: dict, stack: set | None = None
    ) -> int:
        coords: InKey = (row, col, int(side), w)
        tap = self.io.taps.get(coords)
        if tap is not None:
            return self.input_nodes[tap]
        net_tap = self.io.net_taps.get(coords)
        if net_tap is not None:
            return self._resolve_local(net_tap[0], net_tap[1], net_tap[2])
        nb = self.device.incoming_wire(row, col, side, w)
        if nb is None:
            return self.halflatch_node.get(("pad", coords), NODE_CONST1)
        key: WireKey = (nb.row, nb.col, int(nb.direction), nb.index)
        return self._transient_wire(key, overlay, stack)

    def _transient_pin(self, row: int, col: int, pos: int, pin: int, overlay: dict) -> int:
        sel = self._field(row, col, imux_offset(pos, pin, 0))
        cands = imux_candidates(pos, pin)
        nodes: list[int] = []
        for ci in sel:
            cand = cands[ci]
            if isinstance(cand, LocalSource):
                nodes.append(self._resolve_local(row, col, cand.index))
            else:
                nodes.append(
                    self._transient_incoming(row, col, cand.direction, cand.index, overlay)
                )
        nodes = sorted(set(nodes))
        if not nodes:
            return self.halflatch_node.get(
                ("imux", row, col, pos, pin), NODE_CONST1
            )
        if len(nodes) == 1:
            return nodes[0]
        return -1 - self._overlay_and(nodes, overlay)

    def _transient_ctrl(self, row: int, col: int, slc: int, which: int, overlay: dict) -> int:
        sel = self._field(row, col, ctrl_mux_offset(slc, which, 0))
        cands = ctrl_candidates(slc, which)
        nodes: list[int] = []
        for ci in sel:
            cand = cands[ci]
            if isinstance(cand, LocalSource):
                nodes.append(self._resolve_local(row, col, cand.index))
            else:
                nodes.append(
                    self._transient_incoming(row, col, cand.direction, cand.index, overlay)
                )
        nodes = sorted(set(nodes))
        if not nodes:
            return self.halflatch_node.get(("ctrl", row, col, slc, which), NODE_CONST1)
        if len(nodes) == 1:
            return nodes[0]
        return -1 - self._overlay_and(nodes, overlay)

    # ------------------------------------------------------------------
    # patch assembly
    # ------------------------------------------------------------------

    def _materialize(self, value: int, overlay: dict, patch: Patch, spare_cursor: list[int]) -> int:
        """Turn a transient result (maybe an AND ticket) into a real node.

        AND tickets consume spare rows; exhaustion degrades to the first
        source (logged via DecodeError would abort campaigns, so degrade
        silently — a single-bit fault never needs more than two spares in
        practice).
        """
        if value >= 0:
            return value
        ticket = -1 - value
        sources = overlay["_ands"][ticket]
        real = [self._materialize(s, overlay, patch, spare_cursor) for s in sources]
        if spare_cursor[0] >= len(self.spare_rows):
            return real[0]
        srow = self.spare_rows[spare_cursor[0]]
        spare_cursor[0] += 1
        for pin, src in enumerate(real[:4]):
            patch.lut_inputs.append((srow, pin, src))
        return self.spare_nodes[self.spare_rows.index(srow)]

    def _pin_patch(
        self, row: int, col: int, pos: int, pin: int, new_value: int,
        overlay: dict, patch: Patch, spare_cursor: list[int],
    ) -> None:
        """Emit patch entries retargeting one LUT pin (and a bypass FF's D)."""
        old = self.pin_source.get((row, col, pos, pin))
        node = self._materialize(new_value, overlay, patch, spare_cursor)
        if old is not None and node == old:
            return
        lrow = self.lut_row(row, col, pos)
        patch.lut_inputs.append((lrow, pin, node))
        if pin == 0:
            frow = self.ff_row(row, col, pos)
            if int(self.design.ff_d[frow]) == (old if old is not None else -2):
                # Bypass FF reads pin 0 directly.
                if int(self._bit(row, col, ff_config_offset(pos, FF_BYPASS))):
                    patch.ff_fields.append((frow, FFField.D, node))

    def _ctrl_patch(
        self, row: int, col: int, slc: int, which: int, new_value: int,
        overlay: dict, patch: Patch, spare_cursor: list[int],
    ) -> None:
        old = self.ctrl_node.get((row, col, slc, which))
        node = self._materialize(new_value, overlay, patch, spare_cursor)
        if old is not None and node == old:
            return
        for pos in (2 * slc, 2 * slc + 1):
            frow = self.ff_row(row, col, pos)
            if which == CTRL_CE:
                if int(self._bit(row, col, ff_config_offset(pos, FF_CE_INV))):
                    continue  # inverted CE not retargeted incrementally
                patch.ff_fields.append((frow, FFField.CE, node))
            elif which == CTRL_SR:
                if int(self._bit(row, col, ff_config_offset(pos, FF_SR_EN))):
                    patch.ff_fields.append((frow, FFField.SR, node))

    def _propagate_wire_change(
        self, seeds: dict[WireKey, int], overlay: dict, patch: Patch, spare_cursor: list[int]
    ) -> None:
        """Push re-resolved wire values through the consumer graph."""
        worklist = list(seeds.keys())
        changed = dict(seeds)
        for key, val in seeds.items():
            overlay[key] = val
        seen = set(worklist)
        while worklist:
            key = worklist.pop()
            for consumer in self.wire_consumers.get(key, ()):  # golden readers
                if consumer[0] == "wire":
                    k2: WireKey = consumer[1]
                    if k2 in seen:
                        continue
                    new_val = self._transient_wire(k2, overlay)
                    if new_val != self.wire_value.get(k2):
                        overlay[k2] = new_val
                        changed[k2] = new_val
                        seen.add(k2)
                        worklist.append(k2)
                elif consumer[0] == "pin":
                    _, r, c, pos, pin = consumer
                    self._pin_patch(
                        r, c, pos, pin,
                        self._transient_pin(r, c, pos, pin, overlay),
                        overlay, patch, spare_cursor,
                    )
                elif consumer[0] == "ctrl":
                    _, r, c, slc, which = consumer
                    self._ctrl_patch(
                        r, c, slc, which,
                        self._transient_ctrl(r, c, slc, which, overlay),
                        overlay, patch, spare_cursor,
                    )

    # ------------------------------------------------------------------
    # the fault-injection fast path
    # ------------------------------------------------------------------

    def _bit_may_matter(self, kind: ResourceKind, row: int, col: int, detail: tuple) -> bool:
        """Cheap pre-screen: can this bit's resource reach the outputs?

        Saves the transient-resolution work for the vast majority of
        bits, which sit in unused fabric.  PIP/port cases defer to their
        consumer caches; everything else checks output-cone membership of
        the directly affected LUT/FF rows.
        """
        d = self.design
        if kind is ResourceKind.LUT_CONTENT:
            lut, _ = detail
            return bool(self._cone[d.lut_nodes[self.lut_row(row, col, lut)]])
        if kind is ResourceKind.LUT_INPUT_MUX:
            lut, pin, _ = detail
            if self._cone[d.lut_nodes[self.lut_row(row, col, lut)]]:
                return True
            return pin == 0 and bool(self._cone[d.ff_nodes[self.ff_row(row, col, lut)]])
        if kind is ResourceKind.FF_CONFIG:
            ff, _ = detail
            return bool(self._cone[d.ff_nodes[self.ff_row(row, col, ff)]])
        if kind is ResourceKind.CTRL_MUX:
            slc, _, _ = detail
            return bool(
                self._cone[d.ff_nodes[self.ff_row(row, col, 2 * slc)]]
                or self._cone[d.ff_nodes[self.ff_row(row, col, 2 * slc + 1)]]
            )
        if kind is ResourceKind.OUTPUT_MUX:
            port, _ = detail
            return (row, col, port) in self.port_value
        return True  # PIPs handle their own consumer check

    def patch_for_bit(self, linear_bit: int) -> Patch | None:
        """Hardware difference caused by flipping one configuration bit.

        Returns ``None`` when the flip provably does not alter the
        decoded hardware (reserved/overhead bits, INIT bits under the
        no-reset injection protocol, changes outside any consumer).  The
        golden bitstream is restored before returning.
        """
        frame, off = self.bits.locate(linear_bit)
        loc = self.device.classify_bit(frame, off)
        kind = loc.kind
        if kind in (
            ResourceKind.COLUMN_OVERHEAD,
            ResourceKind.CLOCK_CONFIG,
            ResourceKind.IOB_CONFIG,
            ResourceKind.BRAM_CONTENT,
            ResourceKind.BRAM_INTERCONNECT,
            ResourceKind.CARRY,
            ResourceKind.RESERVED,
            ResourceKind.PIP_RESERVED,
        ):
            return None

        row, col = loc.row, loc.col
        if not self._bit_may_matter(kind, row, col, loc.detail):
            return None
        self.bits.bits[linear_bit] ^= 1
        try:
            return self._patch_clb_bit(row, col, kind, loc.detail)
        finally:
            self.bits.bits[linear_bit] ^= 1

    def _patch_clb_bit(
        self, row: int, col: int, kind: ResourceKind, detail: tuple
    ) -> Patch | None:
        patch = Patch()
        overlay: dict = {}
        spare_cursor = [0]

        if kind is ResourceKind.LUT_CONTENT:
            lut, entry = detail
            lrow = self.lut_row(row, col, lut)
            table = self.design.lut_tables[lrow].copy()
            table[entry] ^= 1
            patch.lut_tables.append((lrow, table))

        elif kind is ResourceKind.LUT_INPUT_MUX:
            lut, pin, _ = detail
            self._pin_patch(
                row, col, lut, pin,
                self._transient_pin(row, col, lut, pin, overlay),
                overlay, patch, spare_cursor,
            )

        elif kind is ResourceKind.FF_CONFIG:
            ff, role = detail
            frow = self.ff_row(row, col, ff)
            cbit = lambda r: int(self._bit(row, col, ff_config_offset(ff, r)))
            if role == FF_INIT:
                return None  # no reset occurs under the injection protocol
            if role == FF_BYPASS:
                new_d = (
                    self._materialize(
                        self._transient_pin(row, col, ff, 0, overlay),
                        overlay, patch, spare_cursor,
                    )
                    if cbit(FF_BYPASS)
                    else self.lut_node(row, col, ff)
                )
                if new_d != int(self.design.ff_d[frow]):
                    patch.ff_fields.append((frow, FFField.D, new_d))
            elif role == FF_CE_INV:
                base = self.ctrl_node[(row, col, ff // 2, CTRL_CE)]
                if cbit(FF_CE_INV):
                    # Now inverted: keepers hold 1 -> enable becomes 0.
                    if base == NODE_CONST1:
                        new_ce = NODE_CONST0
                    elif base == NODE_CONST0:
                        new_ce = NODE_CONST1
                    else:
                        srow = (
                            self.spare_rows[spare_cursor[0]]
                            if spare_cursor[0] < len(self.spare_rows)
                            else None
                        )
                        if srow is None:
                            new_ce = NODE_CONST0
                        else:
                            spare_cursor[0] += 1
                            patch.lut_tables.append((srow, _INV_TABLE.copy()))
                            patch.lut_inputs.append((srow, 0, base))
                            new_ce = self.spare_nodes[self.spare_rows.index(srow)]
                else:
                    new_ce = base
                if new_ce != int(self.design.ff_ce[frow]):
                    patch.ff_fields.append((frow, FFField.CE, new_ce))
            elif role == FF_SR_EN:
                sr = (
                    self.ctrl_node[(row, col, ff // 2, CTRL_SR)]
                    if cbit(FF_SR_EN)
                    else NODE_CONST0
                )
                if sr != int(self.design.ff_sr[frow]):
                    patch.ff_fields.append((frow, FFField.SR, sr))
            elif role == FF_LATCH_MODE:
                clocked = 0 if cbit(FF_LATCH_MODE) else (
                    1 if self._slice_clocked(row, col, ff // 2) else 0
                )
                if clocked != int(self.design.ff_clocked[frow]):
                    patch.ff_fields.append((frow, FFField.CLOCKED, clocked))
            else:
                return None  # FF_RESERVED

        elif kind is ResourceKind.CTRL_MUX:
            slc, which, _ = detail
            if which == CTRL_CLK:
                clocked = 1 if self._slice_clocked(row, col, slc) else 0
                for pos in (2 * slc, 2 * slc + 1):
                    frow = self.ff_row(row, col, pos)
                    latch = int(self._bit(row, col, ff_config_offset(pos, FF_LATCH_MODE)))
                    eff = 0 if latch else clocked
                    if eff != int(self.design.ff_clocked[frow]):
                        patch.ff_fields.append((frow, FFField.CLOCKED, eff))
            else:
                self._ctrl_patch(
                    row, col, slc, which,
                    self._transient_ctrl(row, col, slc, which, overlay),
                    overlay, patch, spare_cursor,
                )

        elif kind is ResourceKind.OUTPUT_MUX:
            port, _ = detail
            pkey = (row, col, port)
            sel = self._field(row, col, output_mux_offset(port, 0))
            if sel:
                nodes = sorted({self._resolve_local(row, col, s) for s in sel})
                new_val = nodes[0] if len(nodes) == 1 else -1 - self._overlay_and(nodes, overlay)
            else:
                new_val = self.halflatch_node.get(("portfloat", pkey), NODE_CONST1)
            new_node = self._materialize(new_val, overlay, patch, spare_cursor)
            if pkey in self.port_value and new_node != self.port_value[pkey]:
                overlay[("port",) + pkey] = new_node
                seeds: dict[WireKey, int] = {}
                for wkey in self.port_wires.get(pkey, ()):  # re-resolve driven wires
                    nv = self._transient_wire(wkey, overlay)
                    nv = self._materialize(nv, overlay, patch, spare_cursor)
                    if nv != self.wire_value.get(wkey):
                        seeds[wkey] = nv
                self._propagate_wire_change(seeds, overlay, patch, spare_cursor)
            # A port nobody drives onto a wire has no consumers: no patch.

        elif kind in (
            ResourceKind.PIP_DRIVE,
            ResourceKind.PIP_STRAIGHT,
            ResourceKind.PIP_TURN,
        ):
            if kind is ResourceKind.PIP_DRIVE:
                d, w = detail
                wkey: WireKey = (row, col, d, w)
            elif kind is ResourceKind.PIP_STRAIGHT:
                d_in, w = detail
                wkey = (row, col, int(Direction(d_in).opposite), w)
            else:
                d_in, p, w = detail
                wkey = (row, col, int(Direction(d_in).perpendicular[p]), w)
            if wkey not in self.wire_value and wkey not in self.wire_consumers:
                # Nobody reads this wire in the golden design: turning it
                # on/off feeds nothing.
                return None
            nv = self._transient_wire(wkey, overlay)
            nv = self._materialize(nv, overlay, patch, spare_cursor)
            if nv != self.wire_value.get(wkey):
                self._propagate_wire_change({wkey: nv}, overlay, patch, spare_cursor)

        else:  # pragma: no cover - exhaustive over CLB kinds
            raise DecodeError(f"unhandled CLB resource kind {kind}")

        return patch if not patch.is_empty() else None


def decode_bitstream(
    device: VirtexDevice,
    bits: ConfigBitstream,
    io: IOBinding,
    n_spare: int = 32,
) -> DecodedDesign:
    """Decode a configuration into an executable hardware model."""
    return DecodedDesign(device, bits, io, n_spare)

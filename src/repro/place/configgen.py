"""Configuration generator: routed design -> configuration bits.

Writes every field the decoder reads: LUT truth tables (replicated
across unused pins, matching the CAD redundancy the paper relies on for
half-latch tolerance), input-mux one-hots, FF config, slice control
muxes (CLK enabled everywhere; CE/SR left floating unless routed — the
floating CE is where half-latches appear), output-port muxes and the
three PIP families.

The I/O map — which edge/long-line wires carry which primary input, and
which cells the output probes watch — is IOB configuration in the real
part; we carry it alongside the bitstream as :class:`IOBinding`
(deviation recorded in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitstream.bitstream import ConfigBitstream
from repro.errors import PlacementError
from repro.fpga.resources import (
    CTRL_CLK,
    FF_BYPASS,
    FF_INIT,
    ctrl_mux_offset,
    ff_config_offset,
    imux_offset,
    lut_content_offset,
    output_mux_offset,
    pip_drive_offset,
    pip_straight_offset,
    pip_turn_offset,
    Direction,
)
from repro.netlist.cells import CellKind
from repro.place.router import RoutedDesign

__all__ = ["IOBinding", "generate_bitstream"]


@dataclass
class IOBinding:
    """I/O metadata accompanying a bitstream (stands in for IOB config).

    ``input_order`` fixes the stimulus column order; ``taps`` maps
    incoming-wire coordinates ``(row, col, side, w)`` to the input index
    driven onto that wire by the long-line network; ``output_probes``
    lists, per output bit, the probed CLB signal ``(row, col,
    signal_index)`` with signal 0-3 = LUT, 4-7 = FF.
    """

    input_order: list[str] = field(default_factory=list)
    taps: dict[tuple[int, int, int, int], int] = field(default_factory=dict)
    output_probes: list[tuple[int, int, int]] = field(default_factory=list)
    #: long-line escapes: incoming-wire coordinate -> driving internal
    #: signal ``(row, col, signal_index)`` (see the router's ``net_taps``)
    net_taps: dict[tuple[int, int, int, int], tuple[int, int, int]] = field(
        default_factory=dict
    )


def generate_bitstream(routed: RoutedDesign) -> tuple[ConfigBitstream, IOBinding]:
    """Encode a routed design as configuration bits + I/O binding."""
    placement = routed.placement
    device = placement.device
    nl = placement.netlist
    bits = ConfigBitstream(device.geometry)

    def set_clb_bit(row: int, col: int, intra: int, value: int = 1) -> None:
        frame, off = device.clb_bit_frame(row, col, intra)
        bits.frame_view(frame)[off] = value

    # -- LUT contents and FF configs ---------------------------------------
    for cell in nl.cells():
        if cell.kind is CellKind.LUT:
            site = placement.lut_site[cell.name]
            for entry in range(16):
                set_clb_bit(
                    site.row,
                    site.col,
                    lut_content_offset(site.pos, entry),
                    (cell.table >> entry) & 1,
                )
        elif cell.kind is CellKind.CONST:
            site = placement.lut_site[cell.name]
            if cell.value:
                for entry in range(16):
                    set_clb_bit(site.row, site.col, lut_content_offset(site.pos, entry), 1)
            # constant 0: table stays all-zero
        elif cell.kind is CellKind.FF:
            site = placement.ff_site[cell.name]
            if cell.init:
                set_clb_bit(site.row, site.col, ff_config_offset(site.pos, FF_INIT), 1)
            if cell.name not in placement.merged_ffs:
                set_clb_bit(site.row, site.col, ff_config_offset(site.pos, FF_BYPASS), 1)

    # -- route-through buffers ------------------------------------------------
    for (row, col, pos), (_net, buf_pin) in routed.route_throughs.items():
        for entry in range(16):
            set_clb_bit(
                row,
                col,
                lut_content_offset(pos, entry),
                (entry >> buf_pin) & 1,
            )

    # -- mux selections --------------------------------------------------------
    for (row, col, pos, pin), ci in routed.imux_select.items():
        set_clb_bit(row, col, imux_offset(pos, pin, ci), 1)
    for (row, col, slc, which), ci in routed.ctrl_select.items():
        set_clb_bit(row, col, ctrl_mux_offset(slc, which, ci), 1)
    for (row, col, port), signal in routed.port_select.items():
        set_clb_bit(row, col, output_mux_offset(port, signal), 1)

    # -- clock: every slice clocked (default CAD behaviour) -----------------
    for row in range(device.rows):
        for col in range(device.cols):
            for slc in range(2):
                set_clb_bit(row, col, ctrl_mux_offset(slc, CTRL_CLK, 0), 1)

    # -- PIPs ---------------------------------------------------------------
    for row, col, d, w in routed.drive_pips:
        set_clb_bit(row, col, pip_drive_offset(Direction(d), w), 1)
    for row, col, d_in, w in routed.straight_pips:
        set_clb_bit(row, col, pip_straight_offset(Direction(d_in), w), 1)
    for row, col, d_in, perp, w in routed.turn_pips:
        set_clb_bit(row, col, pip_turn_offset(Direction(d_in), perp, w), 1)

    # -- I/O binding ----------------------------------------------------------
    io = IOBinding(input_order=list(nl.inputs))
    input_index = {name: i for i, name in enumerate(io.input_order)}
    for coords, input_name in routed.tap_of_wire.items():
        io.taps[coords] = input_index[input_name]
    for coords in routed.net_taps:
        io.net_taps[coords] = routed.net_tap_sources[coords]
    for out_name in nl.outputs:
        cell = nl.cell(out_name)
        if cell.kind is CellKind.INPUT:
            raise PlacementError(
                f"output {out_name!r} is a primary input passthrough; unsupported"
            )
        site = placement.site_of(out_name)
        io.output_probes.append((site.row, site.col, placement.signal_index(out_name)))
    return bits, io

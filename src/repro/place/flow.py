"""One-stop implementation flow: design spec -> configured hardware.

:func:`implement` runs place -> route -> configgen -> decode and bundles
every artifact a campaign or testbed needs.  Tests assert that the
decoded hardware is cycle-for-cycle equivalent to the reference-compiled
netlist, which is the correctness contract of the whole CAD substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitstream.bitstream import ConfigBitstream
from repro.designs.spec import DesignSpec
from repro.fpga.device import VirtexDevice
from repro.place.configgen import IOBinding, generate_bitstream
from repro.place.decoder import DecodedDesign, decode_bitstream
from repro.place.placer import Placement, place_design
from repro.place.router import RoutedDesign, route_design

__all__ = ["HardwareDesign", "implement"]


@dataclass
class HardwareDesign:
    """Everything produced by implementing one design on one device."""

    spec: DesignSpec
    device: VirtexDevice
    placement: Placement
    routed: RoutedDesign
    bitstream: ConfigBitstream  # the golden configuration
    io: IOBinding
    decoded: DecodedDesign

    @property
    def used_slices(self) -> int:
        return self.placement.used_slices

    @property
    def utilization(self) -> float:
        return self.placement.utilization

    def summary(self) -> str:
        s = self.spec.netlist.stats()
        return (
            f"{self.spec.name} on {self.device.name}: "
            f"{self.used_slices} slices ({100 * self.utilization:.1f}%), "
            f"{s['luts']} LUTs, {s['ffs']} FFs, "
            f"{self.routed.n_pips_on} PIPs, "
            f"{len(self.decoded.halflatch_node)} half-latches"
        )


def implement(spec: DesignSpec, device: VirtexDevice, n_spare: int = 32) -> HardwareDesign:
    """Place, route, encode and decode ``spec`` on ``device``."""
    placement = place_design(spec.netlist, device)
    routed = route_design(placement)
    bits, io = generate_bitstream(routed)
    decoded = decode_bitstream(device, bits, io, n_spare=n_spare)
    return HardwareDesign(spec, device, placement, routed, bits, io, decoded)

"""Technology mapping: netlist -> placement -> routing -> bitstream.

The pipeline replaces the Xilinx CAD flow:

* :mod:`repro.place.placer` packs cells into CLB positions (LUT/FF
  pairing, slice counting — Table I's "Logic Slices" column);
* :mod:`repro.place.router` realises nets on the single-wire fabric
  (output ports, drive/straight/turn PIPs, input-mux selections);
* :mod:`repro.place.configgen` writes the configuration bits;
* :mod:`repro.place.decoder` reads *any* bitstream — including corrupted
  ones — back into an executable :class:`CompiledDesign`, and computes
  sparse :class:`Patch` objects for single-bit flips (the fault-injection
  fast path).
"""

from repro.place.placer import Placement, Site, place_design
from repro.place.router import RoutedDesign, route_design
from repro.place.configgen import IOBinding, generate_bitstream
from repro.place.decoder import DecodedDesign, decode_bitstream
from repro.place.flow import HardwareDesign, implement
from repro.place.serde import load_configuration, save_configuration

__all__ = [
    "Placement",
    "Site",
    "place_design",
    "RoutedDesign",
    "route_design",
    "IOBinding",
    "generate_bitstream",
    "DecodedDesign",
    "decode_bitstream",
    "HardwareDesign",
    "implement",
    "save_configuration",
    "load_configuration",
]

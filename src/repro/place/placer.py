"""Deterministic placer: pack netlist cells into CLB positions.

A CLB offers four *positions*, each pairing LUT *k* with FF *k*
(positions 0/1 = slice 0, positions 2/3 = slice 1).  The placer:

* merges a flip-flop with its driving LUT when that LUT drives nothing
  else (the FF then latches the LUT output directly — no routing);
* realises standalone FFs in *bypass* mode (D arrives via the paired
  LUT's pin-0 input mux; the LUT itself is unused);
* realises constant cells as LUT ROMs (all-0 / all-1 tables), the
  explicit alternative to half-latches that RadDRC later exploits;
* fills CLBs four positions at a time along a column-snake order, so
  cells created consecutively by the design generators land in adjacent
  CLBs and most nets are short.

Primary inputs occupy no sites (they arrive on edge/long-line wires, see
the router); design outputs are probed from their cells directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlacementError
from repro.fpga.device import VirtexDevice
from repro.netlist.cells import CellKind
from repro.netlist.netlist import Netlist

__all__ = ["Site", "Placement", "place_design"]


@dataclass(frozen=True)
class Site:
    """One CLB position: (row, col, pos) with pos in 0..3."""

    row: int
    col: int
    pos: int

    @property
    def slice_index(self) -> int:
        """Slice within the CLB: positions 0/1 -> 0, positions 2/3 -> 1."""
        return self.pos // 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"site({self.row},{self.col}:{self.pos})"


@dataclass
class Placement:
    """Result of placing one netlist on one device."""

    device: VirtexDevice
    netlist: Netlist
    #: cell name -> site, for cells realised as a LUT (incl. const ROMs)
    lut_site: dict[str, Site] = field(default_factory=dict)
    #: cell name -> site, for flip-flop cells
    ff_site: dict[str, Site] = field(default_factory=dict)
    #: FF cells merged with their driving LUT (D = LUT output, no bypass)
    merged_ffs: set[str] = field(default_factory=set)
    #: const cells realised as LUT ROMs (name -> constant value)
    const_roms: dict[str, int] = field(default_factory=dict)

    def site_of(self, cell: str) -> Site:
        """Site of any placed cell (LUT or FF realisation)."""
        if cell in self.lut_site:
            return self.lut_site[cell]
        if cell in self.ff_site:
            return self.ff_site[cell]
        raise PlacementError(f"cell {cell!r} has no site (input or unplaced)")

    def signal_index(self, cell: str) -> int:
        """CLB-internal signal index of a cell's output (0-3 LUT, 4-7 FF)."""
        if cell in self.ff_site:
            return 4 + self.ff_site[cell].pos
        if cell in self.lut_site:
            return self.lut_site[cell].pos
        raise PlacementError(f"cell {cell!r} produces no placed signal")

    # -- statistics ------------------------------------------------------

    @property
    def used_positions(self) -> set[Site]:
        return set(self.lut_site.values()) | set(self.ff_site.values())

    @property
    def used_clbs(self) -> set[tuple[int, int]]:
        return {(s.row, s.col) for s in self.used_positions}

    @property
    def used_slices(self) -> int:
        """Occupied slices — the paper's design-size metric (Table I)."""
        return len({(s.row, s.col, s.slice_index) for s in self.used_positions})

    @property
    def utilization(self) -> float:
        """Used slices / device slices (Table I's percentage column)."""
        return self.used_slices / self.device.n_slices


def _snake_sites(device: VirtexDevice):
    """Yield sites CLB by CLB along a boustrophedon column order."""
    for col in range(device.cols):
        rows = range(device.rows) if col % 2 == 0 else range(device.rows - 1, -1, -1)
        for row in rows:
            for pos in range(4):
                yield Site(row, col, pos)


def place_design(netlist: Netlist, device: VirtexDevice) -> Placement:
    """Place ``netlist`` onto ``device``; raises on overflow.

    Deterministic: the same netlist always yields the same placement, so
    campaigns are reproducible bit-for-bit.
    """
    netlist.validate()
    placement = Placement(device, netlist)
    fanout = netlist.fanout()

    # Decide LUT/FF merges: an FF absorbs its driving LUT when that LUT
    # feeds only this FF (classic packing; keeps multiplier cells at one
    # slice per two LUTs).
    merged_lut_of_ff: dict[str, str] = {}
    lut_taken: set[str] = set()
    for cell in netlist.cells():
        if cell.kind is not CellKind.FF:
            continue
        d_src = cell.pins[0]
        src = netlist.cell(d_src) if d_src in netlist else None
        if (
            src is not None
            and src.kind is CellKind.LUT
            and src.name not in lut_taken
            and fanout[src.name] == [cell.name]
        ):
            merged_lut_of_ff[cell.name] = src.name
            lut_taken.add(src.name)

    site_iter = _snake_sites(device)

    def next_site() -> Site:
        try:
            return next(site_iter)
        except StopIteration:
            raise PlacementError(
                f"design {netlist.name!r} does not fit on {device.name} "
                f"({device.n_slices} slices)"
            ) from None

    placed_luts: set[str] = set()
    for cell in netlist.cells():
        if cell.kind is CellKind.INPUT:
            continue  # arrives on routing, no site
        if cell.kind is CellKind.CONST:
            site = next_site()
            placement.lut_site[cell.name] = site
            placement.const_roms[cell.name] = cell.value
        elif cell.kind is CellKind.LUT:
            if cell.name in lut_taken:
                continue  # placed together with its FF
            site = next_site()
            placement.lut_site[cell.name] = site
            placed_luts.add(cell.name)
        elif cell.kind is CellKind.FF:
            site = next_site()
            placement.ff_site[cell.name] = site
            if cell.name in merged_lut_of_ff:
                placement.lut_site[merged_lut_of_ff[cell.name]] = site
                placement.merged_ffs.add(cell.name)
        else:  # pragma: no cover - exhaustive
            raise PlacementError(f"unknown cell kind {cell.kind}")
    return placement

"""Router: realise nets on the single-wire fabric.

Signals travel on single-length wires of a fixed index ``w``: the source
CLB drives wire ``(d, w)`` from an output port (port ``w % 4``), transit
CLBs forward it with straight/turn PIPs (index-preserving), and the sink
selects the arriving wire in its input mux — whose candidate list fixes
the admissible ``(direction, index)`` pairs.  Routing one (net, sink)
pair is therefore a breadth-first search over ``(CLB, incoming-side)``
states at a fixed wire index, seeded with every segment the net already
owns (so fanout reuses its trunk).

Primary inputs are delivered by *long-line taps*: the chosen incoming
wire at the sink's CLB is marked as driven by the input directly,
modelling the IOB + long-line distribution network that sits outside our
bit-level fabric model (deviation recorded in DESIGN.md).  Design
outputs are probed from their cells (virtual probes).

Slice control inputs (CE/SR) route exactly like LUT pins but with the
per-slice control candidate lists; designs that leave CE unconnected get
the half-latch the paper warns about.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.fpga.resources import (
    CTRL_CE,
    CTRL_SR,
    Direction,
    LocalSource,
    WireSource,
    ctrl_candidates,
    imux_candidates,
)
from repro.netlist.cells import CellKind
from repro.place.placer import Placement, Site

__all__ = ["RoutedDesign", "route_design"]

#: (row, col, direction value, wire index) — identifies an outgoing wire.
WireKey = tuple[int, int, int, int]


@dataclass
class RoutedDesign:
    """Complete physical realisation of a placed netlist."""

    placement: Placement
    #: (row, col, lut_pos, pin) -> selected candidate index (0..7)
    imux_select: dict[tuple[int, int, int, int], int] = field(default_factory=dict)
    #: (row, col, slice, which) -> selected candidate index
    ctrl_select: dict[tuple[int, int, int, int], int] = field(default_factory=dict)
    #: (row, col, port) -> internal signal index (0..7)
    port_select: dict[tuple[int, int, int], int] = field(default_factory=dict)
    drive_pips: set[WireKey] = field(default_factory=set)
    #: (row, col, incoming side, w): forward straight across the CLB
    straight_pips: set[WireKey] = field(default_factory=set)
    #: (row, col, incoming side, perp index, w)
    turn_pips: set[tuple[int, int, int, int, int]] = field(default_factory=set)
    #: outgoing wire -> net name (the driving cell)
    wire_net: dict[WireKey, str] = field(default_factory=dict)
    #: input cell name -> incoming-wire coordinates (row, col, side, w)
    input_taps: dict[str, list[tuple[int, int, int, int]]] = field(default_factory=dict)
    #: incoming-wire coordinate -> input cell name (reverse map; these
    #: wires are driven by the long-line network, not by fabric PIPs)
    tap_of_wire: dict[tuple[int, int, int, int], str] = field(default_factory=dict)
    #: long-line escapes for congested internal nets: incoming-wire
    #: coordinate -> driving net (cell name).  These model the hex/long
    #: lines of the real part, whose PIPs sit outside our bit-level
    #: fabric model; the router uses them only when single-line BFS
    #: fails, and their count is a routing-quality metric.
    net_taps: dict[tuple[int, int, int, int], str] = field(default_factory=dict)
    #: long-line escape sources: incoming-wire coordinate -> the driving
    #: CLB signal ``(row, col, signal_index)`` (resolves route-through
    #: buffers too, which have no netlist cell)
    net_tap_sources: dict[tuple[int, int, int, int], tuple[int, int, int]] = field(
        default_factory=dict
    )
    #: route-through buffers: (row, col, pos) -> (net, buffer input pin).
    #: A free LUT configured as a buffer so a congested sink can read
    #: the net through its local imux candidates.
    route_throughs: dict[tuple[int, int, int], tuple[str, int]] = field(
        default_factory=dict
    )

    @property
    def n_pips_on(self) -> int:
        return len(self.drive_pips) + len(self.straight_pips) + len(self.turn_pips)

    @property
    def n_escapes(self) -> int:
        return len(self.net_taps)

    @property
    def n_route_throughs(self) -> int:
        return len(self.route_throughs)


class _RouterState:
    """Mutable router bookkeeping during one :func:`route_design` run."""

    def __init__(self, placement: Placement):
        self.placement = placement
        self.device = placement.device
        self.routed = RoutedDesign(placement)
        #: net name -> set of (row, col, incoming side, w) states it covers
        self.net_states: dict[str, set[tuple[int, int, int, int]]] = {}
        #: taps claimed: incoming coords -> net
        self.claimed_taps: dict[tuple[int, int, int, int], str] = {}
        #: route-through buffers allocated: (row, col, pos) -> (net, pin)
        self.route_throughs: dict[tuple[int, int, int], tuple[str, int]] = {}
        #: positions holding placed cells (route-throughs must avoid them)
        self.occupied_positions: set[Site] = set(placement.used_positions)

    # -- wire ownership -----------------------------------------------------

    def wire_owner(self, key: WireKey) -> str | None:
        return self.routed.wire_net.get(key)

    def incoming_coords_free(self, coords: tuple[int, int, int, int], net: str) -> bool:
        """Can ``net`` use the incoming wire at ``coords``?

        The incoming wire at (r, c) from side d is the neighbour's
        outgoing wire; at the die edge it is a pad wire that only a
        long-line tap can drive.
        """
        r, c, d, w = coords
        owner_tap = self.claimed_taps.get(coords)
        if owner_tap is not None:
            return owner_tap == net
        neighbor = self.device.incoming_wire(r, c, Direction(d), w)
        if neighbor is None:
            return True  # edge pad wire, free for a tap
        key = (neighbor.row, neighbor.col, int(neighbor.direction), neighbor.index)
        owner = self.wire_owner(key)
        return owner is None or owner == net


def _pin_sinks(placement: Placement):
    """Yield every sink to route: (site, kind, pin/which, source cell name).

    kind is 'lut' (LUT input pin) or 'ctrl' (slice CE/SR).
    """
    nl = placement.netlist
    for cell in nl.cells():
        if cell.kind is CellKind.LUT:
            site = placement.lut_site[cell.name]
            for pin, src in enumerate(cell.pins):
                yield site, "lut", pin, src
        elif cell.kind is CellKind.FF:
            site = placement.ff_site[cell.name]
            if cell.name not in placement.merged_ffs:
                # Bypass mode: D arrives via the paired LUT's pin 0.
                yield site, "lut", 0, cell.pins[0]
            if len(cell.pins) >= 2:
                yield site, "ctrl", CTRL_CE, cell.pins[1]
            if len(cell.pins) >= 3:
                yield site, "ctrl", CTRL_SR, cell.pins[2]


def _candidates_for(site: Site, kind: str, pin: int):
    if kind == "lut":
        return imux_candidates(site.pos, pin)
    return ctrl_candidates(site.slice_index, pin)


def _select(state: _RouterState, site: Site, kind: str, pin: int, cand_idx: int) -> None:
    if kind == "lut":
        key = (site.row, site.col, site.pos, pin)
        state.routed.imux_select[key] = cand_idx
    else:
        key = (site.row, site.col, site.slice_index, pin)
        state.routed.ctrl_select[key] = cand_idx


def _route_via_wires(
    state: _RouterState,
    net: str,
    src_site: Site,
    src_signal: int,
    sink_clb: tuple[int, int],
    d_in: Direction,
    w: int,
) -> bool:
    """BFS a path delivering ``net`` into ``sink_clb`` from side ``d_in``
    on wire index ``w``; commits PIPs/ports on success."""
    dev = state.device
    routed = state.routed
    port = w % 4
    port_key = (src_site.row, src_site.col, port)
    existing_port = routed.port_select.get(port_key)
    can_drive = existing_port is None or existing_port == src_signal

    goal = (sink_clb[0], sink_clb[1], int(d_in), w)
    # Seed with states the net already covers at this wire index.
    seeds = {
        s for s in state.net_states.get(net, ()) if s[3] == w
    }
    parents: dict[tuple[int, int, int, int], tuple | None] = {}
    queue: deque[tuple[int, int, int, int]] = deque()
    for s in seeds:
        parents[s] = None
        queue.append(s)

    if can_drive:
        # Drive from the source CLB in each direction.
        for d in Direction:
            dr, dc = d.delta
            nr, nc = src_site.row + dr, src_site.col + dc
            if not (0 <= nr < dev.rows and 0 <= nc < dev.cols):
                continue
            key = (src_site.row, src_site.col, int(d), w)
            owner = state.wire_owner(key)
            if owner is not None and owner != net:
                continue
            stt = (nr, nc, int(d.opposite), w)
            if stt not in parents:
                parents[stt] = ("drive", key)
                queue.append(stt)

    found = goal in parents
    while queue and not found:
        cur = queue.popleft()
        if cur == goal:
            found = True
            break
        r, c, side, _ = cur
        in_dir = Direction(side)
        # Forward straight or turn; outgoing dirs and pip identities.
        hops = [(in_dir.opposite, ("straight", (r, c, int(in_dir), w)))]
        for p, perp in enumerate(in_dir.perpendicular):
            hops.append((perp, ("turn", (r, c, int(in_dir), p, w))))
        for out_dir, pip in hops:
            dr, dc = out_dir.delta
            nr, nc = r + dr, c + dc
            if not (0 <= nr < dev.rows and 0 <= nc < dev.cols):
                continue
            key = (r, c, int(out_dir), w)
            owner = state.wire_owner(key)
            if owner is not None and owner != net:
                continue
            stt = (nr, nc, int(out_dir.opposite), w)
            if stt not in parents:
                parents[stt] = (pip[0], pip[1], cur)
                queue.append(stt)
        if goal in parents:
            found = True

    if goal not in parents:
        return False

    # Commit the path by walking parents back to a seed / drive edge.
    states_added = []
    cur = goal
    while True:
        edge = parents[cur]
        states_added.append(cur)
        if edge is None:
            break  # reused existing net state
        if edge[0] == "drive":
            key = edge[1]
            routed.drive_pips.add(key)
            routed.wire_net[key] = net
            routed.port_select[port_key] = src_signal
            break
        kind_, pip_key, prev = edge
        r, c, side, w_ = cur
        # The outgoing wire of the hop is at the *previous* CLB.
        pr, pc = prev[0], prev[1]
        out_dir = Direction(side).opposite
        wire_key = (pr, pc, int(out_dir), w)
        routed.wire_net[wire_key] = net
        if kind_ == "straight":
            routed.straight_pips.add(pip_key)
        else:
            routed.turn_pips.add(pip_key)
        cur = prev
    state.net_states.setdefault(net, set()).update(states_added)
    return True


def _free_buffer_positions(state: _RouterState, site: Site, cands) -> list[tuple[int | None, Site]]:
    """Candidate buffer positions for a route-through serving ``site``.

    Sink-CLB positions reachable through the pin's local candidates come
    first (zero extra wires), tagged with the candidate index that reads
    them; neighbouring CLBs' free positions follow (tagged None — the
    buffered signal still travels one wire hop to the sink).
    """
    out: list[tuple[int | None, Site]] = []
    for ci, cand in enumerate(cands):
        if isinstance(cand, LocalSource) and cand.index < 4:
            out.append((ci, Site(site.row, site.col, cand.index)))
    dev = state.device
    for d in Direction:
        dr, dc = d.delta
        r, c = site.row + dr, site.col + dc
        if not (0 <= r < dev.rows and 0 <= c < dev.cols):
            continue
        for q in range(4):
            out.append((None, Site(r, c, q)))
    return out


def _route_sink(
    state: _RouterState,
    site: Site,
    kind: str,
    pin: int,
    net_name: str,
    src_site: Site,
    src_signal: int,
    allow_route_through: bool = True,
) -> bool:
    """Realise one (net, sink-pin) connection; commits state on success.

    Resolution ladder: local candidate -> wire BFS -> route-through (a
    free LUT configured as a buffer, fed recursively) -> long-line
    escape.
    """
    placement = state.placement
    cands = _candidates_for(site, kind, pin)

    # 1. Local candidate: same CLB and matching internal index.
    if (src_site.row, src_site.col) == (site.row, site.col):
        for ci, cand in enumerate(cands):
            if isinstance(cand, LocalSource) and cand.index == src_signal:
                _select(state, site, kind, pin, ci)
                return True

    # 2. Wire candidates, preferring the index class whose output
    # port the source already owns (then free ports), so each signal
    # usually consumes a single port.
    wire_cands = []
    for ci, cand in enumerate(cands):
        if not isinstance(cand, WireSource):
            continue
        port_key = (src_site.row, src_site.col, cand.index % 4)
        owner = state.routed.port_select.get(port_key)
        if owner == src_signal:
            pref = 0
        elif owner is None:
            pref = 1
        else:
            pref = 2  # needs a reused trunk; try last
        wire_cands.append((pref, ci, cand))
    wire_cands.sort(key=lambda t: (t[0], t[1]))

    for _, ci, cand in wire_cands:
        coords = (site.row, site.col, int(cand.direction), cand.index)
        if not state.incoming_coords_free(coords, net_name):
            continue
        if coords in state.claimed_taps and state.claimed_taps[coords] != net_name:
            continue
        if _route_via_wires(
            state,
            net_name,
            src_site,
            src_signal,
            (site.row, site.col),
            cand.direction,
            cand.index,
        ):
            _select(state, site, kind, pin, ci)
            return True

    # 3. Route-through: a free LUT — in the sink CLB (read through a
    # local candidate) or a neighbouring CLB (one wire hop) — is
    # configured as a buffer and fed recursively.
    if allow_route_through:
        for local_ci, buf in _free_buffer_positions(state, site, cands):
            pos_key = (buf.row, buf.col, buf.pos)
            existing = state.route_throughs.get(pos_key)
            if existing is not None:
                if existing[0] != net_name:
                    continue
                fed = True  # reuse this net's buffer
            elif buf in state.occupied_positions:
                continue
            else:
                fed = False
            rt_name = f"{net_name}__rt{buf.row}_{buf.col}_{buf.pos}"
            if not fed:
                fed = any(
                    _route_sink(
                        state, buf, "lut", bp, net_name, src_site, src_signal,
                        allow_route_through=False,
                    )
                    for bp in range(4)
                )
                if not fed:
                    continue
            # Record which pin fed the buffer (for the buffer table).
            for bp in range(4):
                if (buf.row, buf.col, buf.pos, bp) in state.routed.imux_select:
                    state.route_throughs[pos_key] = (net_name, bp)
                    state.routed.route_throughs[pos_key] = (net_name, bp)
                    break
            state.occupied_positions.add(buf)
            if local_ci is not None:
                _select(state, site, kind, pin, local_ci)
                return True
            # Deliver the buffered signal to the sink over a wire.
            if _route_sink(
                state, site, kind, pin, rt_name, buf, buf.pos,
                allow_route_through=False,
            ):
                return True
            # Buffer stays allocated but unused for this sink; other
            # sinks of the net may still reuse it.

    # 4. Long-line escape: deliver the net straight onto a candidate
    # incoming wire (models the hex/long lines our single-wire fabric
    # omits).
    for _, ci, cand in wire_cands:
        coords = (site.row, site.col, int(cand.direction), cand.index)
        if not state.incoming_coords_free(coords, net_name):
            continue
        neighbor = state.placement.device.incoming_wire(
            site.row, site.col, cand.direction, cand.index
        )
        if neighbor is not None:
            key = (
                neighbor.row,
                neighbor.col,
                int(neighbor.direction),
                neighbor.index,
            )
            state.routed.wire_net.setdefault(key, net_name)
        state.claimed_taps[coords] = net_name
        state.routed.net_taps[coords] = net_name
        state.routed.net_tap_sources[coords] = (
            src_site.row,
            src_site.col,
            src_signal,
        )
        _select(state, site, kind, pin, ci)
        return True
    return False


def route_design(placement: Placement) -> RoutedDesign:
    """Route every net of a placement; raises :class:`RoutingError`.

    Deterministic: sinks are processed in netlist insertion order and
    candidates in list order.
    """
    state = _RouterState(placement)
    nl = placement.netlist
    ctrl_net: dict[tuple[int, int, int, int], str] = {}

    for site, kind, pin, src_name in _pin_sinks(placement):
        src = nl.cell(src_name)
        cands = _candidates_for(site, kind, pin)

        if kind == "ctrl":
            # Both FFs of a slice share one CE/SR mux: the second FF of
            # a slice reuses the first routing; two *different* nets on
            # one mux is unroutable.
            ckey = (site.row, site.col, site.slice_index, pin)
            prev = ctrl_net.get(ckey)
            if prev == src_name:
                continue
            if prev is not None:
                raise RoutingError(
                    f"slice control mux {ckey} demanded by nets "
                    f"{prev!r} and {src_name!r}"
                )
            ctrl_net[ckey] = src_name

        if src.kind is CellKind.INPUT:
            # Long-line tap: claim a candidate incoming wire for the input.
            done = False
            for ci, cand in enumerate(cands):
                if not isinstance(cand, WireSource):
                    continue
                coords = (site.row, site.col, int(cand.direction), cand.index)
                if state.incoming_coords_free(coords, src_name):
                    neighbor = placement.device.incoming_wire(
                        site.row, site.col, cand.direction, cand.index
                    )
                    if neighbor is not None:
                        key = (
                            neighbor.row,
                            neighbor.col,
                            int(neighbor.direction),
                            neighbor.index,
                        )
                        state.routed.wire_net.setdefault(key, src_name)
                    state.claimed_taps[coords] = src_name
                    state.routed.tap_of_wire[coords] = src_name
                    state.routed.input_taps.setdefault(src_name, []).append(coords)
                    _select(state, site, kind, pin, ci)
                    done = True
                    break
            if not done:
                raise RoutingError(
                    f"no free tap wire for input {src_name!r} at {site}"
                )
            continue

        src_site = placement.site_of(src_name)
        src_signal = placement.signal_index(src_name)
        if not _route_sink(state, site, kind, pin, src_name, src_site, src_signal):
            raise RoutingError(
                f"cannot route net {src_name!r} ({src_site}) to "
                f"{kind} pin {pin} of {site}"
            )
    return state.routed

"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such
as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GeometryError",
    "BitstreamError",
    "FrameAddressError",
    "CRCError",
    "NetlistError",
    "PlacementError",
    "RoutingError",
    "DecodeError",
    "CampaignError",
    "ScrubError",
    "TransientBusError",
    "SEFIError",
    "ECCUncorrectableError",
    "BISTError",
    "MitigationError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Invalid device geometry or an out-of-range resource coordinate."""


class BitstreamError(ReproError):
    """Malformed configuration bitstream or illegal bitstream operation."""


class FrameAddressError(BitstreamError):
    """A frame address does not exist on the target device."""


class CRCError(BitstreamError):
    """A frame failed its cyclic-redundancy check."""


class NetlistError(ReproError):
    """Structurally invalid netlist (dangling net, bad cell pin, ...)."""


class PlacementError(ReproError):
    """The placer could not fit the design onto the device."""


class RoutingError(ReproError):
    """The router could not realise a net with the available wires."""


class DecodeError(ReproError):
    """The bitstream decoder met an unrecoverable inconsistency."""


class CampaignError(ReproError):
    """A fault-injection campaign was misconfigured."""


class ScrubError(ReproError):
    """The on-orbit scrub manager met an unrecoverable condition."""


class TransientBusError(ScrubError):
    """A configuration-port operation failed transiently (succeeds on retry)."""


class SEFIError(ScrubError):
    """The configuration port is hung by a single-event functional
    interrupt; only a modeled power-cycle restores it."""


class ECCUncorrectableError(ScrubError):
    """An ECC word contained more errors than the code can correct."""


class BISTError(ReproError):
    """A built-in self-test harness was misconfigured."""


class MitigationError(ReproError):
    """A mitigation transform (TMR, RadDRC) could not be applied."""


class ValidationError(ReproError):
    """A beam-validation campaign was misconfigured."""

"""Statistics and table helpers shared by benchmarks and reports."""

from repro.analysis.reliability import ReliabilityModel, ReliabilityReport
from repro.analysis.stats import (
    binomial_ci,
    bootstrap_mean_ci,
    poisson_rate_ci,
)
from repro.analysis.tables import format_table

__all__ = [
    "binomial_ci",
    "poisson_rate_ci",
    "bootstrap_mean_ci",
    "format_table",
    "ReliabilityModel",
    "ReliabilityReport",
]

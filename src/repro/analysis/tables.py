"""Table formatting (re-exported from the SEU report module)."""

from repro.seu.report import format_table

__all__ = ["format_table"]

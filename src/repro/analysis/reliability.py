"""On-orbit reliability predictions: sensitivity x environment x scrub.

The quantities a mission planner derives from the paper's measurements:
given a design's configuration sensitivity and persistence ratio, the
orbital upset rate, and the scrub period, predict how often the design
produces wrong outputs, how long errors linger, and what fraction of
mission time is lost — with and without the reset protocol and TMR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.radiation.cross_section import DeviceCrossSection
from repro.radiation.environment import OrbitEnvironment
from repro.seu.campaign import CampaignResult
from repro.utils.units import HOUR

__all__ = ["ReliabilityModel", "ReliabilityReport"]


@dataclass(frozen=True)
class ReliabilityReport:
    """Predicted on-orbit behaviour of one design."""

    device_upsets_per_hour: float
    output_error_rate_per_hour: float
    persistent_error_rate_per_hour: float
    mean_outage_s: float
    availability: float

    def summary(self) -> str:
        return (
            f"{self.device_upsets_per_hour:.3g} upsets/hr -> "
            f"{self.output_error_rate_per_hour:.3g} output errors/hr "
            f"({self.persistent_error_rate_per_hour:.3g} persistent); "
            f"mean outage {self.mean_outage_s:.3g} s, "
            f"availability {100 * self.availability:.4f}%"
        )


@dataclass(frozen=True)
class ReliabilityModel:
    """Fold campaign statistics with the environment and scrub policy.

    ``scrub_period_s`` is the full scan cycle (the paper's 180 ms per
    three XQVR1000s); ``reset_on_repair`` is the paper's recovery
    protocol for persistent errors; ``reset_time_s`` is the outage a
    reset inflicts.
    """

    environment: OrbitEnvironment
    cross_section: DeviceCrossSection
    scrub_period_s: float = 0.180
    reset_on_repair: bool = True
    reset_time_s: float = 0.010

    def device_upset_rate_per_hour(self) -> float:
        return self.environment.device_upset_rate(self.cross_section) * HOUR

    def predict(self, result: CampaignResult) -> ReliabilityReport:
        """Predict on-orbit error behaviour from a campaign result.

        An upset is an output error with probability ``sensitivity``.
        Transient errors last about half a scrub period (detection) on
        average; persistent errors last detection plus the reset (or
        forever-until-reset if the protocol is off — modelled as a full
        period).
        """
        upsets_hr = self.device_upset_rate_per_hour()
        error_rate = upsets_hr * result.sensitivity
        persistent_rate = error_rate * result.persistence_ratio
        transient_rate = error_rate - persistent_rate

        mean_detect = self.scrub_period_s / 2 + self.scrub_period_s / 2
        transient_outage = mean_detect
        if self.reset_on_repair:
            persistent_outage = mean_detect + self.reset_time_s
        else:
            # Without the reset protocol a persistent error survives the
            # repair; assume it is only cleared by the next full
            # reconfiguration opportunity, one scan period later.
            persistent_outage = mean_detect + self.scrub_period_s

        if error_rate > 0:
            mean_outage = (
                transient_rate * transient_outage
                + persistent_rate * persistent_outage
            ) / error_rate
        else:
            mean_outage = 0.0
        downtime_per_hour = (
            transient_rate * transient_outage + persistent_rate * persistent_outage
        )
        availability = max(0.0, 1.0 - downtime_per_hour / HOUR)
        return ReliabilityReport(
            device_upsets_per_hour=upsets_hr,
            output_error_rate_per_hour=error_rate,
            persistent_error_rate_per_hour=persistent_rate,
            mean_outage_s=mean_outage,
            availability=availability,
        )

    def mean_time_between_output_errors_s(self, result: CampaignResult) -> float:
        """MTBF of visible output errors, in seconds."""
        rate = self.device_upset_rate_per_hour() * result.sensitivity / HOUR
        return float("inf") if rate == 0 else 1.0 / rate

    def fleet_availability(
        self, result: CampaignResult, n_devices: int, n_quarantined: int = 0
    ) -> float:
        """Predicted availability of a fleet in degraded operation.

        The scrub path's escalation ladder quarantines devices it cannot
        repair (SEFI budget exhausted, unrecoverable flash image); those
        devices deliver no service while the survivors deliver the
        per-device availability of :meth:`predict`.
        """
        from repro.scrub.mission import fleet_availability

        per_device = self.predict(result).availability
        return fleet_availability(per_device, n_devices, n_quarantined)

"""Small statistics toolbox for experiment reporting.

Sensitivities are binomial proportions over millions of trials; orbit
upset rates are Poisson; detection latencies get bootstrap intervals.
Implemented directly (Wilson score, gamma quantiles) so benchmark output
carries uncertainty without extra dependencies.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sps

__all__ = ["binomial_ci", "poisson_rate_ci", "bootstrap_mean_ci"]


def binomial_ci(successes: int, trials: int, confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    z = float(sps.norm.ppf(0.5 + confidence / 2))
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = z * np.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    return max(0.0, centre - half), min(1.0, centre + half)


def poisson_rate_ci(count: int, exposure: float, confidence: float = 0.95) -> tuple[float, float]:
    """Exact (Garwood) CI for a Poisson rate given a count and exposure."""
    if exposure <= 0:
        raise ValueError("exposure must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    alpha = 1 - confidence
    lo = 0.0 if count == 0 else float(sps.chi2.ppf(alpha / 2, 2 * count)) / 2
    hi = float(sps.chi2.ppf(1 - alpha / 2, 2 * count + 2)) / 2
    return lo / exposure, hi / exposure


def bootstrap_mean_ci(
    samples: np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of a sample."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("need at least one sample")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, samples.size, size=(n_resamples, samples.size))
    means = samples[idx].mean(axis=1)
    alpha = 1 - confidence
    return float(np.quantile(means, alpha / 2)), float(np.quantile(means, 1 - alpha / 2))

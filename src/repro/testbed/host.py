"""Host-side SEU-simulator loop (paper Figure 8) with modeled timing.

The loop per configuration bit: corrupt (a 100 us single-bit partial
reconfiguration through the SLAAC-1V's PCI configuration mode), observe
the X0 comparator while the designs run, log any discrepancy, repair the
bit, reset both designs on error.  The paper measures 214 us per
iteration, putting an exhaustive sweep of the 5.8 Mbit XCV1000 bitstream
at ~20 minutes — the "many orders of magnitude" win over software
simulation.

:class:`SeuSimulatorHost` drives the same protocol against the campaign
engine and accounts modeled hardware time alongside measured host time,
so benchmarks can report both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.seu.campaign import BitVerdict, CampaignConfig, CampaignResult, run_campaign
from repro.testbed.slaac import Slaac1V
from repro.utils.units import MICROSECOND, format_duration

__all__ = ["HostTiming", "InjectionRecord", "SeuSimulatorHost"]


@dataclass(frozen=True)
class HostTiming:
    """Modeled per-iteration costs of the Figure 8 loop."""

    #: single-bit corrupt via PCI partial reconfiguration (paper: 100 us)
    bit_corrupt_s: float = 100 * MICROSECOND
    #: single-bit repair, same mechanism
    bit_repair_s: float = 100 * MICROSECOND
    #: comparator observation + host logging overhead
    observe_log_s: float = 14 * MICROSECOND
    #: design reset after an output error
    reset_s: float = 10 * MICROSECOND

    @property
    def iteration_s(self) -> float:
        """Per-bit loop time (paper: 214 us)."""
        return self.bit_corrupt_s + self.bit_repair_s + self.observe_log_s

    def sweep_time(self, n_bits: int, n_errors: int = 0) -> float:
        """Modeled duration of an exhaustive sweep."""
        return n_bits * self.iteration_s + n_errors * self.reset_s


@dataclass
class InjectionRecord:
    """Log line of one injected fault (the simulator 'notes to file')."""

    linear_bit: int
    frame_index: int
    bit_in_frame: int
    output_error: bool
    persistent: bool
    modeled_time_s: float


@dataclass
class SeuSimulatorHost:
    """Figure 8 host: exhaustive sweep with hardware-time accounting."""

    board: Slaac1V
    timing: HostTiming = field(default_factory=HostTiming)

    def run_exhaustive(
        self,
        config: CampaignConfig | None = None,
        candidate_bits: np.ndarray | None = None,
    ) -> tuple[CampaignResult, float]:
        """Sweep the (block-0) bitstream; returns (result, modeled_seconds).

        The behavioural work is delegated to the campaign engine (it
        *is* the DUT-vs-golden comparison, batched); this layer supplies
        the testbed protocol accounting the paper reports.
        """
        if not self.board.configured:
            self.board.configure()
        result = run_campaign(self.board.hw, config, candidate_bits)
        modeled = self.timing.sweep_time(result.n_candidates, result.n_failures)
        self.board.clock.advance(modeled)
        return result, modeled

    def records_from(self, result: CampaignResult, limit: int | None = None) -> list[InjectionRecord]:
        """Expand a campaign result into per-bit log records."""
        records = []
        t = 0.0
        for bit in result.candidate_bits[: limit if limit else None]:
            v = result.verdicts[int(bit)]
            t += self.timing.iteration_s
            if v in (BitVerdict.FAIL_TRANSIENT, BitVerdict.FAIL_PERSISTENT):
                t += self.timing.reset_s
            frame, off = self.board.hw.bitstream.locate(int(bit))
            records.append(
                InjectionRecord(
                    linear_bit=int(bit),
                    frame_index=frame,
                    bit_in_frame=off,
                    output_error=v
                    in (BitVerdict.FAIL_TRANSIENT, BitVerdict.FAIL_PERSISTENT),
                    persistent=v == BitVerdict.FAIL_PERSISTENT,
                    modeled_time_s=t,
                )
            )
        return records

    def describe_sweep(self, n_bits: int) -> str:
        """Human summary: '5,878,080 bits, 214.0 us/bit, 21.0 min'."""
        total = self.timing.sweep_time(n_bits)
        return (
            f"{n_bits:,} bits, {format_duration(self.timing.iteration_s)}/bit, "
            f"{format_duration(total)}"
        )

"""A live configured FPGA: configuration memory + running design.

The campaign engine works on sparse patches for speed; this class is the
*faithful* object — an FPGA whose behaviour at every clock is decoded
from whatever its configuration memory currently holds.  Partial
reconfiguration through the SelectMAP port re-decodes the device while
preserving flip-flop state (repair without reset); half-latch keepers
live outside the memory and survive everything but a full
configuration's start-up sequence.

This is the device the scrub loop protects in Figure 4: you can upset
it mid-flight, watch outputs corrupt, let the fault manager repair the
frame, and observe whether the design recovers or needs the reset the
persistence analysis predicts.
"""

from __future__ import annotations

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.bitstream.selectmap import SelectMapPort, SelectMapTiming
from repro.errors import CampaignError
from repro.netlist.simulator import BatchSimulator
from repro.place.configgen import IOBinding
from repro.place.decoder import decode_bitstream
from repro.place.flow import HardwareDesign
from repro.utils.simtime import SimClock

__all__ = ["ConfiguredFpga"]


class ConfiguredFpga:
    """One device, its live configuration memory, and its running state.

    Any mutation of the configuration memory (partial writes through
    :attr:`port`, direct ``upset`` calls) marks the decode stale; the
    next clock step re-decodes and *carries the flip-flop state over* —
    exactly what hardware does when a frame is rewritten under a running
    design.  Half-latch keeper values are preserved across partial
    reconfiguration and re-decode, and reset to 1 only by
    :meth:`full_reconfigure`.
    """

    def __init__(self, hw: HardwareDesign, clock: SimClock | None = None):
        self.hw = hw
        self.device = hw.device
        self.io: IOBinding = hw.io
        self.clock = clock if clock is not None else SimClock()
        self.port = SelectMapPort(
            ConfigBitstream(self.device.geometry), self.clock, SelectMapTiming()
        )
        self.port.on_partial_write.append(lambda _f: self._mark_stale())
        self.port.on_full_configure.append(self._on_full_configure)
        self._decoded = None
        self._sim: BatchSimulator | None = None
        self._ff_state: dict[int, int] = {}  # ff row -> value, carried over
        self._keeper_values: dict[tuple, int] = {}  # half-latch site key -> value
        self.cycles_run = 0
        self.port.full_configure(hw.bitstream)

    # -- configuration events -------------------------------------------------

    def _mark_stale(self) -> None:
        if self._sim is not None and self._decoded is not None:
            # Preserve FF state across the re-decode.
            d = self._decoded.design
            vals = self._sim.values[0]
            self._ff_state = {
                r: int(vals[d.ff_nodes[r]]) for r in range(d.n_ffs)
            }
            self._save_keepers()
        self._decoded = None
        self._sim = None

    def _save_keepers(self) -> None:
        assert self._decoded is not None and self._sim is not None
        vals = self._sim.values[0]
        for key, node in self._decoded.halflatch_node.items():
            self._keeper_values[key] = int(vals[node])

    def _on_full_configure(self) -> None:
        # Start-up sequence: state cleared, keepers re-initialised to 1.
        self._decoded = None
        self._sim = None
        self._ff_state = {}
        self._keeper_values = {}

    def _ensure_decoded(self) -> None:
        if self._sim is not None:
            return
        self._decoded = decode_bitstream(self.device, self.port.memory, self.io)
        sim = BatchSimulator(self._decoded.design)
        d = self._decoded.design
        for r, v in self._ff_state.items():
            if r < d.n_ffs:
                sim.values[0, d.ff_nodes[r]] = v
        for key, v in self._keeper_values.items():
            node = self._decoded.halflatch_node.get(key)
            if node is not None:
                sim.values[0, node] = v
                sim.const_values[0, node] = v
        self._sim = sim

    # -- operation --------------------------------------------------------------

    @property
    def n_outputs(self) -> int:
        return len(self.io.output_probes)

    def step(self, stimulus_row: np.ndarray) -> np.ndarray:
        """One clock on whatever hardware the memory currently encodes."""
        self._ensure_decoded()
        assert self._sim is not None
        self.cycles_run += 1
        # step() returns a reused buffer; hand callers a stable copy.
        return self._sim.step(stimulus_row)[0].copy()

    def run(self, stimulus: np.ndarray) -> np.ndarray:
        out = np.empty((stimulus.shape[0], self.n_outputs), dtype=np.uint8)
        for t in range(stimulus.shape[0]):
            out[t] = self.step(stimulus[t])
        return out

    def reset(self) -> None:
        """Design reset (the paper's post-repair protocol): FFs to INIT.

        Keepers are *not* touched — reset is not a start-up sequence.
        """
        self._ensure_decoded()
        assert self._sim is not None and self._decoded is not None
        self._save_keepers()
        self._sim.reset()
        d = self._decoded.design
        for key, v in self._keeper_values.items():
            node = self._decoded.halflatch_node.get(key)
            if node is not None:
                self._sim.values[0, node] = v
                self._sim.const_values[0, node] = v
        self._ff_state = {}

    # -- faults ---------------------------------------------------------------

    def upset_config_bit(self, linear_bit: int) -> None:
        """An SEU in configuration memory (visible to readback)."""
        self.port.memory.flip_bit(linear_bit)
        self._mark_stale()

    def upset_half_latch(self, site_key: tuple) -> None:
        """An SEU in a keeper (invisible to readback).

        ``site_key`` is a key of ``decoded.halflatch_node`` (e.g.
        ``("ctrl", row, col, slice, which)``).
        """
        self._ensure_decoded()
        assert self._decoded is not None and self._sim is not None
        node = self._decoded.halflatch_node.get(site_key)
        if node is None:
            raise CampaignError(f"no half-latch at {site_key}")
        self._sim.values[0, node] ^= 1
        self._sim.const_values[0, node] ^= 1
        self._save_keepers()

    def full_reconfigure(self) -> None:
        """Full reconfiguration + start-up: the only keeper repair."""
        self.port.full_configure(self.hw.bitstream)

    def config_differs_from_golden(self) -> bool:
        return not np.array_equal(self.port.memory.bits, self.hw.bitstream.bits)

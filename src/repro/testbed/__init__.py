"""SLAAC-1V testbed model (paper Figure 6).

The bench-testing platform: three XCV1000s on a PCI board — X1 runs the
golden design, X2 the device under test, X0 compares their outputs
clock-by-clock — plus a dedicated configuration-controller FPGA giving
the host 100 us single-bit partial reconfiguration.  The host-side loop
(Figure 8) corrupts a bit, watches the comparator, logs, repairs:
214 us per bit, the whole 5.8 Mbit XCV1000 bitstream in ~20 minutes.
"""

from repro.testbed.comparator import OutputComparator
from repro.testbed.configured import ConfiguredFpga
from repro.testbed.slaac import Slaac1V
from repro.testbed.host import HostTiming, SeuSimulatorHost, InjectionRecord

__all__ = [
    "OutputComparator",
    "ConfiguredFpga",
    "Slaac1V",
    "HostTiming",
    "SeuSimulatorHost",
    "InjectionRecord",
]

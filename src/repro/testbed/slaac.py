"""The SLAAC-1V board: sockets, crossbar, configuration controller.

Models the bench hardware of paper Figure 6: three user FPGAs behind a
crossbar sharing clock and reset, and an XCV100 configuration
controller giving the PCI host fast partial reconfiguration and
readback of any socket.  The DUT socket (X2) runs with a live, possibly
corrupted configuration; X1 holds the golden copy; X0 the comparator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.bitstream.selectmap import SelectMapPort, SelectMapTiming
from repro.errors import CampaignError
from repro.place.flow import HardwareDesign
from repro.seu.injector import FaultInjector
from repro.testbed.comparator import OutputComparator
from repro.utils.simtime import SimClock

__all__ = ["Slaac1V"]


@dataclass
class _Socket:
    """One FPGA socket with its configuration memory and port."""

    name: str
    memory: ConfigBitstream
    port: SelectMapPort


class Slaac1V:
    """Bench board: X0 comparator, X1 golden, X2 device under test."""

    def __init__(self, hw: HardwareDesign, clock: SimClock | None = None):
        self.hw = hw
        self.clock = clock if clock is not None else SimClock()
        timing = SelectMapTiming()
        geometry = hw.device.geometry
        self.x1 = _Socket(
            "X1", ConfigBitstream(geometry), SelectMapPort(ConfigBitstream(geometry), self.clock, timing)
        )
        self.x2 = _Socket(
            "X2", ConfigBitstream(geometry), SelectMapPort(ConfigBitstream(geometry), self.clock, timing)
        )
        # Ports own their memory objects; keep socket memory aliases honest.
        self.x1.memory = self.x1.port.memory
        self.x2.memory = self.x2.port.memory
        self.comparator = OutputComparator(len(hw.io.output_probes))
        self.injector: FaultInjector | None = None
        self.configured = False

    def configure(self) -> float:
        """Load the design into X1 and X2 (full configuration + startup)."""
        dt = self.x1.port.full_configure(self.hw.bitstream)
        dt += self.x2.port.full_configure(self.hw.bitstream)
        self.injector = FaultInjector(self.x2.memory, self.hw.bitstream)
        self.comparator.reset()
        self.configured = True
        return dt

    def dut_corrupted_bits(self) -> np.ndarray:
        """Bits where the DUT configuration differs from golden."""
        self._check_configured()
        return self.x2.memory.diff(self.hw.bitstream)

    def inject(self, linear_bit: int) -> None:
        """Corrupt one DUT configuration bit via partial reconfiguration."""
        self._check_configured()
        assert self.injector is not None
        self.injector.inject(linear_bit)

    def repair(self, linear_bit: int) -> None:
        """Repair one DUT bit (frame rewrite through the controller)."""
        self._check_configured()
        assert self.injector is not None
        self.injector.repair_bit(linear_bit)

    def _check_configured(self) -> None:
        if not self.configured:
            raise CampaignError("board not configured; call configure() first")

"""The X0 comparator circuit: clock-by-clock golden/DUT comparison.

On the SLAAC-1V the X0 FPGA carries a comparison circuit receiving both
designs' 72-bit outputs through the crossbar; it raises a discrepancy
flag the cycle the DUT deviates.  We model it as a small stateful object
so the host loop reads exactly what the hardware would give it: a
sticky error flag, the first-mismatch cycle, and a discrepancy count.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OutputComparator"]


class OutputComparator:
    """Sticky clock-by-clock output comparator."""

    def __init__(self, width: int):
        self.width = width
        self.reset()

    def reset(self) -> None:
        self._cycle = 0
        self.error_flag = False
        self.first_error_cycle = -1
        self.n_discrepancies = 0
        self.error_bits = np.zeros(self.width, dtype=np.uint8)

    def observe(self, golden: np.ndarray, dut: np.ndarray) -> bool:
        """Feed one cycle of outputs; returns True on mismatch this cycle."""
        diff = np.asarray(golden, dtype=np.uint8) ^ np.asarray(dut, dtype=np.uint8)
        mismatch = bool(np.any(diff))
        if mismatch:
            self.n_discrepancies += 1
            self.error_bits |= diff
            if not self.error_flag:
                self.error_flag = True
                self.first_error_cycle = self._cycle
        self._cycle += 1
        return mismatch

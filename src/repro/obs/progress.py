"""Live progress reporting to stderr.

A deliberately small single-line reporter: campaigns run for minutes,
and the only live questions are "how far along", "how fast", and "is
anything stuck".  Output goes to stderr so stdout stays pipeable
(``repro campaign ... > summary.txt`` is unchanged by ``--progress``).

Like the tracer, progress is verdict-invariant by construction — it
formats numbers it is handed and never touches campaign state.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

__all__ = ["NullProgress", "ProgressReporter", "NULL_PROGRESS"]


class NullProgress:
    """Disabled reporter; every hook is a no-op."""

    enabled = False

    def start(self, label: str, total: int | None = None) -> None:
        pass

    def update(self, done: int, extra: str = "") -> None:
        pass

    def note(self, message: str) -> None:
        pass

    def finish(self, summary: str = "") -> None:
        pass


NULL_PROGRESS = NullProgress()


class ProgressReporter(NullProgress):
    """Throttled ``\\r``-rewriting progress line.

    Repaints at most every ``min_interval`` seconds (plus always on
    :meth:`start`/:meth:`finish`/:meth:`note`) so per-batch updates from
    a hot loop cost a clock read, not a syscall.
    """

    enabled = True

    def __init__(self, stream: TextIO | None = None, min_interval: float = 0.2):
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._label = ""
        self._total: int | None = None
        self._t_start = 0.0
        self._t_last = 0.0
        self._line_len = 0

    def _paint(self, text: str) -> None:
        pad = max(0, self._line_len - len(text))
        self._stream.write("\r" + text + " " * pad)
        self._stream.flush()
        self._line_len = len(text)

    def start(self, label: str, total: int | None = None) -> None:
        self._label = label
        self._total = total
        self._t_start = time.perf_counter()
        self._t_last = 0.0
        of = f"/{total}" if total is not None else ""
        self._paint(f"{label}: 0{of}")

    def update(self, done: int, extra: str = "") -> None:
        now = time.perf_counter()
        if now - self._t_last < self._min_interval:
            return
        self._t_last = now
        elapsed = now - self._t_start
        rate = done / elapsed if elapsed > 0 else 0.0
        if self._total:
            pct = 100.0 * done / self._total
            text = f"{self._label}: {done}/{self._total} ({pct:.1f}%) {rate:.1f}/s"
        else:
            text = f"{self._label}: {done} {rate:.1f}/s"
        if extra:
            text += f" {extra}"
        self._paint(text)

    def note(self, message: str) -> None:
        # Permanent line (e.g. a straggler warning): finish the live
        # line, print the note, resume painting below it.
        self._paint("")
        self._stream.write(f"\r{message}\n")
        self._stream.flush()
        self._line_len = 0
        self._t_last = 0.0

    def finish(self, summary: str = "") -> None:
        elapsed = time.perf_counter() - self._t_start
        text = f"{self._label}: done in {elapsed:.1f}s"
        if summary:
            text += f" — {summary}"
        self._paint(text)
        self._stream.write("\n")
        self._stream.flush()
        self._line_len = 0

"""Structured span tracing: append-only JSONL, verdict-invariant.

A trace is a flat stream of JSON events, one per line, written in the
order they happen.  Hierarchy comes from *spans*: ``span_open`` /
``span_close`` pairs that carry a monotonically-assigned id and an
explicit parent id, so the campaign → phase → shard → batch tree can be
rebuilt from the file alone (:mod:`repro.obs.report`), even when spans
of sibling shards interleave arbitrarily.

The hard contract of the whole :mod:`repro.obs` layer is **verdict
invariance**: tracing only ever *reads* campaign state.  It draws no
random numbers, mutates no batch, and never reorders work — so a traced
run's verdict bytes are identical to an untraced run's (pinned by the
golden-SHA flag matrix in ``tests/seu/test_shrinkers.py``).

Event schema (versioned by the ``schema`` field of ``run_start``):

==============  ==============================================================
``run_start``   ``schema``, ``wall`` (epoch seconds), ``pid``, ``label``,
                ``resumed`` — one per run segment; a resumed campaign appends
                a second segment to the same file
``span_open``   ``span`` (id), ``parent`` (id or null), ``name``, free fields
``span_close``  ``span``, free fields (e.g. ``seconds``, batch counts)
``point``       instantaneous event: ``kind``, current span, free fields
``heartbeat``   liveness sample: in-flight workers/shards with elapsed times
``counters``    kernel-counter sample (:data:`~repro.netlist.simulator.KERNEL_COUNTERS`)
``run_end``     closes a segment
==============  ==============================================================

Every event carries ``t``, seconds since its segment's ``run_start`` on
the monotonic clock, so durations are robust against wall-clock steps.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any

__all__ = ["SCHEMA_VERSION", "NullTracer", "TraceWriter", "NULL_TRACER"]

#: version of the event schema written by :class:`TraceWriter` (and the
#: newest version :mod:`repro.obs.report` understands)
SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce one field value to something ``json.dumps`` accepts.

    Numpy scalars (the common case: counters, seconds) are unwrapped via
    their ``item()``; anything else unknown becomes its ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class NullTracer:
    """The disabled tracer: every hook is a cheap no-op.

    Campaign hot paths guard field construction with ``tracer.enabled``
    so an untraced run pays one attribute read per hook site, nothing
    more.  :class:`TraceWriter` subclasses this, keeping one method
    surface for both.
    """

    enabled = False

    def open_span(self, name: str, parent: int | None = None, **fields: Any) -> int:
        return -1

    def close_span(self, span_id: int, **fields: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, **fields: Any):
        """Context-manager sugar over :meth:`open_span`/:meth:`close_span`."""
        span_id = self.open_span(name, **fields)
        try:
            yield span_id
        finally:
            self.close_span(span_id)

    def point(self, kind: str, **fields: Any) -> None:
        pass

    def heartbeat(self, workers: list[dict[str, Any]], **fields: Any) -> None:
        pass

    def counters(self, sample: dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class TraceWriter(NullTracer):
    """Append-only JSONL span tracer.

    Opens ``path`` in append mode so a resumed campaign extends the
    original file with a second ``run_start`` segment (``resumed=True``)
    instead of destroying the killed run's partial trace.  Each line is
    flushed as written: a killed process leaves at worst one truncated
    final line, which the report parser skips and counts.

    Thread-safe (the heartbeat monitor emits from between-completion
    waits) and fork-safe: a worker process inheriting the writer keeps
    the parent's file handle, so :meth:`_emit` drops events from any pid
    other than the opening one rather than interleaving corrupt lines.
    """

    enabled = True

    def __init__(self, path: str, label: str = "run", resumed: bool = False):
        self.path = str(path)
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._next_span = 0
        self._stack: list[int] = []  # open span ids, innermost last
        self._file: io.TextIOBase | None = open(self.path, "a", encoding="utf-8")
        self._emit(
            {
                "ev": "run_start",
                "schema": SCHEMA_VERSION,
                "wall": time.time(),
                "pid": self._pid,
                "label": str(label),
                "resumed": bool(resumed),
            }
        )

    # -- low-level emission ---------------------------------------------------

    def _emit(self, event: dict[str, Any]) -> None:
        if os.getpid() != self._pid:  # forked child: never write
            return
        with self._lock:
            if self._file is None:
                return
            event.setdefault("t", round(time.perf_counter() - self._t0, 6))
            self._file.write(json.dumps(event, separators=(",", ":")) + "\n")
            self._file.flush()

    def _event(self, ev: str, fields: dict[str, Any], **core: Any) -> dict[str, Any]:
        event: dict[str, Any] = {"ev": ev, **core}
        for key, value in fields.items():
            if key not in event:
                event[key] = _jsonable(value)
        return event

    # -- the tracer surface ---------------------------------------------------

    def open_span(self, name: str, parent: int | None = None, **fields: Any) -> int:
        with self._lock:
            span_id = self._next_span
            self._next_span += 1
            if parent is None and self._stack:
                parent = self._stack[-1]
            self._stack.append(span_id)
        self._emit(self._event("span_open", fields, span=span_id, parent=parent, name=name))
        return span_id

    def close_span(self, span_id: int, **fields: Any) -> None:
        if span_id < 0:
            return
        with self._lock:
            # Sibling spans (shards in flight) close in completion order,
            # not LIFO — remove wherever it sits.
            try:
                self._stack.remove(span_id)
            except ValueError:
                pass
        self._emit(self._event("span_close", fields, span=span_id))

    def point(self, kind: str, **fields: Any) -> None:
        with self._lock:
            current = self._stack[-1] if self._stack else None
        self._emit(self._event("point", fields, kind=kind, span=current))

    def heartbeat(self, workers: list[dict[str, Any]], **fields: Any) -> None:
        self._emit(self._event("heartbeat", fields, workers=_jsonable(workers)))

    def counters(self, sample: dict[str, Any]) -> None:
        self._emit(self._event("counters", {str(k): _jsonable(v) for k, v in sample.items()}))

    def close(self) -> None:
        if os.getpid() != self._pid:
            return
        with self._lock:
            if self._file is None:
                return
            # Close any spans left open (a crashed phase) so the file
            # stays structurally well formed.
            now = round(time.perf_counter() - self._t0, 6)
            for span_id in reversed(self._stack):
                self._file.write(
                    json.dumps(
                        {"ev": "span_close", "span": span_id, "t": now, "aborted": True},
                        separators=(",", ":"),
                    )
                    + "\n"
                )
            self._stack.clear()
            self._file.write(
                json.dumps({"ev": "run_end", "t": now}, separators=(",", ":")) + "\n"
            )
            self._file.flush()
            self._file.close()
            self._file = None

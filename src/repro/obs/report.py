"""Post-hoc trace analysis: parse a JSONL trace and render a report.

The parser is deliberately forgiving about the ways a real trace file
gets damaged — a killed process truncates the final line, a resumed
campaign appends a second ``run_start`` segment, a crashed phase leaves
spans unclosed — because the report is most valuable exactly when a run
did *not* end cleanly.  Malformed lines are counted, not fatal; span
ids restart per segment, so events are scoped to the segment whose
``run_start`` most recently preceded them.

``render_report`` produces the ``repro report`` output: per-segment
span tree with durations, the critical path (the chain of
longest-duration children from the root), a per-stage time breakdown
aggregated by span name, and the collapse/retire savings recorded in
the final telemetry point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.obs.trace import SCHEMA_VERSION

__all__ = ["Span", "Segment", "Trace", "load_trace", "render_report", "report_dict"]


@dataclass
class Span:
    """One reconstructed span: an open event and (usually) its close."""

    span_id: int
    name: str
    parent: int | None
    t_open: float
    t_close: float | None = None
    fields: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.t_close is not None

    @property
    def duration(self) -> float:
        if self.t_close is None:
            return 0.0
        return max(0.0, self.t_close - self.t_open)


@dataclass
class Segment:
    """Everything between one ``run_start`` and the next (or EOF)."""

    schema: int
    label: str
    resumed: bool
    pid: int | None = None
    wall: float | None = None
    ended: bool = False
    spans: dict[int, Span] = field(default_factory=dict)
    roots: list[Span] = field(default_factory=list)
    points: list[dict[str, Any]] = field(default_factory=list)
    heartbeats: list[dict[str, Any]] = field(default_factory=list)
    counters: list[dict[str, Any]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max((s.t_close for s in self.spans.values() if s.closed), default=0.0)

    def last_point(self, kind: str) -> dict[str, Any] | None:
        for point in reversed(self.points):
            if point.get("kind") == kind:
                return point
        return None


@dataclass
class Trace:
    """A parsed trace file: one or more run segments."""

    path: str
    segments: list[Segment] = field(default_factory=list)
    malformed: int = 0
    orphans: int = 0  # events outside any run_start segment

    @property
    def resumed(self) -> bool:
        return any(s.resumed for s in self.segments)


def load_trace(path: str) -> Trace:
    """Parse a JSONL trace file into segments of reconstructed spans."""
    trace = Trace(path=str(path))
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read trace file {path!r}: {exc}") from exc
    current: Segment | None = None
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                trace.malformed += 1
                continue
            if not isinstance(event, dict) or "ev" not in event:
                trace.malformed += 1
                continue
            ev = event["ev"]
            if ev == "run_start":
                current = Segment(
                    schema=int(event.get("schema", 0)),
                    label=str(event.get("label", "run")),
                    resumed=bool(event.get("resumed", False)),
                    pid=event.get("pid"),
                    wall=event.get("wall"),
                )
                trace.segments.append(current)
                continue
            if current is None:
                trace.orphans += 1
                continue
            if ev == "span_open":
                span = Span(
                    span_id=int(event.get("span", -1)),
                    name=str(event.get("name", "?")),
                    parent=event.get("parent"),
                    t_open=float(event.get("t", 0.0)),
                    fields={
                        k: v
                        for k, v in event.items()
                        if k not in ("ev", "span", "parent", "name", "t")
                    },
                )
                current.spans[span.span_id] = span
                parent = current.spans.get(span.parent) if span.parent is not None else None
                if parent is not None:
                    parent.children.append(span)
                else:
                    current.roots.append(span)
            elif ev == "span_close":
                span = current.spans.get(event.get("span"))
                if span is None:
                    trace.orphans += 1
                    continue
                span.t_close = float(event.get("t", span.t_open))
                span.fields.update(
                    {k: v for k, v in event.items() if k not in ("ev", "span", "t")}
                )
            elif ev == "point":
                current.points.append(event)
            elif ev == "heartbeat":
                current.heartbeats.append(event)
            elif ev == "counters":
                current.counters.append(event)
            elif ev == "run_end":
                current.ended = True
            else:
                trace.malformed += 1
    if not trace.segments:
        raise ReproError(
            f"trace file {path!r} contains no run_start event "
            f"({trace.malformed} malformed line(s))"
        )
    return trace


# -- rendering ----------------------------------------------------------------

_MAX_CHILDREN = 10  # span-tree fan-out cap: beyond this, siblings are summarized


def _span_label(span: Span) -> str:
    detail = ""
    interesting = {
        k: v
        for k, v in span.fields.items()
        if k in ("index", "batches", "bits", "n_batches", "salt", "aborted")
    }
    if interesting:
        detail = " " + " ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
    status = f"{span.duration:.3f}s" if span.closed else "UNCLOSED"
    return f"{span.name}{detail}  [{status}]"


def _render_span(span: Span, indent: int, lines: list[str]) -> None:
    lines.append("  " * indent + _span_label(span))
    shown = span.children[:_MAX_CHILDREN]
    for child in shown:
        _render_span(child, indent + 1, lines)
    hidden = span.children[_MAX_CHILDREN:]
    if hidden:
        total = sum(c.duration for c in hidden)
        lines.append(
            "  " * (indent + 1)
            + f"... {len(hidden)} more sibling span(s)  [{total:.3f}s total]"
        )


def _critical_path(root: Span) -> list[Span]:
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda s: s.duration)
        path.append(node)
    return path


def _stage_breakdown(segment: Segment) -> list[tuple[str, int, float]]:
    totals: dict[str, tuple[int, float]] = {}
    for span in segment.spans.values():
        count, seconds = totals.get(span.name, (0, 0.0))
        totals[span.name] = (count + 1, seconds + span.duration)
    rows = [(name, count, seconds) for name, (count, seconds) in totals.items()]
    rows.sort(key=lambda r: -r[2])
    return rows


def _savings_lines(segment: Segment) -> list[str]:
    telem = segment.last_point("telemetry")
    if telem is None:
        return ["  (no telemetry point recorded)"]
    lines = []
    n_simulated = telem.get("n_simulated")
    n_collapsed = telem.get("n_collapsed", 0)
    if n_collapsed:
        pct = f" ({100.0 * n_collapsed / n_simulated:.1f}%)" if n_simulated else ""
        lines.append(f"  collapse: {n_collapsed} of {n_simulated} faults folded{pct}")
    else:
        lines.append("  collapse: off or nothing folded")
    retired = telem.get("machines_retired", 0)
    if retired:
        lines.append(
            f"  retire:   {retired} machine(s) retired early, "
            f"{telem.get('machine_cycles_saved', 0)} machine-cycles saved, "
            f"{telem.get('batch_compactions', 0)} batch compaction(s)"
        )
    else:
        lines.append("  retire:   off or no machines retired")
    return lines


def _ff_cache_lines(segment: Segment) -> list[str]:
    """The temporal fast-forward / result-cache section.

    Rendered only when the run skipped cycles or touched a result store
    (a run with both features off keeps its report unchanged).  Counts
    come from the final telemetry point; the ``cache_hit`` trace points
    add where the hits landed (whole sweep vs individual shards).
    """
    telem = segment.last_point("telemetry")
    if telem is None:
        return []
    skipped = telem.get("ff_cycles_skipped", 0)
    hits = telem.get("cache_hits", 0)
    misses = telem.get("cache_misses", 0)
    if not (skipped or hits or misses):
        return []
    lines = ["", "fast-forward / result cache:"]
    if skipped:
        lines.append(
            f"  fast-forward: {skipped} golden machine-cycle(s) skipped "
            f"via snapshot restore"
        )
    else:
        lines.append("  fast-forward: off or nothing skipped")
    if hits or misses:
        rate = telem.get("cache_hit_rate", 0.0)
        lines.append(
            f"  cache:        {hits} hit(s) / {misses} miss(es) "
            f"({100.0 * rate:.1f}% served), "
            f"{telem.get('cache_bytes', 0)} cached byte(s) read"
        )
        scopes: dict[str, int] = {}
        for point in segment.points:
            if point.get("kind") == "cache_hit":
                scope = str(point.get("scope", "?"))
                scopes[scope] = scopes.get(scope, 0) + 1
        if scopes:
            detail = ", ".join(
                f"{n} {scope}-level" for scope, n in sorted(scopes.items())
            )
            lines.append(f"  hits:         {detail}")
    return lines


_RECOVERY_KINDS = (
    "retry",
    "speculate",
    "pool_rebuild",
    "quarantine",
    "straggler",
    "worker_join",
    "worker_leave",
    "requeue",
    "late_result",
)


def _recovery_lines(segment: Segment) -> list[str]:
    """The fault-recovery timeline: what the shard executor had to do.

    Rendered only when recovery points exist (an undisturbed run keeps
    its report unchanged).  Counts come from the trace points; the
    telemetry point (when present) cross-checks them and adds the
    speculation win rate and candidates lost to quarantine.
    """
    counts = {kind: 0 for kind in _RECOVERY_KINDS}
    for point in segment.points:
        kind = point.get("kind")
        if kind in counts:
            counts[kind] += 1
    if not any(counts.values()):
        return []
    lines = ["", "recovery:"]
    telem = segment.last_point("telemetry") or {}
    if counts["retry"]:
        lines.append(f"  retries:      {counts['retry']} failed launch(es) retried")
    if counts["straggler"] or counts["speculate"]:
        wins = telem.get("speculative_wins")
        win_text = f", {wins} duplicate(s) won" if wins is not None else ""
        lines.append(
            f"  speculation:  {counts['straggler']} straggler(s) flagged, "
            f"{counts['speculate']} speculative launch(es){win_text}"
        )
    if counts["pool_rebuild"]:
        lines.append(
            f"  pool:         rebuilt {counts['pool_rebuild']} time(s) after worker death"
        )
    if counts["worker_join"] or counts["worker_leave"] or counts["requeue"]:
        steals = telem.get("dist_steals")
        steal_text = f", {steals} shard(s) stolen" if steals else ""
        lines.append(
            f"  membership:   {counts['worker_join']} worker join(s), "
            f"{counts['worker_leave']} leave(s), "
            f"{counts['requeue']} in-flight shard(s) requeued{steal_text}"
        )
    if counts["late_result"]:
        lines.append(
            f"  late results: {counts['late_result']} quarantined shard(s) "
            f"completed during teardown (logged, not merged)"
        )
    if counts["quarantine"]:
        dropped = telem.get("candidates_quarantined")
        drop_text = f" ({dropped} candidate(s) excluded)" if dropped else ""
        lines.append(f"  quarantine:   {counts['quarantine']} shard(s) given up{drop_text}")
        for point in segment.points:
            if point.get("kind") == "quarantine":
                lines.append(
                    f"    {point.get('phase', '?')} {point.get('key', '?')}: "
                    f"{point.get('error', 'unknown error')}"
                )
    return lines


def _span_dict(span: Span) -> dict[str, Any]:
    return {
        "span": span.span_id,
        "name": span.name,
        "t_open": span.t_open,
        "t_close": span.t_close,
        "duration_s": round(span.duration, 6),
        "closed": span.closed,
        "fields": span.fields,
        "children": [_span_dict(c) for c in span.children],
    }


def report_dict(trace: Trace) -> dict[str, Any]:
    """The ``repro report`` content as JSON-serializable data.

    Backs ``repro report --json`` and the service's ``/report`` endpoint
    — the same segments, span trees, critical path and per-stage
    breakdown that :func:`render_report` prints, machine-readable.
    """
    segments = []
    for segment in trace.segments:
        roots = [_span_dict(r) for r in segment.roots]
        critical = []
        if segment.roots:
            main_root = max(segment.roots, key=lambda s: s.duration)
            critical = [
                {"name": s.name, "duration_s": round(s.duration, 6), "closed": s.closed}
                for s in _critical_path(main_root)
            ]
        segments.append(
            {
                "label": segment.label,
                "schema": segment.schema,
                "resumed": segment.resumed,
                "ended": segment.ended,
                "pid": segment.pid,
                "n_spans": len(segment.spans),
                "n_points": len(segment.points),
                "n_heartbeats": len(segment.heartbeats),
                "span_tree": roots,
                "critical_path": critical,
                "stages": [
                    {"name": name, "count": count, "seconds": round(seconds, 6)}
                    for name, count, seconds in _stage_breakdown(segment)
                ],
                "telemetry": segment.last_point("telemetry"),
            }
        )
    return {
        "path": trace.path,
        "schema_version": SCHEMA_VERSION,
        "malformed": trace.malformed,
        "orphans": trace.orphans,
        "resumed": trace.resumed,
        "segments": segments,
    }


def render_report(trace: Trace) -> str:
    """Render the ``repro report`` text for a parsed trace."""
    lines: list[str] = []
    lines.append(f"trace: {trace.path}")
    health = []
    if trace.malformed:
        health.append(f"{trace.malformed} malformed line(s) skipped")
    if trace.orphans:
        health.append(f"{trace.orphans} orphan event(s)")
    if health:
        lines.append("note: " + ", ".join(health))
    for i, segment in enumerate(trace.segments):
        schema_note = "" if segment.schema == SCHEMA_VERSION else (
            f" (schema {segment.schema}, reader expects {SCHEMA_VERSION})"
        )
        flags = []
        if segment.resumed:
            flags.append("resumed")
        if not segment.ended:
            flags.append("no clean run_end")
        flag_text = f" [{', '.join(flags)}]" if flags else ""
        lines.append("")
        lines.append(
            f"segment {i + 1}/{len(trace.segments)}: {segment.label}"
            f"{flag_text}{schema_note}"
        )
        if not segment.spans:
            # A warm cache-served sweep never opens a span; the
            # fast-forward / cache section is the whole story then.
            lines.append("  (no spans)")
            lines.extend(_ff_cache_lines(segment))
            continue
        lines.append("")
        lines.append("span tree:")
        for root in segment.roots:
            _render_span(root, 1, lines)
        if segment.roots:
            main_root = max(segment.roots, key=lambda s: s.duration)
            path = _critical_path(main_root)
            lines.append("")
            lines.append("critical path:")
            for span in path:
                lines.append(f"  {_span_label(span)}")
        lines.append("")
        lines.append("per-stage breakdown:")
        for name, count, seconds in _stage_breakdown(segment):
            lines.append(f"  {name:<24} x{count:<6} {seconds:.3f}s")
        lines.append("")
        lines.append("shrinker savings:")
        lines.extend(_savings_lines(segment))
        lines.extend(_ff_cache_lines(segment))
        lines.extend(_recovery_lines(segment))
        if segment.heartbeats:
            stalls = sum(1 for p in segment.points if p.get("kind") == "straggler")
            lines.append("")
            lines.append(
                f"liveness: {len(segment.heartbeats)} heartbeat(s), "
                f"{stalls} straggler warning(s)"
            )
    return "\n".join(lines) + "\n"

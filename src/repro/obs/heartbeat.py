"""Worker heartbeats and straggler detection for sharded runs.

The sharded driver's merge step is order-independent (pinned by
``tests/seu/test_parallel.py::TestMergeOrderIndependence``), which is
what makes heartbeat monitoring admissible at all: when observability
is on, we swap the plain ``as_completed`` drain for a
``concurrent.futures.wait``-with-timeout loop that emits a liveness
sample between completions.  Futures still resolve to exactly the same
values, so verdict bytes are untouched; when observability is off the
original drain is used and the scheduler sees zero difference.

A shard is flagged as a *straggler* when it has been in flight longer
than ``straggler_factor`` × the median duration of completed shards
(needing at least ``min_samples`` completions first, so early noise
doesn't fire the alarm).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, as_completed, wait
from typing import Any, Iterable, Iterator

from repro.obs.progress import NULL_PROGRESS, NullProgress
from repro.obs.trace import NULL_TRACER, NullTracer

__all__ = ["ShardTracker", "completed_with_heartbeats"]


class ShardTracker:
    """Tracks in-flight shards and emits heartbeats/straggler warnings."""

    def __init__(
        self,
        tracer: NullTracer = NULL_TRACER,
        progress: NullProgress = NULL_PROGRESS,
        *,
        kind: str = "shard",
        interval: float = 2.0,
        straggler_factor: float = 4.0,
        min_samples: int = 3,
    ):
        self.tracer = tracer
        self.progress = progress
        self.kind = kind
        self.interval = interval
        self.straggler_factor = straggler_factor
        self.min_samples = min_samples
        self._inflight: dict[Any, float] = {}  # shard key -> submit time
        self._durations: list[float] = []
        self._flagged: set[Any] = set()
        self._last_beat = 0.0
        self.n_done = 0

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.progress.enabled

    def submitted(self, index: int) -> None:
        self._inflight[index] = time.perf_counter()

    def completed(self, index: int) -> None:
        t0 = self._inflight.pop(index, None)
        if t0 is not None:
            self._durations.append(time.perf_counter() - t0)
        self._flagged.discard(index)
        self.n_done += 1

    def _median_duration(self) -> float | None:
        if len(self._durations) < self.min_samples:
            return None
        ordered = sorted(self._durations)
        return ordered[len(ordered) // 2]

    def stragglers(self) -> list[int]:
        """Indices in flight for > factor × median completed duration."""
        median = self._median_duration()
        if median is None or median <= 0:
            return []
        now = time.perf_counter()
        limit = self.straggler_factor * median
        return [i for i, t0 in self._inflight.items() if now - t0 > limit]

    def tick(self, remote: dict[str, dict] | None = None) -> None:
        """Emit one liveness sample: heartbeat event + straggler notes.

        Throttled to one heartbeat per ``interval`` so callers (the
        shard executor ticks after every drain round) can invoke it
        freely without flooding the trace; straggler detection itself is
        unthrottled — :meth:`stragglers` stays exact for callers that
        act on it (speculative re-execution).

        ``remote`` is per-worker liveness detail from a distributed
        backend (worker name -> last-heard age / running task); when
        present it rides along in the heartbeat event, so the straggler
        detector and the trace see TCP workers exactly as they see
        local ones — heartbeats are transport messages, not pool
        introspection.
        """
        now = time.perf_counter()
        if now - self._last_beat < self.interval:
            return
        self._last_beat = now
        workers = [
            {"index": i, "elapsed": round(now - t0, 3)}
            for i, t0 in sorted(self._inflight.items(), key=lambda kv: str(kv[0]))
        ]
        if remote is not None:
            self.tracer.heartbeat(
                workers, kind=self.kind, done=self.n_done, remote=remote
            )
        else:
            self.tracer.heartbeat(workers, kind=self.kind, done=self.n_done)
        for index in self.stragglers():
            if index in self._flagged:
                continue
            self._flagged.add(index)
            elapsed = now - self._inflight[index]
            self.tracer.point(
                "straggler", index=index, phase=self.kind, elapsed=round(elapsed, 3)
            )
            self.progress.note(
                f"warning: {self.kind} {index} still running after {elapsed:.1f}s "
                f"(median {self._median_duration():.1f}s)"
            )


def completed_with_heartbeats(
    futures: Iterable[Future], tracker: ShardTracker | None = None
) -> Iterator[Future]:
    """Yield futures as they complete, ticking ``tracker`` while waiting.

    With no tracker (or a disabled one) this is exactly
    ``concurrent.futures.as_completed`` — the untraced hot path is the
    stock drain.  With an enabled tracker, a ``wait(..., timeout)`` loop
    yields the same completed futures (order may differ from
    ``as_completed``'s, which the merge step is proven insensitive to)
    and calls :meth:`ShardTracker.tick` whenever a wait times out with
    work still in flight.
    """
    pending = set(futures)
    if tracker is None or not tracker.enabled:
        yield from as_completed(pending)
        return
    while pending:
        done, pending = wait(pending, timeout=tracker.interval, return_when=FIRST_COMPLETED)
        if not done:
            tracker.tick()
            continue
        yield from done
        if pending:
            tracker.tick()

"""Verdict-invariant observability: tracing, heartbeats, progress.

The campaign engine, kernel, and scrubber are instrumented against an
*ambient observer* rather than a threaded-through parameter: call sites
ask :func:`get_observer` for the current :class:`Observer` and emit
through it.  By default that observer is disabled (null tracer, null
progress) and every hook is a guarded no-op, so the untraced hot path
pays one attribute read per site.  The CLI (or a test) activates
observability for a lexical scope with::

    with observe(trace_path="t.jsonl", progress=True, label="campaign"):
        run_campaign(...)

The non-negotiable contract, pinned by the golden-SHA flag matrix in
``tests/seu/test_shrinkers.py`` and the property suite in
``tests/property/test_property_trace.py``: enabling any part of this
layer never changes a campaign's verdict bytes.  Observers read state
and timings; they never mutate batches, draw random numbers, or gate
control flow that affects results.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs.heartbeat import ShardTracker, completed_with_heartbeats
from repro.obs.progress import NULL_PROGRESS, NullProgress, ProgressReporter
from repro.obs.report import Segment, Span, Trace, load_trace, render_report
from repro.obs.trace import NULL_TRACER, SCHEMA_VERSION, NullTracer, TraceWriter

__all__ = [
    "SCHEMA_VERSION",
    "NullTracer",
    "TraceWriter",
    "NullProgress",
    "ProgressReporter",
    "ShardTracker",
    "completed_with_heartbeats",
    "Span",
    "Segment",
    "Trace",
    "load_trace",
    "render_report",
    "Observer",
    "NULL_OBSERVER",
    "get_observer",
    "set_observer",
    "observe",
]


@dataclass(frozen=True)
class Observer:
    """The pair of sinks instrumentation emits through."""

    tracer: NullTracer = NULL_TRACER
    progress: NullProgress = NULL_PROGRESS

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.progress.enabled


NULL_OBSERVER = Observer()

_observer: Observer = NULL_OBSERVER


def get_observer() -> Observer:
    """The ambient observer (disabled unless inside :func:`observe`)."""
    return _observer


def set_observer(observer: Observer) -> Observer:
    """Install ``observer`` as ambient; returns the previous one."""
    global _observer
    previous = _observer
    _observer = observer
    return previous


@contextmanager
def observe(
    trace_path: str | None = None,
    progress: bool = False,
    *,
    label: str = "run",
    resumed: bool = False,
):
    """Activate observability for a lexical scope.

    ``trace_path`` opens (append) a :class:`TraceWriter`; ``progress``
    attaches a stderr :class:`ProgressReporter`.  With neither, this is
    a no-op passthrough.  The previous observer is always restored and
    the trace file closed (open spans force-closed, ``run_end``
    written) on exit, including on error.
    """
    tracer: NullTracer = NULL_TRACER
    if trace_path is not None:
        tracer = TraceWriter(trace_path, label=label, resumed=resumed)
    reporter: NullProgress = ProgressReporter() if progress else NULL_PROGRESS
    observer = Observer(tracer=tracer, progress=reporter)
    if not observer.enabled:
        yield NULL_OBSERVER
        return
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)
        tracer.close()

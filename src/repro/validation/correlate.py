"""Correlate beam output errors with simulator predictions.

The paper's analysis: "output errors that have been predicted by the
SEU simulator can be identified ... a 97.6 % correlation between output
errors discovered through radiation testing and output errors predicted
by the simulator."  The unpredicted residual is hidden-state damage —
exactly what this report separates out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.radiation.beam import UpsetTarget
from repro.seu.maps import SensitivityMap
from repro.validation.accelerator import AcceleratorResult

__all__ = ["CorrelationReport", "correlate"]


@dataclass(frozen=True)
class CorrelationReport:
    """Beam-vs-simulator agreement summary."""

    n_upsets: int
    n_output_errors: int
    n_predicted_errors: int
    n_unpredicted_errors: int
    n_halflatch_errors: int
    n_arch_control_errors: int
    n_false_alarms: int  #: simulator-sensitive bits hit without beam error

    @property
    def correlation(self) -> float:
        """Fraction of beam output errors the simulator predicted."""
        if self.n_output_errors == 0:
            return 1.0
        return self.n_predicted_errors / self.n_output_errors

    def summary(self) -> str:
        return (
            f"{self.n_upsets} beam upsets, {self.n_output_errors} output errors, "
            f"{self.n_predicted_errors} predicted by the SEU simulator "
            f"({100 * self.correlation:.1f}% correlation); unpredicted: "
            f"{self.n_halflatch_errors} half-latch + "
            f"{self.n_arch_control_errors} config-logic"
        )


def correlate(result: AcceleratorResult, sensitivity: SensitivityMap) -> CorrelationReport:
    """Classify every beam output error as predicted or not."""
    predicted = 0
    halflatch = 0
    arch = 0
    false_alarms = 0
    for obs in result.observations:
        if obs.target is UpsetTarget.CONFIG_BIT:
            was_predicted = sensitivity.is_sensitive(obs.index)
            if obs.output_error and was_predicted:
                predicted += 1
            elif was_predicted and not obs.output_error:
                false_alarms += 1
        elif obs.output_error and obs.target is UpsetTarget.HALF_LATCH:
            halflatch += 1
        elif obs.output_error and obs.target is UpsetTarget.ARCH_CONTROL:
            arch += 1
    n_errors = result.n_output_errors
    return CorrelationReport(
        n_upsets=result.n_upsets,
        n_output_errors=n_errors,
        n_predicted_errors=predicted,
        n_unpredicted_errors=n_errors - predicted,
        n_halflatch_errors=halflatch,
        n_arch_control_errors=arch,
        n_false_alarms=false_alarms,
    )

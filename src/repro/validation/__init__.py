"""Accelerator validation of the SEU simulator (paper section III-B).

The paper's crucial credibility step: run the designs in a proton beam
(Crocker cyclotron, 63.3 MeV), log every output error and bitstream
upset, and check how many beam-induced output errors the bench SEU
simulator had predicted.  The published answer — 97.6 % — validated the
bench methodology; the 2.4 % residual led to the half-latch discovery.
"""

from repro.validation.accelerator import (
    AcceleratorConfig,
    AcceleratorResult,
    BeamObservation,
    run_accelerator_test,
)
from repro.validation.correlate import CorrelationReport, correlate

__all__ = [
    "AcceleratorConfig",
    "AcceleratorResult",
    "BeamObservation",
    "run_accelerator_test",
    "CorrelationReport",
    "correlate",
]

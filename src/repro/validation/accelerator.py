"""Accelerator test campaign (paper Figures 11-12).

The fixture: a SLAAC-1V on a PCI extender, the DUT socketed in the
beam behind 0.75" aluminium shielding, the golden part outside the
beam.  The test loop (430 us per iteration): compare outputs, log any
error with a timestamp; read back the bitstream at intervals, log and
repair any upset; reset both designs after an output error.  Flux is
tuned for about one upset per 0.5 s observation.

Our beam is :class:`~repro.radiation.beam.ProtonBeam`; upset behaviour
comes from the same decoded-hardware model the SEU simulator uses, plus
the hidden state it *cannot* see: half-latch keepers (criticality from
:func:`~repro.seu.campaign.run_halflatch_campaign`) and configuration
control logic (always fatal).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.place.flow import HardwareDesign
from repro.radiation.beam import ProtonBeam, UpsetTarget
from repro.radiation.cross_section import DeviceCrossSection, WeibullCrossSection
from repro.radiation.hiddenstate import HiddenStateModel
from repro.seu.maps import SensitivityMap
from repro.utils.rng import derive_rng
from repro.utils.units import MICROSECOND

__all__ = [
    "AcceleratorConfig",
    "BeamObservation",
    "AcceleratorResult",
    "run_accelerator_test",
]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Beam-time configuration."""

    exposure_s: float = 600.0
    observation_s: float = 0.5
    iteration_s: float = 430 * MICROSECOND
    upsets_per_observation: float = 1.0
    hidden_fraction: float = 0.0042
    arch_control_fraction: float = 0.10
    seed: int = 0


@dataclass(frozen=True)
class BeamObservation:
    """One logged upset: what it hit and what the fixture saw."""

    time_s: float
    target: UpsetTarget
    index: int
    output_error: bool
    bitstream_error_detected: bool
    repaired: bool


@dataclass
class AcceleratorResult:
    """Full log of one beam exposure."""

    config: AcceleratorConfig
    observations: list[BeamObservation] = field(default_factory=list)
    modeled_beam_seconds: float = 0.0

    @property
    def n_upsets(self) -> int:
        return len(self.observations)

    @property
    def n_output_errors(self) -> int:
        return sum(1 for o in self.observations if o.output_error)

    @property
    def n_bitstream_upsets(self) -> int:
        return sum(1 for o in self.observations if o.bitstream_error_detected)

    @property
    def n_iterations(self) -> int:
        return int(self.modeled_beam_seconds / self.config.iteration_s)


def run_accelerator_test(
    hw: HardwareDesign,
    sensitivity: SensitivityMap,
    halflatch_errors: dict[int, bool],
    config: AcceleratorConfig | None = None,
) -> AcceleratorResult:
    """Simulate one beam exposure of the design under test.

    ``sensitivity`` is the exhaustive bench-campaign map (the simulator's
    prediction *and* the configured fabric's actual behaviour — they
    coincide, which is the point of bitstream-defined hardware);
    ``halflatch_errors`` maps half-latch node -> causes an output error,
    from :func:`~repro.seu.campaign.run_halflatch_campaign`.
    """
    config = config or AcceleratorConfig()
    rng = derive_rng(config.seed, "beam", hw.spec.name)
    hidden = HiddenStateModel.from_decoded(hw.decoded)
    if hidden.n_sites == 0:
        raise ValidationError("design exposes no hidden state to sample")

    xs = DeviceCrossSection(
        WeibullCrossSection(), hw.device.block0_bits, config.hidden_fraction
    )
    beam = ProtonBeam.tuned_for(
        xs,
        upsets_per_observation=config.upsets_per_observation,
        observation_s=config.observation_s,
    )
    upsets = beam.sample_upsets(
        xs,
        config.exposure_s,
        hw.device.block0_bits,
        hidden.n_sites,
        rng,
        arch_control_fraction=config.arch_control_fraction,
    )

    result = AcceleratorResult(config, modeled_beam_seconds=config.exposure_s)
    for upset in upsets:
        if upset.target is UpsetTarget.CONFIG_BIT:
            err = sensitivity.is_sensitive(upset.index)
            detected = True  # readback sees every config-bit upset
            repaired = True
        elif upset.target is UpsetTarget.HALF_LATCH:
            node = int(hidden.nodes[upset.index])
            err = bool(halflatch_errors.get(node, False))
            detected = False  # invisible to readback
            repaired = False  # partial reconfiguration cannot restore it
        else:  # ARCH_CONTROL: device unprograms — unmistakable error
            err = True
            detected = False
            repaired = False
        result.observations.append(
            BeamObservation(
                time_s=upset.time_s,
                target=upset.target,
                index=upset.index,
                output_error=err,
                bitstream_error_detected=detected,
                repaired=repaired,
            )
        )
    return result

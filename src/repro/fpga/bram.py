"""Block SelectRAM model with the paper's readback interactions.

Virtex BRAMs are 4-kbit dual-aspect blocks whose *content* lives in
dedicated configuration frames.  Two behaviours from paper section II-C
matter for fault management and are modelled here:

* during readback the configuration logic takes over the address lines,
  so user reads/writes while a readback is in progress are unreliable
  (we raise unless the caller stops the clock);
* readback corrupts the BRAM *output register*, so designs must not
  trust the registered read value right after a readback.
"""

from __future__ import annotations

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.errors import BitstreamError
from repro.fpga.geometry import BRAM_BITS_PER_BLOCK

__all__ = ["BlockRAM", "BRAMArray"]


class BlockRAM:
    """One 4-kbit block, organised as 256 x 16 (address-in-data friendly).

    Content is *backed by the configuration bitstream*: writes go to the
    BRAM-content frames, which is why readback and scrubbing interact
    with live memories at all.
    """

    WIDTH = 16
    DEPTH = BRAM_BITS_PER_BLOCK // WIDTH

    def __init__(self, bitstream: ConfigBitstream, bram_col: int, block: int):
        self.bitstream = bitstream
        self.bram_col = bram_col
        self.block = block
        geo = bitstream.geometry
        # Precompute the linear offsets of all 4096 content bits.
        idx = np.empty(BRAM_BITS_PER_BLOCK, dtype=np.int64)
        for off in range(BRAM_BITS_PER_BLOCK):
            frame, bit = geo.bram_content_bit(bram_col, block, off)
            idx[off] = geo.frame_offset(frame) + bit
        self._linear = idx
        self.output_register = 0
        self.output_register_valid = True
        self._readback_active = False

    # -- user ports -------------------------------------------------------

    def write(self, addr: int, value: int) -> None:
        """Synchronous write of one 16-bit word."""
        self._check_port_access("write")
        self._check_addr(addr)
        if not 0 <= value < 1 << self.WIDTH:
            raise BitstreamError(f"value {value} exceeds {self.WIDTH} bits")
        base = addr * self.WIDTH
        for i in range(self.WIDTH):
            self.bitstream.bits[self._linear[base + i]] = (value >> i) & 1
        self.output_register = value
        self.output_register_valid = True

    def read(self, addr: int) -> int:
        """Synchronous read; loads (and returns) the output register."""
        self._check_port_access("read")
        self._check_addr(addr)
        base = addr * self.WIDTH
        value = 0
        for i in range(self.WIDTH):
            if self.bitstream.bits[self._linear[base + i]]:
                value |= 1 << i
        self.output_register = value
        self.output_register_valid = True
        return value

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.DEPTH:
            raise BitstreamError(f"address {addr} out of range [0, {self.DEPTH})")

    def _check_port_access(self, op: str) -> None:
        if self._readback_active:
            raise BitstreamError(
                f"BRAM {op} during readback: the configuration logic owns "
                "the address lines (stop the clock, paper section II-C)"
            )

    # -- readback interactions -----------------------------------------------

    def begin_readback(self) -> None:
        self._readback_active = True

    def end_readback(self, rng: np.random.Generator | None = None) -> None:
        """Readback completion corrupts the output register."""
        self._readback_active = False
        if rng is not None:
            self.output_register = int(rng.integers(1 << self.WIDTH))
        else:
            self.output_register ^= 0xA5A5  # deterministic corruption
        self.output_register_valid = False


class BRAMArray:
    """All block RAMs of one device, backed by one configuration memory."""

    def __init__(self, bitstream: ConfigBitstream):
        geo = bitstream.geometry
        self.blocks: list[BlockRAM] = []
        for col in range(geo.n_bram_cols):
            for blk in range(geo.bram_blocks_per_col):
                self.blocks.append(BlockRAM(bitstream, col, blk))

    def __len__(self) -> int:
        return len(self.blocks)

    def __getitem__(self, i: int) -> BlockRAM:
        return self.blocks[i]

"""Intra-CLB configuration-bit map and routing-fabric descriptors.

Each CLB owns ``864`` configuration bits (48 frames x 18 bits, see
:mod:`repro.fpga.geometry`).  This module fixes what every one of those
bits *means* — the contract shared by the configuration generator
(:mod:`repro.place.configgen`), the decoder (:mod:`repro.place.decoder`)
and the SEU campaign's structural pre-filter.

CLB contents (Virtex slice model)
---------------------------------
Two slices per CLB, each with two 4-input LUTs and two flip-flops, giving
per CLB: LUTs 0..3 (slice = lut // 2) and FFs 0..3 (FF *k* is paired with
LUT *k*).

Intra-CLB bit layout (offsets within [0, 864))
----------------------------------------------
========================  =========  ====================================
field                      offsets    meaning
========================  =========  ====================================
LUT content                0..63      16 truth-table bits per LUT
LUT input muxes            64..191    4 pins x 4 LUTs x 8-bit one-hot
FF config                  192..215   6 bits per FF (INIT, BYPASS, ...)
slice control muxes        216..263   CE / SR / CLK, 8-bit one-hot each
output-port muxes          264..295   4 ports x 8-bit one-hot
routing PIPs               296..679   drive / straight / turn PIPs
PIP reserved               680..695   unused PIP sites
carry config               696..711   carry-chain mode bits
reserved                   712..863   manufacturing/test bits (unused)
========================  =========  ====================================

Mux fields are **one-hot**: exactly one set bit selects the candidate
with that index.  A zero-hot (floating) field selects no source, and the
input is held at logic 1 by a *half-latch* — the weak keeper circuit of
paper Figure 13.  A multi-hot field turns on several pass transistors;
we model the resulting contention as the AND of the selected sources
(drivers fighting a keeper pull toward the weakest low).

Routing fabric
--------------
Each CLB drives 24 single-length wires in each of the four directions
(96 wires, as the paper states).  Wire ``(d, w)`` leaving a CLB is seen
by the neighbour in direction ``d`` as "incoming from ``opposite(d)``".
Three PIP families configure the fabric:

* **drive** PIPs put output port ``w % 4`` onto outgoing wire ``(d, w)``
  (ports cover 20 of the 24 wires per direction in the real part; we
  expose all 24 but BIST only exercises the 20 mux-reachable ones);
* **straight** PIPs forward an incoming wire to the opposite side at the
  same index (signal keeps travelling in a straight line);
* **turn** PIPs forward an incoming wire to one of the two perpendicular
  sides at the same index.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.fpga.geometry import CLB_BITS_PER_CLB

__all__ = [
    "Direction",
    "ResourceKind",
    "BitLocation",
    "Source",
    "LocalSource",
    "WireSource",
    "UnconnectedSource",
    "N_LUTS_PER_CLB",
    "N_FFS_PER_CLB",
    "N_SLICES_PER_CLB",
    "LUT_BITS",
    "LUT_PINS",
    "MUX_FIELD_BITS",
    "WIRES_PER_DIRECTION",
    "MUX_REACHABLE_WIRES",
    "N_OUTPUT_PORTS",
    "FF_INIT",
    "FF_BYPASS",
    "FF_CE_INV",
    "FF_SR_EN",
    "FF_LATCH_MODE",
    "FF_RESERVED",
    "CTRL_CE",
    "CTRL_SR",
    "CTRL_CLK",
    "lut_content_offset",
    "imux_offset",
    "ff_config_offset",
    "ctrl_mux_offset",
    "output_mux_offset",
    "pip_drive_offset",
    "pip_straight_offset",
    "pip_turn_offset",
    "carry_offset",
    "classify_intra",
    "imux_candidates",
    "ctrl_candidates",
    "port_of_wire",
]

# -- structural constants ------------------------------------------------

N_LUTS_PER_CLB = 4
N_FFS_PER_CLB = 4
N_SLICES_PER_CLB = 2
LUT_BITS = 16
LUT_PINS = 4
MUX_FIELD_BITS = 8
WIRES_PER_DIRECTION = 24
#: Wires per direction reachable from the output multiplexer (paper: 20).
MUX_REACHABLE_WIRES = 20
N_OUTPUT_PORTS = 4

# FF config bit roles (within the 6-bit per-FF field).
FF_INIT = 0  #: state loaded at configuration / reset
FF_BYPASS = 1  #: 1 = D comes straight from pin-0 mux, skipping the LUT
FF_CE_INV = 2  #: 1 = clock-enable sense inverted
FF_SR_EN = 3  #: 1 = slice SR signal resets this FF
FF_LATCH_MODE = 4  #: 1 = transparent-latch mode (modelled as failure)
FF_RESERVED = 5

# Control mux roles (per slice).
CTRL_CE = 0
CTRL_SR = 1
CTRL_CLK = 2

# -- intra-CLB field offsets ----------------------------------------------

_LUT_CONTENT_BASE = 0
_IMUX_BASE = 64
_FF_CONFIG_BASE = 192
_FF_CONFIG_BITS = 6
_CTRL_BASE = 216
_OUTPUT_MUX_BASE = 264
_PIP_DRIVE_BASE = 296
_PIP_STRAIGHT_BASE = 392
_PIP_TURN_BASE = 488
_PIP_RESERVED_BASE = 680
_CARRY_BASE = 696
_CARRY_BITS_PER_SLICE = 8
_RESERVED_BASE = 712


class Direction(enum.IntEnum):
    """Compass direction of a routing wire, as an array index."""

    N = 0
    E = 1
    S = 2
    W = 3

    @property
    def delta(self) -> tuple[int, int]:
        """(d_row, d_col) of one step in this direction (row 0 at top)."""
        return ((-1, 0), (0, 1), (1, 0), (0, -1))[self.value]

    @property
    def opposite(self) -> "Direction":
        return Direction((self.value + 2) % 4)

    @property
    def perpendicular(self) -> tuple["Direction", "Direction"]:
        return Direction((self.value + 1) % 4), Direction((self.value + 3) % 4)


class ResourceKind(enum.Enum):
    """What a configuration bit controls."""

    LUT_CONTENT = "lut_content"
    LUT_INPUT_MUX = "lut_input_mux"
    FF_CONFIG = "ff_config"
    CTRL_MUX = "ctrl_mux"
    OUTPUT_MUX = "output_mux"
    PIP_DRIVE = "pip_drive"
    PIP_STRAIGHT = "pip_straight"
    PIP_TURN = "pip_turn"
    PIP_RESERVED = "pip_reserved"
    CARRY = "carry"
    RESERVED = "reserved"
    COLUMN_OVERHEAD = "column_overhead"
    CLOCK_CONFIG = "clock_config"
    IOB_CONFIG = "iob_config"
    BRAM_CONTENT = "bram_content"
    BRAM_INTERCONNECT = "bram_interconnect"


@dataclass(frozen=True)
class BitLocation:
    """Fully decoded identity of one configuration bit.

    ``row``/``col`` are CLB coordinates for CLB-block bits and ``-1``
    otherwise.  ``detail`` is a kind-specific tuple, e.g. for
    ``LUT_CONTENT`` it is ``(lut, table_entry)``; for ``LUT_INPUT_MUX``
    ``(lut, pin, field_bit)``; for PIPs the decoded (direction, wire)
    identity.
    """

    kind: ResourceKind
    row: int
    col: int
    detail: tuple[int, ...]


# -- source descriptors ----------------------------------------------------


@dataclass(frozen=True)
class LocalSource:
    """A signal inside the same CLB: LUT output (0..3) or FF output (4..7)."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < N_LUTS_PER_CLB + N_FFS_PER_CLB:
            raise GeometryError(f"local source index {self.index} out of range")

    @property
    def is_ff(self) -> bool:
        return self.index >= N_LUTS_PER_CLB

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"FF{self.index - 4}" if self.is_ff else f"LUT{self.index}"


@dataclass(frozen=True)
class WireSource:
    """An incoming single-length wire from the neighbour in ``direction``."""

    direction: Direction
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < WIRES_PER_DIRECTION:
            raise GeometryError(f"wire index {self.index} out of range")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"wire({self.direction.name}, {self.index})"


@dataclass(frozen=True)
class UnconnectedSource:
    """A floating input: held at logic 1 by a half-latch keeper."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "half-latch"


Source = LocalSource | WireSource | UnconnectedSource


# -- offset computations ----------------------------------------------------


def lut_content_offset(lut: int, entry: int) -> int:
    """Intra-CLB offset of truth-table bit ``entry`` of LUT ``lut``."""
    _check(lut, N_LUTS_PER_CLB, "lut"), _check(entry, LUT_BITS, "entry")
    return _LUT_CONTENT_BASE + lut * LUT_BITS + entry


def imux_offset(lut: int, pin: int, bit: int) -> int:
    """Intra-CLB offset of field bit ``bit`` of input mux (lut, pin)."""
    _check(lut, N_LUTS_PER_CLB, "lut")
    _check(pin, LUT_PINS, "pin")
    _check(bit, MUX_FIELD_BITS, "bit")
    return _IMUX_BASE + (lut * LUT_PINS + pin) * MUX_FIELD_BITS + bit


def ff_config_offset(ff: int, role: int) -> int:
    """Intra-CLB offset of config bit ``role`` (FF_INIT...) of FF ``ff``."""
    _check(ff, N_FFS_PER_CLB, "ff")
    _check(role, _FF_CONFIG_BITS, "role")
    return _FF_CONFIG_BASE + ff * _FF_CONFIG_BITS + role


def ctrl_mux_offset(slice_idx: int, which: int, bit: int) -> int:
    """Intra-CLB offset of a slice control mux bit (CE / SR / CLK)."""
    _check(slice_idx, N_SLICES_PER_CLB, "slice")
    _check(which, 3, "which")
    _check(bit, MUX_FIELD_BITS, "bit")
    return _CTRL_BASE + (slice_idx * 3 + which) * MUX_FIELD_BITS + bit


def output_mux_offset(port: int, bit: int) -> int:
    """Intra-CLB offset of output-port mux bit."""
    _check(port, N_OUTPUT_PORTS, "port")
    _check(bit, MUX_FIELD_BITS, "bit")
    return _OUTPUT_MUX_BASE + port * MUX_FIELD_BITS + bit


def pip_drive_offset(direction: Direction, wire: int) -> int:
    """PIP putting output port ``wire % 4`` onto outgoing wire (d, wire)."""
    _check(wire, WIRES_PER_DIRECTION, "wire")
    return _PIP_DRIVE_BASE + int(direction) * WIRES_PER_DIRECTION + wire


def pip_straight_offset(in_from: Direction, wire: int) -> int:
    """PIP forwarding incoming (in_from, wire) straight across the CLB."""
    _check(wire, WIRES_PER_DIRECTION, "wire")
    return _PIP_STRAIGHT_BASE + int(in_from) * WIRES_PER_DIRECTION + wire


def pip_turn_offset(in_from: Direction, perp: int, wire: int) -> int:
    """PIP turning incoming (in_from, wire) onto perpendicular side.

    ``perp`` is 0 or 1, indexing ``in_from.perpendicular``.
    """
    _check(perp, 2, "perp")
    _check(wire, WIRES_PER_DIRECTION, "wire")
    return _PIP_TURN_BASE + (int(in_from) * 2 + perp) * WIRES_PER_DIRECTION + wire


def carry_offset(slice_idx: int, bit: int) -> int:
    """Intra-CLB offset of a carry-chain mode bit."""
    _check(slice_idx, N_SLICES_PER_CLB, "slice")
    _check(bit, _CARRY_BITS_PER_SLICE, "bit")
    return _CARRY_BASE + slice_idx * _CARRY_BITS_PER_SLICE + bit


def _check(value: int, bound: int, name: str) -> None:
    if not 0 <= value < bound:
        raise GeometryError(f"{name} {value} out of range [0, {bound})")


def classify_intra(intra: int) -> tuple[ResourceKind, tuple[int, ...]]:
    """Decode an intra-CLB offset into (kind, detail).

    Inverse of the ``*_offset`` functions above; detail tuples match their
    argument order.
    """
    if not 0 <= intra < CLB_BITS_PER_CLB:
        raise GeometryError(f"intra offset {intra} out of range")
    if intra < _IMUX_BASE:
        lut, entry = divmod(intra - _LUT_CONTENT_BASE, LUT_BITS)
        return ResourceKind.LUT_CONTENT, (lut, entry)
    if intra < _FF_CONFIG_BASE:
        field, bit = divmod(intra - _IMUX_BASE, MUX_FIELD_BITS)
        lut, pin = divmod(field, LUT_PINS)
        return ResourceKind.LUT_INPUT_MUX, (lut, pin, bit)
    if intra < _CTRL_BASE:
        ff, role = divmod(intra - _FF_CONFIG_BASE, _FF_CONFIG_BITS)
        return ResourceKind.FF_CONFIG, (ff, role)
    if intra < _OUTPUT_MUX_BASE:
        field, bit = divmod(intra - _CTRL_BASE, MUX_FIELD_BITS)
        slice_idx, which = divmod(field, 3)
        return ResourceKind.CTRL_MUX, (slice_idx, which, bit)
    if intra < _PIP_DRIVE_BASE:
        port, bit = divmod(intra - _OUTPUT_MUX_BASE, MUX_FIELD_BITS)
        return ResourceKind.OUTPUT_MUX, (port, bit)
    if intra < _PIP_STRAIGHT_BASE:
        d, wire = divmod(intra - _PIP_DRIVE_BASE, WIRES_PER_DIRECTION)
        return ResourceKind.PIP_DRIVE, (d, wire)
    if intra < _PIP_TURN_BASE:
        d, wire = divmod(intra - _PIP_STRAIGHT_BASE, WIRES_PER_DIRECTION)
        return ResourceKind.PIP_STRAIGHT, (d, wire)
    if intra < _PIP_RESERVED_BASE:
        field, wire = divmod(intra - _PIP_TURN_BASE, WIRES_PER_DIRECTION)
        d, perp = divmod(field, 2)
        return ResourceKind.PIP_TURN, (d, perp, wire)
    if intra < _CARRY_BASE:
        return ResourceKind.PIP_RESERVED, (intra - _PIP_RESERVED_BASE,)
    if intra < _RESERVED_BASE:
        slice_idx, bit = divmod(intra - _CARRY_BASE, _CARRY_BITS_PER_SLICE)
        return ResourceKind.CARRY, (slice_idx, bit)
    return ResourceKind.RESERVED, (intra - _RESERVED_BASE,)


# -- routing candidate patterns --------------------------------------------


def imux_candidates(lut: int, pin: int) -> tuple[Source, ...]:
    """The 8 selectable sources of input mux (lut, pin).

    The pattern is identical in every CLB (like real fabric): two local
    feedback taps plus six incoming wires whose indices are spread by a
    per-pin stride so that the 16 pins of a CLB can be fed from 16
    distinct wires in each direction.
    """
    _check(lut, N_LUTS_PER_CLB, "lut")
    _check(pin, LUT_PINS, "pin")
    base = lut * LUT_PINS + pin  # 0..15, unique per pin within the CLB
    # Four local feedback taps reach the LUT and FF outputs of positions
    # (lut + pin - 1) and (lut + pin + 1) mod 4: every internal signal is
    # locally reachable from exactly two pins, so packers can satisfy
    # shift chains, counter feedback and carry chains without wires.
    # The four wire candidates cover one direction each and span all four
    # index classes mod 4 (wire class k is driven by output port k).
    lo = (lut + pin - 1) % N_LUTS_PER_CLB
    hi = (lut + pin + 1) % N_LUTS_PER_CLB
    return (
        LocalSource(lo),
        LocalSource(N_LUTS_PER_CLB + lo),
        LocalSource(hi),
        LocalSource(N_LUTS_PER_CLB + hi),
        WireSource(Direction.N, base % WIRES_PER_DIRECTION),
        WireSource(Direction.E, (base + 7) % WIRES_PER_DIRECTION),
        WireSource(Direction.S, (base + 13) % WIRES_PER_DIRECTION),
        WireSource(Direction.W, (base + 18) % WIRES_PER_DIRECTION),
    )


def ctrl_candidates(slice_idx: int, which: int) -> tuple[Source, ...]:
    """The 8 selectable sources of a slice control mux (CE / SR / CLK).

    Candidate 0 of the CLK mux is the global clock spine (modelled
    implicitly by the simulator); for CE and SR candidate 0 is a local FF
    output, letting designs gate themselves.
    """
    _check(slice_idx, N_SLICES_PER_CLB, "slice")
    _check(which, 3, "which")
    base = 16 + slice_idx * 3 + which  # wire indices 16..21: clear of pin wires
    return (
        LocalSource(N_LUTS_PER_CLB + slice_idx * 2),
        LocalSource(slice_idx * 2 + 1),
        WireSource(Direction.N, base % WIRES_PER_DIRECTION),
        WireSource(Direction.E, (base + 7) % WIRES_PER_DIRECTION),
        WireSource(Direction.S, (base + 13) % WIRES_PER_DIRECTION),
        WireSource(Direction.W, (base + 18) % WIRES_PER_DIRECTION),
        WireSource(Direction.E, (base + 5) % WIRES_PER_DIRECTION),
        WireSource(Direction.W, (base + 2) % WIRES_PER_DIRECTION),
    )


def port_of_wire(wire: int) -> int:
    """Which output port can drive outgoing wire index ``wire``."""
    _check(wire, WIRES_PER_DIRECTION, "wire")
    return wire % N_OUTPUT_PORTS

"""Device catalog: the Virtex family plus scaled test devices.

CLB grid dimensions are the real Virtex values (XCV50 = 16x24 ...
XCV1000 = 64x96).  ``XQVR1000`` — the radiation-tolerant part flown in
the paper's payload — shares the XCV1000 mask and therefore the same
geometry.

Scaled devices (``S4``/``S8``/``S12``) keep the exact frame organisation
but shrink the grid so exhaustive SEU sweeps finish in seconds.  Because
sensitivity and persistence are ratios over the used area, results keep
the paper's *shape* at any scale (see DESIGN.md section 4).
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.fpga.device import VirtexDevice
from repro.fpga.geometry import DeviceGeometry

__all__ = ["DEVICE_CATALOG", "get_device"]

_GRIDS: dict[str, tuple[int, int, int]] = {
    # name: (rows, cols, n_bram_cols)
    "XCV50": (16, 24, 2),
    "XCV100": (20, 30, 2),
    "XCV150": (24, 36, 2),
    "XCV200": (28, 42, 2),
    "XCV300": (32, 48, 2),
    "XCV400": (40, 60, 2),
    "XCV600": (48, 72, 2),
    "XCV800": (56, 84, 2),
    "XCV1000": (64, 96, 2),
    "XQVR300": (32, 48, 2),
    "XQVR1000": (64, 96, 2),
    # Scaled devices for fast exhaustive campaigns.
    "S4": (4, 6, 0),
    "S8": (8, 12, 2),
    "S12": (12, 18, 2),
    "S16": (16, 24, 2),
}

#: All known device names, mapped lazily to built devices.
DEVICE_CATALOG: tuple[str, ...] = tuple(_GRIDS)

_cache: dict[str, VirtexDevice] = {}


def get_device(name: str) -> VirtexDevice:
    """Look up a device by name (case-insensitive).

    >>> get_device("xcv1000").n_slices
    12288
    """
    key = name.upper()
    if key not in _GRIDS:
        known = ", ".join(sorted(_GRIDS))
        raise GeometryError(f"unknown device {name!r}; known devices: {known}")
    if key not in _cache:
        rows, cols, brams = _GRIDS[key]
        _cache[key] = VirtexDevice(key, DeviceGeometry(rows, cols, brams))
    return _cache[key]

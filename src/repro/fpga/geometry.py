"""Frame-organised configuration-memory geometry.

A Virtex configuration memory is addressed by *frames* — vertical slivers
of bits spanning a full column of the die.  The frame is the smallest unit
of configuration and readback (the paper repairs exactly one frame, 156
bytes on the XQVR1000).  This module reproduces that organisation:

* one **clock** column (8 frames),
* one **CLB** column per CLB grid column (48 frames each),
* two **IOB** columns (20 frames each),
* two **BRAM interconnect** columns (27 frames each),
* two **BRAM content** columns (64 frames each).

CLB-block frames are ``18 * rows + 96`` bits long: 18 configuration bits
per CLB row per frame (so ``48 * 18 = 864`` bits per CLB) plus 96 bits of
column overhead (clock spine, IOB interface).  For the XCV1000 (64 x 96
CLBs) this yields 1248-bit = 156-byte frames and a block-0 bitstream of
5,810,688 bits — the "5.8 million bits" the paper sweeps exhaustively.

Geometry is pure arithmetic: no configuration state lives here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from repro.errors import FrameAddressError, GeometryError

__all__ = [
    "FrameKind",
    "FrameAddress",
    "DeviceGeometry",
    "CLB_FRAMES_PER_COL",
    "CLB_BITS_PER_ROW",
    "CLB_BITS_PER_CLB",
    "COLUMN_OVERHEAD_BITS",
    "IOB_FRAMES_PER_COL",
    "CLOCK_FRAMES",
    "BRAM_CONTENT_FRAMES_PER_COL",
    "BRAM_INTERCONNECT_FRAMES_PER_COL",
    "BRAM_BITS_PER_BLOCK",
]

#: Number of configuration frames per CLB column (Virtex value).
CLB_FRAMES_PER_COL = 48
#: Configuration bits each CLB row contributes to one frame (Virtex value).
CLB_BITS_PER_ROW = 18
#: Total configuration bits owned by one CLB: 48 frames x 18 bits.
CLB_BITS_PER_CLB = CLB_FRAMES_PER_COL * CLB_BITS_PER_ROW
#: Per-frame overhead bits (clock spine, IOB interface rows).
COLUMN_OVERHEAD_BITS = 96
#: Frames per IOB column.
IOB_FRAMES_PER_COL = 20
#: Frames in the centre clock column.
CLOCK_FRAMES = 8
#: Frames per BRAM content column.
BRAM_CONTENT_FRAMES_PER_COL = 64
#: Frames per BRAM interconnect column.
BRAM_INTERCONNECT_FRAMES_PER_COL = 27
#: Content bits of one block RAM (Virtex 4-kbit blocks).
BRAM_BITS_PER_BLOCK = 4096


class FrameKind(enum.Enum):
    """Which column family a frame belongs to (Virtex block types)."""

    CLOCK = "clock"
    CLB = "clb"
    IOB = "iob"
    BRAM_INTERCONNECT = "bram_interconnect"
    BRAM_CONTENT = "bram_content"


@dataclass(frozen=True)
class FrameAddress:
    """Symbolic frame address: column family, column number, minor index.

    ``major`` counts columns *within the same kind* (CLB column 0..cols-1,
    IOB column 0..1, ...); ``minor`` is the frame index within the column.
    """

    kind: FrameKind
    major: int
    minor: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}[{self.major}].{self.minor}"


@dataclass(frozen=True)
class _ColumnSpan:
    """Internal: a run of frames belonging to one column."""

    kind: FrameKind
    major: int
    first_frame: int
    n_frames: int
    frame_bits: int
    first_bit: int


@dataclass(frozen=True)
class DeviceGeometry:
    """Complete frame map of one device.

    Parameters
    ----------
    rows, cols:
        CLB grid dimensions.  The XCV1000 is ``rows=64, cols=96``.
    n_bram_cols:
        Block-RAM column pairs (content + interconnect).  Virtex parts
        have two; scaled test devices may have zero.
    """

    rows: int
    cols: int
    n_bram_cols: int = 2

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise GeometryError(
                f"device must have a positive CLB grid, got {self.rows}x{self.cols}"
            )
        if self.n_bram_cols not in (0, 2, 4):
            raise GeometryError(
                f"n_bram_cols must be 0, 2 or 4, got {self.n_bram_cols}"
            )
        if self.n_bram_cols and self.rows % 4 != 0:
            raise GeometryError(
                "BRAM columns require rows divisible by 4 "
                f"(one block spans 4 CLB rows), got rows={self.rows}"
            )

    # -- derived sizes -------------------------------------------------

    @property
    def clb_frame_bits(self) -> int:
        """Bits per frame in CLB/IOB/clock/BRAM-interconnect columns."""
        return CLB_BITS_PER_ROW * self.rows + COLUMN_OVERHEAD_BITS

    @property
    def bram_blocks_per_col(self) -> int:
        """Block RAMs stacked in one BRAM column (one per 4 CLB rows)."""
        return self.rows // 4

    @property
    def bram_content_frame_bits(self) -> int:
        """Bits per BRAM content frame (column content / 64 frames)."""
        return (
            self.bram_blocks_per_col
            * BRAM_BITS_PER_BLOCK
            // BRAM_CONTENT_FRAMES_PER_COL
        )

    @property
    def n_bram_blocks(self) -> int:
        return self.n_bram_cols * self.bram_blocks_per_col

    @property
    def n_clbs(self) -> int:
        return self.rows * self.cols

    @property
    def n_slices(self) -> int:
        """Logic slices: two per CLB (Virtex)."""
        return 2 * self.n_clbs

    # -- frame table ----------------------------------------------------

    @cached_property
    def _columns(self) -> tuple[_ColumnSpan, ...]:
        spans: list[_ColumnSpan] = []
        frame = 0
        bit = 0

        def add(kind: FrameKind, major: int, n_frames: int, frame_bits: int) -> None:
            nonlocal frame, bit
            spans.append(
                _ColumnSpan(kind, major, frame, n_frames, frame_bits, bit)
            )
            frame += n_frames
            bit += n_frames * frame_bits

        add(FrameKind.CLOCK, 0, CLOCK_FRAMES, self.clb_frame_bits)
        for c in range(self.cols):
            add(FrameKind.CLB, c, CLB_FRAMES_PER_COL, self.clb_frame_bits)
        for i in range(2):
            add(FrameKind.IOB, i, IOB_FRAMES_PER_COL, self.clb_frame_bits)
        for i in range(self.n_bram_cols):
            add(
                FrameKind.BRAM_INTERCONNECT,
                i,
                BRAM_INTERCONNECT_FRAMES_PER_COL,
                self.clb_frame_bits,
            )
        for i in range(self.n_bram_cols):
            add(
                FrameKind.BRAM_CONTENT,
                i,
                BRAM_CONTENT_FRAMES_PER_COL,
                self.bram_content_frame_bits,
            )
        return tuple(spans)

    @cached_property
    def n_frames(self) -> int:
        last = self._columns[-1]
        return last.first_frame + last.n_frames

    @cached_property
    def total_bits(self) -> int:
        """Total configuration bits across every frame (incl. BRAM)."""
        last = self._columns[-1]
        return last.first_bit + last.n_frames * last.frame_bits

    @cached_property
    def block0_bits(self) -> int:
        """Bits in the non-BRAM-content part of the bitstream.

        This is the "configuration bitstream" figure the paper quotes
        (~5.8 million bits for the XCV1000): BRAM content is normally
        masked out of readback-based SEU detection.
        """
        return sum(
            s.n_frames * s.frame_bits
            for s in self._columns
            if s.kind is not FrameKind.BRAM_CONTENT
        )

    @cached_property
    def _frame_tables(self) -> tuple["np.ndarray", "np.ndarray", tuple[_ColumnSpan, ...]]:
        """Per-frame (offset, bits) arrays plus span lookup, for O(1) access."""
        import numpy as np

        offsets = np.empty(self.n_frames + 1, dtype=np.int64)
        bits = np.empty(self.n_frames, dtype=np.int64)
        spans: list[_ColumnSpan] = []
        for span in self._columns:
            for k in range(span.n_frames):
                f = span.first_frame + k
                offsets[f] = span.first_bit + k * span.frame_bits
                bits[f] = span.frame_bits
                spans.append(span)
        offsets[self.n_frames] = self.total_bits
        return offsets, bits, tuple(spans)

    @property
    def frame_offsets(self):
        """Monotone array: linear bit offset of each frame (plus total)."""
        return self._frame_tables[0]

    def _span_of_frame(self, frame_index: int) -> _ColumnSpan:
        if not 0 <= frame_index < self.n_frames:
            raise FrameAddressError(
                f"frame {frame_index} out of range [0, {self.n_frames})"
            )
        return self._frame_tables[2][frame_index]

    # -- address conversions ---------------------------------------------

    def frame_bits_of(self, frame_index: int) -> int:
        """Length in bits of frame ``frame_index``."""
        if not 0 <= frame_index < self.n_frames:
            raise FrameAddressError(
                f"frame {frame_index} out of range [0, {self.n_frames})"
            )
        return int(self._frame_tables[1][frame_index])

    def frame_offset(self, frame_index: int) -> int:
        """Linear bit offset of the first bit of ``frame_index``."""
        if not 0 <= frame_index < self.n_frames:
            raise FrameAddressError(
                f"frame {frame_index} out of range [0, {self.n_frames})"
            )
        return int(self._frame_tables[0][frame_index])

    def frame_address(self, frame_index: int) -> FrameAddress:
        """Symbolic address of a linear frame index."""
        span = self._span_of_frame(frame_index)
        return FrameAddress(span.kind, span.major, frame_index - span.first_frame)

    def frame_index(self, address: FrameAddress) -> int:
        """Linear index of a symbolic frame address."""
        for span in self._columns:
            if span.kind is address.kind and span.major == address.major:
                if not 0 <= address.minor < span.n_frames:
                    raise FrameAddressError(
                        f"minor {address.minor} out of range for {address.kind.value}"
                        f" column {address.major} (has {span.n_frames} frames)"
                    )
                return span.first_frame + address.minor
        raise FrameAddressError(f"no such column: {address.kind.value}[{address.major}]")

    def clb_frame_index(self, col: int, minor: int) -> int:
        """Linear frame index of frame ``minor`` of CLB column ``col``."""
        if not 0 <= col < self.cols:
            raise FrameAddressError(f"CLB column {col} out of range [0, {self.cols})")
        if not 0 <= minor < CLB_FRAMES_PER_COL:
            raise FrameAddressError(
                f"CLB frame minor {minor} out of range [0, {CLB_FRAMES_PER_COL})"
            )
        return self.frame_index(FrameAddress(FrameKind.CLB, col, minor))

    def clb_bit(self, row: int, col: int, intra: int) -> tuple[int, int]:
        """Map a CLB-relative bit to a (frame_index, bit_in_frame) pair.

        ``intra`` is the CLB-internal offset in ``[0, 864)`` laid out as
        ``minor * 18 + i``: consecutive 18-bit groups live in consecutive
        frames of the CLB's column, exactly one group per frame.
        """
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise GeometryError(f"CLB ({row}, {col}) outside {self.rows}x{self.cols} grid")
        if not 0 <= intra < CLB_BITS_PER_CLB:
            raise GeometryError(f"intra-CLB offset {intra} out of [0, {CLB_BITS_PER_CLB})")
        minor, i = divmod(intra, CLB_BITS_PER_ROW)
        frame = self.clb_frame_index(col, minor)
        bit = COLUMN_OVERHEAD_BITS + row * CLB_BITS_PER_ROW + i
        return frame, bit

    def clb_of_bit(self, frame_index: int, bit: int) -> tuple[int, int, int] | None:
        """Inverse of :meth:`clb_bit`.

        Returns ``(row, col, intra)`` when the bit belongs to a CLB, or
        ``None`` for overhead/IOB/clock/BRAM bits.
        """
        span = self._span_of_frame(frame_index)
        if span.kind is not FrameKind.CLB:
            return None
        if not 0 <= bit < span.frame_bits:
            raise FrameAddressError(
                f"bit {bit} out of range for frame of {span.frame_bits} bits"
            )
        if bit < COLUMN_OVERHEAD_BITS:
            return None
        row, i = divmod(bit - COLUMN_OVERHEAD_BITS, CLB_BITS_PER_ROW)
        minor = frame_index - span.first_frame
        return row, span.major, minor * CLB_BITS_PER_ROW + i

    def bram_content_bit(self, bram_col: int, block: int, offset: int) -> tuple[int, int]:
        """Map a BRAM content bit to (frame_index, bit_in_frame).

        Content of one column is striped across its 64 frames: global
        column offset ``block * 4096 + offset`` maps to frame
        ``off // frame_bits`` at position ``off % frame_bits``.
        """
        if not 0 <= bram_col < self.n_bram_cols:
            raise GeometryError(f"BRAM column {bram_col} out of range")
        if not 0 <= block < self.bram_blocks_per_col:
            raise GeometryError(f"BRAM block {block} out of range")
        if not 0 <= offset < BRAM_BITS_PER_BLOCK:
            raise GeometryError(f"BRAM offset {offset} out of range")
        col_off = block * BRAM_BITS_PER_BLOCK + offset
        minor, bit = divmod(col_off, self.bram_content_frame_bits)
        frame = self.frame_index(FrameAddress(FrameKind.BRAM_CONTENT, bram_col, minor))
        return frame, bit

    def describe(self) -> str:
        """Multi-line human-readable summary of the frame map."""
        lines = [
            f"{self.rows}x{self.cols} CLBs ({self.n_slices} slices), "
            f"{self.n_bram_blocks} BRAMs",
            f"frames: {self.n_frames}, CLB frame = {self.clb_frame_bits} bits "
            f"({(self.clb_frame_bits + 7) // 8} bytes)",
            f"configuration bits: {self.total_bits:,} "
            f"(block 0: {self.block0_bits:,})",
        ]
        return "\n".join(lines)

"""Virtex-class FPGA architectural model.

This subpackage is the hardware substrate the paper assumes: a Virtex
XCV1000-style device with a frame-organised configuration memory, CLBs of
two slices (each 2x LUT4 + 2x FF), single-length routing wires with
programmable interconnect points, block RAM, and half-latch keeper
circuits on unconnected inputs.

The public entry point is :func:`repro.fpga.family.get_device` /
:class:`repro.fpga.device.VirtexDevice`.
"""

from repro.fpga.geometry import DeviceGeometry, FrameAddress, FrameKind
from repro.fpga.resources import (
    BitLocation,
    Direction,
    LocalSource,
    ResourceKind,
    Source,
    UnconnectedSource,
    WireSource,
)
from repro.fpga.device import VirtexDevice
from repro.fpga.family import DEVICE_CATALOG, get_device
from repro.fpga.halflatch import HalfLatchSite, HalfLatchState

__all__ = [
    "DeviceGeometry",
    "FrameAddress",
    "FrameKind",
    "ResourceKind",
    "BitLocation",
    "Direction",
    "Source",
    "LocalSource",
    "WireSource",
    "UnconnectedSource",
    "VirtexDevice",
    "DEVICE_CATALOG",
    "get_device",
    "HalfLatchSite",
    "HalfLatchState",
]

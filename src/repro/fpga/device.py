"""The device object: geometry plus the complete bit -> resource map.

:class:`VirtexDevice` is the object everything else is built around: the
configuration generator asks it where a LUT's bits live, the SEU campaign
asks it what a flipped bit means, and the scrub manager asks it for frame
addresses.  It is immutable; configuration state lives in
:class:`repro.bitstream.ConfigBitstream`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import GeometryError
from repro.fpga.geometry import (
    CLB_BITS_PER_CLB,
    DeviceGeometry,
    FrameKind,
)
from repro.fpga.resources import (
    BitLocation,
    Direction,
    ResourceKind,
    WIRES_PER_DIRECTION,
    classify_intra,
)

__all__ = ["VirtexDevice", "WireId"]


@dataclass(frozen=True)
class WireId:
    """A single-length routing wire, named by its *driving* CLB.

    Wire ``(row, col, direction, index)`` is driven by CLB ``(row, col)``
    toward ``direction`` and is readable by the neighbour on that side.
    """

    row: int
    col: int
    direction: Direction
    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"wire[{self.row},{self.col}]->{self.direction.name}{self.index}"


@dataclass(frozen=True)
class VirtexDevice:
    """An immutable Virtex-class device: name + geometry + bit map."""

    name: str
    geometry: DeviceGeometry

    # -- convenience size accessors -------------------------------------

    @property
    def rows(self) -> int:
        return self.geometry.rows

    @property
    def cols(self) -> int:
        return self.geometry.cols

    @property
    def n_clbs(self) -> int:
        return self.geometry.n_clbs

    @property
    def n_slices(self) -> int:
        return self.geometry.n_slices

    @property
    def n_luts(self) -> int:
        return 4 * self.n_clbs

    @property
    def n_ffs(self) -> int:
        return 4 * self.n_clbs

    @property
    def total_config_bits(self) -> int:
        return self.geometry.total_bits

    @property
    def block0_bits(self) -> int:
        return self.geometry.block0_bits

    @property
    def n_frames(self) -> int:
        return self.geometry.n_frames

    @cached_property
    def frame_bytes(self) -> int:
        """Bytes per CLB-block frame (156 for the XCV1000, as in the paper)."""
        return (self.geometry.clb_frame_bits + 7) // 8

    # -- CLB indexing -----------------------------------------------------

    def clb_index(self, row: int, col: int) -> int:
        """Dense index of CLB (row, col): row-major."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise GeometryError(
                f"CLB ({row}, {col}) outside {self.rows}x{self.cols} grid"
            )
        return row * self.cols + col

    def clb_position(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`clb_index`."""
        if not 0 <= index < self.n_clbs:
            raise GeometryError(f"CLB index {index} out of range")
        return divmod(index, self.cols)

    # -- bit classification -------------------------------------------------

    def classify_bit(self, frame_index: int, bit: int) -> BitLocation:
        """Full identity of configuration bit (frame, bit).

        This is the map the SEU campaign's structural pre-filter walks:
        given a flipped bit it answers "which resource of which CLB
        changed, and how".
        """
        kind = self.geometry.frame_address(frame_index).kind
        if kind is FrameKind.CLB:
            clb = self.geometry.clb_of_bit(frame_index, bit)
            if clb is None:
                return BitLocation(ResourceKind.COLUMN_OVERHEAD, -1, -1, (frame_index, bit))
            row, col, intra = clb
            rk, detail = classify_intra(intra)
            return BitLocation(rk, row, col, detail)
        if kind is FrameKind.CLOCK:
            return BitLocation(ResourceKind.CLOCK_CONFIG, -1, -1, (frame_index, bit))
        if kind is FrameKind.IOB:
            return BitLocation(ResourceKind.IOB_CONFIG, -1, -1, (frame_index, bit))
        if kind is FrameKind.BRAM_INTERCONNECT:
            return BitLocation(ResourceKind.BRAM_INTERCONNECT, -1, -1, (frame_index, bit))
        return BitLocation(ResourceKind.BRAM_CONTENT, -1, -1, (frame_index, bit))

    def clb_bit_linear(self, row: int, col: int, intra: int) -> int:
        """Linear (whole-bitstream) offset of a CLB-relative bit."""
        frame, bit = self.geometry.clb_bit(row, col, intra)
        return self.geometry.frame_offset(frame) + bit

    def clb_bit_frame(self, row: int, col: int, intra: int) -> tuple[int, int]:
        """(frame_index, bit_in_frame) of a CLB-relative bit."""
        return self.geometry.clb_bit(row, col, intra)

    def iter_clb_bits(self, row: int, col: int):
        """Yield (intra, frame_index, bit_in_frame) for all 864 CLB bits."""
        for intra in range(CLB_BITS_PER_CLB):
            frame, bit = self.geometry.clb_bit(row, col, intra)
            yield intra, frame, bit

    # -- wires --------------------------------------------------------------

    @property
    def n_wires(self) -> int:
        return self.n_clbs * 4 * WIRES_PER_DIRECTION

    def wire_index(self, wire: WireId) -> int:
        """Dense index of a wire (for simulator node tables)."""
        clb = self.clb_index(wire.row, wire.col)
        return (clb * 4 + int(wire.direction)) * WIRES_PER_DIRECTION + wire.index

    def wire_id(self, index: int) -> WireId:
        """Inverse of :meth:`wire_index`."""
        if not 0 <= index < self.n_wires:
            raise GeometryError(f"wire index {index} out of range")
        rest, widx = divmod(index, WIRES_PER_DIRECTION)
        clb, d = divmod(rest, 4)
        row, col = self.clb_position(clb)
        return WireId(row, col, Direction(d), widx)

    def incoming_wire(self, row: int, col: int, from_dir: Direction, index: int) -> WireId | None:
        """The wire CLB (row, col) sees arriving from ``from_dir``.

        That is the neighbour's outgoing wire pointed back at us, or
        ``None`` at the die edge (edge wires are where primary I/O enters
        and leaves the fabric; see :mod:`repro.place.router`).
        """
        d_row, d_col = from_dir.delta
        n_row, n_col = row + d_row, col + d_col
        if not (0 <= n_row < self.rows and 0 <= n_col < self.cols):
            return None
        return WireId(n_row, n_col, from_dir.opposite, index)

    def describe(self) -> str:
        """Human-readable device summary."""
        return f"{self.name}: {self.geometry.describe()}"

"""Half-latch model: hidden constant-generator state (paper Figure 13).

A half-latch is a weak PMOS keeper plus inverter that holds a logic 1 at
any resource input with no routed source.  The CAD flow exploits them as
free constant generators — the paper found "hundreds to thousands" in
large designs, typically driving flip-flop clock enables.

Three properties make them the paper's villain:

* their state is **not** in the configuration bitstream, so readback
  cannot see an upset;
* partial reconfiguration does **not** restore them (no start-up
  sequence), only a full reconfiguration does;
* an upset flips the constant (e.g. CE 1 -> 0, freezing a flip-flop,
  Figure 14), silently corrupting the design.

:class:`HalfLatchSite` names a half-latch by the input it feeds;
:class:`HalfLatchState` is the mutable bank of keeper values owned by a
configured device, with the upset / recovery / start-up behaviours the
paper describes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError

__all__ = ["HalfLatchKind", "HalfLatchSite", "HalfLatchState"]


class HalfLatchKind(enum.Enum):
    """What kind of input the half-latch feeds."""

    LUT_PIN = "lut_pin"  #: unconnected LUT input (redundant encoding usually masks it)
    CTRL = "ctrl"  #: slice CE / SR / CLK control input — usually critical
    OUTPUT_PORT = "output_port"  #: unselected output-port mux
    WIRE = "wire"  #: undriven routing wire


@dataclass(frozen=True)
class HalfLatchSite:
    """Identity of one half-latch: CLB position + the input it feeds.

    ``detail`` disambiguates within the CLB: ``(lut, pin)`` for LUT pins,
    ``(slice, which)`` for control inputs, ``(port,)`` for output ports,
    ``(direction, index)`` for wires.
    """

    kind: HalfLatchKind
    row: int
    col: int
    detail: tuple[int, ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"half-latch[{self.kind.value}@{self.row},{self.col}:{self.detail}]"


class HalfLatchState:
    """Mutable bank of half-latch keeper values.

    The bank is created by the bitstream decoder, one entry per half-latch
    the decoded design actually depends on.  Values are 1 after a full
    configuration (start-up sequence initialises every keeper); upsets
    flip individual values; *partial* reconfiguration leaves them alone.
    """

    def __init__(self, sites: list[HalfLatchSite]):
        self._sites = list(sites)
        self._index = {s: i for i, s in enumerate(self._sites)}
        if len(self._index) != len(self._sites):
            raise GeometryError("duplicate half-latch sites")
        self.values = np.ones(len(self._sites), dtype=np.uint8)

    def __len__(self) -> int:
        return len(self._sites)

    @property
    def sites(self) -> list[HalfLatchSite]:
        return list(self._sites)

    def index_of(self, site: HalfLatchSite) -> int:
        try:
            return self._index[site]
        except KeyError:
            raise GeometryError(f"unknown half-latch site {site}") from None

    def value_of(self, site: HalfLatchSite) -> int:
        return int(self.values[self.index_of(site)])

    def upset(self, site: HalfLatchSite) -> None:
        """Radiation upset: invert the keeper's held value."""
        self.values[self.index_of(site)] ^= 1

    def upset_index(self, index: int) -> None:
        """Upset by dense index (used by the beam sampler)."""
        self.values[index] ^= 1

    def n_upset(self) -> int:
        """How many keepers currently hold the wrong (0) value."""
        return int(np.count_nonzero(self.values == 0))

    def spontaneous_recovery(self, rng: np.random.Generator, probability: float) -> int:
        """Stochastic self-recovery observed during proton testing.

        Each upset keeper independently recovers with ``probability``.
        Returns the number that recovered.  This is *not* a reliable
        repair mechanism — the paper notes only a full reconfiguration
        guarantees recovery.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        upset = self.values == 0
        recover = upset & (rng.random(len(self._sites)) < probability)
        self.values[recover] = 1
        return int(np.count_nonzero(recover))

    def full_reconfiguration_startup(self) -> None:
        """Start-up sequence after *full* reconfiguration: all keepers -> 1.

        Partial reconfiguration must NOT call this — that asymmetry is the
        paper's point (Figure 14: the upset "cannot be ... repaired via
        partial reconfiguration").
        """
        self.values[:] = 1

    def snapshot(self) -> np.ndarray:
        """Copy of the keeper values (for campaign bookkeeping)."""
        return self.values.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        if snapshot.shape != self.values.shape:
            raise GeometryError("half-latch snapshot shape mismatch")
        self.values[:] = snapshot

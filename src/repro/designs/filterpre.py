"""Filter preprocessor (paper Table II "Filter Preproc.").

A moving-window preprocessor of the kind the payload's ionospheric /
lightning impulse detectors use: a tapped delay line over the incoming
sample stream and an adder tree computing the window sum.  Entirely
feed-forward — corrupted state shifts out of the delay line — which is
why the paper measures only 1.2 % persistence for it.
"""

from __future__ import annotations

from repro.designs.builder import add_register, add_ripple_adder
from repro.designs.spec import DesignSpec
from repro.errors import NetlistError
from repro.netlist.netlist import Netlist

__all__ = ["filter_preprocessor"]


def filter_preprocessor(n_taps: int = 8, width: int = 12) -> DesignSpec:
    """Window-sum preprocessor: ``n_taps`` delayed samples, adder tree.

    ``n_taps`` must be a power of two so the tree is balanced.
    """
    if n_taps < 2 or n_taps & (n_taps - 1):
        raise NetlistError(f"n_taps must be a power of two >= 2, got {n_taps}")
    if width < 2:
        raise NetlistError("sample width must be >= 2")
    nl = Netlist(f"filtpre_{n_taps}x{width}")
    zero = nl.add_const("zero", 0)

    sample = [nl.add_input(f"in{i}") for i in range(width)]
    # Tapped delay line of registered sample vectors.
    taps: list[list[str]] = []
    cur = sample
    for t in range(n_taps):
        cur = add_register(nl, f"tap{t}", cur)
        taps.append(cur)

    # Balanced adder tree; width grows one bit per level.
    level = taps
    stage = 0
    while len(level) > 1:
        nxt: list[list[str]] = []
        for k in range(0, len(level), 2):
            a, b = level[k], level[k + 1]
            s, cout = add_ripple_adder(nl, f"t{stage}_{k}", a, b)
            s = s + [cout]
            nxt.append(add_register(nl, f"t{stage}_{k}_r", s))
        level = nxt
        stage += 1
    nl.set_outputs(level[0])
    return DesignSpec(
        name="Filter Preproc.",
        netlist=nl,
        family="FILTER",
        size=n_taps,
        feedback=False,
    )

"""Combinational array multiplier (the paper's MULT designs).

A classic row-ripple array multiplier with registered inputs and
outputs: each cell folds one partial-product AND into a full adder, so
the array costs two LUTs — one slice — per cell, giving the paper's
MULT-*n* ~ *n*^2 slice scaling (144 slices at n=12, 2205 at n=48).
Feed-forward except for the I/O registers: the probe for SEU impact on
computation hardware.
"""

from __future__ import annotations

from repro.designs.builder import add_pp_adder, add_register
from repro.designs.spec import DesignSpec
from repro.errors import NetlistError
from repro.netlist.cells import LUT_AND2
from repro.netlist.netlist import Netlist

__all__ = ["array_multiplier", "build_multiplier_array"]


def build_multiplier_array(
    nl: Netlist, prefix: str, a: list[str], b: list[str], zero: str
) -> list[str]:
    """Append a w x w array multiplier; returns the 2w product signals.

    ``a``/``b`` are operand signal names; ``zero`` names a constant-0
    cell used for absent carries.  Combinational only — callers add
    pipeline or I/O registers.
    """
    w = len(a)
    if len(b) != w:
        raise NetlistError(f"{prefix}: operands must have equal width")
    if w < 2:
        raise NetlistError(f"{prefix}: width must be >= 2")

    out: list[str] = []
    # Row 0: plain partial products.
    s = [nl.add_lut(f"{prefix}_r0_{j}", LUT_AND2, [a[j], b[0]]) for j in range(w)]
    top = zero  # running carry-out of the previous row
    out.append(s[0])
    for i in range(1, w):
        new_s: list[str] = []
        carry = zero
        for j in range(w):
            addend = s[j + 1] if j < w - 1 else top
            sj, carry = add_pp_adder(nl, f"{prefix}_r{i}_{j}", a[j], b[i], addend, carry)
            new_s.append(sj)
        s, top = new_s, carry
        out.append(s[0])
    out.extend(s[1:])
    out.append(top)
    return out


def array_multiplier(width: int) -> DesignSpec:
    """MULT *width*: registered-I/O combinational array multiplier."""
    nl = Netlist(f"mult_{width}")
    zero = nl.add_const("zero", 0)
    a_in = [nl.add_input(f"a{i}") for i in range(width)]
    b_in = [nl.add_input(f"b{i}") for i in range(width)]
    a = add_register(nl, "areg", a_in)
    b = add_register(nl, "breg", b_in)
    product = build_multiplier_array(nl, "m", a, b, zero)
    outs = add_register(nl, "oreg", product)
    nl.set_outputs(outs)
    return DesignSpec(
        name=f"MULT {width}",
        netlist=nl,
        family="MULT",
        size=width,
        feedback=False,
    )

"""Pipelined multiply-add tree (paper Figure 9, Table II "54 Multiply-Add").

The paper's data-path exemplar: a parallel tree of multipliers and
adders (A, B in; scaled product out), fully pipelined and feed-forward —
the design for which the SEU simulator found **zero** persistent bits.
We realise O = A*B + C*D from two pipelined array multipliers and a
final registered adder.
"""

from __future__ import annotations

from repro.designs.builder import add_register, add_ripple_adder
from repro.designs.spec import DesignSpec
from repro.designs.vmult import build_pipelined_array
from repro.errors import NetlistError
from repro.netlist.netlist import Netlist

__all__ = ["multiply_add"]


def multiply_add(width: int) -> DesignSpec:
    """Multiply-add of ``width``-bit operands: O = A*B + C*D.

    ``width`` is the total design size label (the paper's "54
    Multiply-Add"); each multiplier is ``width // 2`` bits wide.
    """
    half = width // 2
    if half < 2:
        raise NetlistError(f"multiply-add width {width} too small (need >= 4)")
    nl = Netlist(f"multadd_{width}")
    zero = nl.add_const("zero", 0)

    ops = {}
    for tag in "abcd":
        raw = [nl.add_input(f"{tag}{i}") for i in range(half)]
        ops[tag] = add_register(nl, f"{tag}reg", raw)

    p1 = build_pipelined_array(nl, "m1", ops["a"], ops["b"], zero)
    p2 = build_pipelined_array(nl, "m2", ops["c"], ops["d"], zero)
    total, cout = add_ripple_adder(nl, "sum", p1, p2)
    outs = add_register(nl, "oreg", total + [cout])
    nl.set_outputs(outs)
    return DesignSpec(
        name=f"{width} Multiply-Add",
        netlist=nl,
        family="MULTADD",
        size=width,
        feedback=False,
    )

"""Structural building blocks shared by the design generators.

All helpers append cells to an existing :class:`Netlist` and return the
names of the signals they produce.  Arithmetic is LUT-mapped the way the
placer expects it: full adders as XOR3 + MAJ3 pairs, partial products
folded into 4-input LUTs.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.cells import (
    LUT_AND2,
    LUT_MAJ3,
    LUT_XOR2,
    LUT_XOR3,
    lut_table,
)
from repro.netlist.netlist import Netlist

__all__ = [
    "add_register",
    "add_xor_tree",
    "add_ripple_adder",
    "add_full_adder",
    "add_pp_adder",
    "add_increment",
]

#: (a & b) ^ c ^ d — a full adder whose first operand is a partial product.
LUT_PP_SUM = lut_table(lambda a, b, c, d: ((a & b) ^ c) ^ d, 4)
#: majority(a & b, c, d) — matching carry.
LUT_PP_CARRY = lut_table(
    lambda a, b, c, d: ((a & b) & c) | ((a & b) & d) | (c & d), 4
)


def add_register(
    nl: Netlist,
    prefix: str,
    signals: list[str],
    init: list[int] | None = None,
    ce: str | None = None,
) -> list[str]:
    """Register a vector of signals; returns the FF output names."""
    if init is not None and len(init) != len(signals):
        raise NetlistError(f"{prefix}: init vector length mismatch")
    out = []
    for i, sig in enumerate(signals):
        out.append(
            nl.add_ff(f"{prefix}[{i}]", sig, ce=ce, init=init[i] if init else 0)
        )
    return out


def add_xor_tree(nl: Netlist, prefix: str, signals: list[str]) -> str:
    """Reduce signals with a tree of XOR3/XOR2 LUTs; returns the root."""
    if not signals:
        raise NetlistError(f"{prefix}: cannot XOR an empty list")
    level = list(signals)
    stage = 0
    while len(level) > 1:
        nxt = []
        i = 0
        while i < len(level):
            chunk = level[i : i + 3]
            if len(chunk) == 1:
                nxt.append(chunk[0])
            else:
                name = f"{prefix}_x{stage}_{len(nxt)}"
                table = LUT_XOR3 if len(chunk) == 3 else LUT_XOR2
                nl.add_lut(name, table, chunk)
                nxt.append(name)
            i += 3
        level = nxt
        stage += 1
    return level[0]


def add_full_adder(
    nl: Netlist, prefix: str, a: str, b: str, cin: str | None
) -> tuple[str, str]:
    """One full adder; returns (sum, carry) signal names."""
    if cin is None:
        s = nl.add_lut(f"{prefix}_s", LUT_XOR2, [a, b])
        c = nl.add_lut(f"{prefix}_c", LUT_AND2, [a, b])
    else:
        s = nl.add_lut(f"{prefix}_s", LUT_XOR3, [a, b, cin])
        c = nl.add_lut(f"{prefix}_c", LUT_MAJ3, [a, b, cin])
    return s, c


def add_ripple_adder(
    nl: Netlist, prefix: str, a: list[str], b: list[str], cin: str | None = None
) -> tuple[list[str], str]:
    """Ripple-carry adder over equal-width vectors; returns (sum, cout)."""
    if len(a) != len(b):
        raise NetlistError(f"{prefix}: operand widths differ ({len(a)} vs {len(b)})")
    if not a:
        raise NetlistError(f"{prefix}: zero-width adder")
    sums: list[str] = []
    carry = cin
    for i, (ai, bi) in enumerate(zip(a, b)):
        s, carry = add_full_adder(nl, f"{prefix}_b{i}", ai, bi, carry)
        sums.append(s)
    return sums, carry


def add_pp_adder(
    nl: Netlist, prefix: str, a: str, b: str, add_in: str, carry_in: str
) -> tuple[str, str]:
    """Multiplier cell: (a AND b) + add_in + carry_in as (sum, carry).

    Folds the partial-product AND into the adder LUTs, so one multiplier
    cell is exactly two 4-input LUTs — one slice, which is how the
    paper-scale slice counts (MULT *n* ~ n^2 slices) come about.

    Pin order differs between the two LUTs: carry_in sits on pin 2 of the
    sum LUT and pin 3 of the carry LUT, the pins whose local imux
    candidates reach the neighbouring positions the placer packs the
    carry chain into (both tables are symmetric in add_in/carry_in, so
    the swap is free).
    """
    s = nl.add_lut(f"{prefix}_s", LUT_PP_SUM, [a, b, carry_in, add_in])
    c = nl.add_lut(f"{prefix}_c", LUT_PP_CARRY, [a, b, add_in, carry_in])
    return s, c


def add_increment(nl: Netlist, prefix: str, q: list[str]) -> list[str]:
    """Next-state logic of a binary up-counter over FF outputs ``q``.

    Uses an AND chain (``all lower bits set``) plus per-bit XOR toggles —
    2 LUTs per bit above the LSB.
    """
    if not q:
        raise NetlistError(f"{prefix}: zero-width counter")
    nxt = []
    inv = lut_table(lambda x: 1 - x, 1)
    nxt.append(nl.add_lut(f"{prefix}_d0", inv, [q[0]]))
    chain = q[0]
    for i in range(1, len(q)):
        # chain on pin 0, own FF on pin 1: the pin-1 local candidates
        # include the FF of the same position, where the packer merges
        # this LUT with q[i]'s flip-flop.
        nxt.append(nl.add_lut(f"{prefix}_d{i}", LUT_XOR2, [chain, q[i]]))
        if i < len(q) - 1:
            chain = nl.add_lut(f"{prefix}_and{i}", LUT_AND2, [chain, q[i]])
    return nxt

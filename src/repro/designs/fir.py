"""Constant-coefficient FIR stage: the radio's IF processing workhorse.

The payload's signal chain runs filters over the digitised IF; a
constant-coefficient FIR maps onto the fabric as shift-add networks —
no general multipliers, just delayed copies added with per-tap binary
weights.  A realistic mixed design: the delay line is feed-forward, the
adder network is datapath.
"""

from __future__ import annotations

from repro.designs.builder import add_register, add_ripple_adder
from repro.designs.spec import DesignSpec
from repro.errors import NetlistError
from repro.netlist.netlist import Netlist

__all__ = ["fir_filter"]


def fir_filter(
    coefficients: tuple[int, ...] = (1, 2, 2, 1), width: int = 6
) -> DesignSpec:
    """FIR with small non-negative integer coefficients.

    Output ``y[n] = sum_k c_k * x[n-k]`` computed by shift-add: each
    coefficient contributes its set bits as shifted copies of the
    delayed sample.  Coefficients must be positive; width is the input
    sample width.
    """
    if not coefficients or any(c <= 0 for c in coefficients):
        raise NetlistError("coefficients must be positive integers")
    if width < 2:
        raise NetlistError("sample width must be >= 2")
    gain = sum(coefficients)
    out_width = width + int(gain - 1).bit_length()

    nl = Netlist(f"fir_{'-'.join(map(str, coefficients))}x{width}")
    zero = nl.add_const("zero", 0)
    sample = [nl.add_input(f"in{i}") for i in range(width)]

    # Tapped delay line.
    taps: list[list[str]] = []
    cur = add_register(nl, "x0", sample)
    taps.append(cur)
    for k in range(1, len(coefficients)):
        cur = add_register(nl, f"x{k}", cur)
        taps.append(cur)

    # Shift-add terms: coefficient bit b of tap k contributes x[n-k] << b.
    terms: list[list[str]] = []
    for k, coeff in enumerate(coefficients):
        b = 0
        while coeff:
            if coeff & 1:
                shifted = [zero] * b + taps[k]
                shifted = (shifted + [zero] * out_width)[:out_width]
                terms.append(shifted)
            coeff >>= 1
            b += 1

    # Balanced accumulation tree with pipeline registers per level.
    level = terms
    stage = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            s, cout = add_ripple_adder(nl, f"a{stage}_{i}", level[i], level[i + 1])
            # Width is already final: the carry out of the top bit is 0
            # by construction (gain bound), but keep it for safety.
            nxt.append(add_register(nl, f"a{stage}_{i}_r", s))
        if len(level) % 2:
            nxt.append(add_register(nl, f"a{stage}_odd", level[-1]))
        level = nxt
        stage += 1
    nl.set_outputs(level[0])
    return DesignSpec(
        name=f"FIR {len(coefficients)}-tap x{width}",
        netlist=nl,
        family="FIR",
        size=len(coefficients),
        feedback=False,
    )

"""Impulsive-event detector: the payload's signal-processing mission.

Paper section II: "The objective is to detect and measure impulsive
events that might occur in a complex background" (ionospheric and
lightning studies on the digitised IF stream).  The classic front end
for that is reproduced structurally: a moving-window background
estimate, a threshold comparison of the incoming sample against the
scaled background, and an event counter — a realistic mixed
feedforward/feedback workload for the fault-management experiments.
"""

from __future__ import annotations

from repro.designs.builder import (
    add_increment,
    add_register,
    add_ripple_adder,
)
from repro.designs.spec import DesignSpec
from repro.errors import NetlistError
from repro.netlist.cells import lut_table
from repro.netlist.netlist import Netlist

__all__ = ["impulse_detector"]

#: out = a AND NOT b — the borrow-free "greater" reduction step.
LUT_GT = lut_table(lambda a, b: a & (1 - b), 2)
#: out = (a == b) — bit equality.
LUT_EQ = lut_table(lambda a, b: 1 - (a ^ b), 2)
#: mux: pick g if e else keep lower-significance verdict.
LUT_GT_CHAIN = lut_table(lambda g, e, lower: g | (e & lower), 3)


def _add_greater_than(nl: Netlist, prefix: str, a: list[str], b: list[str]) -> str:
    """Comparator: returns signal '1 when value(a) > value(b)'.

    Bit-serial from MSB: a>b at bit i if a_i>b_i, or equal and greater
    below.
    """
    if len(a) != len(b):
        raise NetlistError(f"{prefix}: width mismatch")
    verdict = nl.add_lut(f"{prefix}_gt0", LUT_GT, [a[0], b[0]])
    for i in range(1, len(a)):
        g = nl.add_lut(f"{prefix}_g{i}", LUT_GT, [a[i], b[i]])
        e = nl.add_lut(f"{prefix}_e{i}", LUT_EQ, [a[i], b[i]])
        verdict = nl.add_lut(f"{prefix}_c{i}", LUT_GT_CHAIN, [g, e, verdict])
    return verdict


def impulse_detector(
    width: int = 8, window: int = 4, counter_bits: int = 8
) -> DesignSpec:
    """Impulse detector over a ``width``-bit sample stream.

    Structure: a ``window``-tap delay line feeds a background adder
    tree; an incoming sample scaled by the window size (left shift) is
    compared against the background sum; threshold crossings increment
    an event counter.  Outputs: the event count and the live trigger.
    """
    if window < 2 or window & (window - 1):
        raise NetlistError("window must be a power of two >= 2")
    if width < 2 or counter_bits < 2:
        raise NetlistError("width and counter_bits must be >= 2")

    nl = Netlist(f"impulse_{width}w{window}")
    zero = nl.add_const("zero", 0)
    sample = [nl.add_input(f"in{i}") for i in range(width)]
    cur = add_register(nl, "s0", sample)
    head = cur

    # Background: sum of the trailing window.
    taps = []
    for t in range(window):
        cur = add_register(nl, f"tap{t}", cur)
        taps.append(cur)
    level = taps
    stage = 0
    while len(level) > 1:
        nxt = []
        for k in range(0, len(level), 2):
            s, cout = add_ripple_adder(nl, f"bg{stage}_{k}", level[k], level[k + 1])
            nxt.append(add_register(nl, f"bg{stage}_{k}_r", s + [cout]))
        level = nxt
        stage += 1
    background = level[0]

    # Scale the current sample by the window (shift left by log2(window))
    # and align pipelines: the sample is delayed as many register stages
    # as the background path consumed.
    shift = window.bit_length() - 1
    aligned = head
    depth = window + stage - 1
    for d in range(depth):
        aligned = add_register(nl, f"al{d}", aligned)
    scaled = [zero] * shift + aligned
    scaled = scaled[: len(background)] + [zero] * max(
        0, len(background) - len(scaled)
    )
    scaled = scaled[: len(background)]

    trigger = _add_greater_than(nl, "thr", scaled, background)
    trig_ff = nl.add_ff("trig", trigger)

    # Event counter: increments while the trigger is asserted.
    q = [f"evt{i}" for i in range(counter_bits)]
    nxt = add_increment(nl, "evtinc", q)
    for i in range(counter_bits):
        gated = nl.add_lut(
            f"evtmux{i}",
            lut_table(lambda n, old, en: n if en else old, 3),
            [nxt[i], q[i], trig_ff],
        )
        nl.add_ff(q[i], gated)

    nl.set_outputs([trig_ff] + q)
    return DesignSpec(
        name=f"Impulse Detector {width}x{window}",
        netlist=nl,
        family="IMPULSE",
        size=width,
        feedback=True,
    )

"""Fully pipelined array multiplier (the paper's VMULT designs).

Same cell array as :mod:`repro.designs.mult` but with a register plane
after every row: the running sum *and* the travelling operand vectors
are pipelined.  Operand pipelining adds standalone flip-flops beyond the
adder sites, which is why VMULT uses ~1.5-1.8x the slices of MULT at
equal width — matching the paper's Table I (VMULT 36: 2206 slices vs
MULT 36: 1249).
"""

from __future__ import annotations

from repro.designs.builder import add_pp_adder, add_register
from repro.designs.spec import DesignSpec
from repro.errors import NetlistError
from repro.netlist.cells import LUT_AND2
from repro.netlist.netlist import Netlist

__all__ = ["pipelined_multiplier", "build_pipelined_array"]


def build_pipelined_array(
    nl: Netlist, prefix: str, a: list[str], b: list[str], zero: str
) -> list[str]:
    """Append a pipelined w x w multiplier; returns 2w product signals.

    Product bits emerge with row-aligned latency: low bits are delayed so
    every output bit arrives ``w`` cycles after its operands entered.
    """
    w = len(a)
    if len(b) != w:
        raise NetlistError(f"{prefix}: operands must have equal width")
    if w < 2:
        raise NetlistError(f"{prefix}: width must be >= 2")

    low_bits: list[str] = []  # (bit, rows_remaining) handled via delay regs
    s = [nl.add_lut(f"{prefix}_r0_{j}", LUT_AND2, [a[j], b[0]]) for j in range(w)]
    s = add_register(nl, f"{prefix}_sreg0", s)
    a_pipe = add_register(nl, f"{prefix}_apipe0", a)
    b_pipe = add_register(nl, f"{prefix}_bpipe0", b[1:])
    top = zero
    low_bits.append(s[0])

    for i in range(1, w):
        new_s: list[str] = []
        carry = zero
        for j in range(w):
            addend = s[j + 1] if j < w - 1 else top
            sj, carry = add_pp_adder(
                nl, f"{prefix}_r{i}_{j}", a_pipe[j], b_pipe[0], addend, carry
            )
            new_s.append(sj)
        s = add_register(nl, f"{prefix}_sreg{i}", new_s)
        top = nl.add_ff(f"{prefix}_treg{i}", carry)
        low_bits.append(s[0])
        if i < w - 1:
            a_pipe = add_register(nl, f"{prefix}_apipe{i}", a_pipe)
            b_pipe = add_register(nl, f"{prefix}_bpipe{i}", b_pipe[1:])

    # Align the early low bits with the final row by delay registers.
    aligned: list[str] = []
    for i, bit in enumerate(low_bits):
        sig = bit
        for k in range(w - 1 - i):
            sig = nl.add_ff(f"{prefix}_dly{i}_{k}", sig)
        aligned.append(sig)
    return aligned + s[1:] + [top]


def pipelined_multiplier(width: int) -> DesignSpec:
    """VMULT *width*: one register plane per array row."""
    nl = Netlist(f"vmult_{width}")
    zero = nl.add_const("zero", 0)
    a_in = [nl.add_input(f"a{i}") for i in range(width)]
    b_in = [nl.add_input(f"b{i}") for i in range(width)]
    a = add_register(nl, "areg", a_in)
    b = add_register(nl, "breg", b_in)
    product = build_pipelined_array(nl, "m", a, b, zero)
    outs = add_register(nl, "oreg", product)
    nl.set_outputs(outs)
    return DesignSpec(
        name=f"VMULT {width}",
        netlist=nl,
        family="VMULT",
        size=width,
        feedback=False,
    )

"""Generators for the paper's benchmark designs.

Two design classes drive the paper's evaluation (section III-A):

* **feed-forward, datapath-dominated** designs — array multipliers,
  multiply-add trees, filter preprocessors — probing SEU impact on
  computation hardware;
* **local-feedback** designs — LFSR clusters, counters — probing error
  feedback and persistence.

Each generator returns a :class:`~repro.designs.spec.DesignSpec` pairing
the netlist with its stimulus generator and catalog metadata.
"""

from repro.designs.spec import DesignSpec
from repro.designs.lfsr import lfsr_cluster_design, single_lfsr
from repro.designs.mult import array_multiplier
from repro.designs.vmult import pipelined_multiplier
from repro.designs.multadd import multiply_add
from repro.designs.counter import counter_adder
from repro.designs.filterpre import filter_preprocessor
from repro.designs.fir import fir_filter
from repro.designs.impulse import impulse_detector
from repro.designs.lfsrmult import lfsr_multiplier
from repro.designs.library import (
    DESIGN_FAMILIES,
    get_design,
    paper_suite_table1,
    paper_suite_table2,
    scaled_suite_table1,
    scaled_suite_table2,
)

__all__ = [
    "DesignSpec",
    "lfsr_cluster_design",
    "single_lfsr",
    "array_multiplier",
    "pipelined_multiplier",
    "multiply_add",
    "counter_adder",
    "filter_preprocessor",
    "fir_filter",
    "impulse_detector",
    "lfsr_multiplier",
    "DESIGN_FAMILIES",
    "get_design",
    "paper_suite_table1",
    "paper_suite_table2",
    "scaled_suite_table1",
    "scaled_suite_table2",
]

"""Counter/adder design (paper Table II "36 Counter/Adder", Figure 7).

A free-running binary counter (the feedback core whose state a
persistent upset corrupts forever — Figure 7's "actual counter value
never matches the expected result" after cycle 502) feeding a wider
feed-forward adder datapath whose errors flush.  The mix yields the
paper's intermediate persistence ratio (~10 %): only upsets reaching the
counter state persist.
"""

from __future__ import annotations

from repro.designs.builder import add_increment, add_register, add_ripple_adder
from repro.designs.spec import DesignSpec
from repro.errors import NetlistError
from repro.netlist.netlist import Netlist

__all__ = ["counter_design", "counter_adder"]


def counter_design(width: int) -> DesignSpec:
    """A plain ``width``-bit up-counter with its value as the output bus.

    Used for the Figure 7 persistent-error trace.
    """
    if width < 2:
        raise NetlistError("counter width must be >= 2")
    nl = Netlist(f"counter_{width}")
    q = [f"q{i}" for i in range(width)]
    nxt = add_increment(nl, "inc", q)
    for i in range(width):
        nl.add_ff(q[i], nxt[i])
    nl.set_outputs(q)
    return DesignSpec(
        name=f"Counter {width}", netlist=nl, family="COUNTER", size=width, feedback=True
    )


def counter_adder(
    datapath_bits: int, counter_bits: int | None = None, pipeline_depth: int = 2
) -> DesignSpec:
    """Counter/adder: small counter core + wide feed-forward adder path.

    ``datapath_bits`` names the design (the paper's is 36);
    ``counter_bits`` defaults to ``datapath_bits // 4`` — the counter is
    deliberately a small fraction of the design so the persistent
    fraction is small but non-zero.
    """
    if counter_bits is None:
        counter_bits = max(2, datapath_bits // 4)
    if datapath_bits < counter_bits:
        raise NetlistError("datapath must be at least as wide as the counter")
    nl = Netlist(f"cntadd_{datapath_bits}")

    # Feedback core: the counter.
    q = [f"q{i}" for i in range(counter_bits)]
    nxt = add_increment(nl, "inc", q)
    for i in range(counter_bits):
        nl.add_ff(q[i], nxt[i])

    # Feed-forward datapath: extend the count by replication, add a
    # rotated copy, pipeline, add again.
    x = [q[i % counter_bits] for i in range(datapath_bits)]
    rot = x[1:] + x[:1]
    s1, _ = add_ripple_adder(nl, "add1", x, rot)
    stage = add_register(nl, "p0", s1)
    for p in range(1, pipeline_depth):
        rot2 = stage[2:] + stage[:2]
        s2, _ = add_ripple_adder(nl, f"add{p + 1}", stage, rot2)
        stage = add_register(nl, f"p{p}", s2)
    nl.set_outputs(stage)
    return DesignSpec(
        name=f"{datapath_bits} Counter/Adder",
        netlist=nl,
        family="COUNTER",
        size=datapath_bits,
        feedback=True,
    )

"""Design catalog at paper sizes and at campaign-friendly scaled sizes.

``paper_suite_table1()`` / ``paper_suite_table2()`` return the exact
design line-up of the paper's Tables I and II; the ``scaled_*`` variants
shrink each member proportionally so an *exhaustive* SEU campaign on a
scaled device finishes in CI time.  Sensitivity and persistence are
intensive (ratio) quantities, so the scaled suites preserve the paper's
shape — that claim is itself tested (``tests/seu/test_scaling.py``).
"""

from __future__ import annotations

import re
from typing import Callable

from repro.designs.counter import counter_adder, counter_design
from repro.designs.filterpre import filter_preprocessor
from repro.designs.lfsr import lfsr_cluster_design
from repro.designs.lfsrmult import lfsr_multiplier
from repro.designs.mult import array_multiplier
from repro.designs.multadd import multiply_add
from repro.designs.spec import DesignSpec
from repro.designs.vmult import pipelined_multiplier
from repro.errors import NetlistError

__all__ = [
    "DESIGN_FAMILIES",
    "get_design",
    "paper_suite_table1",
    "paper_suite_table2",
    "scaled_suite_table1",
    "scaled_suite_table2",
]

#: Family name -> constructor taking the size parameter.
DESIGN_FAMILIES: dict[str, Callable[[int], DesignSpec]] = {
    "LFSR": lfsr_cluster_design,
    "MULT": array_multiplier,
    "VMULT": pipelined_multiplier,
    "MULTADD": multiply_add,
    "COUNTER": counter_adder,
    "CNT": counter_design,
    "FILTER": lambda n: filter_preprocessor(n_taps=n),
    "LFSRMULT": lfsr_multiplier,
}


def get_design(name: str) -> DesignSpec:
    """Build a catalog design from a compact name like ``"MULT12"``.

    The name is ``<FAMILY><size>`` with families from
    :data:`DESIGN_FAMILIES` (longest match wins, case-insensitive).
    """
    m = re.fullmatch(r"([A-Za-z]+)\s*(\d+)", name.strip())
    if not m:
        raise NetlistError(f"cannot parse design name {name!r} (want e.g. 'MULT12')")
    family, size = m.group(1).upper(), int(m.group(2))
    if family not in DESIGN_FAMILIES:
        known = ", ".join(sorted(DESIGN_FAMILIES))
        raise NetlistError(f"unknown design family {family!r}; known: {known}")
    return DESIGN_FAMILIES[family](size)


def paper_suite_table1() -> list[DesignSpec]:
    """The twelve Table I designs at paper sizes (XCV1000-scale)."""
    suite = []
    for n in (18, 36, 54, 72):
        suite.append(lfsr_cluster_design(n))
    for n in (18, 36, 54, 72):
        suite.append(pipelined_multiplier(n))
    for n in (12, 24, 36, 48):
        suite.append(array_multiplier(n))
    return suite


def scaled_suite_table1(scale: int = 1) -> list[DesignSpec]:
    """Table I line-up shrunk for exhaustive campaigns on scaled devices.

    ``scale`` >= 1 grows the suite back toward paper sizes; the default
    fits comfortably on the ``S8``/``S12`` devices.
    """
    if scale < 1:
        raise NetlistError("scale must be >= 1")
    suite = []
    for n in (1, 2, 3, 4):
        suite.append(lfsr_cluster_design(n * scale, n_bits=8, per_cluster=2))
    for n in (3, 4, 5, 6):
        suite.append(pipelined_multiplier(n * scale))
    for n in (3, 4, 5, 6):
        suite.append(array_multiplier(n * scale))
    return suite


def paper_suite_table2() -> list[DesignSpec]:
    """The five Table II designs at paper sizes."""
    return [
        multiply_add(54),
        counter_adder(36),
        lfsr_cluster_design(72),
        lfsr_multiplier(12),
        filter_preprocessor(8, 12),
    ]


def scaled_suite_table2() -> list[DesignSpec]:
    """Table II line-up shrunk for exhaustive campaigns."""
    return [
        multiply_add(8),
        counter_adder(12, counter_bits=4, pipeline_depth=2),
        lfsr_cluster_design(3, n_bits=8, per_cluster=2),
        lfsr_multiplier(4, lfsr_bits=8),
        filter_preprocessor(4, 6),
    ]

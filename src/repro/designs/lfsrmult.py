"""LFSR-fed multiplier (paper Table II "LFSR Multiplier").

Two LFSRs generate operand streams feeding a pipelined multiplier: a
small feedback core in front of a large feed-forward datapath.  Upsets
landing in the LFSRs persist; upsets in the multiplier flush — giving
the paper's intermediate 15 % persistence ratio.
"""

from __future__ import annotations

from repro.designs.builder import add_register
from repro.designs.lfsr import single_lfsr
from repro.designs.spec import DesignSpec
from repro.designs.vmult import build_pipelined_array
from repro.errors import NetlistError
from repro.netlist.netlist import Netlist

__all__ = ["lfsr_multiplier"]


def lfsr_multiplier(width: int = 12, lfsr_bits: int = 16) -> DesignSpec:
    """Pipelined ``width``-bit multiplier with LFSR-generated operands."""
    if width < 2:
        raise NetlistError("multiplier width must be >= 2")
    if lfsr_bits < width:
        raise NetlistError(
            f"LFSR width {lfsr_bits} must cover the operand width {width}"
        )
    nl = Netlist(f"lfsrmult_{width}")
    zero = nl.add_const("zero", 0)
    qa = single_lfsr(nl, "ga", lfsr_bits, seed=0xACE1 & ((1 << lfsr_bits) - 1))
    qb = single_lfsr(nl, "gb", lfsr_bits, seed=0xB5C7 & ((1 << lfsr_bits) - 1))
    a = add_register(nl, "areg", qa[:width])
    b = add_register(nl, "breg", qb[:width])
    product = build_pipelined_array(nl, "m", a, b, zero)
    outs = add_register(nl, "oreg", product)
    nl.set_outputs(outs)
    return DesignSpec(
        name="LFSR Multiplier",
        netlist=nl,
        family="LFSRMULT",
        size=width,
        feedback=True,
    )

"""Design specification: netlist + stimulus + catalog metadata."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.netlist import Netlist
from repro.utils.rng import derive_rng

__all__ = ["DesignSpec"]


@dataclass
class DesignSpec:
    """A runnable benchmark design.

    ``stimulus(cycles, rng)`` returns a ``(cycles, n_inputs)`` uint8
    array; self-stimulating designs (LFSRs, counters) have zero inputs
    and return an empty matrix.  ``family`` groups designs for the
    normalised-sensitivity analysis of Table I ("LFSR", "VMULT", ...).
    """

    name: str
    netlist: Netlist
    family: str
    size: int  #: the family's size parameter (bit width / cluster count)
    feedback: bool  #: True for designs with architectural feedback loops

    def stimulus(self, cycles: int, seed: int | np.random.Generator = 0) -> np.ndarray:
        """Deterministic pseudo-random input stream for this design.

        Golden and faulty machines must see *identical* stimulus (the
        SLAAC-1V feeds X1 and X2 from the same source), so the stream is
        a pure function of (design name, seed).
        """
        rng = derive_rng(seed, "stimulus", self.name)
        n_inputs = len(self.netlist.inputs)
        if n_inputs == 0:
            return np.zeros((cycles, 0), dtype=np.uint8)
        return rng.integers(0, 2, size=(cycles, n_inputs), dtype=np.uint8)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.netlist.stats()
        return (
            f"DesignSpec({self.name!r}, family={self.family}, size={self.size}, "
            f"{s['luts']} LUTs, {s['ffs']} FFs)"
        )

"""LFSR cluster design (paper Figure 10).

Clusters of six 20-bit linear feedback shift registers whose outputs are
XOR'ed to form one output bit; the flight design instantiated 72
clusters to fill the SLAAC-1V's 72 output pins.  The design is almost
pure sequential state with local feedback — the paper's probe for error
feedback and the champion of persistence (93.9 % of sensitive bits).
"""

from __future__ import annotations

from repro.designs.builder import add_xor_tree
from repro.designs.spec import DesignSpec
from repro.errors import NetlistError
from repro.netlist.netlist import Netlist

__all__ = ["single_lfsr", "lfsr_cluster_design"]

#: Maximal-length taps for common widths (Fibonacci form, 0-based FF
#: indices XOR'ed into the new bit 0).
_TAPS: dict[int, tuple[int, ...]] = {
    8: (7, 5, 4, 3),
    12: (11, 10, 9, 3),
    16: (15, 14, 12, 3),
    20: (19, 2),
    24: (23, 22, 21, 16),
}


def single_lfsr(
    nl: Netlist, prefix: str, n_bits: int = 20, seed: int = 1
) -> list[str]:
    """Append one LFSR to ``nl``; returns its FF output names (q0..qN-1).

    ``seed`` sets the FF INIT pattern; it must be non-zero or the LFSR
    would be stuck at the all-zero state.
    """
    if n_bits not in _TAPS:
        raise NetlistError(
            f"no maximal taps known for {n_bits}-bit LFSR "
            f"(supported: {sorted(_TAPS)})"
        )
    if seed % (1 << n_bits) == 0:
        raise NetlistError("LFSR seed must be non-zero within the register width")
    taps = _TAPS[n_bits]

    q = [f"{prefix}_q{i}" for i in range(n_bits)]
    fb = add_xor_tree(nl, f"{prefix}_fb", [q[t] for t in taps]) if len(taps) > 1 else q[taps[0]]
    # The XOR tree references q names before the FFs exist; create them now.
    # (Netlist is name-based, so forward references are resolved at
    # validate time.)
    nl.add_ff(q[0], fb, init=seed & 1)
    for i in range(1, n_bits):
        nl.add_ff(q[i], q[i - 1], init=(seed >> i) & 1)
    return q


def lfsr_cluster_design(
    n_clusters: int,
    n_bits: int = 20,
    per_cluster: int = 6,
) -> DesignSpec:
    """Figure 10: ``n_clusters`` clusters of ``per_cluster`` LFSRs each.

    One output bit per cluster, registered.  Self-stimulating: the design
    has no primary inputs.
    """
    if n_clusters < 1 or per_cluster < 1:
        raise NetlistError("need at least one cluster of one LFSR")
    nl = Netlist(f"lfsr_{n_clusters}x{per_cluster}x{n_bits}")
    outputs = []
    for c in range(n_clusters):
        tips = []
        for k in range(per_cluster):
            # Distinct non-zero seeds so clusters produce differing streams.
            seed = (0x9E3779B9 * (c * per_cluster + k + 1)) & ((1 << n_bits) - 1) or 1
            q = single_lfsr(nl, f"c{c}_l{k}", n_bits, seed)
            tips.append(q[-1])
        x = add_xor_tree(nl, f"c{c}_out", tips)
        outputs.append(nl.add_ff(f"c{c}_o", x))
    nl.set_outputs(outputs)
    return DesignSpec(
        name=f"LFSR {n_clusters}",
        netlist=nl,
        family="LFSR",
        size=n_clusters,
        feedback=True,
    )

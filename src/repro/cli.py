"""Command-line interface: the experiments as shell one-liners.

Installed as the ``repro`` console script::

    repro devices                        # list the device catalog
    repro implement MULT6 --device S12   # place/route/bitgen summary
    repro campaign MULT6 --device S12    # exhaustive SEU sweep
    repro multibit MULT6 --k 2           # k-bit simultaneous-upset trials
    repro bist-coverage --faults 200     # CLB BIST hard-fault coverage
    repro table1                         # scaled Table I reproduction
    repro table2                         # scaled Table II reproduction
    repro orbit --hours 2                # mission rehearsal
    repro report trace.jsonl             # render a --trace file
    repro worker --connect HOST:PORT     # join a distributed campaign
    repro serve --listen HOST:PORT       # HTTP job service over the engine

Long-running commands (campaign, multibit, bist-coverage,
scrub-stress) accept ``--trace PATH`` (append-only JSONL span trace,
see :mod:`repro.obs`) and ``--progress`` (live stderr progress line);
both are verdict-invariant.

The sweep commands (campaign, multibit, bist-coverage) also accept
``--executor tcp --listen HOST:PORT`` to fan shards out to ``repro
worker`` processes over sockets instead of a local process pool —
verdicts stay byte-identical to a serial run.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic reconfiguration for radiation-fault management "
        "in FPGAs (paper reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_shrinker_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--no-collapse", action="store_true",
            help="disable fault collapsing (simulate every survivor even when "
            "its patch duplicates an earlier one; verdicts are identical "
            "either way)",
        )
        p.add_argument(
            "--no-retire", action="store_true",
            help="disable live machine retirement (keep sealed machines in "
            "the batch to the last cycle; verdicts are identical either way)",
        )

    def add_obs_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", metavar="PATH", default=None,
            help="append a JSONL span trace to PATH (render with `repro "
            "report PATH`; verdicts are identical with or without)",
        )
        p.add_argument(
            "--progress", action="store_true",
            help="live progress line on stderr (verdict-invariant)",
        )

    def add_backend_flag(p: argparse.ArgumentParser) -> None:
        from repro.netlist.backends import BACKENDS

        p.add_argument(
            "--backend", choices=BACKENDS, default=None,
            help="kernel backend for the netlist simulator (default: the "
            "REPRO_KERNEL_BACKEND env var, else 'reference'; verdicts are "
            "byte-identical for every choice)",
        )

    def add_resilience_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--shard-attempts", type=int, default=None, metavar="N",
            help="worker attempts per shard before it is quarantined "
            "(default 3; sharded runs only)",
        )
        p.add_argument(
            "--allow-partial", action="store_true",
            help="exit 0 even when shards were quarantined (the result then "
            "excludes their candidates; default: nonzero exit)",
        )
        p.add_argument(
            "--chaos", metavar="SPEC", default=None,
            help="inject deterministic worker faults, e.g. "
            "'seed=3,crash=0.2,hang=0.1,hang-s=5,drop=0.1,partition=0.05' — "
            "a recovery test knob; verdicts are identical to an undisturbed "
            "run whenever the executor recovers",
        )
        p.add_argument(
            "--no-fast-forward", action="store_true",
            help="build campaign contexts from cycle 0 instead of restoring "
            "a golden-prefix snapshot (verdicts are byte-identical either "
            "way; also via REPRO_FAST_FORWARD=0)",
        )
        p.add_argument(
            "--result-cache", metavar="DIR|off", default=None,
            help="content-addressed result store: a warm repeat of the same "
            "sweep is served from DIR without simulating, byte-identically; "
            "'off' disables an inherited REPRO_RESULT_CACHE",
        )

    def add_batch_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--batch-size", type=int, default=None, metavar="N",
            help="survivors simulated per batch (default 128; this is "
            "verdict-affecting — batch composition decides which machines "
            "are observed marginally — so fix it when pinning bytes)",
        )

    def add_transport_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--executor", choices=("local", "tcp"), default=None, dest="transport",
            help="shard transport: 'local' process pool (default) or 'tcp' "
            "distributed workers started with `repro worker --connect` "
            "(verdicts are byte-identical either way)",
        )
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="with --executor tcp: wait for N connected workers before "
            "dispatching (default 1; late joiners still steal work)",
        )
        p.add_argument(
            "--listen", metavar="HOST:PORT", default=None,
            help="with --executor tcp: bind address for the coordinator "
            "(default 127.0.0.1:0 — an ephemeral port; see --announce)",
        )
        p.add_argument(
            "--announce", metavar="PATH", default=None,
            help="with --executor tcp: write the bound host:port to PATH so "
            "workers can `--connect @PATH` without knowing the port",
        )

    sub.add_parser("devices", help="list the device catalog")

    p = sub.add_parser("implement", help="place/route/bitgen one design")
    p.add_argument("design", help="catalog name, e.g. MULT6 or LFSR2")
    p.add_argument("--device", default="S12")

    p = sub.add_parser("campaign", help="exhaustive SEU campaign on one design")
    p.add_argument("design")
    p.add_argument("--device", default="S12")
    p.add_argument("--detect-cycles", type=int, default=96)
    p.add_argument("--persist-cycles", type=int, default=64)
    p.add_argument("--stride", type=int, default=1, help="test every k-th bit")
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sharded sweep (default: all CPUs; "
        "1 = serial; verdicts are byte-identical for any N)",
    )
    p.add_argument("--save-map", metavar="PATH", help="save the sensitivity map (.npz)")
    p.add_argument(
        "--checkpoint", metavar="PATH",
        help="snapshot partial results to PATH (.npz) so a killed sweep can resume",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint instead of starting over",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=50_000,
        help="candidate bits between snapshots",
    )
    add_batch_flag(p)
    add_shrinker_flags(p)
    add_obs_flags(p)
    add_resilience_flags(p)
    add_transport_flags(p)
    add_backend_flag(p)

    p = sub.add_parser(
        "multibit", help="k-bit simultaneous-upset (MBU) campaign on one design"
    )
    p.add_argument("design")
    p.add_argument("--device", default="S12")
    p.add_argument("--k", type=int, default=2, help="upsets per trial")
    p.add_argument("--trials", type=int, default=512)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--detect-cycles", type=int, default=96)
    p.add_argument(
        "--single-sensitivity", type=float, default=None,
        help="single-bit sensitivity for the independence prediction "
        "(default: measure it with a strided campaign)",
    )
    p.add_argument(
        "--stride", type=int, default=13,
        help="stride of the sensitivity-measuring campaign",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (results are identical for any N)",
    )
    p.add_argument(
        "--checkpoint", metavar="PATH",
        help="snapshot partial trial verdicts to PATH (.npz)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint instead of starting over",
    )
    add_batch_flag(p)
    add_shrinker_flags(p)
    add_obs_flags(p)
    add_resilience_flags(p)
    add_transport_flags(p)
    add_backend_flag(p)

    p = sub.add_parser(
        "bist-coverage", help="hard-fault coverage of the CLB BIST configurations"
    )
    p.add_argument("--device", default="S12")
    p.add_argument("--faults", type=int, default=200, dest="n_faults",
                   help="random hard faults to inject")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cycles", type=int, default=128)
    p.add_argument("--register-pairs", type=int, default=4)
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (the report is identical for any N)",
    )
    p.add_argument(
        "--checkpoint", metavar="PATH",
        help="snapshot partial fault verdicts to PATH (.npz)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint instead of starting over",
    )
    add_batch_flag(p)
    add_shrinker_flags(p)
    add_obs_flags(p)
    add_resilience_flags(p)
    add_transport_flags(p)
    add_backend_flag(p)

    p = sub.add_parser("table1", help="reproduce Table I on scaled designs")
    p.add_argument("--device", default="S12")

    p = sub.add_parser("table2", help="reproduce Table II on scaled designs")
    p.add_argument("--device", default="S12")

    p = sub.add_parser("orbit", help="fly a scrubbed board through LEO")
    p.add_argument("--device", default="S12")
    p.add_argument("--hours", type=float, default=1.0)
    p.add_argument("--devices", type=int, default=3, dest="n_devices")
    p.add_argument("--flare", action="store_true", help="solar-flare flux")
    p.add_argument(
        "--flux-scale", type=float, default=2000.0,
        help="area-compensation factor for scaled devices",
    )
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "scrub-stress",
        help="fly a board with a faulty scrub channel (noise, SEFIs, escalation)",
    )
    p.add_argument("--device", default="S12")
    p.add_argument("--hours", type=float, default=1.0)
    p.add_argument("--devices", type=int, default=9, dest="n_devices")
    p.add_argument("--ber", type=float, default=1e-7, help="readback bit-error rate")
    p.add_argument(
        "--transient-rate", type=float, default=1e-3,
        help="probability a port operation fails transiently",
    )
    p.add_argument(
        "--sefi-rate", type=float, default=1e-5,
        help="probability a port operation hangs the port (SEFI)",
    )
    p.add_argument("--flare", action="store_true", help="solar-flare flux")
    p.add_argument(
        "--flux-scale", type=float, default=2000.0,
        help="area-compensation factor for scaled devices",
    )
    p.add_argument("--seed", type=int, default=0)
    add_obs_flags(p)
    add_backend_flag(p)

    p = sub.add_parser(
        "report", help="render a --trace JSONL file (span tree, critical path)"
    )
    p.add_argument(
        "trace_file", metavar="TRACE", help="trace file written by --trace PATH"
    )
    p.add_argument(
        "--json", action="store_true", dest="report_json",
        help="emit the report as machine-readable JSON instead of text",
    )

    p = sub.add_parser(
        "worker",
        help="serve shards for a distributed campaign (`--executor tcp`)",
    )
    p.add_argument(
        "--connect", required=True, metavar="HOST:PORT|@PATH",
        help="coordinator address, or @PATH to read it from an --announce file",
    )
    p.add_argument(
        "--persist", action="store_true",
        help="rejoin after the coordinator says goodbye (serve campaign after "
        "campaign until killed; default: exit after one campaign)",
    )
    p.add_argument(
        "--name", default=None,
        help="worker name in telemetry and traces (default: host-pid)",
    )
    p.add_argument(
        "--hb-interval", type=float, default=1.0, metavar="SECONDS",
        help="heartbeat period before the coordinator's welcome overrides it",
    )
    p.add_argument(
        "--connect-timeout", type=float, default=60.0, metavar="SECONDS",
        help="give up when no coordinator accepts within this window",
    )
    p.add_argument(
        "--join-timeout", type=float, default=None, metavar="SECONDS",
        help="with --connect @PATH: fail with a clear error when the "
        "announce file has not named a coordinator within this window "
        "(default: keep polling until --connect-timeout expires)",
    )
    add_backend_flag(p)

    p = sub.add_parser(
        "serve",
        help="run the campaign job service (HTTP API over the engine)",
    )
    p.add_argument(
        "--listen", metavar="HOST:PORT", default="127.0.0.1:8321",
        help="bind address (port 0 picks an ephemeral port; see --announce)",
    )
    p.add_argument(
        "--state", metavar="DIR", default=".repro-service",
        help="state directory for job records, results, traces and "
        "checkpoints; restarting over the same DIR resumes interrupted jobs",
    )
    p.add_argument(
        "--job-workers", type=int, default=2, metavar="N",
        help="concurrent engine jobs (each job may itself use --jobs N)",
    )
    p.add_argument(
        "--result-cache", metavar="DIR|off", default=None,
        help="content-addressed result store consulted before running any "
        "job (default: the REPRO_RESULT_CACHE env var; 'off' disables)",
    )
    p.add_argument(
        "--max-running", type=int, default=4, metavar="N",
        help="per-tenant cap on concurrently running jobs",
    )
    p.add_argument(
        "--max-queued", type=int, default=None, metavar="N",
        help="per-tenant cap on queued backlog (submit returns 429 beyond "
        "it; default: unbounded)",
    )
    p.add_argument(
        "--announce", metavar="PATH", default=None,
        help="write the bound host:port to PATH once listening",
    )
    add_obs_flags(p)
    return parser


def _warn_quarantine(telemetry) -> None:
    """Surface quarantined work in a partial result (``--allow-partial``)."""
    if telemetry is not None and telemetry.shards_quarantined:
        late = ""
        if getattr(telemetry, "late_results", 0):
            late = (
                f"; {telemetry.late_results} of them completed during "
                f"teardown (logged in the trace, not merged)"
            )
        print(
            f"warning: {telemetry.shards_quarantined} shard(s) quarantined; "
            f"{telemetry.candidates_quarantined} candidate(s) excluded from "
            f"this result (re-run to retry them){late}",
            file=sys.stderr,
        )


def _cmd_devices() -> int:
    from repro.fpga import DEVICE_CATALOG, get_device

    for name in DEVICE_CATALOG:
        dev = get_device(name)
        print(
            f"{name:<9} {dev.rows:>3}x{dev.cols:<3} CLBs  "
            f"{dev.n_slices:>6} slices  "
            f"{dev.total_config_bits:>9,} config bits"
        )
    return 0


def _cmd_implement(args: argparse.Namespace) -> int:
    from repro import get_design, get_device, implement

    hw = implement(get_design(args.design), get_device(args.device))
    print(hw.summary())
    print(
        f"routing: {hw.routed.n_pips_on} PIPs, {hw.routed.n_escapes} long-line "
        f"escapes, {hw.routed.n_route_throughs} route-throughs"
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro import CampaignConfig, get_design, get_device, implement, run_campaign
    from repro.errors import CampaignError
    from repro.seu import (
        SensitivityMap,
        default_jobs,
        format_table1,
        resume_campaign,
        resume_campaign_parallel,
        run_campaign_parallel,
        table1_row,
    )

    jobs = default_jobs() if args.jobs is None else args.jobs
    collapse = not args.no_collapse
    retire = not args.no_retire
    hw = implement(get_design(args.design), get_device(args.device))
    if args.resume:
        if not args.checkpoint:
            raise CampaignError("--resume requires --checkpoint PATH")
        if jobs == 1:
            result = resume_campaign(
                hw,
                args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                collapse=collapse,
                retire=retire,
            )
        else:
            result = resume_campaign_parallel(
                hw, args.checkpoint, jobs=jobs, collapse=collapse, retire=retire
            )
    else:
        cfg_extra = {} if args.batch_size is None else {"batch_size": args.batch_size}
        config = CampaignConfig(
            detect_cycles=args.detect_cycles,
            persist_cycles=args.persist_cycles,
            stride=args.stride,
            **cfg_extra,
        )
        if jobs == 1:
            result = run_campaign(
                hw,
                config,
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                collapse=collapse,
                retire=retire,
            )
        else:
            result = run_campaign_parallel(
                hw,
                config,
                jobs=jobs,
                checkpoint_path=args.checkpoint,
                collapse=collapse,
                retire=retire,
            )
    print(result.summary())
    if result.telemetry is not None:
        print(f"throughput: {result.telemetry.summary()}")
    _warn_quarantine(result.telemetry)
    print(format_table1([table1_row(hw, result)]))
    print(f"persistence ratio: {100 * result.persistence_ratio:.1f}%")
    if args.save_map:
        SensitivityMap.from_campaign(hw.device, result).save(args.save_map)
        print(f"sensitivity map saved to {args.save_map}")
    return 0


def _cmd_multibit(args: argparse.Namespace) -> int:
    from repro import CampaignConfig, get_design, get_device, implement, run_campaign
    from repro.seu import run_multibit_campaign

    hw = implement(get_design(args.design), get_device(args.device))
    cfg_extra = {} if args.batch_size is None else {"batch_size": args.batch_size}
    config = CampaignConfig(detect_cycles=args.detect_cycles, persist_cycles=0,
                            classify_persistence=False, **cfg_extra)
    sensitivity = args.single_sensitivity
    if sensitivity is None:
        probe = CampaignConfig(
            detect_cycles=args.detect_cycles, persist_cycles=0,
            classify_persistence=False, stride=args.stride, **cfg_extra,
        )
        probe_result = run_campaign(hw, probe)
        sensitivity = probe_result.sensitivity
        print(
            f"single-bit sensitivity (stride {args.stride}): "
            f"{100 * sensitivity:.2f}%",
            file=sys.stderr,
        )
    result = run_multibit_campaign(
        hw,
        sensitivity,
        k=args.k,
        n_trials=args.trials,
        config=config,
        seed=args.seed,
        jobs=args.jobs,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        collapse=not args.no_collapse,
        retire=not args.no_retire,
    )
    print(result.summary())
    if result.telemetry is not None:
        print(f"throughput: {result.telemetry.summary()}")
    _warn_quarantine(result.telemetry)
    return 0


def _cmd_bist_coverage(args: argparse.Namespace) -> int:
    from repro.bist.coverage import run_coverage
    from repro.bist.faults import sample_faults
    from repro.bist.patterns import clb_test_design
    from repro.fpga import get_device
    from repro.place import implement

    device = get_device(args.device)
    # Sample fault sites from the fabric of the first test configuration;
    # both variants exercise the same CLB/wire resources.
    probe = implement(
        clb_test_design(args.register_pairs, register_bits=8, variant=0), device
    )
    faults = sample_faults(probe.decoded, args.n_faults, seed=args.seed)
    report = run_coverage(
        device,
        faults,
        n_register_pairs=args.register_pairs,
        cycles=args.cycles,
        jobs=args.jobs,
        batch_size=128 if args.batch_size is None else args.batch_size,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        collapse=not args.no_collapse,
        retire=not args.no_retire,
    )
    print(report.summary())
    for config_name, caught in report.detected_by.items():
        print(f"  {config_name}: {len(caught)} detected")
    if report.telemetry is not None:
        print(f"throughput: {report.telemetry.summary()}")
    _warn_quarantine(report.telemetry)
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro import CampaignConfig, get_device, implement, run_campaign
    from repro.designs import scaled_suite_table1
    from repro.seu import format_table1, table1_row

    device = get_device(args.device)
    config = CampaignConfig(detect_cycles=96, persist_cycles=0, classify_persistence=False)
    rows = []
    for spec in scaled_suite_table1():
        hw = implement(spec, device)
        rows.append(table1_row(hw, run_campaign(hw, config)))
        print(f"  done: {rows[-1].design}", file=sys.stderr)
    print(format_table1(rows))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro import CampaignConfig, get_device, implement, run_campaign
    from repro.designs import scaled_suite_table2
    from repro.seu import format_table2

    device = get_device(args.device)
    config = CampaignConfig(detect_cycles=96, persist_cycles=64)
    rows = []
    for spec in scaled_suite_table2():
        hw = implement(spec, device)
        res = run_campaign(hw, config)
        rows.append(
            (spec.name, hw.used_slices, hw.utilization, res.sensitivity, res.persistence_ratio)
        )
        print(f"  done: {spec.name}", file=sys.stderr)
    print(format_table2(rows))
    return 0


def _cmd_orbit(args: argparse.Namespace) -> int:
    from repro.bitstream import ConfigBitstream
    from repro.fpga import get_device
    from repro.radiation import LEO_FLARE, LEO_QUIET, OrbitEnvironment
    from repro.scrub import OnOrbitSystem

    device = get_device(args.device)
    rng = np.random.default_rng(args.seed)
    golden = ConfigBitstream(
        device.geometry,
        rng.integers(0, 2, device.geometry.total_bits).astype(np.uint8),
    )
    base = LEO_FLARE if args.flare else LEO_QUIET
    env = OrbitEnvironment(
        f"{base.name} (x{args.flux_scale:g})",
        base.effective_flux_cm2_s * args.flux_scale,
    )
    system = OnOrbitSystem(
        device, golden, n_devices=args.n_devices, environment=env, seed=args.seed
    )
    report = system.fly(args.hours * 3600.0)
    print(report.summary())
    print(f"state of health: {report.soh.summary()}")
    return 0


def _cmd_scrub_stress(args: argparse.Namespace) -> int:
    from repro.bitstream import ConfigBitstream
    from repro.fpga import get_device
    from repro.radiation import LEO_FLARE, LEO_QUIET, OrbitEnvironment
    from repro.scrub import NoiseConfig, OnOrbitSystem, ScrubEventKind

    device = get_device(args.device)
    rng = np.random.default_rng(args.seed)
    golden = ConfigBitstream(
        device.geometry,
        rng.integers(0, 2, device.geometry.total_bits).astype(np.uint8),
    )
    base = LEO_FLARE if args.flare else LEO_QUIET
    env = OrbitEnvironment(
        f"{base.name} (x{args.flux_scale:g})",
        base.effective_flux_cm2_s * args.flux_scale,
    )
    try:
        noise = NoiseConfig(
            readback_ber=args.ber,
            transient_rate=args.transient_rate,
            sefi_rate=args.sefi_rate,
            seed=args.seed,
        )
    except ValueError as err:
        from repro.errors import ReproError

        raise ReproError(str(err)) from err
    system = OnOrbitSystem(
        device,
        golden,
        n_devices=args.n_devices,
        environment=env,
        seed=args.seed,
        noise=noise,
    )
    report = system.fly(args.hours * 3600.0)
    print(report.summary())
    print(f"state of health: {report.soh.summary()}")
    for kind in (
        ScrubEventKind.FALSE_ALARM,
        ScrubEventKind.RETRY,
        ScrubEventKind.ESCALATION,
        ScrubEventKind.SEFI_RECOVERY,
        ScrubEventKind.QUARANTINE,
    ):
        print(f"  {kind.name:<14} {report.soh.count(kind)}")
    print(f"fleet availability: {100 * report.device_availability:.4f}%")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import load_trace, render_report

    trace = load_trace(args.trace_file)
    if args.report_json:
        import json

        from repro.obs.report import report_dict

        print(json.dumps(report_dict(trace), indent=1))
    else:
        print(render_report(trace), end="")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.engine.distributed import run_worker

    return run_worker(
        args.connect,
        persist=args.persist,
        hb_interval_s=args.hb_interval,
        connect_timeout_s=args.connect_timeout,
        join_timeout_s=args.join_timeout,
        name=args.name,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, run_server

    return run_server(
        ServiceConfig(
            listen=args.listen,
            state=args.state,
            job_workers=args.job_workers,
            cache=args.result_cache,
            max_running_per_tenant=args.max_running,
            max_queued_per_tenant=args.max_queued,
            announce=args.announce,
        )
    )


_COMMANDS = {
    "devices": lambda args: _cmd_devices(),
    "implement": _cmd_implement,
    "campaign": _cmd_campaign,
    "multibit": _cmd_multibit,
    "bist-coverage": _cmd_bist_coverage,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "orbit": _cmd_orbit,
    "scrub-stress": _cmd_scrub_stress,
    "report": _cmd_report,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    from contextlib import nullcontext

    from repro.engine.chaos import ChaosPolicy
    from repro.engine.executor import executor_policy
    from repro.errors import ReproError
    from repro.netlist.backends import kernel_backend
    from repro.obs import observe

    args = build_parser().parse_args(argv)
    backend_scope = (
        kernel_backend(args.backend)
        if getattr(args, "backend", None)
        else nullcontext()
    )
    overrides: dict = {}
    if getattr(args, "chaos", None):
        try:
            overrides["chaos"] = ChaosPolicy.parse(args.chaos)
        except ReproError as err:
            print(f"repro: error: {err}", file=sys.stderr)
            return 2
    if getattr(args, "allow_partial", False):
        overrides["allow_partial"] = True
    if getattr(args, "shard_attempts", None) is not None:
        overrides["max_attempts"] = args.shard_attempts
    if getattr(args, "transport", None):
        overrides["transport"] = args.transport
    if getattr(args, "listen", None):
        overrides["listen"] = args.listen
    if getattr(args, "announce", None):
        overrides["announce"] = args.announce
    if getattr(args, "workers", None):
        overrides["min_workers"] = args.workers
    if getattr(args, "no_fast_forward", False):
        overrides["fast_forward"] = False
    if getattr(args, "result_cache", None) is not None:
        overrides["result_cache"] = args.result_cache
    if getattr(args, "transport", None) == "tcp" and getattr(args, "jobs", 0) in (None, 1):
        # A TCP campaign must take the sharded path (jobs picks the shard
        # count, not a local pool size); never let the serial default
        # bypass the transport.
        args.jobs = max(2, getattr(args, "workers", None) or 0)
    try:
        # Commands without --trace/--progress fall through as a no-op
        # observe() scope (null tracer, null progress); likewise the
        # executor_policy scope is the ambient default without
        # --chaos/--allow-partial/--shard-attempts.
        with observe(
            getattr(args, "trace", None),
            getattr(args, "progress", False),
            label=args.command,
            resumed=bool(getattr(args, "resume", False)),
        ), executor_policy(**overrides), backend_scope:
            return _COMMANDS[args.command](args)
    except ReproError as err:
        print(f"repro: error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

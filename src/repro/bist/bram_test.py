"""BRAM BIST: the address-in-data test (paper section II-B).

"For BRAM testing, each location contains its own address in both upper
and lower byte, and comparison logic reads out each location, logging
mismatches between the bytes."

With 256 x 16 organisation, location ``a`` holds ``a`` in both bytes;
any stuck content cell breaks the upper/lower agreement (or the
address match), localising the fault to (block, address, byte).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitstream.bitstream import ConfigBitstream
from repro.fpga.bram import BRAMArray, BlockRAM

__all__ = ["BramTestResult", "initialize_bram_test", "run_bram_test"]


@dataclass
class BramTestResult:
    """Outcome of an address-in-data sweep."""

    n_blocks: int
    n_locations: int
    mismatches: list[tuple[int, int, int]] = field(default_factory=list)  # (block, addr, read value)

    @property
    def passed(self) -> bool:
        return not self.mismatches

    @property
    def faulty_blocks(self) -> list[int]:
        return sorted({b for b, _, _ in self.mismatches})


def _expected_word(addr: int) -> int:
    """Address in both bytes: 0xAAAA pattern per location."""
    return (addr << 8) | addr


def initialize_bram_test(memory: ConfigBitstream) -> BRAMArray:
    """Write the address-in-data pattern into every block.

    On the flight system this is part of the diagnostic configuration
    (BRAM content frames are configuration); here we drive the BRAM
    write ports.
    """
    array = BRAMArray(memory)
    for block in array.blocks:
        for addr in range(BlockRAM.DEPTH):
            block.write(addr, _expected_word(addr))
    return array


def run_bram_test(array: BRAMArray) -> BramTestResult:
    """Read back every location and log byte mismatches."""
    result = BramTestResult(n_blocks=len(array), n_locations=BlockRAM.DEPTH)
    for b, block in enumerate(array.blocks):
        for addr in range(BlockRAM.DEPTH):
            value = block.read(addr)
            upper, lower = (value >> 8) & 0xFF, value & 0xFF
            if upper != lower or lower != addr:
                result.mismatches.append((b, addr, value))
    return result

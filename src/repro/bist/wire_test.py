"""Single-length wire test via repeated partial reconfiguration (Fig. 5).

The paper's procedure: configure column 0 as the stimulus source and
every other CLB as an inverter, all flip-flops initialised to zero and
chained on one chosen wire per CLB; step the clock and read back to
check stuck-at-one; step and read back again for stuck-at-zero; then
*partially reconfigure* to move the chain onto the next wire index.
Each configuration thus costs one partial reconfiguration and two
readbacks; a direction's mux-reachable wires are covered by one design
reconfigured repeatedly.

Our stimulus column uses toggling flip-flops, so the two clock steps
naturally drive both polarities down the chain.  The configuration is
assembled *directly* as placement + routing structures (no router): the
test pins the exact wire index under test, which is the whole point.

Fabric note: our input muxes reach 16 of the 24 wire indices per
direction (the real part's output mux reaches 20); coverage accounting
reflects that (64/96 wires vs the paper's 80/96) — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bist.faults import StuckAtFault, FaultSite, fault_patch
from repro.errors import BISTError
from repro.fpga.device import VirtexDevice
from repro.fpga.resources import Direction, WIRES_PER_DIRECTION, imux_candidates, WireSource
from repro.netlist.cells import lut_table
from repro.netlist.netlist import Netlist
from repro.netlist.backends import make_simulator, simulator_class
from repro.place.configgen import generate_bitstream
from repro.place.decoder import decode_bitstream
from repro.place.placer import Placement, Site
from repro.place.router import RoutedDesign

__all__ = ["WireTestPlan", "WireTestResult", "testable_indices", "run_wire_test", "build_wire_chain"]

#: Candidate-list slot of the wire entry for each incoming side.
_SIDE_SLOT = {Direction.N: 4, Direction.E: 5, Direction.S: 6, Direction.W: 7}
#: Wire-index offset of each side's candidate (see imux_candidates).
_SIDE_OFFSET = {Direction.N: 0, Direction.E: 7, Direction.S: 13, Direction.W: 18}


def testable_indices(side: Direction) -> dict[int, tuple[int, int]]:
    """Wire indices testable by chains reading from ``side``.

    Returns ``{wire_index: (lut_pos, pin)}`` — the imux whose candidate
    list contains that (side, index) wire.
    """
    out: dict[int, tuple[int, int]] = {}
    for base in range(16):
        w = (base + _SIDE_OFFSET[side]) % WIRES_PER_DIRECTION
        out[w] = (base // 4, base % 4)
    return out


def build_wire_chain(device: VirtexDevice, travel: Direction, w: int):
    """Assemble the chain configuration for wire index ``w``.

    The signal travels toward ``travel``; each CLB reads the incoming
    wire from ``travel.opposite`` and re-drives it inverted.  Returns
    ``(bitstream, io, expected_fn)`` where ``expected_fn(cycle)`` gives
    the fault-free flip-flop pattern per chain position.
    """
    side = travel.opposite
    table = testable_indices(side)
    if w not in table:
        raise BISTError(
            f"wire index {w} not reachable from side {side.name} "
            f"(testable: {sorted(table)})"
        )
    pos, pin = table[w]
    cand = imux_candidates(pos, pin)[_SIDE_SLOT[side]]
    assert isinstance(cand, WireSource) and cand.index == w and cand.direction is side

    horizontal = travel in (Direction.E, Direction.W)
    n_lines = device.rows if horizontal else device.cols
    n_steps = device.cols if horizontal else device.rows

    nl = Netlist(f"wiretest_{travel.name}{w}")
    placement = Placement(device, nl)
    routed = RoutedDesign(placement)

    inv_table = lut_table(lambda *args: 1 - args[0], 1)
    # Inverter of the specific pin: out = NOT(pin value), other pins don't care.
    pin_inv_table = 0
    for addr in range(16):
        if not (addr >> pin) & 1:
            pin_inv_table |= 1 << addr
    # Driver: toggling FF (inverter of its own FF output at pin 1).
    drv_table = 0
    for addr in range(16):
        if not (addr >> 1) & 1:
            drv_table |= 1 << addr

    def clb_at(line: int, step: int) -> tuple[int, int]:
        if travel is Direction.E:
            return line, step
        if travel is Direction.W:
            return line, device.cols - 1 - step
        if travel is Direction.S:
            return step, line
        return device.rows - 1 - step, line

    probes: list[tuple[int, int, int]] = []
    for line in range(n_lines):
        r0, c0 = clb_at(line, 0)
        drv_pos = 0 if pos != 0 else 1  # keep the driver off the chain position
        lut_name = nl.add_lut(f"drv{line}", drv_table, [])
        ff_name = nl.add_ff(f"drvff{line}", lut_name, init=0)
        placement.lut_site[lut_name] = Site(r0, c0, drv_pos)
        placement.ff_site[ff_name] = Site(r0, c0, drv_pos)
        placement.merged_ffs.add(ff_name)
        # Driver LUT pin 1 reads the local FF at the same position.
        routed.imux_select[(r0, c0, drv_pos, 1)] = 1
        # Export the driver FF onto the chain wire.
        routed.port_select[(r0, c0, w % 4)] = 4 + drv_pos
        routed.drive_pips.add((r0, c0, int(travel), w))

        for step in range(1, n_steps):
            r, c = clb_at(line, step)
            lname = nl.add_lut(f"inv{line}_{step}", pin_inv_table, [])
            fname = nl.add_ff(f"invff{line}_{step}", lname, init=0)
            placement.lut_site[lname] = Site(r, c, pos)
            placement.ff_site[fname] = Site(r, c, pos)
            placement.merged_ffs.add(fname)
            routed.imux_select[(r, c, pos, pin)] = _SIDE_SLOT[side]
            if step < n_steps - 1:
                routed.port_select[(r, c, w % 4)] = pos  # LUT out onward
                routed.drive_pips.add((r, c, int(travel), w))
            probes.append((r, c, 4 + pos))
    nl.set_outputs([f"invff{line}_{step}" for line in range(n_lines) for step in range(1, n_steps)])

    bits, io = generate_bitstream(routed)
    # generate_bitstream derives probes from netlist outputs via
    # placement — order matches `probes` by construction.

    def expected(cycle: int, step: int) -> int:
        """Fault-free FF value at chain position ``step`` after ``cycle``
        clock edges (cycle counts from 1)."""
        drv = (cycle - 1) % 2  # driver FF output during that cycle
        return (drv + step) % 2

    return bits, io, expected


@dataclass
class WireTestPlan:
    """What a full wire-test sweep will do."""

    directions: tuple[Direction, ...] = (Direction.E, Direction.S, Direction.W, Direction.N)
    n_configs: int = 0
    n_readbacks: int = 0
    wires_per_clb_covered: int = 0

    @classmethod
    def full(cls) -> "WireTestPlan":
        dirs = (Direction.E, Direction.S, Direction.W, Direction.N)
        n_per_dir = len(testable_indices(Direction.W))
        return cls(
            directions=dirs,
            n_configs=n_per_dir * len(dirs),
            n_readbacks=2 * n_per_dir * len(dirs),
            wires_per_clb_covered=n_per_dir * len(dirs),
        )


@dataclass
class WireTestResult:
    """Outcome of a wire-test sweep against a set of injected faults."""

    plan: WireTestPlan
    n_configs_run: int = 0
    n_readbacks_run: int = 0
    detected: list[StuckAtFault] = field(default_factory=list)
    missed: list[StuckAtFault] = field(default_factory=list)
    #: fault -> (travel direction, wire index, first failing chain step)
    isolation: dict[str, tuple[str, int, int]] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.missed)
        return len(self.detected) / total if total else 1.0


def run_wire_test(
    device: VirtexDevice,
    faults: list[StuckAtFault],
    directions: tuple[Direction, ...] = (Direction.E, Direction.S, Direction.W, Direction.N),
    wire_indices: list[int] | None = None,
) -> WireTestResult:
    """Run the Figure 5 sweep against injected wire faults.

    Only wire faults on tested (direction, index) pairs are expected to
    be caught; the result separates detected and missed, and isolates
    each detection to the first failing chain position.
    """
    for f in faults:
        if f.site is not FaultSite.WIRE:
            raise BISTError("wire test only accepts WIRE faults")

    plan = WireTestPlan.full()
    result = WireTestResult(plan)
    caught: set[int] = set()

    for travel in directions:
        side = travel.opposite
        indices = sorted(testable_indices(side))
        if wire_indices is not None:
            indices = [w for w in indices if w in wire_indices]
        for w in indices:
            bits, io, expected = build_wire_chain(device, travel, w)
            decoded = decode_bitstream(device, bits, io, n_spare=8)
            patches = [fault_patch(decoded, f) for f in faults]
            sim = make_simulator(decoded.design, [p for p in patches])
            result.n_configs_run += 1
            # Three cycles so both post-edge captures (the two paper
            # readbacks) are visible at the FF probes.
            stim = np.zeros((3, 0), dtype=np.uint8)
            golden = simulator_class().golden_trace(decoded.design, stim)
            outs = sim.run(stim)
            result.n_readbacks_run += 2
            for m, fault in enumerate(faults):
                if m in caught:
                    continue
                mism = np.argwhere(outs[:, m, :] != golden.outputs[:, None, :][:, 0, :])
                if mism.size:
                    caught.add(m)
                    first_step = int(mism[0][1])
                    result.isolation[str(fault)] = (travel.name, w, first_step)
    for m, fault in enumerate(faults):
        (result.detected if m in caught else result.missed).append(fault)
    return result

"""BIST orchestration: the on-orbit diagnostic session.

Ties the three test families into one session the way the flight system
would run them between mission configurations: load each stored
diagnostic configuration, execute, collect results, and account the
configuration/readback budget (diagnostic configurations compete with
mission algorithms for flash space — paper section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bist.bram_test import BramTestResult, initialize_bram_test, run_bram_test
from repro.bist.coverage import CoverageReport, run_coverage
from repro.bist.faults import StuckAtFault
from repro.bist.wire_test import WireTestResult, run_wire_test
from repro.bitstream.bitstream import ConfigBitstream
from repro.fpga.device import VirtexDevice

__all__ = ["BistReport", "BistRunner"]


@dataclass
class BistReport:
    """Combined results of one diagnostic session."""

    clb: CoverageReport | None = None
    wire: WireTestResult | None = None
    bram: BramTestResult | None = None

    def summary(self) -> str:
        parts = []
        if self.clb:
            parts.append(f"CLB: {self.clb.summary()}")
        if self.wire:
            parts.append(
                f"wires: {len(self.wire.detected)}/"
                f"{len(self.wire.detected) + len(self.wire.missed)} detected, "
                f"{self.wire.n_configs_run} partial reconfigs, "
                f"{self.wire.n_readbacks_run} readbacks"
            )
        if self.bram:
            parts.append(
                f"BRAM: {'pass' if self.bram.passed else 'FAIL'} "
                f"({len(self.bram.mismatches)} mismatches)"
            )
        return "; ".join(parts)


@dataclass
class BistRunner:
    """Run the diagnostic suite on one device."""

    device: VirtexDevice
    n_register_pairs: int = 4
    #: worker processes for the CLB coverage sweep (engine sharding)
    jobs: int = 1

    def run(
        self,
        logic_faults: list[StuckAtFault] | None = None,
        wire_faults: list[StuckAtFault] | None = None,
        bram_fault_bits: list[tuple[int, int]] | None = None,
        wire_indices: list[int] | None = None,
    ) -> BistReport:
        """Execute all three test families against injected faults.

        ``bram_fault_bits`` are (block, content-bit) pairs flipped after
        pattern initialisation (stuck content cells).
        """
        report = BistReport()
        if logic_faults is not None:
            report.clb = run_coverage(
                self.device, logic_faults, self.n_register_pairs, jobs=self.jobs
            )
        if wire_faults is not None:
            report.wire = run_wire_test(self.device, wire_faults, wire_indices=wire_indices)
        if bram_fault_bits is not None:
            memory = ConfigBitstream(self.device.geometry)
            array = initialize_bram_test(memory)
            for block, bit in bram_fault_bits:
                frame, off = self.device.geometry.bram_content_bit(
                    block // self.device.geometry.bram_blocks_per_col,
                    block % self.device.geometry.bram_blocks_per_col,
                    bit,
                )
                linear = self.device.geometry.frame_offset(frame) + off
                memory.flip_bit(linear)
            report.bram = run_bram_test(array)
        return report

"""Permanent (hard) fault models: stuck-at LUTs, flip-flops and wires.

Unlike SEUs, these are physical failures — opens and shorts — that no
amount of scrubbing repairs.  They are expressed as simulator patches
against a decoded design, so BIST configurations detect them by running
on the same hardware model the SEU machinery uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import BISTError
from repro.netlist.compiled import (
    NODE_CONST0,
    NODE_CONST1,
    FFField,
    Patch,
)
from repro.place.decoder import DecodedDesign
from repro.utils.rng import derive_rng

__all__ = ["FaultSite", "StuckAtFault", "fault_patch", "sample_faults"]


class FaultSite(enum.Enum):
    """What physical resource is broken."""

    LUT_OUTPUT = "lut_output"
    FF_OUTPUT = "ff_output"
    WIRE = "wire"


@dataclass(frozen=True)
class StuckAtFault:
    """A stuck-at-0/1 hard fault at one site.

    ``where`` is ``(row, col, pos)`` for LUT/FF sites and
    ``(row, col, direction, index)`` for wires.
    """

    site: FaultSite
    where: tuple[int, ...]
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise BISTError(f"stuck value must be 0/1, got {self.value}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"stuck-at-{self.value} {self.site.value}@{self.where}"


def fault_patch(decoded: DecodedDesign, fault: StuckAtFault) -> Patch:
    """Express a hard fault as a simulator patch."""
    const = NODE_CONST1 if fault.value else NODE_CONST0
    if fault.site is FaultSite.LUT_OUTPUT:
        row, col, pos = fault.where
        lrow = decoded.lut_row(row, col, pos)
        table = np.full(16, fault.value, dtype=np.uint8)
        return Patch(lut_tables=[(lrow, table)])
    if fault.site is FaultSite.FF_OUTPUT:
        row, col, pos = fault.where
        frow = decoded.ff_row(row, col, pos)
        # Output node pinned: freeze the FF at the stuck value.
        return Patch(
            ff_fields=[
                (frow, FFField.D, const),
                (frow, FFField.CE, NODE_CONST1),
                (frow, FFField.SR, NODE_CONST0),
                (frow, FFField.INIT, fault.value),
            ]
        )
    if fault.site is FaultSite.WIRE:
        from repro.fpga.resources import CTRL_CE

        patch = Patch()
        row, col, d, w = fault.where
        worklist = [(row, col, int(d), w)]
        seen = set(worklist)
        while worklist:
            key = worklist.pop()
            for consumer in decoded.wire_consumers.get(key, ()):  # nobody reads -> latent
                if consumer[0] == "pin":
                    _, r, c, pos, pin = consumer
                    patch.lut_inputs.append((decoded.lut_row(r, c, pos), pin, const))
                    frow = decoded.ff_row(r, c, pos)
                    old = decoded.pin_source.get((r, c, pos, pin), -2)
                    if pin == 0 and int(decoded.design.ff_d[frow]) == old:
                        patch.ff_fields.append((frow, FFField.D, const))
                elif consumer[0] == "ctrl":
                    _, r, c, slc, which = consumer
                    if which == CTRL_CE:
                        for pos in (2 * slc, 2 * slc + 1):
                            frow = decoded.ff_row(r, c, pos)
                            patch.ff_fields.append((frow, FFField.CE, const))
                elif consumer[0] == "wire":
                    # Downstream wires inherit the stuck value through
                    # their forwarding PIPs.
                    k2 = consumer[1]
                    if k2 not in seen:
                        seen.add(k2)
                        worklist.append(k2)
        return patch
    raise BISTError(f"unknown fault site {fault.site}")  # pragma: no cover


def sample_faults(
    decoded: DecodedDesign,
    n: int,
    seed: int = 0,
    sites: tuple[FaultSite, ...] = (FaultSite.LUT_OUTPUT, FaultSite.FF_OUTPUT, FaultSite.WIRE),
) -> list[StuckAtFault]:
    """Draw random hard faults across the device fabric."""
    rng = derive_rng(seed, "hardfaults")
    dev = decoded.device
    out: list[StuckAtFault] = []
    for _ in range(n):
        site = sites[int(rng.integers(len(sites)))]
        value = int(rng.integers(2))
        row = int(rng.integers(dev.rows))
        col = int(rng.integers(dev.cols))
        if site is FaultSite.WIRE:
            where: tuple[int, ...] = (
                row,
                col,
                int(rng.integers(4)),
                int(rng.integers(24)),
            )
        else:
            where = (row, col, int(rng.integers(4)))
        out.append(StuckAtFault(site, where, value))
    return out

"""Built-in self-test for permanent-fault detection (paper section II-B).

On orbit, opens/shorts and other hard failures must be found and
isolated with a minimum number of stored diagnostic configurations.
The paper's coverage-optimised suite:

* **CLB test** — cascaded 34-bit LFSR registers driven by a 6-bit LFSR
  counter, adjacent registers compared, mismatches latched; two
  complementary placements cover every CLB;
* **BRAM test** — each location stores its own address in both bytes;
  comparison logic logs mismatches;
* **wire test** — a chain-of-inverters design repeatedly partially
  reconfigured across the output-mux wires (paper Figure 5): two
  readbacks per configuration check stuck-at-1 then stuck-at-0.
"""

from repro.bist.faults import StuckAtFault, FaultSite, fault_patch, sample_faults
from repro.bist.patterns import clb_test_design
from repro.bist.bram_test import BramTestResult, run_bram_test
from repro.bist.wire_test import WireTestPlan, WireTestResult, run_wire_test
from repro.bist.coverage import CoverageReport, run_coverage
from repro.bist.runner import BistRunner, BistReport

__all__ = [
    "StuckAtFault",
    "FaultSite",
    "fault_patch",
    "sample_faults",
    "clb_test_design",
    "BramTestResult",
    "run_bram_test",
    "WireTestPlan",
    "WireTestResult",
    "run_wire_test",
    "CoverageReport",
    "run_coverage",
    "BistRunner",
    "BistReport",
]

"""Hard-fault coverage analysis across the BIST suite.

Runs a fault list through the CLB test configurations and reports which
test caught which fault — the "maximum coverage and isolation of hard
faults with a minimum number of configurations" objective of paper
section II-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bist.faults import StuckAtFault, fault_patch
from repro.bist.patterns import clb_test_design
from repro.fpga.device import VirtexDevice
from repro.netlist.simulator import BatchSimulator
from repro.place.flow import HardwareDesign, implement

__all__ = ["CoverageReport", "run_coverage"]


@dataclass
class CoverageReport:
    """Which configuration detected which fault."""

    n_faults: int
    n_configurations: int
    detected_by: dict[str, list[str]] = field(default_factory=dict)  # config -> faults
    undetected: list[str] = field(default_factory=list)

    @property
    def n_detected(self) -> int:
        return self.n_faults - len(self.undetected)

    @property
    def coverage(self) -> float:
        return self.n_detected / self.n_faults if self.n_faults else 1.0

    def summary(self) -> str:
        return (
            f"{self.n_detected}/{self.n_faults} faults detected "
            f"({100 * self.coverage:.1f}%) by {self.n_configurations} configurations"
        )


def _detects(hw: HardwareDesign, faults: list[StuckAtFault], cycles: int) -> np.ndarray:
    """Boolean per fault: does this configuration's error latch fire?"""
    decoded = hw.decoded
    patches = [fault_patch(decoded, f) for f in faults]
    design = decoded.design
    stim = hw.spec.stimulus(cycles, 0)
    golden = BatchSimulator.golden_trace(design, stim)
    sim = BatchSimulator(design, patches)
    outs = sim.run(stim)
    # Detection = the sticky error latch (any output) deviates from golden.
    return np.any(outs != golden.outputs[:, None, :], axis=(0, 2))


def run_coverage(
    device: VirtexDevice,
    faults: list[StuckAtFault],
    n_register_pairs: int = 4,
    cycles: int = 128,
) -> CoverageReport:
    """Run both complementary CLB test variants over a fault list."""
    report = CoverageReport(n_faults=len(faults), n_configurations=2)
    caught = np.zeros(len(faults), dtype=bool)
    for variant in (0, 1):
        spec = clb_test_design(n_register_pairs, register_bits=8, variant=variant)
        hw = implement(spec, device)
        hits = _detects(hw, faults, cycles)
        report.detected_by[spec.name] = [str(f) for f, h in zip(faults, hits) if h]
        caught |= hits
    report.undetected = [str(f) for f, c in zip(faults, caught) if not c]
    return report

"""Hard-fault coverage analysis across the BIST suite.

Runs a fault list through the CLB test configurations and reports which
test caught which fault — the "maximum coverage and isolation of hard
faults with a minimum number of configurations" objective of paper
section II-B.

The sweep runs on the shared campaign engine (:mod:`repro.engine`): a
candidate is one hard fault, the observation is the pair of
error-latch verdicts from the two complementary CLB test variants, and
the engine contributes structural pre-filtering (faults that patch
nothing in either variant are latent by construction), ``jobs=N``
process sharding, checkpoint/resume and :class:`CampaignTelemetry`.
Per-machine detection is independent of batch composition here (no
active-node mask; the settle-pass auto-detect covers each machine's
own needs), so any grouping yields the same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha1
from typing import ClassVar

import numpy as np

from repro.bist.faults import StuckAtFault, fault_patch
from repro.bist.patterns import clb_test_design
from repro.engine.cache import implemented_design
from repro.engine.detect import detect_failures
from repro.engine.model import CODE_NOT_TESTED, CODE_SKIP_STRUCTURAL, FaultModel
from repro.engine.sweep import SweepResult, resume_sweep, run_sweep
from repro.engine.telemetry import CampaignTelemetry
from repro.errors import CampaignError
from repro.fpga.device import VirtexDevice
from repro.netlist.compiled import Patch
from repro.netlist.backends import make_simulator, simulator_class
from repro.netlist.simulator import SETTLE_CAP, max_schedule_violations

__all__ = ["CoverageReport", "BistCoverageModel", "run_coverage"]

#: simulated, neither variant's error latch fired
CODE_UNDETECTED = 4
#: detected by variant 0 only
CODE_DETECTED_V0 = 5
#: detected by variant 1 only
CODE_DETECTED_V1 = 6
#: detected by both variants
CODE_DETECTED_BOTH = 7


@dataclass
class CoverageReport:
    """Which configuration detected which fault."""

    n_faults: int
    n_configurations: int
    detected_by: dict[str, list[str]] = field(default_factory=dict)  # config -> faults
    undetected: list[str] = field(default_factory=list)
    #: throughput record of the sweep that produced this report
    telemetry: CampaignTelemetry | None = None

    @property
    def n_detected(self) -> int:
        return self.n_faults - len(self.undetected)

    @property
    def coverage(self) -> float:
        return self.n_detected / self.n_faults if self.n_faults else 1.0

    def summary(self) -> str:
        return (
            f"{self.n_detected}/{self.n_faults} faults detected "
            f"({100 * self.coverage:.1f}%) by {self.n_configurations} configurations"
        )


@dataclass(frozen=True)
class BistCoverageModel(FaultModel):
    """Hard faults vs the two complementary CLB test variants.

    A candidate is the index of one :class:`StuckAtFault`; its patch is
    the *pair* of per-variant simulator patches, and the observation is
    the pair of error-latch verdicts.  Detection = the configuration's
    sticky error latch (any output) deviates from golden.
    """

    device_name: str
    faults: tuple[StuckAtFault, ...]
    n_register_pairs: int
    cycles: int
    retire: bool = True

    name: ClassVar[str] = "bist-coverage"

    def key(self) -> str:
        digest = sha1(
            ";".join(str(f) for f in self.faults).encode()
        ).hexdigest()[:12]
        return (
            f"bist-coverage:{self.device_name}:pairs={self.n_register_pairs}:"
            f"cycles={self.cycles}:faults={len(self.faults)}@{digest}"
        )

    def space_size(self) -> int:
        return len(self.faults)

    def enumerate_candidates(self) -> np.ndarray:
        return np.arange(len(self.faults), dtype=np.int64)

    def variant_specs(self):
        return tuple(
            clb_test_design(self.n_register_pairs, register_bits=8, variant=v)
            for v in (0, 1)
        )

    def build_context(self):
        variants = []
        for spec in self.variant_specs():
            hw = implemented_design(spec, self.device_name)
            stim = hw.spec.stimulus(self.cycles, 0)
            golden = simulator_class().golden_trace(hw.decoded.design, stim)
            variants.append((hw, stim, golden))
        return tuple(variants)

    def prefilter(self, candidate: int, ctx) -> tuple[int, tuple[Patch, Patch] | None]:
        pair = self.patch_for(candidate, ctx)
        # A fault that patches nothing in either variant leaves both
        # machines golden-identical: latent by construction, no need to
        # simulate it.
        if all(p.is_empty() for p in pair):
            return CODE_SKIP_STRUCTURAL, None
        return CODE_NOT_TESTED, pair

    def patch_for(self, candidate: int, ctx) -> tuple[Patch, Patch]:
        fault = self.faults[candidate]
        return tuple(fault_patch(hw.decoded, fault) for hw, _, _ in ctx)

    def observe_batch(self, ctx, pending) -> list[tuple[bool, bool]]:
        return self._observe(ctx, pending, settle=None)

    def _observe(
        self, ctx, pending, settle: tuple[int, ...] | None
    ) -> list[tuple[bool, bool]]:
        hits = []
        for v, (hw, stim, golden) in enumerate(ctx):
            sim = make_simulator(
                hw.decoded.design,
                [pair[v] for _, pair in pending],
                settle_passes=settle[v] if settle is not None else None,
            )
            hits.append(
                detect_failures(sim, stim, golden.outputs, self.cycles, retire=self.retire)
            )
        return [(bool(h0), bool(h1)) for h0, h1 in zip(*hits)]

    # Each variant's batch auto-detects its own settle count, so the
    # salt is the pair of counts the fault's naive batch would derive.
    def collapse_salt_datum(self, candidate: int, ctx, pair) -> tuple[int, ...]:
        return tuple(
            max_schedule_violations(hw.decoded.design, [pair[v]])
            for v, (hw, _, _) in enumerate(ctx)
        )

    def collapse_salt(self, ctx, data) -> tuple[int, ...]:
        return tuple(
            1 + min(SETTLE_CAP, max(d[v] for d in data) if data else 0)
            for v in range(len(ctx))
        )

    def observe_collapsed(self, ctx, pending, salt) -> list[tuple[bool, bool]]:
        return self._observe(ctx, pending, settle=salt)

    def classify(self, observation: tuple[bool, bool]) -> int:
        hit0, hit1 = observation
        return CODE_UNDETECTED + int(hit0) + 2 * int(hit1)


def _report_from_sweep(
    model: BistCoverageModel, sweep: SweepResult
) -> CoverageReport:
    """Reconstruct the historical report shape from engine verdicts."""
    faults = model.faults
    codes = sweep.verdicts
    spec0, spec1 = model.variant_specs()
    report = CoverageReport(
        n_faults=len(faults), n_configurations=2, telemetry=sweep.telemetry
    )
    report.detected_by[spec0.name] = [
        str(f)
        for f, c in zip(faults, codes)
        if c in (CODE_DETECTED_V0, CODE_DETECTED_BOTH)
    ]
    report.detected_by[spec1.name] = [
        str(f)
        for f, c in zip(faults, codes)
        if c in (CODE_DETECTED_V1, CODE_DETECTED_BOTH)
    ]
    report.undetected = [
        str(f)
        for f, c in zip(faults, codes)
        if c not in (CODE_DETECTED_V0, CODE_DETECTED_V1, CODE_DETECTED_BOTH)
    ]
    return report


def run_coverage(
    device: VirtexDevice,
    faults: list[StuckAtFault],
    n_register_pairs: int = 4,
    cycles: int = 128,
    jobs: int = 1,
    batch_size: int = 128,
    checkpoint_path: str | None = None,
    resume: bool = False,
    collapse: bool = True,
    retire: bool = True,
) -> CoverageReport:
    """Run both complementary CLB test variants over a fault list.

    Runs on the shared campaign engine: ``jobs=N`` shards faults over
    processes with a report identical to ``jobs=1``, and
    ``checkpoint_path`` snapshots engine-native archives a killed sweep
    restarts from (``resume=True``).  ``collapse``/``retire`` toggle the
    verdict-identical campaign shrinkers (faults decoding to identical
    patch pairs share one simulation; machines whose error latch already
    fired drop out of the batch mid-run).
    """
    model = BistCoverageModel(
        device.name, tuple(faults), n_register_pairs, cycles, retire=retire
    )
    if resume:
        if checkpoint_path is None:
            raise CampaignError("resume requires a checkpoint path")
        sweep = resume_sweep(
            model, checkpoint_path, jobs=jobs, batch_size=batch_size, collapse=collapse
        )
    else:
        sweep = run_sweep(
            model,
            jobs=jobs,
            batch_size=batch_size,
            checkpoint_path=checkpoint_path,
            collapse=collapse,
        )
    return _report_from_sweep(model, sweep)

"""Dynamic-storage readback constraints (paper sections II-C and IV-A).

LUTs used as distributed RAM or shift registers, and BRAM content, are
*dynamic* configuration state: their frames legitimately change at run
time, so the scrub CRC check must mask them — and, worse, writing a LUT
RAM while the configuration logic reads it back corrupts the read.  The
paper lists the system-level escapes: avoid LUT RAMs entirely, fall
back to BIST instead of readback, skip the affected frames, or schedule
readbacks and writes apart.  This module models the frame bookkeeping
and the race so those policies can be exercised and compared.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.bitstream.codebook import CRCCodebook
from repro.errors import ScrubError
from repro.fpga.device import VirtexDevice
from repro.fpga.geometry import FrameKind

__all__ = ["ReadbackPolicy", "LutRamRegion", "DynamicStoragePlan", "ReadbackRace"]


class ReadbackPolicy(enum.Enum):
    """The paper's design/system-level options (section IV-A)."""

    #: do not use LUT RAMs at all; full readback coverage (the paper's
    #: own standard approach)
    AVOID_LUT_RAM = "avoid_lut_ram"
    #: mask the frames holding dynamic LUT state out of the CRC check
    MASK_FRAMES = "mask_frames"
    #: no readback; periodic BIST validates function instead (Andraka)
    BIST_ONLY = "bist_only"
    #: stall writes while the affected frames are being read back
    SCHEDULE = "schedule"


@dataclass(frozen=True)
class LutRamRegion:
    """A CLB-column span whose LUTs hold dynamic state.

    On Virtex, a LUT used as RAM/SRL makes 16 of its column's 48 frames
    unsafe to read while running (paper section IV-A); both slices in
    use makes it 32.  "For Virtex-II, the situation is better since all
    of the LUT data for a given CLB column is contained in two
    configuration data frames" — pass ``architecture="virtex2"`` to
    model that organisation and quantify the coverage the newer frame
    layout saves.
    """

    col: int
    slices_used: int  # 1 or 2
    architecture: str = "virtex"

    def __post_init__(self) -> None:
        if self.slices_used not in (1, 2):
            raise ScrubError("slices_used must be 1 or 2")
        if self.architecture not in ("virtex", "virtex2"):
            raise ScrubError(f"unknown architecture {self.architecture!r}")

    @property
    def unsafe_frames_per_column(self) -> int:
        if self.architecture == "virtex2":
            return 2  # all LUT data of the column sits in two frames
        return 16 * self.slices_used


@dataclass
class DynamicStoragePlan:
    """Which frames a configuration's dynamic storage makes unscannable."""

    device: VirtexDevice
    regions: list[LutRamRegion] = field(default_factory=list)
    mask_bram_content: bool = True

    def add_region(self, region: LutRamRegion) -> None:
        if not 0 <= region.col < self.device.cols:
            raise ScrubError(f"column {region.col} outside device")
        self.regions.append(region)

    def masked_frames(self) -> set[int]:
        """Frames the scrub CRC check must skip under MASK_FRAMES."""
        geo = self.device.geometry
        masked: set[int] = set()
        for region in self.regions:
            base = geo.clb_frame_index(region.col, 0)
            # The LUT-content frames of the column sit at fixed minors;
            # model them as the first 16/32 of the 48.
            for minor in range(region.unsafe_frames_per_column):
                masked.add(base + minor)
        if self.mask_bram_content:
            for f in range(geo.n_frames):
                if geo.frame_address(f).kind is FrameKind.BRAM_CONTENT:
                    masked.add(f)
        return masked

    def coverage(self) -> float:
        """Fraction of block-0 bits still protected by CRC scrubbing."""
        geo = self.device.geometry
        lost = sum(
            geo.frame_bits_of(f)
            for f in self.masked_frames()
            if geo.frame_address(f).kind is not FrameKind.BRAM_CONTENT
        )
        return 1.0 - lost / geo.block0_bits

    def apply_to_codebook(self, codebook: CRCCodebook) -> int:
        """Mask the plan's frames in a codebook; returns how many."""
        frames = self.masked_frames()
        for f in frames:
            codebook.mask_frame(f)
        return len(frames)


class ReadbackRace:
    """The LUT-RAM / readback write race (paper section II-C).

    "A LUT being used as a RAM or shift register must not be written to
    as its contents are being read out by the FPGA's configuration
    circuitry since doing so can corrupt the contents of the LUT."
    """

    def __init__(self, depth: int = 16, seed: int = 0):
        self.depth = depth
        self.contents = np.zeros(depth, dtype=np.uint8)
        self._readback_active = False
        self._rng = np.random.default_rng(seed)
        self.corrupted = False

    def begin_readback(self) -> None:
        self._readback_active = True

    def end_readback(self) -> None:
        self._readback_active = False

    def write(self, addr: int, value: int, policy: ReadbackPolicy) -> bool:
        """Write one cell; returns True if the write proceeded.

        Under SCHEDULE the write is refused (stalled) during readback;
        under any other policy a write racing a readback corrupts a
        random cell, which is the failure the paper warns about.
        """
        if not 0 <= addr < self.depth:
            raise ScrubError(f"address {addr} out of range")
        if self._readback_active:
            if policy is ReadbackPolicy.SCHEDULE:
                return False  # stalled until readback completes
            victim = int(self._rng.integers(self.depth))
            self.contents[victim] ^= 1
            self.corrupted = True
        self.contents[addr] = value & 1
        return True

"""Design-aware mission simulation: scrubbing + real output errors.

:class:`OnOrbitSystem` flies raw configurations; this module flies an
*implemented design* and tracks what the mission actually cares about —
output errors.  Each orbital upset is classified with the design's
sensitivity map (is this bit sensitive? persistent?); sensitive upsets
corrupt the output stream until the scrub loop repairs the frame (plus
a reset for persistent ones, per the paper's recovery protocol).

The measured availability cross-checks the closed-form
:class:`~repro.analysis.reliability.ReliabilityModel` — prediction and
event-driven measurement must agree, which `tests/integration` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.place.flow import HardwareDesign
from repro.radiation.environment import OrbitEnvironment, sample_upset_times
from repro.radiation.cross_section import DeviceCrossSection, WeibullCrossSection
from repro.seu.maps import SensitivityMap
from repro.utils.rng import derive_rng

__all__ = ["DesignMission", "DesignMissionReport", "fleet_availability"]


def fleet_availability(
    per_device_availability: float, n_devices: int, n_quarantined: int
) -> float:
    """Availability of a degraded fleet: quarantined devices deliver no
    service, the rest deliver ``per_device_availability``.

    This is how the mission accounts for the escalation ladder's last
    rung — a device dropped from the 9-FPGA scan rotation reduces
    payload capacity pro rata rather than failing the whole mission.
    """
    if n_devices <= 0:
        return 0.0
    if not 0 <= n_quarantined <= n_devices:
        raise ValueError(f"{n_quarantined} quarantined of {n_devices} devices")
    return per_device_availability * (n_devices - n_quarantined) / n_devices


@dataclass
class DesignMissionReport:
    """Output-level outcome of one mission segment."""

    duration_s: float
    n_upsets: int
    n_sensitive_upsets: int
    n_persistent_upsets: int
    outages: list[tuple[float, float]] = field(default_factory=list)  # (start, duration)

    @property
    def total_outage_s(self) -> float:
        return sum(d for _, d in self.outages)

    @property
    def availability(self) -> float:
        if self.duration_s <= 0:
            return 1.0
        return max(0.0, 1.0 - self.total_outage_s / self.duration_s)

    def summary(self) -> str:
        return (
            f"{self.duration_s / 3600:.2f} h: {self.n_upsets} upsets, "
            f"{self.n_sensitive_upsets} output-corrupting "
            f"({self.n_persistent_upsets} persistent); total outage "
            f"{self.total_outage_s:.3f} s, availability "
            f"{100 * self.availability:.5f}%"
        )


@dataclass
class DesignMission:
    """Fly one implemented design under scrubbing.

    The event model (matching the flight architecture): an upset at time
    t lands on a uniformly random block-0 bit.  If the bit is sensitive,
    outputs are wrong from t until the scrub loop's repair — detection
    waits for the scan to reach the device (uniform within one scan
    period) — plus ``reset_time_s`` more for persistent bits.
    """

    hw: HardwareDesign
    sensitivity: SensitivityMap
    environment: OrbitEnvironment
    scan_period_s: float = 0.060  # one device's share of the board scan
    reset_time_s: float = 0.010
    hidden_fraction: float = 0.0042
    flux_scale: float = 1.0

    def fly(self, duration_s: float, seed: int = 0) -> DesignMissionReport:
        rng = derive_rng(seed, "design-mission", self.hw.spec.name)
        xs = DeviceCrossSection(
            WeibullCrossSection(), self.hw.device.block0_bits, self.hidden_fraction
        )
        rate = self.environment.device_upset_rate(xs) * self.flux_scale
        times = sample_upset_times(rate, duration_s, rng)

        report = DesignMissionReport(
            duration_s=duration_s,
            n_upsets=len(times),
            n_sensitive_upsets=0,
            n_persistent_upsets=0,
        )
        outage_until = 0.0
        for t in times:
            bit = int(rng.integers(self.hw.device.block0_bits))
            if not self.sensitivity.is_sensitive(bit):
                continue
            report.n_sensitive_upsets += 1
            persistent = bool(self.sensitivity.persistent[bit])
            if persistent:
                report.n_persistent_upsets += 1
            detect = float(rng.uniform(0.0, self.scan_period_s))
            repair_done = t + detect + (self.reset_time_s if persistent else 0.0)
            # Merge overlapping outages (a second hit during repair).
            start = max(float(t), outage_until)
            if repair_done > outage_until:
                if start < repair_done:
                    report.outages.append((start, repair_done - start))
                outage_until = repair_done
        return report

"""State-of-health records (paper section II-A).

Every detected upset and repair is logged with device, frame and
timestamp; the record is "later relayed back to the ground station,
contributing to the State-of-Health record of the subsystem".

The hardened repair path (noisy channel, verify-before-repair,
escalation ladder) makes every decision observable here too: RETRY for
backed-off transient bus faults, FALSE_ALARM for CRC mismatches that a
verification re-read disproved, ESCALATION for each rung climbed,
SEFI_RECOVERY for a power-cycle that cleared a hung port, QUARANTINE
for a device dropped from the scan rotation.
"""

from __future__ import annotations

import enum
import json
from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Iterator

__all__ = ["ScrubEventKind", "ScrubEvent", "StateOfHealth"]


class ScrubEventKind(enum.Enum):
    UPSET_DETECTED = "upset_detected"
    FRAME_REPAIRED = "frame_repaired"
    DESIGN_RESET = "design_reset"
    FULL_RECONFIG = "full_reconfig"
    FLASH_CORRECTION = "flash_correction"
    UNDETECTED_UPSET = "undetected_upset"  # hidden state / masked frames
    RETRY = "retry"  # transient bus fault, backed off and retried
    FALSE_ALARM = "false_alarm"  # verify re-read disproved a CRC mismatch
    ESCALATION = "escalation"  # one rung up the repair ladder
    SEFI_RECOVERY = "sefi_recovery"  # power-cycle cleared a hung port
    QUARANTINE = "quarantine"  # device dropped from the scan rotation


@dataclass(frozen=True)
class ScrubEvent:
    """One telemetry record."""

    kind: ScrubEventKind
    time_s: float
    device: str
    frame_index: int = -1
    detail: str = ""

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind.value
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ScrubEvent":
        d = dict(d)
        d["kind"] = ScrubEventKind(d["kind"])
        return cls(**d)


@dataclass
class StateOfHealth:
    """Accumulating telemetry log with summary queries."""

    events: list[ScrubEvent] = field(default_factory=list)
    _counts: Counter = field(default_factory=Counter, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for e in self.events:
            self._counts[e.kind] += 1

    def log(self, event: ScrubEvent) -> None:
        self.events.append(event)
        self._counts[event.kind] += 1

    def count(self, kind: ScrubEventKind) -> int:
        return self._counts[kind]

    def filter(
        self,
        kind: ScrubEventKind | None = None,
        device: str | None = None,
        since: float | None = None,
    ) -> Iterator[ScrubEvent]:
        """Events matching every given criterion, in log order."""
        for e in self.events:
            if kind is not None and e.kind is not kind:
                continue
            if device is not None and e.device != device:
                continue
            if since is not None and e.time_s < since:
                continue
            yield e

    def by_device(self) -> dict[str, int]:
        """Detected upsets per device."""
        out: dict[str, int] = {}
        for e in self.filter(ScrubEventKind.UPSET_DETECTED):
            out[e.device] = out.get(e.device, 0) + 1
        return out

    def detection_latencies(self) -> list[float]:
        """Seconds between each upset detection and the preceding one's
        repair — a proxy for scrub responsiveness."""
        out = []
        pending: dict[tuple[str, int], float] = {}
        for e in self.events:
            if e.kind is ScrubEventKind.UPSET_DETECTED:
                pending[(e.device, e.frame_index)] = e.time_s
            elif e.kind is ScrubEventKind.FRAME_REPAIRED:
                t0 = pending.pop((e.device, e.frame_index), None)
                if t0 is not None:
                    out.append(e.time_s - t0)
        return out

    # -- serialization (telemetry downlink / post-mission analysis) ----------

    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.events]

    def to_json(self) -> str:
        return json.dumps(self.to_dicts())

    @classmethod
    def from_dicts(cls, records: list[dict]) -> "StateOfHealth":
        return cls([ScrubEvent.from_dict(d) for d in records])

    @classmethod
    def from_json(cls, text: str) -> "StateOfHealth":
        return cls.from_dicts(json.loads(text))

    def summary(self) -> str:
        return ", ".join(
            f"{k.value}={self.count(k)}"
            for k in ScrubEventKind
            if self.count(k)
        )

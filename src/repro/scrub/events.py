"""State-of-health records (paper section II-A).

Every detected upset and repair is logged with device, frame and
timestamp; the record is "later relayed back to the ground station,
contributing to the State-of-Health record of the subsystem".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["ScrubEventKind", "ScrubEvent", "StateOfHealth"]


class ScrubEventKind(enum.Enum):
    UPSET_DETECTED = "upset_detected"
    FRAME_REPAIRED = "frame_repaired"
    DESIGN_RESET = "design_reset"
    FULL_RECONFIG = "full_reconfig"
    FLASH_CORRECTION = "flash_correction"
    UNDETECTED_UPSET = "undetected_upset"  # hidden state / masked frames


@dataclass(frozen=True)
class ScrubEvent:
    """One telemetry record."""

    kind: ScrubEventKind
    time_s: float
    device: str
    frame_index: int = -1
    detail: str = ""


@dataclass
class StateOfHealth:
    """Accumulating telemetry log with summary queries."""

    events: list[ScrubEvent] = field(default_factory=list)

    def log(self, event: ScrubEvent) -> None:
        self.events.append(event)

    def count(self, kind: ScrubEventKind) -> int:
        return sum(1 for e in self.events if e.kind is kind)

    def by_device(self) -> dict[str, int]:
        """Detected upsets per device."""
        out: dict[str, int] = {}
        for e in self.events:
            if e.kind is ScrubEventKind.UPSET_DETECTED:
                out[e.device] = out.get(e.device, 0) + 1
        return out

    def detection_latencies(self) -> list[float]:
        """Seconds between each upset detection and the preceding one's
        repair — a proxy for scrub responsiveness."""
        out = []
        pending: dict[tuple[str, int], float] = {}
        for e in self.events:
            if e.kind is ScrubEventKind.UPSET_DETECTED:
                pending[(e.device, e.frame_index)] = e.time_s
            elif e.kind is ScrubEventKind.FRAME_REPAIRED:
                t0 = pending.pop((e.device, e.frame_index), None)
                if t0 is not None:
                    out.append(e.time_s - t0)
        return out

    def summary(self) -> str:
        return ", ".join(
            f"{k.value}={self.count(k)}"
            for k in ScrubEventKind
            if self.count(k)
        )

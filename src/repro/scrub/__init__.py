"""On-orbit SEU detection and correction (paper section II, Figure 4).

The flight fault-management stack: a radiation-hardened fault manager
(the Actel) continuously reads back each Virtex configuration and
compares frame CRCs against a codebook; mismatches interrupt the
RAD6000, which fetches the golden frame from ECC-protected flash,
partially reconfigures the device, and resets the design.  One scan of a
three-FPGA board takes ~180 ms.
"""

from repro.scrub.channel import NoiseConfig, NoisySelectMapPort
from repro.scrub.ecc import SECDED_DATA_BITS, secded_decode, secded_encode
from repro.scrub.flash import FlashMemory
from repro.scrub.events import ScrubEvent, ScrubEventKind, StateOfHealth
from repro.scrub.lutram import (
    DynamicStoragePlan,
    LutRamRegion,
    ReadbackPolicy,
    ReadbackRace,
)
from repro.scrub.manager import FaultManager, ManagedDevice, RepairPolicy
from repro.scrub.mission import DesignMission, DesignMissionReport, fleet_availability
from repro.scrub.orbit import OnOrbitSystem, MissionReport

__all__ = [
    "secded_encode",
    "secded_decode",
    "SECDED_DATA_BITS",
    "FlashMemory",
    "ScrubEvent",
    "ScrubEventKind",
    "StateOfHealth",
    "FaultManager",
    "ManagedDevice",
    "RepairPolicy",
    "NoiseConfig",
    "NoisySelectMapPort",
    "OnOrbitSystem",
    "MissionReport",
    "DesignMission",
    "DesignMissionReport",
    "fleet_availability",
    "ReadbackPolicy",
    "LutRamRegion",
    "DynamicStoragePlan",
    "ReadbackRace",
]

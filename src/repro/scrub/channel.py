"""Noisy scrub channel: the fault manager is flight hardware too.

The paper's detect/repair path (Figure 4) runs in the same radiation
environment as the parts it protects: SelectMAP readback can return
corrupted bytes, the bus can glitch transiently, and the port logic
itself can suffer a single-event functional interrupt (SEFI) that hangs
it until a power-cycle.  :class:`NoisySelectMapPort` wraps a clean
:class:`~repro.bitstream.selectmap.SelectMapPort` with those fault
modes so the repair policy can be exercised against a channel that
lies, stalls and dies — the way production scrubbers (ARICH/Belle II
intermodular scrubbers, Virtex SEU controllers) must assume it does.

Fault modes, all independently configurable via :class:`NoiseConfig`:

* **readback bit errors** — each bit read back (``read_frame`` /
  ``scan_crcs``) flips with probability ``readback_ber``.  The device's
  configuration memory is untouched: the corruption exists only on the
  wire, which is exactly what makes naive repair-on-mismatch dangerous.
* **write bit errors** — each bit written by ``write_frame`` flips with
  probability ``write_ber`` (a glitched repair), which the policy's
  re-read verification must catch.
* **transient bus faults** — an operation raises
  :class:`~repro.errors.TransientBusError` with probability
  ``transient_rate`` and succeeds when retried.
* **SEFI port hangs** — with probability ``sefi_rate`` per operation
  the port enters a sticky hang; every subsequent operation raises
  :class:`~repro.errors.SEFIError` until :meth:`power_cycle` runs.  A
  power-cycle costs modeled time and clears the configuration memory,
  so the device needs a full reconfiguration afterwards.

Deterministic tests use the injection hooks (:meth:`inject_transient`,
:meth:`inject_sefi`, :meth:`inject_scan_corruption`) instead of rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.bitstream.frame import FrameData
from repro.bitstream.selectmap import SelectMapPort, SelectMapTiming
from repro.errors import SEFIError, TransientBusError
from repro.fpga.geometry import FrameKind
from repro.utils.rng import derive_rng
from repro.utils.simtime import SimClock

__all__ = ["NoiseConfig", "NoisySelectMapPort"]


@dataclass(frozen=True)
class NoiseConfig:
    """Fault rates of one scrub channel (all default to a clean channel)."""

    readback_ber: float = 0.0  #: per-bit flip probability on readback data
    write_ber: float = 0.0  #: per-bit flip probability on written frames
    transient_rate: float = 0.0  #: per-operation transient bus-fault probability
    sefi_rate: float = 0.0  #: per-operation probability of a sticky port hang
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("readback_ber", "write_ber", "transient_rate", "sefi_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be a probability, got {v}")


class NoisySelectMapPort:
    """A :class:`SelectMapPort` with an unreliable physical layer.

    Exposes the same interface (``memory``, ``clock``, ``timing``,
    observer lists, transfer statistics, and the four operations) so it
    drops into :class:`~repro.scrub.manager.FaultManager` unchanged.
    """

    def __init__(
        self,
        inner: SelectMapPort,
        noise: NoiseConfig | None = None,
        rng: np.random.Generator | None = None,
        power_cycle_s: float = 0.25,
    ):
        self.inner = inner
        self.noise = noise if noise is not None else NoiseConfig()
        self.rng = rng if rng is not None else derive_rng(self.noise.seed, "channel")
        #: modeled latency of a commanded power-cycle (relay + reboot)
        self.power_cycle_s = power_cycle_s
        self.sefi_hung = False
        # Channel statistics.
        self.n_transient_faults = 0
        self.n_sefi_events = 0
        self.n_power_cycles = 0
        self.n_read_bits_flipped = 0
        self.n_write_bits_flipped = 0
        # Deterministic injection queues (tests / self-checks).
        self._forced_transients = 0
        self._forced_scan_corruptions: set[int] = set()

    # -- delegated surface ---------------------------------------------------

    @property
    def memory(self) -> ConfigBitstream:
        return self.inner.memory

    @property
    def clock(self) -> SimClock:
        return self.inner.clock

    @property
    def timing(self) -> SelectMapTiming:
        return self.inner.timing

    @property
    def on_full_configure(self):
        return self.inner.on_full_configure

    @property
    def on_partial_write(self):
        return self.inner.on_partial_write

    @property
    def on_readback(self):
        return self.inner.on_readback

    @property
    def n_full_configs(self) -> int:
        return self.inner.n_full_configs

    @property
    def n_frame_writes(self) -> int:
        return self.inner.n_frame_writes

    @property
    def n_frame_reads(self) -> int:
        return self.inner.n_frame_reads

    @property
    def bytes_transferred(self) -> int:
        return self.inner.bytes_transferred

    # -- fault machinery ---------------------------------------------------

    def inject_transient(self, count: int = 1) -> None:
        """Queue ``count`` deterministic transient faults (next operations)."""
        self._forced_transients += count

    def inject_sefi(self) -> None:
        """Hang the port deterministically (sticky until :meth:`power_cycle`)."""
        self.sefi_hung = True
        self.n_sefi_events += 1

    def inject_scan_corruption(self, frame_index: int) -> None:
        """Corrupt ``frame_index``'s CRC on the *next* scan only (a pure
        readback lie: memory is untouched) — the false-alarm stimulus."""
        self._forced_scan_corruptions.add(int(frame_index))

    def _gate(self) -> None:
        """Run the per-operation fault lottery; raises instead of operating."""
        if self.sefi_hung:
            raise SEFIError("SelectMAP port hung by SEFI; power-cycle required")
        if self._forced_transients > 0:
            self._forced_transients -= 1
            self.n_transient_faults += 1
            raise TransientBusError("injected transient bus fault")
        if self.noise.sefi_rate and self.rng.random() < self.noise.sefi_rate:
            self.inject_sefi()
            raise SEFIError("SelectMAP port hung by SEFI; power-cycle required")
        if self.noise.transient_rate and self.rng.random() < self.noise.transient_rate:
            self.n_transient_faults += 1
            raise TransientBusError("transient SelectMAP bus fault")

    def _flip_bits(self, bits: np.ndarray, ber: float) -> int:
        """Flip each bit of ``bits`` in place with probability ``ber``."""
        if ber <= 0.0:
            return 0
        n = int(self.rng.binomial(bits.size, ber))
        if n:
            where = self.rng.choice(bits.size, size=n, replace=False)
            bits[where] ^= 1
        return n

    def power_cycle(self) -> float:
        """Modeled power-cycle: clears a SEFI hang *and* the configuration
        memory (the device comes back unconfigured)."""
        self.sefi_hung = False
        self.inner.memory.bits[:] = 0
        self.clock.advance(self.power_cycle_s)
        self.n_power_cycles += 1
        return self.power_cycle_s

    # -- operations, with the fault lottery in front -------------------------

    def full_configure(self, golden: ConfigBitstream) -> float:
        self._gate()
        return self.inner.full_configure(golden)

    def write_frame(self, frame: FrameData) -> float:
        self._gate()
        if self.noise.write_ber > 0.0:
            frame = frame.copy()
            self.n_write_bits_flipped += self._flip_bits(frame.bits, self.noise.write_ber)
        return self.inner.write_frame(frame)

    def read_frame(self, frame_index: int) -> FrameData:
        self._gate()
        frame = self.inner.read_frame(frame_index)
        self.n_read_bits_flipped += self._flip_bits(frame.bits, self.noise.readback_ber)
        return frame

    def scan_crcs(self, include_bram_content: bool = False) -> tuple[np.ndarray, float]:
        """Scan with readback noise: frames whose (modeled) readback picked
        up at least one bit error return a perturbed CRC."""
        self._gate()
        crcs, dt = self.inner.scan_crcs(include_bram_content)
        geo = self.memory.geometry
        scanned = [
            f
            for f in range(geo.n_frames)
            if include_bram_content
            or geo.frame_address(f).kind is not FrameKind.BRAM_CONTENT
        ]
        if self.noise.readback_ber > 0.0:
            n_bits = np.array([geo.frame_bits_of(f) for f in scanned], dtype=np.int64)
            n_err = self.rng.binomial(n_bits, self.noise.readback_ber)
            for f, k in zip(scanned, n_err):
                if k:
                    # Any readback bit error perturbs a CRC-16 almost surely.
                    crcs[f] ^= np.uint16(self.rng.integers(1, 1 << 16))
                    self.n_read_bits_flipped += int(k)
        for f in self._forced_scan_corruptions:
            crcs[f] ^= np.uint16(0x5A5A)
        self._forced_scan_corruptions.clear()
        return crcs, dt

"""On-orbit mission simulation: nine FPGAs, Poisson upsets, scrubbing.

Ties the pieces together the way the flight system does (paper Figures
1-4): three compute boards, each with three Virtex parts watched by its
own radiation-hardened fault manager; configuration upsets arrive as a
Poisson process set by the orbital environment; the scrub loop detects
and repairs them within about one scan period.

Upsets landing on BRAM-content frames (masked from readback) or on
hidden state (half-latches) are *not* detected by scrubbing — the
mission report counts them separately, quantifying the paper's
limitations discussion (section II-C).

The scrub channel itself can be flown dirty: pass a
:class:`~repro.scrub.channel.NoiseConfig` and every SelectMAP port is
wrapped in a :class:`~repro.scrub.channel.NoisySelectMapPort`, so the
mission exercises verify-before-repair, retry/backoff, SEFI recovery
and quarantine.  A quarantined FPGA drops out of the scan rotation and
the report's ``device_availability`` accounts for the degraded fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.bitstream.selectmap import SelectMapPort
from repro.fpga.device import VirtexDevice
from repro.fpga.geometry import FrameKind
from repro.radiation.environment import OrbitEnvironment, sample_upset_times
from repro.radiation.cross_section import DeviceCrossSection, WeibullCrossSection
from repro.scrub.channel import NoiseConfig, NoisySelectMapPort
from repro.scrub.events import ScrubEvent, ScrubEventKind, StateOfHealth
from repro.scrub.flash import FlashMemory
from repro.scrub.manager import FaultManager, RepairPolicy
from repro.utils.rng import derive_rng
from repro.utils.simtime import SimClock

__all__ = ["OnOrbitSystem", "MissionReport"]


@dataclass
class MissionReport:
    """Aggregate of one simulated mission segment."""

    duration_s: float
    n_upsets: int
    n_detected: int
    n_repaired: int
    n_undetected_hidden: int
    n_undetected_bram: int
    detection_latencies_s: list[float] = field(default_factory=list)
    scan_period_s: float = 0.0
    soh: StateOfHealth | None = None
    # Hardened-channel telemetry (all zero on a clean channel).
    n_false_alarms: int = 0
    n_retries: int = 0
    n_escalations: int = 0
    n_sefi_recoveries: int = 0
    quarantined: list[str] = field(default_factory=list)
    #: device-seconds in service / device-seconds flown (1.0 = full fleet)
    device_availability: float = 1.0

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantined)

    @property
    def mean_detection_latency_s(self) -> float:
        if not self.detection_latencies_s:
            return 0.0
        return float(np.mean(self.detection_latencies_s))

    def summary(self) -> str:
        line = (
            f"{self.duration_s / 3600:.2f} h: {self.n_upsets} upsets, "
            f"{self.n_detected} detected, {self.n_repaired} repaired, "
            f"{self.n_undetected_hidden + self.n_undetected_bram} undetected "
            f"(hidden {self.n_undetected_hidden}, BRAM {self.n_undetected_bram}); "
            f"mean detection latency {1e3 * self.mean_detection_latency_s:.0f} ms "
            f"(scan period {1e3 * self.scan_period_s:.0f} ms)"
        )
        if (
            self.n_false_alarms or self.n_retries or self.n_escalations
            or self.n_sefi_recoveries or self.quarantined
        ):
            line += (
                f"; channel: {self.n_false_alarms} false alarms, "
                f"{self.n_retries} retries, {self.n_escalations} escalations, "
                f"{self.n_sefi_recoveries} SEFI recoveries, "
                f"{self.n_quarantined} quarantined, "
                f"fleet availability {100 * self.device_availability:.3f}%"
            )
        return line


class OnOrbitSystem:
    """One compute board (or the whole payload) under fault management."""

    def __init__(
        self,
        device: VirtexDevice,
        golden: ConfigBitstream,
        n_devices: int = 3,
        environment: OrbitEnvironment | None = None,
        hidden_fraction: float = 0.0042,
        seed: int = 0,
        noise: NoiseConfig | None = None,
        policy: RepairPolicy | None = None,
    ):
        self.device = device
        self.golden = golden
        self.n_devices = n_devices
        from repro.radiation.environment import LEO_QUIET

        self.environment = environment if environment is not None else LEO_QUIET
        self.cross_section = DeviceCrossSection(
            WeibullCrossSection(), device.block0_bits, hidden_fraction
        )
        self.rng = derive_rng(seed, "orbit")
        self.clock = SimClock()
        self.flash = FlashMemory()
        # The flight store always keeps a redundant copy: multi-bit flash
        # upsets must not leave an image unrepairable.
        self.flash.store_image("mission", golden, redundant=True)
        self.soh = StateOfHealth()
        self.manager = FaultManager(self.flash, self.clock, self.soh, policy=policy)
        self.ports: list[SelectMapPort | NoisySelectMapPort] = []
        for i in range(n_devices):
            inner = SelectMapPort(ConfigBitstream(device.geometry), self.clock)
            # Initial load happens on the ground: always through a clean port.
            inner.full_configure(golden)
            port: SelectMapPort | NoisySelectMapPort = inner
            if noise is not None:
                port = NoisySelectMapPort(
                    inner, noise, rng=derive_rng(seed, "channel", str(i))
                )
            self.manager.manage(f"fpga{i}", port, "mission")
            self.ports.append(port)

    def _apply_upset(self, when: float) -> tuple[str, str, int]:
        """Flip state in a random in-service device; returns (kind,
        device, frame).

        kind: 'config' (scrubbable), 'bram' (masked frames), 'hidden',
        or 'offline' when the hit device is quarantined (powered down,
        nothing to corrupt).
        """
        i = int(self.rng.integers(self.n_devices))
        name = f"fpga{i}"
        if self.manager.devices[i].quarantined:
            return "offline", name, -1
        if self.rng.random() < self.cross_section.hidden_fraction:
            self.soh.log(
                ScrubEvent(ScrubEventKind.UNDETECTED_UPSET, when, name, -1, "half-latch")
            )
            return "hidden", name, -1
        port = self.ports[i]
        geo = port.memory.geometry
        # Uniform over all config bits including BRAM content.
        bit = int(self.rng.integers(geo.total_bits))
        port.memory.flip_bit(bit)
        frame, _ = port.memory.locate(bit)
        if geo.frame_address(frame).kind is FrameKind.BRAM_CONTENT:
            self.soh.log(
                ScrubEvent(ScrubEventKind.UNDETECTED_UPSET, when, name, frame, "bram")
            )
            return "bram", name, frame
        return "config", name, frame

    def fly(self, duration_s: float) -> MissionReport:
        """Simulate ``duration_s`` of operation under the environment.

        Scan cycles with no pending upsets are fast-forwarded (the clock
        jumps by whole scan periods), so long quiet missions cost no
        host time.  The loop is robust to a dirty channel: false alarms
        are disproved, hung ports are power-cycled, and a device that
        exhausts the escalation ladder is quarantined — reducing
        ``device_availability`` — instead of aborting the mission.
        """
        from repro.obs import get_observer

        observer = get_observer()
        rate = self.environment.device_upset_rate(self.cross_section) * self.n_devices
        start = self.clock.now
        upset_times = start + sample_upset_times(rate, duration_s, self.rng)
        quarantined_at: dict[str, float] = {}
        mission_span = observer.tracer.open_span(
            "mission.fly",
            n_devices=self.n_devices,
            duration_s=float(duration_s),
            n_upsets=int(len(upset_times)),
        )
        observer.progress.start("mission upsets", total=int(len(upset_times)))

        def note_quarantines(scan) -> None:
            for name in scan.quarantined:
                quarantined_at.setdefault(name, self.clock.now)

        # Calibrate the scan period with one clean cycle.
        first = self.manager.scan_cycle()
        note_quarantines(first)
        scan_period = first.duration_s

        report = MissionReport(
            duration_s=duration_s,
            n_upsets=len(upset_times),
            n_detected=0,
            n_repaired=0,
            n_undetected_hidden=0,
            n_undetected_bram=0,
            scan_period_s=scan_period,
            soh=self.soh,
        )
        report.n_detected += len(first.detected)
        report.n_repaired += len(first.repaired)
        report.n_false_alarms += first.false_alarms
        report.n_retries += first.retries
        report.n_escalations += first.escalations
        report.n_sefi_recoveries += first.sefi_recoveries

        i = 0
        while i < len(upset_times):
            # Jump to the next upset (quiet scans are implicit).
            t = float(upset_times[i])
            self.clock.advance_to(t)
            pending: list[tuple[float, str, str, int]] = []
            # Apply every upset that lands before the next scan finishes.
            horizon = self.clock.now + scan_period
            while i < len(upset_times) and upset_times[i] <= horizon:
                when = float(upset_times[i])
                kind, name, frame = self._apply_upset(when)
                pending.append((when, kind, name, frame))
                i += 1
            scan = self.manager.scan_cycle()
            note_quarantines(scan)
            report.n_detected += len(scan.detected)
            report.n_repaired += len(scan.repaired)
            report.n_false_alarms += scan.false_alarms
            report.n_retries += scan.retries
            report.n_escalations += scan.escalations
            report.n_sefi_recoveries += scan.sefi_recoveries
            detected_frames = set(scan.detected)
            for when, kind, name, frame in pending:
                if kind == "hidden":
                    report.n_undetected_hidden += 1
                elif kind == "bram":
                    report.n_undetected_bram += 1
                elif (name, frame) in detected_frames:
                    report.detection_latencies_s.append(self.clock.now - when)
            if observer.enabled:
                observer.progress.update(i)
        self.clock.advance_to(start + duration_s)

        end = self.clock.now
        report.quarantined = sorted(quarantined_at)
        lost = sum(end - t0 for t0 in quarantined_at.values())
        total = self.n_devices * (end - start)
        report.device_availability = 1.0 - lost / total if total > 0 else 1.0
        if observer.enabled:
            observer.tracer.close_span(
                mission_span,
                detected=report.n_detected,
                repaired=report.n_repaired,
                quarantined=len(report.quarantined),
            )
            observer.progress.finish(
                f"{report.n_detected} detected, {report.n_repaired} repaired"
            )
        return report

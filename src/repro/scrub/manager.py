"""The Actel fault manager: readback scan, CRC codebook, frame repair.

Paper Figure 4: the radiation-hardened controller continuously reads
back each Virtex configuration over SelectMAP (no interruption of
service), computes per-frame CRCs, and compares against the codebook in
its local SRAM.  On mismatch it interrupts the microprocessor with the
device and frame; the microprocessor fetches the golden frame from
flash (156 bytes on the XQVR1000), partially reconfigures the device,
and resets the design.  One scan of three XQVR1000s takes ~180 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitstream.codebook import CRCCodebook
from repro.bitstream.selectmap import SelectMapPort
from repro.errors import ScrubError
from repro.fpga.geometry import FrameKind
from repro.scrub.events import ScrubEvent, ScrubEventKind, StateOfHealth
from repro.scrub.flash import FlashMemory
from repro.utils.simtime import SimClock

__all__ = ["ManagedDevice", "ScanReport", "FaultManager"]


@dataclass
class ManagedDevice:
    """One Virtex under fault management."""

    name: str
    port: SelectMapPort
    codebook: CRCCodebook
    image_name: str  #: golden image key in flash
    needs_reset: bool = False


@dataclass
class ScanReport:
    """Result of one full scan cycle over all managed devices."""

    duration_s: float
    detected: list[tuple[str, int]]  #: (device, frame) pairs found corrupted
    repaired: list[tuple[str, int]]
    resets: int


class FaultManager:
    """Watchdog monitor + repair path for a set of devices."""

    def __init__(
        self,
        flash: FlashMemory,
        clock: SimClock | None = None,
        soh: StateOfHealth | None = None,
        repair_interrupt_s: float = 250e-6,
    ):
        self.flash = flash
        self.clock = clock if clock is not None else SimClock()
        self.soh = soh if soh is not None else StateOfHealth()
        #: modeled microprocessor interrupt + flash fetch latency per repair
        self.repair_interrupt_s = repair_interrupt_s
        self.devices: list[ManagedDevice] = []

    def manage(self, name: str, port: SelectMapPort, image_name: str) -> ManagedDevice:
        """Register a device; builds its CRC codebook from the flash image."""
        if port.clock is not self.clock:
            raise ScrubError("managed port must share the fault manager's clock")
        golden = self.flash.fetch_image(image_name)
        if golden.geometry != port.memory.geometry:
            raise ScrubError(f"image {image_name!r} does not fit device {name!r}")
        codebook = CRCCodebook.from_bitstream(golden)
        # BRAM-content frames are masked (cannot be reliably read back
        # while running, paper section II-C); scan_crcs skips them too.
        geo = port.memory.geometry
        for f in range(geo.n_frames):
            if geo.frame_address(f).kind is FrameKind.BRAM_CONTENT:
                codebook.mask_frame(f)
        dev = ManagedDevice(name, port, codebook, image_name)
        self.devices.append(dev)
        return dev

    # -- the scan loop ------------------------------------------------------

    def scan_device(self, dev: ManagedDevice) -> tuple[list[int], float]:
        """Read back one device and return (corrupted frames, duration).

        BRAM-content frames are masked in the codebook, so the 0xFFFF
        placeholders scan_crcs leaves for them never count as upsets.
        """
        crcs, dt = dev.port.scan_crcs()
        return [int(f) for f in dev.codebook.check_crcs(crcs)], dt

    def repair_frame(self, dev: ManagedDevice, frame_index: int) -> float:
        """Fetch the golden frame from flash and rewrite it (partial
        reconfiguration); flags the device for a design reset."""
        before = self.flash.corrected_reads
        frame = self.flash.fetch_frame(dev.image_name, frame_index)
        if self.flash.corrected_reads > before:
            self.soh.log(
                ScrubEvent(
                    ScrubEventKind.FLASH_CORRECTION,
                    self.clock.now,
                    dev.name,
                    frame_index,
                )
            )
        self.clock.advance(self.repair_interrupt_s)
        dt = dev.port.write_frame(frame)
        dev.needs_reset = True
        self.soh.log(
            ScrubEvent(
                ScrubEventKind.FRAME_REPAIRED, self.clock.now, dev.name, frame_index
            )
        )
        return self.repair_interrupt_s + dt

    def scan_cycle(self) -> ScanReport:
        """One pass over every managed device (paper: ~180 ms for three)."""
        t0 = self.clock.now
        detected: list[tuple[str, int]] = []
        repaired: list[tuple[str, int]] = []
        resets = 0
        for dev in self.devices:
            bad, _ = self.scan_device(dev)
            for f in bad:
                detected.append((dev.name, f))
                self.soh.log(
                    ScrubEvent(
                        ScrubEventKind.UPSET_DETECTED, self.clock.now, dev.name, f
                    )
                )
                self.repair_frame(dev, f)
                repaired.append((dev.name, f))
            if dev.needs_reset:
                dev.needs_reset = False
                resets += 1
                self.soh.log(
                    ScrubEvent(ScrubEventKind.DESIGN_RESET, self.clock.now, dev.name)
                )
        return ScanReport(self.clock.now - t0, detected, repaired, resets)

    def self_test(self, dev: ManagedDevice, frame_index: int, bit: int = 0) -> bool:
        """Artificial SEU insertion (paper section II-A).

        "The system also allows for artificial insertion of SEUs into
        the Virtex parts using the microprocessor to partially configure
        the FPGA with 'corrupt' frames.  This stimulates the system to
        verify that the response to an SEU is correct at the logic and
        software level."

        Writes a corrupted copy of ``frame_index`` through the port,
        runs one scan cycle, and returns True iff the corruption was
        detected at exactly that frame and repaired.
        """
        frame = dev.port.memory.read_frame(frame_index)
        if not 0 <= bit < frame.n_bits:
            raise ScrubError(f"bit {bit} outside frame {frame_index}")
        frame.bits[bit] ^= 1
        dev.port.write_frame(frame)  # the 'corrupt' partial configuration
        report = self.scan_cycle()
        detected = (dev.name, frame_index) in report.detected
        repaired = (dev.name, frame_index) in report.repaired
        return detected and repaired

    def run_for(self, seconds: float, max_cycles: int | None = None) -> list[ScanReport]:
        """Scan continuously for a span of simulated time."""
        reports = []
        deadline = self.clock.now + seconds
        while self.clock.now < deadline:
            reports.append(self.scan_cycle())
            if max_cycles is not None and len(reports) >= max_cycles:
                break
        return reports

"""The Actel fault manager: readback scan, CRC codebook, frame repair.

Paper Figure 4: the radiation-hardened controller continuously reads
back each Virtex configuration over SelectMAP (no interruption of
service), computes per-frame CRCs, and compares against the codebook in
its local SRAM.  On mismatch it interrupts the microprocessor with the
device and frame; the microprocessor fetches the golden frame from
flash (156 bytes on the XQVR1000), partially reconfigures the device,
and resets the design.  One scan of three XQVR1000s takes ~180 ms.

The repair path itself is flight hardware in the radiation environment,
so :class:`RepairPolicy` hardens it against a lying channel:

* **verify before repair** — a CRC mismatch is re-read (twice, and the
  reads must agree) before any frame is rewritten, so transient
  readback noise produces FALSE_ALARM telemetry instead of repairs;
* **bounded retries with exponential backoff** (in modeled time) absorb
  transient bus faults;
* an **escalation ladder** — frame repair -> re-read verify -> full
  reconfiguration from flash -> device power-cycle -> quarantine —
  bounds how long one sick device can hold the scan rotation hostage;
* ECC-uncorrectable flash words fall back to the redundant flash copy
  and a full reconfiguration instead of killing the scan loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TypeVar

import numpy as np

from repro.bitstream.codebook import CRCCodebook
from repro.bitstream.selectmap import SelectMapPort
from repro.errors import ECCUncorrectableError, ScrubError, SEFIError, TransientBusError
from repro.fpga.geometry import FrameKind
from repro.scrub.events import ScrubEvent, ScrubEventKind, StateOfHealth
from repro.scrub.flash import FlashMemory
from repro.utils.simtime import SimClock

__all__ = ["ManagedDevice", "RepairPolicy", "ScanReport", "FaultManager"]

T = TypeVar("T")


@dataclass(frozen=True)
class RepairPolicy:
    """Knobs of the hardened repair path."""

    #: re-read a CRC-mismatched frame before rewriting it
    verify_before_repair: bool = True
    #: transient-bus-fault retries per operation before escalating
    max_retries: int = 3
    #: first retry backoff (modeled seconds); doubles each retry
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0
    #: frame repair + verify rounds before escalating to full reconfig
    max_repair_attempts: int = 2
    #: full reconfigurations per device before the power-cycle rung
    max_full_reconfigs: int = 2
    #: power-cycles per device before quarantine
    max_power_cycles: int = 2


@dataclass
class ManagedDevice:
    """One Virtex under fault management."""

    name: str
    port: SelectMapPort
    codebook: CRCCodebook
    image_name: str  #: golden image key in flash
    needs_reset: bool = False
    quarantined: bool = False
    n_full_reconfigs: int = 0
    n_power_cycles: int = 0


@dataclass
class ScanReport:
    """Result of one full scan cycle over all managed devices."""

    duration_s: float
    detected: list[tuple[str, int]]  #: (device, frame) pairs found corrupted
    repaired: list[tuple[str, int]]
    resets: int
    false_alarms: int = 0  #: mismatches disproved by the verify re-read
    retries: int = 0  #: transient bus faults absorbed by backoff
    escalations: int = 0  #: ladder rungs climbed
    sefi_recoveries: int = 0  #: hung ports recovered by power-cycle
    quarantined: list[str] = field(default_factory=list)  #: newly quarantined


class FaultManager:
    """Watchdog monitor + repair path for a set of devices."""

    def __init__(
        self,
        flash: FlashMemory,
        clock: SimClock | None = None,
        soh: StateOfHealth | None = None,
        repair_interrupt_s: float = 250e-6,
        policy: RepairPolicy | None = None,
        idle_tick_s: float = 1e-3,
    ):
        self.flash = flash
        self.clock = clock if clock is not None else SimClock()
        self.soh = soh if soh is not None else StateOfHealth()
        #: modeled microprocessor interrupt + flash fetch latency per repair
        self.repair_interrupt_s = repair_interrupt_s
        self.policy = policy if policy is not None else RepairPolicy()
        #: minimum clock advance of a scan cycle that did no bus work
        #: (all devices quarantined) so polling loops always make progress
        self.idle_tick_s = idle_tick_s
        self.devices: list[ManagedDevice] = []

    def manage(self, name: str, port: SelectMapPort, image_name: str) -> ManagedDevice:
        """Register a device; builds its CRC codebook from the flash image."""
        if port.clock is not self.clock:
            raise ScrubError("managed port must share the fault manager's clock")
        golden = self.flash.fetch_image(image_name)
        if golden.geometry != port.memory.geometry:
            raise ScrubError(f"image {image_name!r} does not fit device {name!r}")
        codebook = CRCCodebook.from_bitstream(golden)
        # BRAM-content frames are masked (cannot be reliably read back
        # while running, paper section II-C); scan_crcs skips them too.
        geo = port.memory.geometry
        for f in range(geo.n_frames):
            if geo.frame_address(f).kind is FrameKind.BRAM_CONTENT:
                codebook.mask_frame(f)
        dev = ManagedDevice(name, port, codebook, image_name)
        self.devices.append(dev)
        return dev

    def active_devices(self) -> list[ManagedDevice]:
        """Devices still in the scan rotation."""
        return [d for d in self.devices if not d.quarantined]

    # -- telemetry helpers ---------------------------------------------------

    def _log(self, kind: ScrubEventKind, dev: ManagedDevice, frame: int = -1,
             detail: str = "") -> None:
        self.soh.log(ScrubEvent(kind, self.clock.now, dev.name, frame, detail))

    # -- the scan loop ------------------------------------------------------

    def scan_device(self, dev: ManagedDevice) -> tuple[list[int], float]:
        """Read back one device and return (corrupted frames, duration).

        BRAM-content frames are masked in the codebook, so the 0xFFFF
        placeholders scan_crcs leaves for them never count as upsets.
        """
        crcs, dt = dev.port.scan_crcs()
        return [int(f) for f in dev.codebook.check_crcs(crcs)], dt

    def _retrying(self, dev: ManagedDevice, frame: int, what: str,
                  op: Callable[[], T]) -> T:
        """Run ``op`` with bounded retries and exponential backoff (in
        modeled time) on transient bus faults; logs RETRY per attempt."""
        delay = self.policy.backoff_base_s
        for attempt in range(self.policy.max_retries + 1):
            try:
                return op()
            except TransientBusError as err:
                self._log(ScrubEventKind.RETRY, dev, frame, f"{what}: {err}")
                if attempt == self.policy.max_retries:
                    raise
                self.clock.advance(delay)
                delay *= self.policy.backoff_factor
        raise AssertionError("unreachable")  # pragma: no cover

    def repair_frame(self, dev: ManagedDevice, frame_index: int) -> float:
        """Fetch the golden frame from flash and rewrite it (partial
        reconfiguration); flags the device for a design reset.

        An ECC-uncorrectable flash word (multi-bit flash upset) escalates
        to a full reconfiguration from the redundant flash copy instead
        of crashing the scan loop; without a redundant copy the error
        propagates for the caller's ladder to handle.
        """
        t0 = self.clock.now
        before = self.flash.corrected_reads
        try:
            frame = self.flash.fetch_frame(dev.image_name, frame_index)
        except ECCUncorrectableError as err:
            if not self.flash.has_redundant(dev.image_name):
                raise
            self._log(
                ScrubEventKind.ESCALATION, dev, frame_index,
                f"flash uncorrectable ({err}); full reconfig from redundant copy",
            )
            self.full_reconfigure(dev, fallback=True)
            return self.clock.now - t0
        if self.flash.corrected_reads > before:
            self._log(ScrubEventKind.FLASH_CORRECTION, dev, frame_index)
        self.clock.advance(self.repair_interrupt_s)
        dt = dev.port.write_frame(frame)
        dev.needs_reset = True
        self._log(ScrubEventKind.FRAME_REPAIRED, dev, frame_index)
        return self.repair_interrupt_s + dt

    def full_reconfigure(self, dev: ManagedDevice, fallback: bool = False) -> float:
        """Reload the whole golden image from flash (start-up sequence runs)."""
        golden = self.flash.fetch_image(dev.image_name, fallback=fallback)
        dt = dev.port.full_configure(golden)
        dev.needs_reset = True
        dev.n_full_reconfigs += 1
        self._log(ScrubEventKind.FULL_RECONFIG, dev)
        return dt

    # -- the escalation ladder ----------------------------------------------

    def _quarantine(self, dev: ManagedDevice, reason: str) -> None:
        dev.quarantined = True
        self._log(ScrubEventKind.QUARANTINE, dev, detail=reason)

    def _escalate_device(self, dev: ManagedDevice, reason: str) -> bool:
        """Climb the device-level rungs: full reconfiguration from flash,
        then power-cycle, then quarantine.  Returns True when the device
        was restored to service."""
        if dev.n_full_reconfigs < self.policy.max_full_reconfigs:
            self._log(ScrubEventKind.ESCALATION, dev, detail=f"full reconfig: {reason}")
            try:
                self._retrying(dev, -1, "full reconfig",
                               lambda: self.full_reconfigure(dev, fallback=True))
                return True
            except ScrubError:
                pass  # SEFI, exhausted retries, unrecoverable flash: next rung
        if dev.n_power_cycles < self.policy.max_power_cycles and hasattr(
            dev.port, "power_cycle"
        ):
            self._log(ScrubEventKind.ESCALATION, dev, detail=f"power-cycle: {reason}")
            dev.n_power_cycles += 1
            dev.port.power_cycle()
            try:
                self._retrying(dev, -1, "post-power-cycle reconfig",
                               lambda: self.full_reconfigure(dev, fallback=True))
                return True
            except ScrubError:
                pass
        self._quarantine(dev, reason)
        return False

    def _recover_from_sefi(self, dev: ManagedDevice) -> bool:
        """A hung port only responds to a power-cycle; then reconfigure."""
        if dev.n_power_cycles >= self.policy.max_power_cycles or not hasattr(
            dev.port, "power_cycle"
        ):
            self._quarantine(dev, "SEFI: power-cycle budget exhausted")
            return False
        self._log(ScrubEventKind.ESCALATION, dev, detail="power-cycle: SEFI port hang")
        dev.n_power_cycles += 1
        dev.port.power_cycle()
        try:
            self._retrying(dev, -1, "post-SEFI reconfig",
                           lambda: self.full_reconfigure(dev, fallback=True))
        except SEFIError:
            # Hung again immediately; next cycle climbs the ladder anew.
            return False
        except ScrubError:
            self._quarantine(dev, "SEFI: reconfiguration failed")
            return False
        self._log(ScrubEventKind.SEFI_RECOVERY, dev)
        return True

    def _verify_mismatch(self, dev: ManagedDevice, frame_index: int) -> bool:
        """Verify-before-repair: is the CRC mismatch real?

        Re-reads the frame twice per round; a repair is authorised only
        when both reads mismatch the codebook *and* agree with each
        other (consistent corruption lives in the device; inconsistent
        corruption is channel noise).  Any read matching the codebook
        disproves the alarm.  Rounds that stay inconsistent are retried
        with backoff; an inconclusive verify authorises the repair —
        rewriting a golden frame is always safe, skipping a real upset
        is not.
        """
        delay = self.policy.backoff_base_s
        for _ in range(self.policy.max_repair_attempts):
            a = self._retrying(dev, frame_index, "verify read",
                               lambda: dev.port.read_frame(frame_index))
            if dev.codebook.check_frame(frame_index, a.bits):
                return False
            b = self._retrying(dev, frame_index, "verify read",
                               lambda: dev.port.read_frame(frame_index))
            if dev.codebook.check_frame(frame_index, b.bits):
                return False
            if np.array_equal(a.bits, b.bits):
                return True
            self._log(ScrubEventKind.RETRY, dev, frame_index,
                      "verify reads disagree; channel noise suspected")
            self.clock.advance(delay)
            delay *= self.policy.backoff_factor
        return True

    def _repair_with_policy(self, dev: ManagedDevice, frame_index: int) -> bool:
        """Verify, repair, verify again, escalate.  True when the frame
        was actually rewritten (by repair or reconfiguration)."""
        if self.policy.verify_before_repair:
            if not self._verify_mismatch(dev, frame_index):
                self._log(ScrubEventKind.FALSE_ALARM, dev, frame_index,
                          "verify re-read matched the codebook")
                return False
        for attempt in range(self.policy.max_repair_attempts):
            self._retrying(dev, frame_index, "frame repair",
                           lambda: self.repair_frame(dev, frame_index))
            check = self._retrying(dev, frame_index, "post-repair verify",
                                   lambda: dev.port.read_frame(frame_index))
            if dev.codebook.check_frame(frame_index, check.bits):
                return True
            self._log(ScrubEventKind.ESCALATION, dev, frame_index,
                      f"repair attempt {attempt + 1} failed verification")
        self._escalate_device(dev, f"frame {frame_index} unrepairable by partial "
                                   "reconfiguration")
        return True

    def scan_cycle(self) -> ScanReport:
        """One pass over every in-rotation device (paper: ~180 ms for three).

        Never lets a single device's failure escape: transient faults are
        retried with backoff, persistent ones climb the escalation ladder,
        and a device that exhausts the ladder is quarantined out of the
        rotation rather than crashing the loop.
        """
        from repro.obs import get_observer

        tracer = get_observer().tracer
        span = tracer.open_span(
            "scrub.scan_cycle",
            devices=sum(1 for d in self.devices if not d.quarantined),
        ) if tracer.enabled else -1
        t0 = self.clock.now
        tallies = (ScrubEventKind.FALSE_ALARM, ScrubEventKind.RETRY,
                   ScrubEventKind.ESCALATION, ScrubEventKind.SEFI_RECOVERY)
        before = {k: self.soh.count(k) for k in tallies}
        was_quarantined = {d.name for d in self.devices if d.quarantined}
        detected: list[tuple[str, int]] = []
        repaired: list[tuple[str, int]] = []
        resets = 0
        for dev in self.devices:
            if dev.quarantined:
                continue
            try:
                bad, _ = self._retrying(dev, -1, "readback scan",
                                        lambda: self.scan_device(dev))
            except SEFIError:
                self._recover_from_sefi(dev)
                continue
            except TransientBusError:
                self._escalate_device(dev, "readback scan retries exhausted")
                continue
            for f in bad:
                detected.append((dev.name, f))
                self._log(ScrubEventKind.UPSET_DETECTED, dev, f)
                try:
                    if self._repair_with_policy(dev, f):
                        repaired.append((dev.name, f))
                except SEFIError:
                    self._recover_from_sefi(dev)
                except TransientBusError:
                    self._escalate_device(dev, f"frame {f} repair retries exhausted")
                except ECCUncorrectableError as err:
                    self._quarantine(dev, f"flash image unrecoverable: {err}")
                if dev.quarantined:
                    break
            if dev.needs_reset and not dev.quarantined:
                dev.needs_reset = False
                resets += 1
                self._log(ScrubEventKind.DESIGN_RESET, dev)
        if self.clock.now == t0:
            # No bus work happened (e.g. every device quarantined): advance
            # a minimum idle tick so polling loops always make progress.
            self.clock.advance(self.idle_tick_s)
        report = ScanReport(
            duration_s=self.clock.now - t0,
            detected=detected,
            repaired=repaired,
            resets=resets,
            false_alarms=self.soh.count(ScrubEventKind.FALSE_ALARM)
            - before[ScrubEventKind.FALSE_ALARM],
            retries=self.soh.count(ScrubEventKind.RETRY)
            - before[ScrubEventKind.RETRY],
            escalations=self.soh.count(ScrubEventKind.ESCALATION)
            - before[ScrubEventKind.ESCALATION],
            sefi_recoveries=self.soh.count(ScrubEventKind.SEFI_RECOVERY)
            - before[ScrubEventKind.SEFI_RECOVERY],
            quarantined=[d.name for d in self.devices
                         if d.quarantined and d.name not in was_quarantined],
        )
        if tracer.enabled:
            tracer.close_span(
                span,
                scan_seconds=round(report.duration_s, 6),
                detected=len(report.detected),
                repaired=len(report.repaired),
                resets=report.resets,
                false_alarms=report.false_alarms,
                retries=report.retries,
                escalations=report.escalations,
                sefi_recoveries=report.sefi_recoveries,
                quarantined=len(report.quarantined),
            )
        return report

    def self_test(self, dev: ManagedDevice, frame_index: int, bit: int = 0) -> bool:
        """Artificial SEU insertion (paper section II-A).

        "The system also allows for artificial insertion of SEUs into
        the Virtex parts using the microprocessor to partially configure
        the FPGA with 'corrupt' frames.  This stimulates the system to
        verify that the response to an SEU is correct at the logic and
        software level."

        Writes a corrupted copy of ``frame_index`` through the port,
        runs one scan cycle, and returns True iff the corruption was
        detected at exactly that frame and repaired.  Masked (BRAM
        content) frames are rejected up front — the scan cannot see
        them, so the test would silently leave the corruption behind.
        On a failed self-test the original frame is restored.
        """
        if frame_index in dev.codebook.masked:
            raise ScrubError(
                f"frame {frame_index} is masked from readback; "
                "self-test would leave the corruption undetected"
            )
        original = dev.port.memory.read_frame(frame_index)
        frame = original.copy()
        if not 0 <= bit < frame.n_bits:
            raise ScrubError(f"bit {bit} outside frame {frame_index}")
        frame.bits[bit] ^= 1
        dev.port.write_frame(frame)  # the 'corrupt' partial configuration
        report = self.scan_cycle()
        detected = (dev.name, frame_index) in report.detected
        repaired = (dev.name, frame_index) in report.repaired
        ok = detected and repaired
        if not ok:
            # Do not leave the artificial corruption in the device.
            dev.port.memory.write_frame(original)
        return ok

    def run_for(self, seconds: float, max_cycles: int | None = None) -> list[ScanReport]:
        """Scan continuously for a span of simulated time."""
        if not self.devices:
            raise ScrubError("run_for with no managed devices would never advance")
        reports = []
        deadline = self.clock.now + seconds
        while self.clock.now < deadline:
            reports.append(self.scan_cycle())
            if max_cycles is not None and len(reports) >= max_cycles:
                break
        return reports

"""Flight configuration store: flash + EEPROM with ECC (paper section II).

The 16 MB flash module holds "more than twenty configuration bit
streams ... without compression" for the payload's XQVR1000s; the
EEPROM holds operating-system and application code.  Every stored word
is SEC-DED protected so flash SEUs do not corrupt repairs.  The store
is frame-addressable: the scrub path fetches exactly the 156-byte frame
it needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.bitstream.frame import FrameData
from repro.errors import ECCUncorrectableError, ScrubError
from repro.fpga.geometry import DeviceGeometry
from repro.scrub.ecc import SECDED_CODE_BITS, SECDED_DATA_BITS, secded_decode, secded_encode

__all__ = ["FlashMemory"]


@dataclass
class _StoredImage:
    """One configuration image, ECC-encoded frame by frame."""

    geometry: DeviceGeometry
    frames: list[np.ndarray]  # per frame: (n_words, 72) codewords
    frame_bits: list[int]


class FlashMemory:
    """ECC-protected, frame-addressable configuration store."""

    def __init__(self, capacity_bytes: int = 16 * 1024 * 1024):
        self.capacity_bytes = capacity_bytes
        self._images: dict[str, _StoredImage] = {}
        self._redundant: dict[str, _StoredImage] = {}
        self.corrected_reads = 0  #: ECC single-bit corrections performed
        self.redundant_fallbacks = 0  #: reads served from the redundant copy

    # -- capacity ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        total_bits = sum(
            sum(f.size for f in img.frames)
            for store in (self._images, self._redundant)
            for img in store.values()
        )
        return (total_bits + 7) // 8

    def _check_capacity(self, extra_bits: int) -> None:
        if self.used_bytes + (extra_bits + 7) // 8 > self.capacity_bytes:
            raise ScrubError(
                f"flash capacity exceeded ({self.capacity_bytes} bytes)"
            )

    # -- store / fetch ------------------------------------------------------

    def _encode(self, bitstream: ConfigBitstream) -> _StoredImage:
        geo = bitstream.geometry
        frames: list[np.ndarray] = []
        frame_bits: list[int] = []
        for f in range(geo.n_frames):
            bits = bitstream.frame_view(f)
            n_words = (bits.size + SECDED_DATA_BITS - 1) // SECDED_DATA_BITS
            padded = np.zeros(n_words * SECDED_DATA_BITS, dtype=np.uint8)
            padded[: bits.size] = bits
            code = secded_encode(padded.reshape(n_words, SECDED_DATA_BITS))
            frames.append(code)
            frame_bits.append(int(bits.size))
        return _StoredImage(geo, frames, frame_bits)

    def store_image(
        self, name: str, bitstream: ConfigBitstream, redundant: bool = False
    ) -> None:
        """Store a golden configuration, ECC-encoding every frame.

        With ``redundant=True`` a second, independently stored copy is
        kept; reads that find the primary copy ECC-uncorrectable fall
        back to it (and heal the primary word from it).
        """
        if name in self._images:
            raise ScrubError(f"image {name!r} already stored")
        img = self._encode(bitstream)
        total_code_bits = sum(f.size for f in img.frames) * (2 if redundant else 1)
        self._check_capacity(total_code_bits)
        self._images[name] = img
        if redundant:
            self._redundant[name] = self._encode(bitstream)

    def images(self) -> list[str]:
        return sorted(self._images)

    def _image(self, name: str) -> _StoredImage:
        try:
            return self._images[name]
        except KeyError:
            raise ScrubError(f"no stored image named {name!r}") from None

    def has_redundant(self, name: str) -> bool:
        return name in self._redundant

    def fetch_frame(
        self, name: str, frame_index: int, fallback: bool = False
    ) -> FrameData:
        """Fetch one golden frame, correcting any single-bit flash SEUs.

        A multi-bit upset makes the stored word ECC-uncorrectable; with
        ``fallback=True`` and a redundant copy stored, the read is served
        from the redundant copy and the primary word is healed from it
        (flash scrubbing).  Otherwise the error propagates.
        """
        img = self._image(name)
        if not 0 <= frame_index < len(img.frames):
            raise ScrubError(f"image {name!r} has no frame {frame_index}")
        try:
            data, corrected = secded_decode(img.frames[frame_index])
        except ECCUncorrectableError:
            if not fallback or name not in self._redundant:
                raise
            spare = self._redundant[name]
            data, corrected = secded_decode(spare.frames[frame_index])
            img.frames[frame_index][:] = spare.frames[frame_index]
            self.redundant_fallbacks += 1
        self.corrected_reads += corrected
        bits = data.reshape(-1)[: img.frame_bits[frame_index]]
        return FrameData(frame_index, bits)

    def fetch_image(self, name: str, fallback: bool = False) -> ConfigBitstream:
        """Reassemble a whole configuration (used for full reconfiguration)."""
        img = self._image(name)
        out = ConfigBitstream(img.geometry)
        for f in range(len(img.frames)):
            out.write_frame(self.fetch_frame(name, f, fallback=fallback))
        return out

    # -- fault injection into the store itself ------------------------------

    def upset_bit(
        self,
        name: str,
        rng: np.random.Generator,
        frame: int | None = None,
        word: int | None = None,
        bits: int = 1,
    ) -> tuple[int, int]:
        """Flip stored code bits (flash SEUs); returns (frame, word) hit.

        By default one random bit anywhere in the image.  ``frame`` /
        ``word`` pin the location and ``bits`` flips that many distinct
        bits *of the same code word* — ``bits=2`` models the double-bit
        upset SEC-DED cannot correct.
        """
        img = self._image(name)
        f = int(rng.integers(len(img.frames))) if frame is None else int(frame)
        code = img.frames[f]
        w = int(rng.integers(code.shape[0])) if word is None else int(word)
        for b in rng.choice(SECDED_CODE_BITS, size=bits, replace=False):
            code[w, int(b)] ^= 1
        return f, w

"""Flight configuration store: flash + EEPROM with ECC (paper section II).

The 16 MB flash module holds "more than twenty configuration bit
streams ... without compression" for the payload's XQVR1000s; the
EEPROM holds operating-system and application code.  Every stored word
is SEC-DED protected so flash SEUs do not corrupt repairs.  The store
is frame-addressable: the scrub path fetches exactly the 156-byte frame
it needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitstream.bitstream import ConfigBitstream
from repro.bitstream.frame import FrameData
from repro.errors import ScrubError
from repro.fpga.geometry import DeviceGeometry
from repro.scrub.ecc import SECDED_CODE_BITS, SECDED_DATA_BITS, secded_decode, secded_encode

__all__ = ["FlashMemory"]


@dataclass
class _StoredImage:
    """One configuration image, ECC-encoded frame by frame."""

    geometry: DeviceGeometry
    frames: list[np.ndarray]  # per frame: (n_words, 72) codewords
    frame_bits: list[int]


class FlashMemory:
    """ECC-protected, frame-addressable configuration store."""

    def __init__(self, capacity_bytes: int = 16 * 1024 * 1024):
        self.capacity_bytes = capacity_bytes
        self._images: dict[str, _StoredImage] = {}
        self.corrected_reads = 0  #: ECC single-bit corrections performed

    # -- capacity ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        total_bits = sum(
            sum(f.size for f in img.frames) for img in self._images.values()
        )
        return (total_bits + 7) // 8

    def _check_capacity(self, extra_bits: int) -> None:
        if self.used_bytes + (extra_bits + 7) // 8 > self.capacity_bytes:
            raise ScrubError(
                f"flash capacity exceeded ({self.capacity_bytes} bytes)"
            )

    # -- store / fetch ------------------------------------------------------

    def store_image(self, name: str, bitstream: ConfigBitstream) -> None:
        """Store a golden configuration, ECC-encoding every frame."""
        if name in self._images:
            raise ScrubError(f"image {name!r} already stored")
        geo = bitstream.geometry
        frames: list[np.ndarray] = []
        frame_bits: list[int] = []
        total_code_bits = 0
        for f in range(geo.n_frames):
            bits = bitstream.frame_view(f)
            n_words = (bits.size + SECDED_DATA_BITS - 1) // SECDED_DATA_BITS
            padded = np.zeros(n_words * SECDED_DATA_BITS, dtype=np.uint8)
            padded[: bits.size] = bits
            code = secded_encode(padded.reshape(n_words, SECDED_DATA_BITS))
            frames.append(code)
            frame_bits.append(int(bits.size))
            total_code_bits += code.size
        self._check_capacity(total_code_bits)
        self._images[name] = _StoredImage(geo, frames, frame_bits)

    def images(self) -> list[str]:
        return sorted(self._images)

    def _image(self, name: str) -> _StoredImage:
        try:
            return self._images[name]
        except KeyError:
            raise ScrubError(f"no stored image named {name!r}") from None

    def fetch_frame(self, name: str, frame_index: int) -> FrameData:
        """Fetch one golden frame, correcting any single-bit flash SEUs."""
        img = self._image(name)
        if not 0 <= frame_index < len(img.frames):
            raise ScrubError(f"image {name!r} has no frame {frame_index}")
        data, corrected = secded_decode(img.frames[frame_index])
        self.corrected_reads += corrected
        bits = data.reshape(-1)[: img.frame_bits[frame_index]]
        return FrameData(frame_index, bits)

    def fetch_image(self, name: str) -> ConfigBitstream:
        """Reassemble a whole configuration (used for full reconfiguration)."""
        img = self._image(name)
        out = ConfigBitstream(img.geometry)
        for f in range(len(img.frames)):
            out.write_frame(self.fetch_frame(name, f))
        return out

    # -- fault injection into the store itself ------------------------------

    def upset_bit(self, name: str, rng: np.random.Generator) -> None:
        """Flip one random stored code bit (a flash SEU)."""
        img = self._image(name)
        f = int(rng.integers(len(img.frames)))
        code = img.frames[f]
        w = int(rng.integers(code.shape[0]))
        b = int(rng.integers(SECDED_CODE_BITS))
        code[w, b] ^= 1

"""SEC-DED Hamming code for flash/EEPROM words (paper section II).

The flight memory module protects stored configurations with error
control coding so SEUs in the flash do not propagate into repairs.  We
implement the classic Hamming(72, 64) single-error-correct /
double-error-detect code over 64-bit data words, vectorised over whole
word arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ECCUncorrectableError

__all__ = ["SECDED_DATA_BITS", "SECDED_CODE_BITS", "secded_encode", "secded_decode"]

SECDED_DATA_BITS = 64
#: 7 Hamming parity bits + 1 overall parity bit.
SECDED_CODE_BITS = 72


def _build_positions() -> tuple[np.ndarray, np.ndarray]:
    """Map data bits into codeword positions (1-based Hamming layout).

    Positions that are powers of two hold parity; the rest hold data in
    order.  Returns (data_positions, parity_positions).
    """
    data_pos = []
    parity_pos = []
    pos = 1
    while len(data_pos) < SECDED_DATA_BITS:
        if pos & (pos - 1) == 0:
            parity_pos.append(pos)
        else:
            data_pos.append(pos)
        pos += 1
    return np.array(data_pos, dtype=np.int64), np.array(parity_pos, dtype=np.int64)


_DATA_POS, _PARITY_POS = _build_positions()
_N_POSITIONS = int(max(_DATA_POS.max(), _PARITY_POS.max()))


def secded_encode(data_bits: np.ndarray) -> np.ndarray:
    """Encode a (..., 64) bit array into (..., 72) codewords.

    Codeword layout: bits 0..70 are the Hamming codeword (1-based
    positions 1..71), bit 71 is overall parity.
    """
    data_bits = np.asarray(data_bits, dtype=np.uint8)
    if data_bits.shape[-1] != SECDED_DATA_BITS:
        raise ValueError(f"expected {SECDED_DATA_BITS} data bits per word")
    shape = data_bits.shape[:-1]
    code = np.zeros(shape + (_N_POSITIONS + 1,), dtype=np.uint8)  # 1-based
    code[..., _DATA_POS] = data_bits
    for p in _PARITY_POS:
        covered = np.arange(1, _N_POSITIONS + 1)
        covered = covered[(covered & p) != 0]
        code[..., p] = np.bitwise_xor.reduce(code[..., covered], axis=-1) ^ code[..., p]
    hamming = code[..., 1:]  # drop the unused 0 slot
    overall = np.bitwise_xor.reduce(hamming, axis=-1, keepdims=True)
    return np.concatenate([hamming, overall], axis=-1)


def secded_decode(codewords: np.ndarray) -> tuple[np.ndarray, int]:
    """Decode (..., 72) codewords; returns (data, corrected_count).

    Single-bit errors are corrected; double-bit errors raise
    :class:`ECCUncorrectableError` (the flight software would fall back
    to a redundant image).
    """
    codewords = np.asarray(codewords, dtype=np.uint8)
    if codewords.shape[-1] != SECDED_CODE_BITS:
        raise ValueError(f"expected {SECDED_CODE_BITS} code bits per word")
    flat = codewords.reshape(-1, SECDED_CODE_BITS).copy()
    corrected = 0
    positions = np.arange(1, _N_POSITIONS + 1)
    # Vectorised syndromes: one reduction per parity bit over all words.
    syndromes = np.zeros(flat.shape[0], dtype=np.int64)
    for p in _PARITY_POS:
        covered = positions[(positions & p) != 0]
        bad = np.bitwise_xor.reduce(flat[:, covered - 1], axis=1).astype(bool)
        syndromes[bad] |= p
    overall_bad = np.bitwise_xor.reduce(flat, axis=1).astype(bool)
    for w in np.flatnonzero((syndromes != 0) | overall_bad):
        syndrome = int(syndromes[w])
        if syndrome != 0 and overall_bad[w]:
            # Single-bit error inside the Hamming part: correct it.
            if syndrome > _N_POSITIONS:
                raise ECCUncorrectableError(f"invalid syndrome {syndrome}")
            flat[w, syndrome - 1] ^= 1
            corrected += 1
        elif syndrome == 0 and overall_bad[w]:
            flat[w, -1] ^= 1  # error in the overall parity bit itself
            corrected += 1
        else:
            raise ECCUncorrectableError(
                f"double-bit error in word {w} (syndrome {syndrome})"
            )
    fixed = flat.reshape(codewords.shape)
    hamming = fixed[..., :-1]
    pad = np.zeros(hamming.shape[:-1] + (1,), dtype=np.uint8)
    one_based = np.concatenate([pad, hamming], axis=-1)
    return one_based[..., _DATA_POS], corrected

"""Figure 8 — the SEU fault-injection loop and its throughput.

Paper claims reproduced:
  * one corrupt/observe/repair iteration costs 214 us on the SLAAC-1V
    (100 us single-bit partial reconfiguration each way + observation);
  * the entire 5.8 Mbit XCV1000 bitstream is tested exhaustively in
    ~20 minutes;
  * running corrupted designs on hardware is "many orders of magnitude"
    faster than software simulation — quantified here as modeled
    hardware throughput vs this library's measured software throughput.
"""

import time

import numpy as np

from repro.fpga import get_device
from repro.seu import CampaignConfig, run_campaign
from repro.testbed import HostTiming, SeuSimulatorHost, Slaac1V
from repro.utils.units import MINUTE, format_duration


def test_modeled_iteration_and_sweep(report, benchmark):
    timing = HostTiming()
    dev = get_device("XCV1000")
    sweep = benchmark(lambda: timing.sweep_time(dev.block0_bits))
    report(
        "",
        "== Figure 8: injection loop timing (modeled hardware) ==",
        f"per-bit iteration: {format_duration(timing.iteration_s)} (paper: 214 us)",
        f"exhaustive XCV1000 sweep ({dev.block0_bits:,} bits): "
        f"{format_duration(sweep)} (paper: ~20 min)",
    )
    assert abs(timing.iteration_s - 214e-6) < 1e-9
    assert 18 * MINUTE < sweep < 23 * MINUTE


def test_testbed_sweep_accounting(table1_campaigns, report, benchmark):
    hw, _ = table1_campaigns[0]
    board = Slaac1V(hw)
    host = SeuSimulatorHost(board)
    bits = np.arange(0, hw.device.block0_bits, 40, dtype=np.int64)
    cfg = CampaignConfig(detect_cycles=64, persist_cycles=0, classify_persistence=False)

    def sweep():
        board.configure()
        return host.run_exhaustive(cfg, candidate_bits=bits)

    result, modeled = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"strided testbed sweep: {result.n_candidates:,} bits, modeled "
        f"{format_duration(modeled)}, host {result.host_seconds:.1f} s",
        f"log records: device/frame identified for every injection "
        f"(first: frame {host.records_from(result, 1)[0].frame_index})",
    )
    assert modeled == host.timing.sweep_time(result.n_candidates, result.n_failures)

"""Figure 4 — on-orbit SEU detection and correction.

Paper claims reproduced:
  * one readback + CRC scan cycle of three XQVR1000s takes ~180 ms;
  * a repair rewrites exactly one 156-byte frame;
  * detected upsets are repaired within about one scan period.
"""

import numpy as np
import pytest

from repro.bitstream import ConfigBitstream, SelectMapPort
from repro.fpga import get_device
from repro.radiation import LEO_FLARE, OrbitEnvironment
from repro.scrub import FlashMemory, FaultManager, OnOrbitSystem
from repro.utils.simtime import SimClock
from repro.utils.units import format_duration


def test_scan_cycle_timing_xqvr1000(report, benchmark):
    dev = get_device("XQVR1000")
    clock = SimClock()
    ports = [SelectMapPort(ConfigBitstream(dev.geometry), clock) for _ in range(3)]

    def scan_board():
        t0 = clock.now
        for p in ports:
            p.scan_crcs()
        return clock.now - t0

    modeled = benchmark(scan_board)
    report(
        "",
        "== Figure 4: scrub scan cycle ==",
        f"modeled scan of 3 XQVR1000s: {format_duration(modeled)} "
        "(paper: ~180 ms)",
        f"frame size: {dev.frame_bytes} bytes (paper: 156 bytes)",
    )
    assert 0.14 < modeled < 0.22
    assert dev.frame_bytes == 156


def test_detect_repair_loop(report, benchmark):
    dev = get_device("S8")
    rng = np.random.default_rng(0)
    golden = ConfigBitstream(
        dev.geometry, rng.integers(0, 2, dev.geometry.total_bits).astype(np.uint8)
    )
    clock = SimClock()
    flash = FlashMemory()
    flash.store_image("img", golden)
    manager = FaultManager(flash, clock)
    port = SelectMapPort(ConfigBitstream(dev.geometry), clock)
    port.full_configure(golden)
    manager.manage("dut", port, "img")

    def upset_and_scrub():
        bit = int(rng.integers(dev.block0_bits))
        port.memory.flip_bit(bit)
        rep = manager.scan_cycle()
        assert len(rep.repaired) == 1
        return rep.duration_s

    benchmark(upset_and_scrub)
    assert np.array_equal(port.memory.bits, golden.bits)


def test_mission_detection_latency(report, benchmark):
    dev = get_device("S8")
    rng = np.random.default_rng(1)
    golden = ConfigBitstream(
        dev.geometry, rng.integers(0, 2, dev.geometry.total_bits).astype(np.uint8)
    )
    hot = OrbitEnvironment("hot", LEO_FLARE.effective_flux_cm2_s * 4000)

    def fly():
        system = OnOrbitSystem(dev, golden, n_devices=3, environment=hot, seed=11)
        return system.fly(3600.0)

    mission = benchmark.pedantic(fly, rounds=1, iterations=1)
    report(
        f"1 h flare mission (3 scaled devices): {mission.summary()}",
        f"mean detection latency / scan period: "
        f"{mission.mean_detection_latency_s / mission.scan_period_s:.2f} "
        "(upsets are caught within ~one scan, as the flight design intends)",
    )
    assert mission.n_detected == mission.n_repaired
    assert mission.mean_detection_latency_s < 2.5 * mission.scan_period_s

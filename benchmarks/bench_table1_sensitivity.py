"""Table I — SEU simulator results for test designs.

Paper values (XCV1000, exhaustive 5.8 Mbit sweeps):

    design      sensitivity   normalized sensitivity
    LFSR 18-72  1.15-4.81 %   7.3-7.6 %
    VMULT 18-72 1.05-14.75 %  24.5-25.9 %
    MULT 12-48  0.23-3.79 %   21.9-23.8 %

Shape requirements reproduced here on scaled designs/device:
  * sensitivity grows with design size within each family;
  * normalized sensitivity is roughly a family constant;
  * multiplier families run several times the LFSR family per unit area.
"""

import numpy as np
import pytest

from repro.seu import CampaignConfig, format_table1, run_campaign, table1_row

PAPER_ROWS = [
    ("LFSR 18", 1.15, 7.3), ("LFSR 36", 2.37, 7.5), ("LFSR 54", 3.59, 7.6),
    ("LFSR 72", 4.81, 7.6), ("VMULT 18", 1.05, 24.9), ("VMULT 36", 4.00, 25.0),
    ("VMULT 54", 8.96, 25.9), ("VMULT 72", 14.75, 24.5), ("MULT 12", 0.23, 21.9),
    ("MULT 24", 0.90, 22.2), ("MULT 36", 2.11, 23.4), ("MULT 48", 3.79, 23.8),
]


def _rows(table1_campaigns):
    return [table1_row(hw, res) for hw, res in table1_campaigns]


def test_table1_reproduction(table1_campaigns, report, benchmark):
    rows = _rows(table1_campaigns)
    hw0, _ = table1_campaigns[0]

    # Benchmark kernel: a strided campaign over the smallest design.
    bits = np.arange(0, hw0.device.block0_bits, 50, dtype=np.int64)
    cfg = CampaignConfig(detect_cycles=64, persist_cycles=0, classify_persistence=False)
    benchmark(lambda: run_campaign(hw0, cfg, candidate_bits=bits))

    report(
        "",
        "== Table I: SEU simulator results (scaled reproduction on S12) ==",
        format_table1(rows),
        "",
        "paper (XCV1000): LFSR norm ~7.5%, VMULT ~25%, MULT ~22-24%",
    )

    by_family: dict[str, list] = {}
    for row in rows:
        by_family.setdefault(row.design.split()[0], []).append(row)

    # Shape 1: sensitivity grows with size within each family.
    for family, frows in by_family.items():
        sens = [r.sensitivity for r in frows]
        assert sens == sorted(sens), f"{family} sensitivity not monotone"

    # Shape 2: normalized sensitivity is a family near-constant.
    for family, frows in by_family.items():
        norms = [r.normalized_sensitivity for r in frows]
        assert max(norms) / min(norms) < 2.0, f"{family} norm spread too wide"

    # Shape 3: multipliers several times denser than LFSR per area.
    lfsr = np.mean([r.normalized_sensitivity for r in by_family["LFSR"]])
    mult = np.mean([r.normalized_sensitivity for r in by_family["MULT"]])
    vmult = np.mean([r.normalized_sensitivity for r in by_family["VMULT"]])
    assert mult > 1.8 * lfsr
    assert vmult > 1.2 * lfsr
    report(
        f"normalized sensitivity family means: LFSR {100 * lfsr:.1f}%, "
        f"VMULT {100 * vmult:.1f}%, MULT {100 * mult:.1f}% "
        f"(MULT/LFSR ratio {mult / lfsr:.1f}x; paper ~3x)"
    )


def test_table1_logic_slices_paper_scale(report, benchmark):
    """The 'Logic Slices' column at true paper scale: the twelve Table I
    designs placed on the real XCV1000 geometry (no routing needed for
    area numbers)."""
    from repro.designs import paper_suite_table1
    from repro.fpga import get_device
    from repro.place import place_design

    dev = get_device("XCV1000")
    paper_slices = {
        "LFSR 18": 2178, "LFSR 36": 4356, "LFSR 54": 6534, "LFSR 72": 8712,
        "VMULT 18": 583, "VMULT 36": 2206, "VMULT 54": 4781, "VMULT 72": 8308,
        "MULT 12": 144, "MULT 24": 561, "MULT 36": 1249, "MULT 48": 2205,
    }

    def place_all():
        return {
            spec.name: place_design(spec.netlist, dev).used_slices
            for spec in paper_suite_table1()
        }

    ours = benchmark.pedantic(place_all, rounds=1, iterations=1)
    report("", "== Table I 'Logic Slices' column (XCV1000, paper scale) ==",
           f"{'design':<10} {'paper':>7} {'ours':>7}  ratio")
    for name, paper_n in paper_slices.items():
        report(f"{name:<10} {paper_n:>7} {ours[name]:>7}  {ours[name] / paper_n:5.2f}")

    # Shape: ordering within families and MULT ~ n^2 scaling.
    assert ours["MULT 12"] < ours["MULT 24"] < ours["MULT 36"] < ours["MULT 48"]
    assert 3.0 < ours["MULT 24"] / ours["MULT 12"] < 5.0  # ~quadratic
    assert ours["VMULT 36"] > ours["MULT 36"]
    assert ours["LFSR 72"] == pytest.approx(4 * ours["LFSR 18"], rel=0.1)


def test_table1_failure_counts_scale_with_area(table1_campaigns, report, benchmark):
    rows = _rows(table1_campaigns)
    benchmark(lambda: [r.failures for r in rows])
    mult_rows = [r for r in rows if r.design.startswith("MULT")]
    areas = np.array([r.logic_slices for r in mult_rows], dtype=float)
    fails = np.array([r.failures for r in mult_rows], dtype=float)
    ratio = fails / areas
    assert ratio.max() / ratio.min() < 2.5
    report(
        "failures per slice (MULT family): "
        + ", ".join(f"{x:.0f}" for x in ratio)
    )

"""Temporal fast-forward and result-cache harness.

Measures the two levers this engine uses to avoid re-simulating work it
has already done, on a *late-injection* campaign (a long fault-free
warmup prefix before the upset window — the regime the paper's
radiation campaigns live in, where most of every trial is golden):

* **Golden-prefix fast-forward**: a cold context build simulates the
  golden run end to end and then replays the warmup prefix again for
  the pre-injection snapshot.  With fast-forward, the golden run is
  served from the content-addressed pack store and every batch starts
  from the stride-aligned snapshot nearest the injection cycle — the
  warmup prefix is never simulated again.  The timed "ff" run is a
  *primed* run (pack already stored), which is exactly the steady state
  of a sweep campaign: one golden simulation, thousands of starts.
* **Result cache**: the same sweep repeated against one cache directory
  is served from the whole-sweep verdict entry without building a
  context at all.

Verdict bytes are asserted identical across all three modes *before*
any floor is checked, and both floors default to 0 (report-only).

Environment knobs:

``REPRO_BENCH_DIR``
    Directory for ``BENCH_ff.json`` (default: current directory).
``REPRO_BENCH_FF_WARMUP``
    Fault-free warmup cycles before injection (default 3072; a
    multiple of the 64-cycle snapshot stride, so the restore is exact).
``REPRO_BENCH_FF_CANDIDATE_STRIDE``
    Candidate-bit subsampling for the sweep (default 16).
``REPRO_BENCH_MIN_FF_SPEEDUP``
    Hard floor for cold vs fast-forward wall clock (default 0 =
    report-only; the acceptance floor is 3, which an unloaded machine
    clears comfortably at the default warmup).
``REPRO_BENCH_MIN_CACHE_SPEEDUP``
    Hard floor for cold vs warm-cache wall clock (default 0; the
    acceptance floor is 10).
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.engine.cache import fast_forward_scope, result_cache_scope
from repro.seu import CampaignConfig, run_campaign


def _time_campaign(hw, cfg, repeats=2):
    """Best-of-N wall seconds plus the (byte-checked) last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_campaign(hw, cfg)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_fast_forward_speedup(report, bench_record, tmp_path):
    from repro.designs import get_design
    from repro.fpga import get_device
    from repro.place import implement

    warmup = int(os.environ.get("REPRO_BENCH_FF_WARMUP", "3072"))
    cand_stride = int(os.environ.get("REPRO_BENCH_FF_CANDIDATE_STRIDE", "16"))
    min_ff = float(os.environ.get("REPRO_BENCH_MIN_FF_SPEEDUP", "0"))
    min_cache = float(os.environ.get("REPRO_BENCH_MIN_CACHE_SPEEDUP", "0"))

    hw = implement(get_design("MULT4"), get_device("S8"))
    cfg = CampaignConfig(
        warmup_cycles=warmup,
        detect_cycles=24,
        persist_cycles=0,
        classify_persistence=False,
        stride=cand_stride,
        batch_size=64,
    )

    # Cold: no fast-forward, no result cache — golden run plus a full
    # warmup replay on every campaign.
    with fast_forward_scope(False), result_cache_scope(None):
        cold_s, cold = _time_campaign(hw, cfg)

    # Fast-forward, primed: one untimed run stores the golden pack (the
    # sweep steady state), then the timed runs skip the whole golden
    # prefix via pack hit + snapshot restore.
    with fast_forward_scope(True), result_cache_scope(None):
        run_campaign(hw, cfg)  # prime the pack store
        ff_s, ff = _time_campaign(hw, cfg)

    # Result cache: cold run populates the store, warm repeat is served
    # from the whole-sweep verdict entry.
    cache_dir = tmp_path / "result-cache"
    with fast_forward_scope(True), result_cache_scope(str(cache_dir)):
        t0 = time.perf_counter()
        cache_cold = run_campaign(hw, cfg)
        cache_cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_campaign(hw, cfg)
        warm_s = time.perf_counter() - t0

    # Bytes first, speed second.
    assert np.array_equal(ff.verdicts, cold.verdicts)
    assert np.array_equal(cache_cold.verdicts, cold.verdicts)
    assert np.array_equal(warm.verdicts, cold.verdicts)
    assert warm.telemetry.cache_hits > 0

    ff_speedup = cold_s / ff_s
    cache_speedup = cold_s / warm_s

    rows = []
    for label, seconds, result in (
        ("cold", cold_s, cold),
        ("fast-forward", ff_s, ff),
        ("cache-cold", cache_cold_s, cache_cold),
        ("cache-warm", warm_s, warm),
    ):
        row = result.telemetry.to_dict()
        row["label"] = label
        row["best_seconds"] = seconds
        rows.append(row)
    rows.append(
        {
            "label": "speedup",
            "design": hw.spec.name,
            "device": hw.device.name,
            "warmup_cycles": warmup,
            "candidate_stride": cand_stride,
            "ff_speedup": ff_speedup,
            "cache_speedup": cache_speedup,
            "ff_cycles_skipped": ff.telemetry.ff_cycles_skipped,
        }
    )
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    out_path = bench_record(out_dir / "BENCH_ff.json", rows)

    report(
        "",
        f"== Temporal fast-forward (MULT4/S8, warmup {warmup} cycles, "
        f"candidate stride {cand_stride}) ==",
        f"cold         : {cold_s:.3f}s (golden + warmup replay every run)",
        f"fast-forward : {ff_s:.3f}s ({ff_speedup:.1f}x; "
        f"{ff.telemetry.ff_cycles_skipped} cycles skipped)",
        f"warm cache   : {warm_s:.4f}s ({cache_speedup:.1f}x; "
        f"{warm.telemetry.cache_hits} hit(s), "
        f"{warm.telemetry.cache_bytes} bytes)",
        "verdict bytes identical across all modes",
        f"record       : {out_path}",
    )

    assert ff_speedup >= min_ff
    assert cache_speedup >= min_cache

"""Figures 11-12 — accelerator validation of the SEU simulator.

Paper claims reproduced:
  * beam flux tuned for ~1 upset per 0.5 s observation;
  * test-loop iteration 430 us;
  * "97.6 % correlation between output errors discovered through
    radiation testing and output errors predicted by the simulator",
    the residual being hidden state (half-latches, configuration
    control logic).
"""

import pytest

from repro.seu import CampaignConfig, SensitivityMap, run_campaign, run_halflatch_campaign
from repro.validation import AcceleratorConfig, correlate, run_accelerator_test
from repro.utils.units import MICROSECOND


@pytest.fixture(scope="module")
def beam_artifacts(table2_campaigns, campaign_config):
    # Use the LFSR-multiplier — the design class flown in the beam.
    hw, result = next(
        (hw, r) for hw, r in table2_campaigns if hw.spec.family == "LFSRMULT"
    )
    smap = SensitivityMap.from_campaign(hw.device, result)
    hl = run_halflatch_campaign(hw, campaign_config)
    return hw, smap, hl


def test_fig12_beam_correlation(beam_artifacts, report, benchmark):
    hw, smap, hl = beam_artifacts
    cfg = AcceleratorConfig(exposure_s=40_000.0, seed=6)

    def exposure():
        return run_accelerator_test(hw, smap, hl, cfg)

    result = benchmark.pedantic(exposure, rounds=1, iterations=1)
    rep = correlate(result, smap)
    rate = result.n_upsets / result.modeled_beam_seconds
    report(
        "",
        "== Figures 11-12: accelerator validation ==",
        f"beam: {result.n_upsets:,} upsets over "
        f"{result.modeled_beam_seconds:,.0f} s exposure "
        f"({rate:.2f}/s; tuned for ~1 per 0.5 s observation)",
        rep.summary(),
        "paper: 97.6% correlation; residual attributed to half-latches "
        "and hidden configuration logic",
    )
    assert 1.6 < rate < 2.4
    assert 0.93 < rep.correlation < 0.999
    assert rep.n_unpredicted_errors > 0
    assert rep.n_false_alarms == 0


def test_fig12_loop_iteration_budget(report, benchmark):
    cfg = AcceleratorConfig()
    iterations = benchmark(
        lambda: int(cfg.observation_s / cfg.iteration_s)
    )
    report(
        f"test-loop iteration: {cfg.iteration_s / MICROSECOND:.0f} us "
        f"(paper: 430 us) -> {iterations} comparisons per 0.5 s observation"
    )
    assert abs(cfg.iteration_s - 430e-6) < 1e-9

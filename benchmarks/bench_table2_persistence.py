"""Table II — persistence of sensitive configuration bits.

Paper values:

    design             sensitivity   persistence ratio
    54 Multiply-Add    8.87 %        0 %
    36 Counter/Adder   0.09 %        9.88 %
    72 LFSR            4.2 %         93.9 %
    LFSR Multiplier    6.4 %         15.0 %
    Filter Preproc.    9.5 %         1.2 %

Shape requirements: feed-forward designs have ~zero persistence; pure
feedback (LFSR) is near-total; mixed designs (counter/adder,
LFSR-multiplier) sit in between, ordered by their feedback share.
"""

import numpy as np

from repro.seu import format_table2

PAPER = {
    "MULTADD": 0.0,
    "COUNTER": 9.88,
    "LFSR": 93.9,
    "LFSRMULT": 15.0,
    "FILTER": 1.2,
}


def test_table2_reproduction(table2_campaigns, report, benchmark):
    rows = []
    by_family = {}
    for hw, res in table2_campaigns:
        rows.append(
            (
                hw.spec.name,
                hw.used_slices,
                hw.utilization,
                res.sensitivity,
                res.persistence_ratio,
            )
        )
        by_family[hw.spec.family] = res.persistence_ratio

    benchmark(lambda: format_table2(rows))

    report(
        "",
        "== Table II: persistence of sensitive bits (scaled reproduction) ==",
        format_table2(rows),
        "",
        "paper: multiply-add 0%, counter/adder 9.9%, LFSR 93.9%, "
        "LFSR-mult 15.0%, filter 1.2%",
    )

    # Shapes: feedforward ~0, LFSR dominant, mixed in between.
    assert by_family["MULTADD"] < 0.02
    assert by_family["FILTER"] < 0.10
    assert by_family["LFSR"] > 0.60
    assert 0.02 < by_family["LFSRMULT"] < 0.60
    assert 0.01 < by_family["COUNTER"] < 0.60
    # Ordering matches the paper's.
    assert (
        by_family["MULTADD"]
        <= by_family["FILTER"]
        < by_family["LFSRMULT"]
        < by_family["LFSR"]
    )


def test_persistent_bits_live_in_feedback_logic(table2_campaigns, report, benchmark):
    """Persistent bits of the LFSR-multiplier must concentrate in the
    LFSR generators, not the multiplier array (the paper's 'persistent
    bits are most often associated with state and control functions')."""
    hw, res = next(
        (hw, res) for hw, res in table2_campaigns if hw.spec.family == "LFSRMULT"
    )

    def classify():
        lfsr_clbs = {
            (s.row, s.col)
            for name, s in list(hw.placement.ff_site.items())
            if name.startswith(("ga_", "gb_"))
        }
        in_lfsr = 0
        for bit in res.persistent_bits:
            frame, off = hw.bitstream.locate(int(bit))
            loc = hw.device.classify_bit(frame, off)
            if (loc.row, loc.col) in lfsr_clbs:
                in_lfsr += 1
        return in_lfsr

    in_lfsr = benchmark(classify)
    frac = in_lfsr / max(len(res.persistent_bits), 1)
    report(
        f"persistent bits inside the LFSR generators: {in_lfsr}/"
        f"{len(res.persistent_bits)} ({100 * frac:.0f}%)"
    )
    assert frac > 0.5

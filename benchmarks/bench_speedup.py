"""Section III-A — hardware-emulated fault injection vs software.

The paper's motivation for the SLAAC-1V methodology: "By using dynamic
reconfiguration, we can run the corrupted designs directly on the FPGA
hardware, giving many orders of magnitude speed-up over purely software
techniques."

We quantify three rungs of that ladder on the same workload:
  1. modeled SLAAC-1V hardware: 214 us/bit regardless of design size;
  2. this library's *batched* software simulation (the campaign engine:
     structural pre-filters + lock-step vectorised machines);
  3. naive software simulation: full re-simulation of the whole design
     per bit, one machine at a time — the baseline the paper's claim is
     measured against.
"""

import os
import time

import numpy as np

from repro.netlist import BatchSimulator
from repro.seu import CampaignConfig, run_campaign
from repro.testbed import HostTiming


def _naive_per_bit_cost(hw, cycles: int, n_bits: int = 12) -> float:
    """Seconds/bit for flip -> full re-decode -> simulate, single machine."""
    from repro.place.decoder import decode_bitstream

    stim = hw.spec.stimulus(cycles, 0)
    rng = np.random.default_rng(0)
    bits = rng.integers(0, hw.device.block0_bits, size=n_bits)
    t0 = time.perf_counter()
    for bit in bits:
        corrupted = hw.bitstream.copy()
        corrupted.flip_bit(int(bit))
        decoded = decode_bitstream(hw.device, corrupted, hw.io)
        BatchSimulator.golden_trace(decoded.design, stim)
    return (time.perf_counter() - t0) / n_bits


def test_speedup_ladder(table1_campaigns, report, benchmark):
    hw, _ = table1_campaigns[0]
    cfg = CampaignConfig(detect_cycles=64, persist_cycles=0, classify_persistence=False)
    bits = np.arange(0, hw.device.block0_bits, 20, dtype=np.int64)

    def batched():
        return run_campaign(hw, cfg, candidate_bits=bits)

    result = benchmark.pedantic(batched, rounds=1, iterations=1)
    batched_per_bit = result.host_seconds / result.n_candidates
    naive_per_bit = _naive_per_bit_cost(hw, cfg.detect_cycles)
    hardware_per_bit = HostTiming().iteration_s

    report(
        "",
        "== Section III-A: fault-injection throughput ladder ==",
        f"modeled SLAAC-1V hardware : {1e6 * hardware_per_bit:10.0f} us/bit",
        f"this library (batched sim): {1e6 * batched_per_bit:10.1f} us/bit",
        f"naive software (re-decode + single-machine sim): "
        f"{1e6 * naive_per_bit:10.0f} us/bit",
        f"batched vs naive speedup : {naive_per_bit / batched_per_bit:,.0f}x",
        f"hardware vs naive speedup: {naive_per_bit / hardware_per_bit:,.0f}x "
        "(the paper's 'orders of magnitude', on our workload)",
    )
    # The claims that must hold in any environment.  Loaded CI runners
    # time-slice unpredictably, so the floors are env-tunable
    # (REPRO_BENCH_MIN_*_SPEEDUP); the defaults are the local claims.
    min_batched = float(os.environ.get("REPRO_BENCH_MIN_BATCHED_SPEEDUP", "50"))
    min_hw = float(os.environ.get("REPRO_BENCH_MIN_HW_SPEEDUP", "100"))
    assert naive_per_bit / batched_per_bit > min_batched
    assert naive_per_bit / hardware_per_bit > min_hw
